/**
 * @file
 * Reproduces paper Fig. 6: vertical inter-layer variability.
 *
 *  (a,b,c) leader-WL normalized BER per h-layer at fresh,
 *          2K P/E + 1 month, and 2K P/E + 1 year (all normalized to
 *          the best h-layer of a fresh block);
 *  (d)     per-block DeltaV differences (paper: two sample blocks
 *          differ by ~18%).
 *
 * Paper shape targets: DeltaV ~1.6 fresh growing to ~2.3 at end of
 * life; bad layers (kappa/alpha/omega) diverge faster than beta.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

/** Calibrated leader-WL BER of every h-layer of one block. */
std::vector<double>
layerBers(nand::NandChip &chip, std::uint32_t block)
{
    const auto &geom = chip.geometry();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);
    chip.eraseBlock(block);
    std::vector<double> bers;
    for (std::uint32_t layer = 0; layer < geom.layersPerBlock;
         ++layer) {
        chip.programWl({block, layer, 0}, nand::ProgramCommand{},
                       tokens);
        bers.push_back(chip.measureBerNorm({block, layer, 0, 0}));
    }
    return bers;
}

double
deltaV(const std::vector<double> &bers)
{
    return *std::max_element(bers.begin(), bers.end()) /
           *std::min_element(bers.begin(), bers.end());
}

}  // namespace

int
main()
{
    std::cout << "=== Fig. 6: inter-layer (vertical) variability ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &process = chip.process();

    // Normalization reference: best layer of a fresh block.
    chip.setAging({0, 0.0});
    const auto freshRef = layerBers(chip, 0);
    const double ref =
        *std::min_element(freshRef.begin(), freshRef.end());

    const nand::AgingState conditions[] = {
        {0, 0.0}, {2000, 1.0}, {2000, 12.0}};
    std::vector<double> deltas;

    for (const auto &aging : conditions) {
        chip.setAging(aging);
        const auto bers = layerBers(chip, 0);
        std::cout << "\n-- leader-WL normalized BER per h-layer, "
                  << bench::agingName(aging) << " --\n";
        metrics::Table table({"h-layer", "normalized BER", "note"});
        for (std::uint32_t l = 0; l < bers.size(); l += 4) {
            std::string note;
            if (l == process.layerOmega())
                note = "omega (bottom edge)";
            else if (l == process.layerKappa())
                note = "kappa";
            else if (l == process.layerBeta())
                note = "beta (best)";
            else if (l == process.layerAlpha())
                note = "alpha (top edge)";
            table.row({std::to_string(l),
                       metrics::format(bers[l] / ref), note});
        }
        table.print(std::cout);
        deltas.push_back(deltaV(bers));
        std::cout << "  DeltaV = " << metrics::format(deltas.back())
                  << "\n";
    }

    // (d) per-block DeltaV differences across many blocks.
    std::cout << "\n-- Fig. 6(d): per-block DeltaV spread "
                 "(2K P/E + 1 year) --\n";
    chip.setAging({2000, 12.0});
    RunningStat perBlock;
    double blockI = 0.0, blockII = 1e30;
    std::vector<double> samples;
    for (std::uint32_t block = 1;
         block < chip.geometry().blocksPerChip; block += 2) {
        const double d = deltaV(layerBers(chip, block));
        perBlock.add(d);
        samples.push_back(d);
        blockI = std::max(blockI, d);
        blockII = std::min(blockII, d);
    }
    // The paper compares two sample blocks (Block I / Block II); use
    // the first two sampled blocks as our pair, and also report the
    // full spread.
    const double pairDiff =
        std::abs(samples[0] / samples[1] - 1.0);
    std::cout << "  blocks sampled: " << perBlock.count()
              << "  DeltaV mean: " << metrics::format(perBlock.mean())
              << "  min: " << metrics::format(blockII)
              << "  max: " << metrics::format(blockI) << "\n"
              << "  sample pair (Block I vs Block II): "
              << metrics::format(samples[0]) << " vs "
              << metrics::format(samples[1]) << " ("
              << metrics::formatPercent(pairDiff) << " apart)\n";

    metrics::PaperComparison cmp("Fig. 6 (inter-layer variability)");
    cmp.add("DeltaV, fresh block", "~1.6",
            metrics::format(deltas[0]));
    cmp.add("DeltaV, 2K P/E + 1 year", "~2.3",
            metrics::format(deltas[2]));
    cmp.add("DeltaV growth is nonlinear in aging",
            "yes (Fig. 6(c))",
            deltas[2] > deltas[1] && deltas[1] > deltas[0]
                ? "yes (monotone, accelerating)"
                : "NO");
    cmp.add("sample blocks' DeltaV difference (Fig. 6(d))", "~18%",
            metrics::formatPercent(pairDiff),
            "max spread across all blocks: " +
                metrics::formatPercent(blockI / blockII - 1.0));
    cmp.print(std::cout);
    return 0;
}
