/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench prints the series the paper reports plus our measured
 * values; EXPERIMENTS.md quotes these outputs. By default benches run
 * on a scaled device (128 blocks per chip, ~9 GB) so the whole suite
 * finishes in minutes; set CUBESSD_FULL=1 in the environment for the
 * paper's full 428-blocks-per-chip (~32 GB) configuration.
 */

#ifndef CUBESSD_BENCH_BENCH_UTIL_H
#define CUBESSD_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <iostream>

#include "src/cubessd.h"

namespace cubessd::bench {

inline bool
fullScale()
{
    const char *env = std::getenv("CUBESSD_FULL");
    return env != nullptr && env[0] == '1';
}

/** Device configuration used by the system-level benches (Sec. 6.1). */
inline ssd::SsdConfig
ssdConfig(ssd::FtlKind kind, std::uint64_t seed = 42)
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 4;
    config.chip.geometry.blocksPerChip = fullScale() ? 428 : 128;
    config.ftl = kind;
    config.seed = seed;
    return config;
}

/** Chip configuration used by the characterization benches (Sec. 3). */
inline nand::NandChipConfig
chipConfig(std::uint64_t seed = 1)
{
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = fullScale() ? 128 : 32;
    config.seed = seed;
    return config;
}

/**
 * One evaluation run: pre-cycle, prefill, bake, measure — the paper's
 * experimental procedure (Sec. 6.1: the rig pre-cycles blocks, writes,
 * then bakes for the retention time).
 */
inline workload::RunResult
runWorkload(ssd::FtlKind kind, const workload::WorkloadSpec &spec,
            const nand::AgingState &aging, std::uint64_t seed,
            std::uint64_t requests, ftl::FtlStats *statsOut = nullptr)
{
    ssd::Ssd dev(ssdConfig(kind, seed));
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), seed + 7);
    workload::Driver driver(dev, gen);
    dev.setAging({aging.peCycles, 0.0});
    driver.prefill(0.2);
    dev.setAging(aging);
    auto result = driver.run(requests);
    if (statsOut != nullptr)
        *statsOut = dev.ftl().stats();
    return result;
}

/** Mean IOPS over three seeds (burst pacing is stochastic). */
inline double
meanIops(ssd::FtlKind kind, const workload::WorkloadSpec &spec,
         const nand::AgingState &aging, std::uint64_t requests)
{
    double sum = 0.0;
    const std::uint64_t seeds[] = {42, 137, 999, 7, 2026};
    for (std::uint64_t seed : seeds)
        sum += runWorkload(kind, spec, aging, seed, requests).iops;
    return sum / static_cast<double>(std::size(seeds));
}

inline const char *
agingName(const nand::AgingState &aging)
{
    if (aging.peCycles == 0)
        return "fresh (0K P/E, no retention)";
    if (aging.retentionMonths <= 1.0)
        return "2K P/E + 1-month retention";
    return "2K P/E + 1-year retention";
}

}  // namespace cubessd::bench

#endif  // CUBESSD_BENCH_BENCH_UTIL_H
