/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench prints the series the paper reports plus our measured
 * values; EXPERIMENTS.md quotes these outputs. By default benches run
 * on a scaled device (128 blocks per chip, ~9 GB) so the whole suite
 * finishes in minutes; set CUBESSD_FULL=1 in the environment for the
 * paper's full 428-blocks-per-chip (~32 GB) configuration, or
 * CUBESSD_SMOKE=1 for a further-reduced CI smoke run (fewer requests
 * and seeds; the numbers are not publication-grade, only the plumbing
 * is exercised).
 *
 * The figure benches additionally write their series to a silent
 * BENCH_<figure>.json sidecar in the working directory, so CI can
 * archive machine-readable results without perturbing the quoted
 * stdout. Sidecars are written once, from the main thread, after the
 * deterministic merge — never from sweep workers.
 *
 * The system-level sweeps (fig17, fig18) accept `--jobs <n>` (or
 * CUBESSD_JOBS=<n>) to farm independent cells onto worker threads;
 * stdout and sidecars are bit-identical for any job count.
 */

#ifndef CUBESSD_BENCH_BENCH_UTIL_H
#define CUBESSD_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/cubessd.h"
#include "src/sim/sweep.h"
#include "src/workload/sweep.h"

namespace cubessd::bench {

/**
 * Optional tracing for the system-level benches. Parsed from argv
 * (`--trace-out <file> [--sample-interval-us <n>]`) by the benches'
 * main(); when set, the FIRST evaluation cell is recorded into a
 * Chrome trace file. Only that one cell is traced: the benches repeat
 * runs across seeds/FTLs and one representative timeline is what a
 * reader wants to open in Perfetto — and under `--jobs N` two cells
 * must never race on the same trace file (workload::runCells enforces
 * the exactly-one rule with an atomic claim). The quoted stdout and
 * the JSON sidecars are unaffected either way.
 *
 * These options are written once by main() before any worker thread
 * exists and are read-only afterwards; keep it that way.
 */
struct TraceOptions
{
    std::string out;
    std::uint64_t sampleIntervalUs = 1000;
};

inline TraceOptions &
traceOptions()
{
    static TraceOptions options;
    return options;
}

/** `--jobs N` from the command line (0 = not given). Set once by
 *  main() before any sweep starts. */
inline unsigned &
cliJobs()
{
    static unsigned jobs = 0;
    return jobs;
}

/** Sweep worker threads: `--jobs N` wins, else CUBESSD_JOBS, else 1.
 *  Output is bit-identical whatever the value (deterministic merge). */
inline unsigned
jobs()
{
    return sim::resolveJobs(cliJobs(), "CUBESSD_JOBS");
}

inline void
parseBenchOptions(int argc, char **argv)
{
    auto &options = traceOptions();
    for (int i = 1; i < argc; ++i) {
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", argv[i]);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--trace-out") == 0)
            options.out = value();
        else if (std::strcmp(argv[i], "--sample-interval-us") == 0)
            options.sampleIntervalUs =
                static_cast<std::uint64_t>(std::atoll(value()));
        else if (std::strcmp(argv[i], "--jobs") == 0)
            cliJobs() = static_cast<unsigned>(std::atoi(value()));
        else
            fatal("unknown option '%s' (benches accept --trace-out "
                  "<file>, --sample-interval-us <n>, and --jobs <n>)",
                  argv[i]);
    }
}

inline bool
fullScale()
{
    const char *env = std::getenv("CUBESSD_FULL");
    return env != nullptr && env[0] == '1';
}

inline bool
smokeScale()
{
    const char *env = std::getenv("CUBESSD_SMOKE");
    return env != nullptr && env[0] == '1';
}

/** Number of measured requests: the bench's full count, cut 10x for
 *  CI smoke runs. */
inline std::uint64_t
benchRequests(std::uint64_t full)
{
    return smokeScale() ? full / 10 : full;
}

/** Human tag for the active scale, recorded in the JSON sidecars. */
inline const char *
scaleName()
{
    if (smokeScale())
        return "smoke";
    return fullScale() ? "full" : "scaled";
}

/** Open the silent machine-readable sidecar for a figure bench. */
inline std::ofstream
openBenchJson(const std::string &figure)
{
    return std::ofstream("BENCH_" + figure + ".json");
}

/** Device configuration used by the system-level benches (Sec. 6.1). */
inline ssd::SsdConfig
ssdConfig(ssd::FtlKind kind, std::uint64_t seed = 42)
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 4;
    config.chip.geometry.blocksPerChip = fullScale() ? 428 : 128;
    config.ftl = kind;
    config.seed = seed;
    return config;
}

/** Chip configuration used by the characterization benches (Sec. 3). */
inline nand::NandChipConfig
chipConfig(std::uint64_t seed = 1)
{
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = fullScale() ? 128 : 32;
    config.seed = seed;
    return config;
}

/**
 * One cell of an evaluation sweep: pre-cycle, prefill, bake, measure —
 * the paper's experimental procedure (Sec. 6.1: the rig pre-cycles
 * blocks, writes, then bakes for the retention time). Executed by
 * workload::runCells.
 */
inline workload::SweepCell
makeCell(ssd::FtlKind kind, const workload::WorkloadSpec &spec,
         const nand::AgingState &aging, std::uint64_t seed,
         std::uint64_t requests)
{
    workload::SweepCell cell;
    cell.config = ssdConfig(kind, seed);
    cell.spec = spec;
    cell.aging = aging;
    cell.requests = requests;
    return cell;
}

/**
 * Run a bench's whole cell grid across jobs() worker threads; results
 * come back in cell order, so callers aggregate and print exactly as
 * the old sequential loops did — stdout and sidecars are bit-identical
 * whatever the job count. Cell 0 is the traced cell when --trace-out
 * is set (the same cell the sequential benches always traced).
 */
inline std::vector<workload::CellResult>
runSweep(const std::vector<workload::SweepCell> &cells)
{
    workload::SweepTrace trace;
    trace.out = traceOptions().out;
    trace.sampleIntervalUs = traceOptions().sampleIntervalUs;
    trace.cell = 0;
    return workload::runCells(cells, jobs(), trace);
}

/** Evaluation seeds (burst pacing is stochastic, so IOPS figures are
 *  means over these); smoke runs keep only the first two. */
inline std::vector<std::uint64_t>
benchSeeds()
{
    const std::vector<std::uint64_t> seeds = {42, 137, 999, 7, 2026};
    if (smokeScale())
        return {seeds.begin(), seeds.begin() + 2};
    return seeds;
}

inline const char *
agingName(const nand::AgingState &aging)
{
    if (aging.peCycles == 0)
        return "fresh (0K P/E, no retention)";
    if (aging.retentionMonths <= 1.0)
        return "2K P/E + 1-month retention";
    return "2K P/E + 1-year retention";
}

}  // namespace cubessd::bench

#endif  // CUBESSD_BENCH_BENCH_UTIL_H
