/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench prints the series the paper reports plus our measured
 * values; EXPERIMENTS.md quotes these outputs. By default benches run
 * on a scaled device (128 blocks per chip, ~9 GB) so the whole suite
 * finishes in minutes; set CUBESSD_FULL=1 in the environment for the
 * paper's full 428-blocks-per-chip (~32 GB) configuration, or
 * CUBESSD_SMOKE=1 for a further-reduced CI smoke run (fewer requests
 * and seeds; the numbers are not publication-grade, only the plumbing
 * is exercised).
 *
 * The figure benches additionally write their series to a silent
 * BENCH_<figure>.json sidecar in the working directory, so CI can
 * archive machine-readable results without perturbing the quoted
 * stdout.
 */

#ifndef CUBESSD_BENCH_BENCH_UTIL_H
#define CUBESSD_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "src/cubessd.h"

namespace cubessd::bench {

/**
 * Optional tracing for the system-level benches. Parsed from argv
 * (`--trace-out <file> [--sample-interval-us <n>]`) by the benches'
 * main(); when set, runWorkload records the FIRST evaluation run into
 * a Chrome trace file. Only the first run is traced: the benches
 * repeat runs across seeds/FTLs and one representative timeline is
 * what a reader wants to open in Perfetto. The quoted stdout and the
 * JSON sidecars are unaffected either way.
 */
struct TraceOptions
{
    std::string out;
    std::uint64_t sampleIntervalUs = 1000;
};

inline TraceOptions &
traceOptions()
{
    static TraceOptions options;
    return options;
}

inline void
parseTraceOptions(int argc, char **argv)
{
    auto &options = traceOptions();
    for (int i = 1; i < argc; ++i) {
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", argv[i]);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--trace-out") == 0)
            options.out = value();
        else if (std::strcmp(argv[i], "--sample-interval-us") == 0)
            options.sampleIntervalUs =
                static_cast<std::uint64_t>(std::atoll(value()));
        else
            fatal("unknown option '%s' (benches accept --trace-out "
                  "<file> and --sample-interval-us <n>)", argv[i]);
    }
}

inline bool
fullScale()
{
    const char *env = std::getenv("CUBESSD_FULL");
    return env != nullptr && env[0] == '1';
}

inline bool
smokeScale()
{
    const char *env = std::getenv("CUBESSD_SMOKE");
    return env != nullptr && env[0] == '1';
}

/** Number of measured requests: the bench's full count, cut 10x for
 *  CI smoke runs. */
inline std::uint64_t
benchRequests(std::uint64_t full)
{
    return smokeScale() ? full / 10 : full;
}

/** Human tag for the active scale, recorded in the JSON sidecars. */
inline const char *
scaleName()
{
    if (smokeScale())
        return "smoke";
    return fullScale() ? "full" : "scaled";
}

/** Open the silent machine-readable sidecar for a figure bench. */
inline std::ofstream
openBenchJson(const std::string &figure)
{
    return std::ofstream("BENCH_" + figure + ".json");
}

/** Device configuration used by the system-level benches (Sec. 6.1). */
inline ssd::SsdConfig
ssdConfig(ssd::FtlKind kind, std::uint64_t seed = 42)
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 4;
    config.chip.geometry.blocksPerChip = fullScale() ? 428 : 128;
    config.ftl = kind;
    config.seed = seed;
    return config;
}

/** Chip configuration used by the characterization benches (Sec. 3). */
inline nand::NandChipConfig
chipConfig(std::uint64_t seed = 1)
{
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = fullScale() ? 128 : 32;
    config.seed = seed;
    return config;
}

/**
 * One evaluation run: pre-cycle, prefill, bake, measure — the paper's
 * experimental procedure (Sec. 6.1: the rig pre-cycles blocks, writes,
 * then bakes for the retention time).
 */
inline workload::RunResult
runWorkload(ssd::FtlKind kind, const workload::WorkloadSpec &spec,
            const nand::AgingState &aging, std::uint64_t seed,
            std::uint64_t requests, ftl::FtlStats *statsOut = nullptr)
{
    ssd::Ssd dev(ssdConfig(kind, seed));
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), seed + 7);
    workload::Driver driver(dev, gen);
    dev.setAging({aging.peCycles, 0.0});
    driver.prefill(0.2);
    dev.setAging(aging);

    // Trace the first measured run when requested (prefill excluded:
    // its bulk writes would flood the ring buffer).
    static bool traced = false;
    std::unique_ptr<trace::TraceSession> traceSession;
    trace::CounterRegistry counters;
    if (!traceOptions().out.empty() && !traced) {
        traced = true;
        traceSession = std::make_unique<trace::TraceSession>();
        dev.attachTrace(traceSession.get());
        if (traceOptions().sampleIntervalUs > 0) {
            dev.registerCounters(counters);
            counters.attachTrace(traceSession.get());
            counters.installSampler(dev.queue(),
                                    traceOptions().sampleIntervalUs *
                                        1000);
        }
    }

    auto result = driver.run(requests);
    if (statsOut != nullptr)
        *statsOut = dev.ftl().stats();

    if (traceSession) {
        std::ofstream traceFile(traceOptions().out);
        if (!traceFile)
            fatal("cannot open trace file '%s'",
                  traceOptions().out.c_str());
        traceSession->writeJson(traceFile);
        std::cerr << "trace written to " << traceOptions().out << " ("
                  << traceSession->recorded() << " events recorded, "
                  << traceSession->dropped() << " dropped)\n";
    }
    return result;
}

/** Mean IOPS over several seeds (burst pacing is stochastic); smoke
 *  runs keep only the first two seeds. */
inline double
meanIops(ssd::FtlKind kind, const workload::WorkloadSpec &spec,
         const nand::AgingState &aging, std::uint64_t requests)
{
    double sum = 0.0;
    const std::uint64_t seeds[] = {42, 137, 999, 7, 2026};
    const std::size_t count = smokeScale() ? 2 : std::size(seeds);
    for (std::size_t i = 0; i < count; ++i)
        sum += runWorkload(kind, spec, aging, seeds[i], requests).iops;
    return sum / static_cast<double>(count);
}

inline const char *
agingName(const nand::AgingState &aging)
{
    if (aging.peCycles == 0)
        return "fresh (0K P/E, no retention)";
    if (aging.retentionMonths <= 1.0)
        return "2K P/E + 1-month retention";
    return "2K P/E + 1-year retention";
}

}  // namespace cubessd::bench

#endif  // CUBESSD_BENCH_BENCH_UTIL_H
