/**
 * @file
 * Reproduces paper Fig. 14: NumRetry distribution of the PS-aware
 * read scheme vs the existing PS-unaware scheme.
 *
 * PS-unaware: every read starts its retry search from the chip
 * default references. PS-aware (Sec. 4.2): the first read of an
 * h-layer searches, and every later read of that h-layer starts from
 * the cached good shift (the ORT entry). Paper: 66% average NumRetry
 * reduction.
 */

#include <iostream>
#include <map>

#include "bench/bench_util.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Fig. 14: NumRetry, PS-aware vs PS-unaware ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &geom = chip.geometry();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);
    chip.setAging({2000, 12.0});  // the retry-heavy end-of-life state

    // Program a spread of h-layers across blocks.
    for (std::uint32_t block = 0; block < geom.blocksPerChip;
         block += 2) {
        chip.eraseBlock(block);
        for (std::uint32_t l = 0; l < geom.layersPerBlock; l += 4)
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w)
                chip.programWl({block, l, w}, nand::ProgramCommand{},
                               tokens);
    }

    Histogram unaware(0, 8, 8), aware(0, 8, 8);
    RunningStat unawareMean, awareMean;
    std::map<std::uint64_t, MilliVolt> ort;  // (block, layer) -> shift

    for (std::uint32_t block = 0; block < geom.blocksPerChip;
         block += 2) {
        for (std::uint32_t l = 0; l < geom.layersPerBlock; l += 4) {
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w) {
                for (std::uint32_t p = 0; p < geom.pagesPerWl; ++p) {
                    // PS-unaware: always from the default references.
                    const auto plain =
                        chip.readPage({block, l, w, p}, 0);
                    unaware.add(plain.numRetries);
                    unawareMean.add(plain.numRetries);

                    // PS-aware: reuse the h-layer's last good shift.
                    const std::uint64_t key =
                        static_cast<std::uint64_t>(block) * 64 + l;
                    const auto it = ort.find(key);
                    const MilliVolt start =
                        it == ort.end() ? 0 : it->second;
                    const auto smart =
                        chip.readPage({block, l, w, p}, start);
                    aware.add(smart.numRetries);
                    awareMean.add(smart.numRetries);
                    if (!smart.uncorrectable)
                        ort[key] = smart.successShiftMv;
                }
            }
        }
    }

    std::cout << "\n-- NumRetry distribution (fraction of reads) --\n";
    metrics::Table table({"NumRetry", "PS-unaware (existing)",
                          "PS-aware (proposed)"});
    for (std::size_t bin = 0; bin < unaware.bins(); ++bin) {
        table.row({std::to_string(bin),
                   metrics::formatPercent(unaware.fraction(bin)),
                   metrics::formatPercent(aware.fraction(bin))});
    }
    table.print(std::cout);

    const double reduction = 1.0 - awareMean.mean() / unawareMean.mean();
    std::cout << "\n  mean NumRetry: PS-unaware "
              << metrics::format(unawareMean.mean(), 2) << ", PS-aware "
              << metrics::format(awareMean.mean(), 2) << "\n";

    metrics::PaperComparison cmp("Fig. 14 (read-retry reduction)");
    cmp.add("average NumRetry reduction", "66%",
            metrics::formatPercent(reduction));
    cmp.add("PS-aware mass concentrates at 0 retries", "yes",
            metrics::formatPercent(aware.fraction(0)) + " at zero");
    cmp.print(std::cout);
    return 0;
}
