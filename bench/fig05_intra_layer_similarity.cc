/**
 * @file
 * Reproduces paper Fig. 5: horizontal intra-layer similarity.
 *
 *  (a,b) normalized retention BER of the four WLs on four
 *        representative h-layers, at 1K P/E + 1 month and at
 *        2K P/E + 1 year;
 *  (c)   DeltaH across blocks and aging conditions (paper: all ~1);
 *  (d)   tPROG of the four WLs of each representative h-layer
 *        (paper: identical within an h-layer).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

struct LayerRow
{
    const char *name;
    std::uint32_t layer;
};

std::vector<LayerRow>
representativeLayers(const nand::ProcessModel &process)
{
    return {{"h-layer_omega (bottom edge)", process.layerOmega()},
            {"h-layer_kappa (bottom band)", process.layerKappa()},
            {"h-layer_beta (best)", process.layerBeta()},
            {"h-layer_alpha (top edge)", process.layerAlpha()}};
}

}  // namespace

int
main()
{
    std::cout << "=== Fig. 5: intra-layer (horizontal) similarity ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &geom = chip.geometry();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);
    const auto layers = representativeLayers(chip.process());

    // (a,b): per-WL normalized BER at two aging conditions.
    for (const auto aging :
         {nand::AgingState{1000, 1.0}, nand::AgingState{2000, 12.0}}) {
        chip.setAging(aging);
        std::cout << "\n-- normalized BER per WL, " << aging.peCycles
                  << " P/E + " << aging.retentionMonths
                  << " months --\n";
        metrics::Table table(
            {"h-layer", "WL1", "WL2", "WL3", "WL4", "DeltaH"});
        // Normalize over the best h-layer's measurement (Fig. 5 note).
        chip.eraseBlock(0);
        double best = 1e30;
        std::vector<std::vector<double>> rows;
        for (const auto &row : layers) {
            std::vector<double> bers;
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w) {
                chip.programWl({0, row.layer, w},
                               nand::ProgramCommand{}, tokens);
                bers.push_back(
                    chip.measureBerNorm({0, row.layer, w, 0}));
            }
            best = std::min(
                best, *std::min_element(bers.begin(), bers.end()));
            rows.push_back(bers);
        }
        for (std::size_t i = 0; i < layers.size(); ++i) {
            const auto &bers = rows[i];
            const double hi =
                *std::max_element(bers.begin(), bers.end());
            const double lo =
                *std::min_element(bers.begin(), bers.end());
            table.row({layers[i].name, metrics::format(bers[0] / best),
                       metrics::format(bers[1] / best),
                       metrics::format(bers[2] / best),
                       metrics::format(bers[3] / best),
                       metrics::format(hi / lo)});
        }
        table.print(std::cout);
    }

    // (c): DeltaH over many blocks and conditions.
    std::cout << "\n-- Fig. 5(c): DeltaH across blocks and aging --\n";
    RunningStat deltaH;
    for (const auto aging :
         {nand::AgingState{0, 0.0}, nand::AgingState{1000, 1.0},
          nand::AgingState{2000, 12.0}}) {
        chip.setAging(aging);
        for (std::uint32_t block = 1;
             block < chip.geometry().blocksPerChip; block += 3) {
            chip.eraseBlock(block);
            for (std::uint32_t layer = 0; layer < geom.layersPerBlock;
                 layer += 6) {
                double lo = 1e30, hi = 0.0;
                for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w) {
                    chip.programWl({block, layer, w},
                                   nand::ProgramCommand{}, tokens);
                    const double ber = chip.measureBerNorm(
                        {block, layer, w, 0});
                    lo = std::min(lo, ber);
                    hi = std::max(hi, ber);
                }
                deltaH.add(hi / lo);
            }
        }
    }
    std::cout << "  samples: " << deltaH.count()
              << "  mean DeltaH: " << metrics::format(deltaH.mean())
              << "  max DeltaH: " << metrics::format(deltaH.max())
              << "\n";

    // (d): tPROG of the WLs on each representative h-layer.
    std::cout << "\n-- Fig. 5(d): tPROG per WL (us) --\n";
    chip.setAging({0, 0.0});
    metrics::Table tprog({"h-layer", "WL1", "WL2", "WL3", "WL4"});
    chip.eraseBlock(2);
    for (const auto &row : layers) {
        std::vector<std::string> cells{row.name};
        for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w) {
            const auto r = chip.programWl({2, row.layer, w},
                                          nand::ProgramCommand{},
                                          tokens);
            cells.push_back(metrics::format(toMicroseconds(r.tProg), 1));
        }
        tprog.row(cells);
    }
    tprog.print(std::cout);

    metrics::PaperComparison cmp("Fig. 5 (intra-layer similarity)");
    cmp.add("DeltaH across layers/blocks/aging", "~1.00 (all)",
            metrics::format(deltaH.mean()) + " mean, " +
                metrics::format(deltaH.max()) + " max");
    cmp.add("max WL-to-WL BER difference", "< 3%",
            metrics::formatPercent(deltaH.max() - 1.0));
    cmp.add("tPROG within an h-layer", "identical", "see table (d)");
    cmp.print(std::cout);
    return 0;
}
