/**
 * @file
 * Simulator hot-path throughput harness (events per wall-clock second).
 *
 * Two measured paths, both written to the BENCH_perf.json sidecar:
 *
 *  - micro: the event queue alone — a fixed population of
 *    self-rescheduling actors with pseudo-random delays, no SSD model.
 *    Measures raw schedule/dispatch cost.
 *  - workload: the full request pipeline — prefilled device, cubeFTL,
 *    OLTP closed loop — events fired by the driver's measured run
 *    divided by the wall time of that run. This is the number the
 *    ROADMAP's "5-10x events/s" open item tracks, and what the CI
 *    perf-smoke job gates against bench/perf_baseline.json
 *    (tools/perf_gate.py).
 *
 * Wall-clock timing is inherently machine-dependent: compare numbers
 * only across runs on the same machine (the CI gate's 20% tolerance
 * absorbs runner noise; regenerate the baseline when the fleet
 * changes).
 *
 * Environment:
 *   CUBESSD_PERF_MICRO_EVENTS  micro event count   (default 4000000)
 *   CUBESSD_PERF_REQUESTS      workload requests   (default 200000)
 *
 * Options:
 *   --profile  self-profile the workload run and emit a per-subsystem
 *              "profile" breakdown into BENCH_perf.json. Do NOT gate a
 *              --profile run against a no-profile baseline — the scope
 *              overhead is part of the measured wall time.
 *   --force    overwrite BENCH_perf.json even when the existing file
 *              records a larger scale than this run (by default a
 *              smoke run refuses to clobber a scaled/full result).
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "bench/bench_util.h"
#include "src/prof/prof.h"

using namespace cubessd;

namespace {

double
wallSeconds(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t
envCount(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    const long long v = std::atoll(env);
    return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

struct PathResult
{
    std::uint64_t events = 0;
    double wallS = 0.0;

    double
    eventsPerSec() const
    {
        return wallS > 0.0 ? static_cast<double>(events) / wallS : 0.0;
    }

    double
    nsPerEvent() const
    {
        return events > 0
            ? wallS * 1e9 / static_cast<double>(events)
            : 0.0;
    }
};

void
writePath(metrics::JsonWriter &json, const char *key, const PathResult &r)
{
    json.key(key);
    json.beginObject();
    json.field("events", r.events);
    json.field("wall_s", r.wallS);
    json.field("events_per_s", r.eventsPerSec());
    json.field("ns_per_event", r.nsPerEvent());
    json.endObject();
}

void
printPath(const char *name, const PathResult &r)
{
    std::cout << "  " << name << ": " << r.events << " events in "
              << metrics::format(r.wallS, 3) << " s  ->  "
              << metrics::format(r.eventsPerSec() / 1e6, 2)
              << " M events/s (" << metrics::format(r.nsPerEvent(), 0)
              << " ns/event)\n";
}

/** Rank of a sidecar "scale" tag: bigger = more representative. */
int
scaleRank(const std::string &name)
{
    if (name == "smoke")
        return 0;
    if (name == "scaled")
        return 1;
    if (name == "full")
        return 2;
    return -1;  // unknown / absent: never blocks an overwrite
}

/** The "scale" string recorded in an existing sidecar ("" if none). */
std::string
recordedScale(const char *path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    const auto key = text.find("\"scale\"");
    if (key == std::string::npos)
        return "";
    const auto colon = text.find(':', key);
    if (colon == std::string::npos)
        return "";
    const auto open = text.find('"', colon);
    const auto close =
        open == std::string::npos ? open : text.find('"', open + 1);
    if (close == std::string::npos)
        return "";
    return text.substr(open + 1, close - open - 1);
}

/**
 * Micro path: a fixed population of typed self-rescheduling actors
 * with varying (deterministic) delays, exercising insert/dequeue and
 * the same-timestamp FIFO path without any model code — the same
 * pooled typed-event shape the device hot path uses. Best of three
 * repetitions (first warms the event pool and the branch predictors).
 */
struct MicroActor final : sim::EventHandler
{
    sim::EventQueue *queue = nullptr;
    std::uint64_t *remaining = nullptr;
    std::uint64_t state = 0;

    void
    onEvent(sim::EventKind, const sim::EventPayload &) override
    {
        if (*remaining == 0)
            return;
        --*remaining;
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // Delays 0..1023 ns: a mix of same-timestamp batches and
        // short hops across calendar buckets.
        queue->schedule((state >> 33) & 1023,
                        sim::EventKind::DriverTick, this);
    }
};

PathResult
microBench(std::uint64_t totalEvents)
{
    constexpr int kActors = 64;
    PathResult best;
    for (int rep = 0; rep < 3; ++rep) {
        sim::EventQueue queue;
        std::uint64_t remaining = totalEvents;
        MicroActor actors[kActors];
        for (int i = 0; i < kActors; ++i) {
            actors[i].queue = &queue;
            actors[i].remaining = &remaining;
            actors[i].state =
                0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(i);
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kActors; ++i)
            queue.schedule(static_cast<SimTime>(i),
                           sim::EventKind::DriverTick, &actors[i]);
        queue.run();
        const auto t1 = std::chrono::steady_clock::now();
        PathResult r;
        r.events = queue.fired();
        r.wallS = wallSeconds(t0, t1);
        if (best.events == 0 || r.eventsPerSec() > best.eventsPerSec())
            best = r;
    }
    return best;
}

/** Device-wide term-cache counter totals after a workload run. */
struct TermCacheTotals
{
    std::uint64_t wlHits = 0;
    std::uint64_t wlMisses = 0;
    std::uint64_t agingHits = 0;
    std::uint64_t agingMisses = 0;

    double
    wlHitRate() const
    {
        const std::uint64_t total = wlHits + wlMisses;
        return total ? static_cast<double>(wlHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double
    agingHitRate() const
    {
        const std::uint64_t total = agingHits + agingMisses;
        return total ? static_cast<double>(agingHits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Workload path: cubeFTL + OLTP closed loop on the scaled device,
 * prefilled. Only the measured run is timed (prefill excluded), so the
 * number reflects the steady-state request pipeline.
 */
PathResult
workloadBench(std::uint64_t requests, double *iopsOut,
              prof::ProfileData *profileOut, TermCacheTotals *cacheOut)
{
    ssd::Ssd dev(bench::ssdConfig(ssd::FtlKind::Cube, 42));
    workload::WorkloadSpec spec{};
    for (const auto &s : workload::allWorkloads())
        if (s.name == "OLTP")
            spec = s;
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 49);
    workload::Driver driver(dev, gen);
    driver.prefill(0.2);

    // Snapshot-delta around the timed window only, so the profile's
    // coverage fraction is computed against the same wall time.
    const prof::ProfileData profBefore =
        profileOut != nullptr ? prof::snapshot() : prof::ProfileData{};
    const std::uint64_t fired0 = dev.queue().fired();
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = driver.run(requests);
    const auto t1 = std::chrono::steady_clock::now();
    if (profileOut != nullptr)
        *profileOut = prof::snapshot().since(profBefore);

    PathResult r;
    r.events = dev.queue().fired() - fired0;
    r.wallS = wallSeconds(t0, t1);
    if (iopsOut != nullptr)
        *iopsOut = result.iops;
    if (cacheOut != nullptr) {
        for (std::uint32_t i = 0; i < dev.chipCount(); ++i) {
            const auto &c = dev.chip(i).termCache().counters();
            cacheOut->wlHits += c.wlHits;
            cacheOut->wlMisses += c.wlMisses;
            cacheOut->agingHits += c.agingHits;
            cacheOut->agingMisses += c.agingMisses;
        }
    }
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool profile = false;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--profile") == 0)
            profile = true;
        else if (std::strcmp(argv[i], "--force") == 0)
            force = true;
        else
            fatal("unknown option '%s' (perf_events accepts --profile "
                  "and --force)",
                  argv[i]);
    }

    // A committed BENCH_perf.json from a full-scale run must not be
    // silently replaced by a CI smoke run's numbers: refuse to
    // downgrade the recorded scale unless --force says so.
    const std::string existing = recordedScale("BENCH_perf.json");
    if (!force && scaleRank(existing) > scaleRank(bench::scaleName())) {
        std::cerr << "perf_events: BENCH_perf.json records a '"
                  << existing << "'-scale result; refusing to "
                  << "overwrite it with this '" << bench::scaleName()
                  << "'-scale run (pass --force to override)\n";
        return 1;
    }

    if (profile)
        prof::setEnabled(true);

    std::cout << "=== perf: simulator events/s (micro + workload) ===\n"
              << "(wall-clock throughput; machine-dependent — compare "
                 "against bench/perf_baseline.json from the same "
                 "machine)\n";

    const std::uint64_t microEvents =
        envCount("CUBESSD_PERF_MICRO_EVENTS", 4000000);
    const std::uint64_t requests =
        envCount("CUBESSD_PERF_REQUESTS", 200000);

    const PathResult micro = microBench(microEvents);
    printPath("micro    ", micro);

    // Only the workload run is attributed: the micro path exists to
    // measure the raw queue, and its profile is just sim.loop/sched.
    double iops = 0.0;
    prof::ProfileData profData;
    TermCacheTotals cache;
    const PathResult workload = workloadBench(
        requests, &iops, profile ? &profData : nullptr, &cache);
    printPath("workload ", workload);
    std::cout << "  workload iops: " << metrics::format(iops, 0) << "\n";
    std::cout << "  term cache: "
              << metrics::format(100.0 * cache.wlHitRate(), 1)
              << "% WL hit rate ("
              << cache.wlHits << " hits / " << cache.wlMisses
              << " misses), "
              << metrics::format(100.0 * cache.agingHitRate(), 1)
              << "% aging hit rate\n";

    if (profile) {
        std::cout << '\n';
        prof::report(std::cout, profData, workload.wallS * 1e9);
    }

    auto jsonOut = bench::openBenchJson("perf");
    metrics::JsonWriter json(jsonOut);
    json.beginObject();
    json.field("bench", "perf_events");
    json.field("scale", bench::scaleName());
    writePath(json, "micro", micro);
    writePath(json, "workload", workload);
    json.field("workload_requests", requests);
    json.field("workload_iops", iops);
    json.key("term_cache");
    json.beginObject();
    json.field("wl_hits", cache.wlHits);
    json.field("wl_misses", cache.wlMisses);
    json.field("wl_hit_rate", cache.wlHitRate());
    json.field("aging_hits", cache.agingHits);
    json.field("aging_misses", cache.agingMisses);
    json.field("aging_hit_rate", cache.agingHitRate());
    json.endObject();
    if (profile) {
        json.key("profile");
        prof::writeJson(json, profData, workload.wallS * 1e9);
    }
    json.endObject();
    jsonOut << '\n';
    return 0;
}
