/**
 * @file
 * Extension bench: multi-tenant QoS under WRR arbitration.
 *
 * Not a paper figure — the paper evaluates one workload at a time.
 * This bench puts the multi-tenant front end on the paper's device: a
 * latency-sensitive read-hot tenant (weight 3, 500 us SLO) shares the
 * SSD with a write-heavy noisy neighbour (weight 1, 2 ms SLO), both
 * paced open-loop at 80% of the device's calibrated closed-loop
 * capacity, on a mid-life device (2K P/E + 1-month retention).
 *
 * The interesting contrast is across FTLs: the victim tenant's tail
 * (p99/p99.9) and SLO violation count show how much of cubeFTL's
 * process-similarity win survives when demand does not politely slow
 * down — open-loop arrivals keep pressure on while pageFTL pays
 * retry/GC penalties, so the tail gap widens versus the closed-loop
 * figures (fig17/fig18).
 *
 * Output: one per-tenant table per FTL plus a BENCH_ext_multitenant
 * .json sidecar. Deterministic per seed (tenant streams, arrival
 * processes and arbitration all draw from fixed RNG streams).
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

constexpr double kLoad = 0.8;
const char *const kTenantList =
    "A:readhot:w=3:slo=500us,B:writeheavy:w=1:slo=2ms";

workload::MultiTenantResult
runTenants(ssd::FtlKind kind, std::uint64_t requests)
{
    ssd::SsdConfig config = bench::ssdConfig(kind, 42);
    config.hostQueueDepth = 0;  // the WRR arbiter owns the window

    std::vector<workload::TenantSpec> specs;
    const std::string err = workload::parseTenantList(kTenantList, &specs);
    if (!err.empty())
        fatal("ext_multitenant: %s", err.c_str());

    workload::MultiTenantOptions options;
    options.openLoop = true;
    options.load = kLoad;
    options.calibrationRequests = bench::benchRequests(4000);

    ssd::Ssd dev(config);
    workload::MultiTenantDriver driver(dev, std::move(specs), options);
    const nand::AgingState aging{2000, 1.0};
    dev.setAging({aging.peCycles, 0.0});
    driver.prefill(0.3);
    dev.setAging(aging);
    return driver.run(requests);
}

double
pctUs(const metrics::LatencyHistogram &h, double p)
{
    return h.percentile(p) / 1000.0;
}

}  // namespace

int
main()
{
    std::cout << "=== ext: multi-tenant QoS under WRR arbitration ===\n"
              << (bench::fullScale()
                      ? "(full-scale 32 GB configuration)\n"
                      : "(scaled device; set CUBESSD_FULL=1 for the "
                        "paper's 32 GB configuration)\n");

    const std::uint64_t requests = bench::benchRequests(30000);
    std::cout << "tenants: " << kTenantList << "\n"
              << "pacing: open loop at " << kLoad * 100.0
              << "% of calibrated closed-loop capacity, "
              << bench::agingName({2000, 1.0}) << "\n";

    auto jsonOut = bench::openBenchJson("ext_multitenant");
    metrics::JsonWriter json(jsonOut);
    json.beginObject();
    json.field("figure", "ext_multitenant");
    json.field("scale", bench::scaleName());
    json.field("requests", requests);
    json.field("tenant_list", kTenantList);
    json.field("load", kLoad);
    json.key("ftls");
    json.beginArray();

    for (const auto kind : {ssd::FtlKind::Page, ssd::FtlKind::Cube}) {
        const auto result = runTenants(kind, requests);

        std::cout << "\n-- " << ssd::ftlKindName(kind)
                  << " (calibrated "
                  << metrics::format(result.calibratedIops, 0)
                  << " IOPS, offered "
                  << metrics::format(result.calibratedIops * kLoad, 0)
                  << ") --\n";
        metrics::Table table({"tenant", "weight", "IOPS",
                              "rd p50 (us)", "rd p99 (us)",
                              "rd p99.9 (us)", "wr p99 (us)", "SLO",
                              "violations"});
        for (const auto &tenant : result.tenants) {
            const auto &read = tenant.metrics.latency(ssd::IoType::Read);
            const auto &write =
                tenant.metrics.latency(ssd::IoType::Write);
            table.row(
                {tenant.name, std::to_string(tenant.weight),
                 metrics::format(tenant.iops, 0),
                 metrics::format(pctUs(read, 50.0), 1),
                 metrics::format(pctUs(read, 99.0), 1),
                 metrics::format(pctUs(read, 99.9), 1),
                 metrics::format(pctUs(write, 99.0), 1),
                 metrics::format(
                     static_cast<double>(tenant.sloTarget) / 1000.0, 0) +
                     " us",
                 std::to_string(tenant.sloViolations) + " (" +
                     metrics::format(
                         tenant.sloViolationFraction() * 100.0, 2) +
                     "%)"});
        }
        table.print(std::cout);

        json.beginObject();
        json.field("ftl", ssd::ftlKindName(kind));
        json.field("calibrated_iops", result.calibratedIops);
        json.field("aggregate_iops", result.iops);
        json.field("elapsed_s", toSeconds(result.elapsed));
        json.key("tenants");
        json.beginArray();
        for (const auto &tenant : result.tenants) {
            const auto &read = tenant.metrics.latency(ssd::IoType::Read);
            const auto &write =
                tenant.metrics.latency(ssd::IoType::Write);
            json.beginObject();
            json.field("name", tenant.name);
            json.field("weight",
                       static_cast<std::uint64_t>(tenant.weight));
            json.field("offered_rate", tenant.offeredRate);
            json.field("iops", tenant.iops);
            json.field("read_p50_us", pctUs(read, 50.0));
            json.field("read_p99_us", pctUs(read, 99.0));
            json.field("read_p999_us", pctUs(read, 99.9));
            json.field("write_p99_us", pctUs(write, 99.0));
            json.field("slo_target_ns", tenant.sloTarget);
            json.field("slo_violations", tenant.sloViolations);
            json.field("slo_violation_fraction",
                       tenant.sloViolationFraction());
            json.field("dispatched", tenant.arbitration.dispatched);
            json.field("max_backlog", tenant.arbitration.maxBacklog);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.endArray();
    json.endObject();
    jsonOut << '\n';
    std::cout << "\nreadhot's tail under the noisy neighbour is the "
                 "QoS headline: compare rd p99.9 and violation rates "
                 "across FTLs\n";
    return 0;
}
