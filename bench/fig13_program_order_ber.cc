/**
 * @file
 * Reproduces paper Fig. 13: reliability equivalence of the three
 * program sequences (horizontal-first, vertical-first, mixed/MOS).
 *
 * Whole blocks are programmed in each order and the calibrated BER of
 * every WL is measured; the paper reports the three sequences within
 * 3% of each other (residual differences are RTN noise), because SL
 * transistors isolate the WLs of one h-layer.
 */

#include <iostream>

#include "bench/bench_util.h"
#include "src/ftl/program_order.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Fig. 13: program-order BER equivalence ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &geom = chip.geometry();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);
    // Measure at moderate wear so BER values are well above the
    // measurement-noise floor.
    chip.setAging({1000, 1.0});

    const ftl::ProgramOrderKind kinds[] = {
        ftl::ProgramOrderKind::HorizontalFirst,
        ftl::ProgramOrderKind::VerticalFirst,
        ftl::ProgramOrderKind::Mixed};

    double reference = 0.0;
    metrics::Table table(
        {"program order", "mean normalized BER", "vs horizontal"});
    std::vector<double> means;
    for (const auto kind : kinds) {
        RunningStat ber;
        // Average over several blocks per order.
        for (std::uint32_t block = 0; block < 6; ++block) {
            chip.eraseBlock(block);
            for (const auto &wl :
                 ftl::programSequence(kind, geom, block)) {
                chip.programWl(wl, nand::ProgramCommand{}, tokens);
            }
            for (std::uint32_t l = 0; l < geom.layersPerBlock;
                 l += 3) {
                for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w)
                    ber.add(chip.measureBerNorm({block, l, w, 0}));
            }
        }
        means.push_back(ber.mean());
        if (kind == ftl::ProgramOrderKind::HorizontalFirst)
            reference = ber.mean();
        table.row({ftl::programOrderName(kind),
                   metrics::format(ber.mean()),
                   metrics::formatPercent(ber.mean() / reference - 1.0,
                                          2)});
    }
    table.print(std::cout);

    double maxDiff = 0.0;
    for (const double m : means)
        maxDiff = std::max(maxDiff, std::abs(m / reference - 1.0));

    metrics::PaperComparison cmp("Fig. 13 (program-order reliability)");
    cmp.add("max BER difference across orders", "< 3%",
            metrics::formatPercent(maxDiff, 2));
    cmp.add("MOS is reliability-neutral", "yes",
            maxDiff < 0.03 ? "yes" : "NO");
    cmp.print(std::cout);
    return 0;
}
