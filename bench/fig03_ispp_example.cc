/**
 * @file
 * Reproduces paper Fig. 3: the ISPP micro-operation schedule for
 * 2-bit MLC NAND.
 *
 * The paper's worked example (Sec. 2.2): P1-programmed cells need
 * ISPP loops 1-3 with three VFYs each (k_1..3 = 3, since P2/P3 cells
 * must also be checked every loop), P2 cells need loops 4-5 with two
 * VFYs each, P3 cells loops 6-7 with one VFY each, so
 *
 *   tPROG = sum_i (tPGM + k_i * tVFY)            (Eq. 1)
 *
 * with k = {3,3,3,2,2,1,1}. We configure the ISPP engine for MLC
 * (3 program states) with targets that give the same loop windows and
 * check the schedule, plus the skip-plan version of the same WL
 * (Fig. 7's step 3).
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Fig. 3: ISPP schedule, 2-bit MLC example ===\n";

    // MLC configuration matched to the paper's example: three states
    // whose loop windows are [1..3], [4..5], [6..7].
    nand::IsppConfig config;
    config.programStates = 3;
    config.windowMv = 1050;
    config.deltaVMv = 150;
    config.firstStateOffsetMv = 350;
    config.stateSpacingMv = 300;
    config.cellSigmaMv = 30.0;
    nand::ErrorModel errors;
    nand::IsppEngine engine(config, errors);
    Rng rng(1);

    const auto loops =
        engine.stateLoops(0.0, 1.0, nand::AgingState{0, 0.0}, 0);
    std::cout << "\n-- per-state ISPP loop windows --\n";
    metrics::Table windows({"state", "L_min", "L_max"});
    for (int s = 0; s < config.programStates; ++s) {
        windows.row({"P" + std::to_string(s + 1),
                     std::to_string(loops[s].lMin),
                     std::to_string(loops[s].lMax)});
    }
    windows.print(std::cout);

    const auto schedule = engine.defaultVerifySchedule(loops);
    std::cout << "\n-- default verify schedule k_i (Fig. 3(b)) --\n  ";
    for (const int k : schedule)
        std::cout << k << " ";
    std::cout << "\n";

    // Eq. (1) check against the executed program.
    const auto result = engine.program(1.0, 0.0, {0, 0.0}, 1.0,
                                       nand::ProgramCommand{}, rng);
    int verifySum = 0;
    for (const int k : schedule)
        verifySum += k;
    std::cout << "\n  executed: " << result.loopsUsed << " loops, "
              << result.verifiesDone << " VFYs, tPROG = "
              << metrics::format(toMicroseconds(result.tProg), 1)
              << " us\n  Eq. (1):  " << schedule.size() << " loops, "
              << verifySum << " VFYs\n";

    // The follower version (Fig. 7): skip VFYs before each state's
    // observed L_min.
    nand::ProgramCommand cmd;
    cmd.useSkipPlan = true;
    cmd.skipVfy = nand::IsppEngine::safeSkipPlan(result.loops);
    const auto follower = engine.program(1.0, 0.0, {0, 0.0}, 1.0, cmd,
                                         rng);
    std::cout << "  with the safe skip plan: " << follower.verifiesDone
              << " VFYs (" << follower.verifiesSkipped
              << " skipped), tPROG = "
              << metrics::format(toMicroseconds(follower.tProg), 1)
              << " us\n";

    const std::vector<int> paperSchedule{3, 3, 3, 2, 2, 1, 1};
    const bool scheduleMatches = std::equal(
        schedule.begin(), schedule.end(), paperSchedule.begin(),
        paperSchedule.end());
    metrics::PaperComparison cmp("Fig. 3 (MLC ISPP example)");
    cmp.add("verify schedule k_i", "3 3 3 2 2 1 1",
            scheduleMatches ? "3 3 3 2 2 1 1 (exact match)"
                            : "differs (see above)");
    cmp.add("tPROG follows Eq. (1)", "by definition",
            static_cast<std::size_t>(result.loopsUsed) ==
                        schedule.size() &&
                    result.verifiesDone == verifySum
                ? "loops and VFY counts match exactly"
                : "MISMATCH");
    cmp.print(std::cout);
    return 0;
}
