/**
 * @file
 * Reproduces paper Fig. 17: normalized IOPS of pageFTL, vertFTL, and
 * cubeFTL under the six workloads at three aging states:
 *
 *  (a) fresh (0K P/E, no retention; no read retries),
 *  (b) 2K P/E + 1-month retention (~30% of reads retry),
 *  (c) 2K P/E + 1-year retention (~90%+ of reads retry).
 *
 * Paper headlines: cubeFTL up to +48% IOPS vs pageFTL (OLTP, fresh,
 * thanks to the WAM) and up to +36% vs vertFTL; vertFTL's gains are
 * insignificant (~8% tPROG cut); aged-state gains grow further as the
 * ORT removes the read-retry tax.
 *
 * IOPS values are means over three seeds (burst pacing is
 * stochastic). Runs use the scaled device unless CUBESSD_FULL=1.
 *
 * The full grid (3 agings x 6 workloads x 3 FTLs x seeds) is
 * embarrassingly parallel: every cell owns its RNG and SSD state, so
 * `--jobs N` (or CUBESSD_JOBS=N) farms cells onto worker threads.
 * Results are merged on the main thread in cell order — stdout and
 * the JSON sidecar are bit-identical for any job count.
 */

#include <exception>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

int
runBench()
{
    std::cout << "=== Fig. 17: normalized IOPS under six workloads ===\n"
              << (bench::fullScale()
                      ? "(full-scale 32 GB configuration)\n"
                      : "(scaled device; set CUBESSD_FULL=1 for the "
                        "paper's 32 GB configuration)\n");

    const std::uint64_t requests = bench::benchRequests(30000);
    const nand::AgingState agings[] = {
        {0, 0.0}, {2000, 1.0}, {2000, 12.0}};
    const ssd::FtlKind kinds[] = {
        ssd::FtlKind::Page, ssd::FtlKind::Vert, ssd::FtlKind::Cube};
    const auto workloads = workload::allWorkloads();
    const auto seeds = bench::benchSeeds();

    // Build the whole grid, aging-major / workload / FTL / seed —
    // the exact nesting the sequential loops below read back, so the
    // merged means are computed in the same floating-point order the
    // strictly sequential bench always used.
    std::vector<workload::SweepCell> cells;
    for (const auto &aging : agings)
        for (const auto &spec : workloads)
            for (const auto kind : kinds)
                for (const auto seed : seeds)
                    cells.push_back(bench::makeCell(kind, spec, aging,
                                                    seed, requests));
    const auto results = bench::runSweep(cells);

    // Deterministic merge: walk results in cell order on this (the
    // main) thread; the seed-mean of each (aging, workload, FTL) cell
    // group reduces in seed order.
    std::size_t next = 0;
    auto meanIops = [&]() {
        double sum = 0.0;
        for (std::size_t s = 0; s < seeds.size(); ++s)
            sum += results[next++].run.iops;
        return sum / static_cast<double>(seeds.size());
    };

    double bestCubeGainFresh = 0.0;
    std::string bestWorkloadFresh;
    double bestCubeVsVertFresh = 0.0;
    double proxyGainEol = 0.0, bestGainEol = 0.0;
    std::string bestWorkloadEol;

    // Machine-readable sidecar for CI artifacts; stdout is unchanged.
    auto jsonOut = bench::openBenchJson("fig17_iops");
    metrics::JsonWriter json(jsonOut);
    json.beginObject();
    json.field("figure", "fig17_iops");
    json.field("scale", bench::scaleName());
    json.field("requests", requests);
    json.key("agings");
    json.beginArray();

    for (const auto &aging : agings) {
        std::cout << "\n-- " << bench::agingName(aging) << " --\n";
        json.beginObject();
        json.field("name", bench::agingName(aging));
        json.field("pe_cycles",
                   static_cast<std::uint64_t>(aging.peCycles));
        json.field("retention_months", aging.retentionMonths);
        json.key("workloads");
        json.beginArray();
        metrics::Table table({"workload", "pageFTL (IOPS)", "vertFTL",
                              "cubeFTL", "vert/page", "cube/page"});
        for (const auto &spec : workloads) {
            const double page = meanIops();
            const double vert = meanIops();
            const double cube = meanIops();
            table.row({spec.name, metrics::format(page, 0),
                       metrics::format(vert, 0),
                       metrics::format(cube, 0),
                       metrics::format(vert / page, 2),
                       metrics::format(cube / page, 2)});
            json.beginObject();
            json.field("name", spec.name);
            json.field("page_iops", page);
            json.field("vert_iops", vert);
            json.field("cube_iops", cube);
            json.endObject();

            const double gain = cube / page - 1.0;
            if (aging.peCycles == 0 && gain > bestCubeGainFresh) {
                bestCubeGainFresh = gain;
                bestWorkloadFresh = spec.name;
                bestCubeVsVertFresh = cube / vert - 1.0;
            }
            if (aging.retentionMonths > 6.0) {
                if (spec.name == "Proxy")
                    proxyGainEol = gain;
                if (gain > bestGainEol) {
                    bestGainEol = gain;
                    bestWorkloadEol = spec.name;
                }
            }
        }
        json.endArray();
        json.endObject();
        table.print(std::cout);
    }
    json.endArray();
    json.endObject();
    jsonOut << '\n';

    metrics::PaperComparison cmp("Fig. 17 (IOPS)");
    cmp.add("max cubeFTL gain vs pageFTL, fresh",
            "up to 48% (OLTP)",
            metrics::formatPercent(bestCubeGainFresh) + " (" +
                bestWorkloadFresh + ")");
    cmp.add("max cubeFTL gain vs vertFTL, fresh", "up to 36%",
            metrics::formatPercent(bestCubeVsVertFresh));
    cmp.add("vertFTL gains are insignificant", "~8% tPROG cut only",
            "see vert/page columns");
    cmp.add("gains grow at aged states", "yes (Figs. 17(b,c))",
            "largest 1-year gain: " +
                metrics::formatPercent(bestGainEol) + " (" +
                bestWorkloadEol + ")");
    cmp.add("read-heavy workloads gain most at 1 year",
            "Proxy is the largest gainer",
            "Proxy: " + metrics::formatPercent(proxyGainEol) +
                "; see table (c)");
    cmp.print(std::cout);
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchOptions(argc, argv);
    try {
        return runBench();
    } catch (const std::exception &e) {
        // Worker errors propagate here (annotated with the failing
        // cell) instead of exit()ing mid-sweep; the sidecar is only
        // written after a fully successful merge.
        std::cerr << "fig17_iops: " << e.what() << '\n';
        return 1;
    }
}
