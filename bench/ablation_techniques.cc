/**
 * @file
 * Ablation study (extension beyond the paper's figures): how much
 * does each of cubeFTL's four mechanisms contribute?
 *
 * Runs the write-intensive OLTP workload (fresh: program-path
 * techniques matter) and the read-heavy Web workload at end-of-life
 * retention (read-path techniques matter), adding one technique at a
 * time:
 *
 *   baseline     = pageFTL
 *   +vfy         = cube with only VFY skipping
 *   +window      = + V_Start/V_Final adjustment
 *   +ort         = + read-reference reuse
 *   +wam (=cube) = + adaptive WL allocation
 *
 * DESIGN.md lists this as the design-choice ablation for Sec. 4/5.
 */

#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

double
run(const workload::WorkloadSpec &spec, const nand::AgingState &aging,
    ssd::FtlKind kind, const ssd::CubeFeatures &features)
{
    double sum = 0.0;
    for (std::uint64_t seed : {42ull, 137ull, 999ull}) {
        auto config = bench::ssdConfig(kind, seed);
        config.cubeFeatures = features;
        ssd::Ssd dev(config);
        workload::WorkloadGenerator gen(spec, dev.logicalPages(),
                                        seed + 7);
        workload::Driver driver(dev, gen);
        dev.setAging({aging.peCycles, 0.0});
        driver.prefill(0.2);
        dev.setAging(aging);
        sum += driver.run(30000).iops;
    }
    return sum / 3.0;
}

}  // namespace

int
main()
{
    std::cout << "=== Ablation: per-technique contribution ===\n";

    struct Step
    {
        const char *name;
        ssd::FtlKind kind;
        ssd::CubeFeatures features;
    };
    const Step steps[] = {
        {"pageFTL (baseline)", ssd::FtlKind::Page, {}},
        {"+ VFY skipping", ssd::FtlKind::CubeMinus,
         {true, false, false, false}},
        {"+ window adjustment", ssd::FtlKind::CubeMinus,
         {true, true, false, false}},
        {"+ ORT (read reuse)", ssd::FtlKind::CubeMinus,
         {true, true, true, false}},
        {"+ WAM (= cubeFTL)", ssd::FtlKind::Cube,
         {true, true, true, true}},
    };

    struct Scenario
    {
        const char *name;
        workload::WorkloadSpec spec;
        nand::AgingState aging;
    };
    const Scenario scenarios[] = {
        {"OLTP @ fresh (program path)", workload::oltp(), {0, 0.0}},
        {"Web @ 2K P/E + 1 yr (read path)", workload::web(),
         {2000, 12.0}},
    };

    for (const auto &scenario : scenarios) {
        std::cout << "\n-- " << scenario.name << " --\n";
        metrics::Table table({"configuration", "IOPS", "vs baseline",
                              "step gain"});
        double baseline = 0.0, prev = 0.0;
        for (const auto &step : steps) {
            const double iops = run(scenario.spec, scenario.aging,
                                    step.kind, step.features);
            if (baseline == 0.0)
                baseline = prev = iops;
            table.row({step.name, metrics::format(iops, 0),
                       metrics::formatPercent(iops / baseline - 1.0),
                       metrics::formatPercent(iops / prev - 1.0)});
            prev = iops;
        }
        table.print(std::cout);
    }

    std::cout << "\nReading: the program-path techniques (VFY skip + "
                 "window) carry the fresh-state gains; the ORT carries "
                 "the aged-state gains; the WAM adds burst-absorption "
                 "on top (cf. Figs. 17/18).\n";
    return 0;
}
