/**
 * @file
 * Extension (paper Sec. 8, future work): deterministic latency from
 * horizontal similarity.
 *
 * The paper argues that PS "guarantees accurate I/O response times"
 * and could underpin SSDs with highly deterministic latency (a cure
 * for the long-tail problem [12, 42]). The dominant source of read
 * jitter in an aged SSD is the retry count; this bench quantifies how
 * predictable device latency becomes once the PS-aware scheme pins
 * NumRetry to zero on every known h-layer:
 *
 *  - program path: follower tPROG predicted from the h-layer leader;
 *  - read path: latency spread (CV, p99/p50) with and without
 *    h-layer reference reuse at end of life.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench/bench_util.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Extension: latency determinism from PS ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &geom = chip.geometry();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);

    // --- program path: leader predicts follower tPROG exactly. ---
    chip.setAging({2000, 6.0});
    RunningStat leaderErr;
    for (std::uint32_t block = 0; block < 6; ++block) {
        chip.eraseBlock(block);
        for (std::uint32_t l = 0; l < geom.layersPerBlock; l += 5) {
            double leaderT = 0.0;
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w) {
                const auto r = chip.programWl(
                    {block, l, w}, nand::ProgramCommand{}, tokens);
                if (w == 0)
                    leaderT = toMicroseconds(r.tProg);
                else
                    leaderErr.add(
                        std::abs(toMicroseconds(r.tProg) - leaderT) /
                        toMicroseconds(r.tProg));
            }
        }
    }
    std::cout << "\n-- program path (2K P/E + 6 months) --\n"
              << "  follower tPROG predicted from its leader: mean "
                 "error "
              << metrics::formatPercent(leaderErr.mean(), 2) << ", max "
              << metrics::formatPercent(leaderErr.max(), 2) << "\n";

    // --- read path: latency spread with/without PS reuse at EOL. ---
    chip.setAging({2000, 12.0});
    LatencyRecorder unaware, warm;
    std::map<std::uint64_t, MilliVolt> ort;
    for (std::uint32_t block = 6; block < geom.blocksPerChip;
         block += 2) {
        chip.eraseBlock(block);
        for (std::uint32_t l = 0; l < geom.layersPerBlock; l += 4) {
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w)
                chip.programWl({block, l, w}, nand::ProgramCommand{},
                               tokens);
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w) {
                const auto plain = chip.readPage({block, l, w, 0}, 0);
                unaware.add(toMicroseconds(plain.tRead));
                const std::uint64_t key =
                    static_cast<std::uint64_t>(block) * 64 + l;
                const auto it = ort.find(key);
                if (it != ort.end()) {
                    // A *warm* PS-aware read: the h-layer's references
                    // are known. This is the steady-state read of a
                    // PS-aware SSD.
                    const auto smart = chip.readPage(
                        {block, l, w, 0}, it->second);
                    warm.add(toMicroseconds(smart.tRead));
                }
                const auto learn = chip.readPage({block, l, w, 0},
                                                 it == ort.end()
                                                     ? 0
                                                     : it->second);
                if (!learn.uncorrectable)
                    ort[key] = learn.successShiftMv;
            }
        }
    }

    metrics::Table table({"read scheme", "p50 (us)", "p99 (us)",
                          "p99 - p50 (us)"});
    for (const bool ps : {false, true}) {
        auto &rec = ps ? warm : unaware;
        table.row({ps ? "PS-aware, warm h-layer" : "PS-unaware",
                   metrics::format(rec.percentile(50), 0),
                   metrics::format(rec.percentile(99), 0),
                   metrics::format(rec.percentile(99) -
                                       rec.percentile(50),
                                   0)});
    }
    std::cout << "\n-- read path (2K P/E + 1 year) --\n";
    table.print(std::cout);

    metrics::PaperComparison cmp(
        "Sec. 8 extension (deterministic latency)");
    cmp.add("follower tPROG predictable from leader",
            "\"PS guarantees accurate I/O response times\"",
            "mean error " +
                metrics::formatPercent(leaderErr.mean(), 2));
    cmp.add("read-latency jitter p99 - p50 at end of life",
            "long-tail cure proposed",
            metrics::format(unaware.percentile(99) -
                                unaware.percentile(50),
                            0) +
                " us PS-unaware vs " +
                metrics::format(warm.percentile(99) -
                                    warm.percentile(50),
                                0) +
                " us PS-aware (warm)");
    cmp.print(std::cout);
    return 0;
}
