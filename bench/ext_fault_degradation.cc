/**
 * @file
 * Extension bench: graceful degradation under NAND fault injection.
 *
 * Not a paper figure — the paper's evaluation assumes fault-free
 * media. This bench exercises the failure domain the Status API adds:
 * seeded program/erase failures scaled by wear and h-layer process
 * quality, plus an uncorrectable-read ceiling on the normalized BER.
 *
 * Part 1 sweeps the per-WL program-failure base probability and
 * reports throughput and latency alongside the failure counters
 * (retired blocks, relocations, flush replays, uncorrectable reads)
 * at a mid-life aging state. The headline: the device keeps serving
 * I/O while blocks retire, paying with replay latency, until the
 * spare pool runs out.
 *
 * Part 2 drives the fault rate high enough to exhaust the spare
 * blocks: the device transitions to read-only mode and completes new
 * writes with Status::ReadOnly instead of asserting — the run
 * finishes with zero crashes by construction.
 *
 * Failure counts are deterministic per seed (the injector draws from
 * its own RNG stream); with injection disabled the run is bit-for-bit
 * the baseline.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

std::string
formatRate(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", rate);
    return buf;
}

struct DegradationResult
{
    workload::RunResult run;
    ftl::FtlStats stats;
    bool readOnly = false;
};

DegradationResult
runWithFaults(const nand::FaultParams &faults,
              const workload::WorkloadSpec &spec,
              const nand::AgingState &aging, std::uint64_t requests)
{
    ssd::SsdConfig config = bench::ssdConfig(ssd::FtlKind::Cube, 42);
    config.chip.faults = faults;
    ssd::Ssd dev(config);
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 42 + 7);
    workload::Driver driver(dev, gen);
    dev.setAging({aging.peCycles, 0.0});
    driver.prefill(0.2);
    dev.setAging(aging);
    DegradationResult out;
    out.run = driver.run(requests);
    out.stats = dev.ftl().stats();
    out.readOnly = dev.ftl().readOnly();
    dev.ftl().checkConsistency();
    return out;
}

}  // namespace

int
main()
{
    std::cout << "=== ext: graceful degradation under fault injection "
                 "===\n"
              << (bench::fullScale()
                      ? "(full-scale 32 GB configuration)\n"
                      : "(scaled device; set CUBESSD_FULL=1 for the "
                        "paper's 32 GB configuration)\n");

    const std::uint64_t requests = bench::benchRequests(20000);
    const nand::AgingState aging{2000, 1.0};
    const auto spec = workload::allWorkloads()[3];  // OLTP

    auto jsonOut = bench::openBenchJson("ext_fault_degradation");
    metrics::JsonWriter json(jsonOut);
    json.beginObject();
    json.field("figure", "ext_fault_degradation");
    json.field("scale", bench::scaleName());
    json.field("requests", requests);
    json.field("workload", spec.name);

    // -- Part 1: program-failure rate sweep ---------------------------
    std::cout << "\n-- fault-rate sweep (" << spec.name << ", "
              << bench::agingName(aging) << ") --\n";
    // Spread so the scaled device (~13 spare blocks per chip) walks
    // from fault-free through isolated retirements into read-only.
    const double rates[] = {0.0, 2e-6, 1e-5, 5e-5};

    json.key("sweep");
    json.beginArray();
    metrics::Table table({"program fail base", "IOPS", "write p99 (ms)",
                          "retired", "relocations", "replays",
                          "uncorrectable", "failed reqs", "read-only"});
    for (const double rate : rates) {
        nand::FaultParams faults;
        faults.enabled = rate > 0.0;
        faults.programFailBase = rate;
        faults.eraseFailBase = rate / 2.0;
        faults.uncorrectableNormLimit = 25.0;
        const auto r = runWithFaults(faults, spec, aging, requests);
        table.row({formatRate(rate),
                   metrics::format(r.run.iops, 0),
                   metrics::format(
                       r.run.writeLatencyUs.percentile(99.0) / 1000.0,
                       3),
                   std::to_string(r.stats.retiredBlocks),
                   std::to_string(r.stats.badBlockRelocations),
                   std::to_string(r.stats.flushReplays),
                   std::to_string(r.stats.uncorrectableReads),
                   std::to_string(r.run.failedRequests()),
                   r.readOnly ? "yes" : "no"});
        json.beginObject();
        json.field("program_fail_base", rate);
        json.field("iops", r.run.iops);
        json.field("write_p99_us",
                   r.run.writeLatencyUs.percentile(99.0));
        json.field("retired_blocks", r.stats.retiredBlocks);
        json.field("bad_block_relocations",
                   r.stats.badBlockRelocations);
        json.field("flush_replays", r.stats.flushReplays);
        json.field("uncorrectable_reads", r.stats.uncorrectableReads);
        json.field("failed_requests", r.run.failedRequests());
        json.field("read_only", r.readOnly);
        json.endObject();
    }
    json.endArray();
    table.print(std::cout);

    // -- Part 2: spare exhaustion -> read-only mode -------------------
    std::cout << "\n-- spare exhaustion (program fail base 1e-2) --\n";
    nand::FaultParams heavy;
    heavy.enabled = true;
    heavy.programFailBase = 1e-2;
    heavy.eraseFailBase = 5e-3;
    heavy.uncorrectableNormLimit = 25.0;
    const auto r = runWithFaults(heavy, spec, aging, requests);
    const auto &counts = r.run.statusCounts;
    metrics::Table exhaust({"metric", "value"});
    exhaust.row({"completed requests",
                 std::to_string(r.run.completedRequests)});
    exhaust.row({"read-only mode", r.readOnly ? "yes" : "no"});
    exhaust.row({"retired blocks",
                 std::to_string(r.stats.retiredBlocks)});
    exhaust.row({"ReadOnly completions",
                 std::to_string(counts[static_cast<std::size_t>(
                     ssd::Status::ReadOnly)])});
    exhaust.row({"Uncorrectable completions",
                 std::to_string(counts[static_cast<std::size_t>(
                     ssd::Status::Uncorrectable)])});
    exhaust.row({"Ok completions",
                 std::to_string(counts[static_cast<std::size_t>(
                     ssd::Status::Ok)])});
    exhaust.print(std::cout);
    std::cout << "all requests completed with a Status — no asserts, "
                 "no silent failures\n";

    json.key("exhaustion");
    json.beginObject();
    json.field("program_fail_base", heavy.programFailBase);
    json.field("completed", r.run.completedRequests);
    json.field("read_only", r.readOnly);
    json.field("retired_blocks", r.stats.retiredBlocks);
    json.field("read_only_completions",
               counts[static_cast<std::size_t>(ssd::Status::ReadOnly)]);
    json.field("ok_completions",
               counts[static_cast<std::size_t>(ssd::Status::Ok)]);
    json.endObject();

    json.endObject();
    jsonOut << '\n';
    return 0;
}
