/**
 * @file
 * Reproduces paper Fig. 11: driving the window adjustment from the
 * monitored BER_EP1.
 *
 *  (a) BER_EP1 tracks the WL's total retention BER across layers,
 *      blocks, and aging conditions (the health-proxy correlation the
 *      OPM relies on);
 *  (b) (V_Final - V_Start) window shrink vs the BER cost and the
 *      resulting tPROG reduction. The paper's worked example: a spare
 *      margin of 1.7 maps to a 320 mV adjustment and a 19.7% tPROG
 *      cut.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Fig. 11: BER_EP1-driven window adjustment ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &geom = chip.geometry();
    const auto &errors = chip.errors();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);

    // (a) correlation of monitored BER_EP1 with measured total BER.
    std::cout << "\n-- Fig. 11(a): BER_EP1 vs retention BER --\n";
    RunningStat ratio;
    double sxy = 0, sxx = 0, syy = 0, sx = 0, sy = 0;
    std::size_t n = 0;
    for (const auto &aging :
         {nand::AgingState{0, 0.0}, nand::AgingState{1000, 1.0},
          nand::AgingState{2000, 6.0}}) {
        chip.setAging(aging);
        for (std::uint32_t block = 0; block < geom.blocksPerChip;
             block += 5) {
            chip.eraseBlock(block);
            for (std::uint32_t l = 0; l < geom.layersPerBlock;
                 l += 7) {
                const auto r = chip.programWl({block, l, 0},
                                              nand::ProgramCommand{},
                                              tokens);
                const double total =
                    chip.measureBerNorm({block, l, 0, 0});
                ratio.add(r.berEp1Norm / total);
                sx += r.berEp1Norm;
                sy += total;
                sxy += r.berEp1Norm * total;
                sxx += r.berEp1Norm * r.berEp1Norm;
                syy += total * total;
                ++n;
            }
        }
    }
    const double num = static_cast<double>(n) * sxy - sx * sy;
    const double den =
        std::sqrt((static_cast<double>(n) * sxx - sx * sx) *
                  (static_cast<double>(n) * syy - sy * sy));
    const double corr = den > 0 ? num / den : 0.0;
    std::cout << "  samples: " << n
              << "  BER_EP1 / total BER: mean "
              << metrics::format(ratio.mean())
              << " (model ep1Fraction = "
              << metrics::format(errors.params().ep1Fraction) << ")\n"
              << "  Pearson correlation: " << metrics::format(corr)
              << "\n";

    // (b) window shrink -> BER multiplier and tPROG reduction.
    std::cout << "\n-- Fig. 11(b): window adjustment vs BER and "
                 "tPROG --\n";
    metrics::Table table({"shrink (mV)", "BER multiplier",
                          "tPROG (us)", "tPROG cut"});
    chip.setAging({0, 0.0});
    const std::uint32_t layer = 24;
    double cutAt320 = 0.0;
    for (MilliVolt shrink : {0, 80, 160, 240, 320}) {
        chip.eraseBlock(1);
        const auto ref = chip.programWl({1, layer, 0},
                                        nand::ProgramCommand{},
                                        tokens);
        nand::ProgramCommand cmd;
        cmd.vStartAdjMv = static_cast<MilliVolt>(shrink * 6 / 10);
        cmd.vFinalAdjMv = shrink - cmd.vStartAdjMv;
        const auto r = chip.programWl({1, layer, 1}, cmd, tokens);
        const double cut = 1.0 - static_cast<double>(r.tProg) /
                                     static_cast<double>(ref.tProg);
        if (shrink == 320)
            cutAt320 = cut;
        table.row({std::to_string(shrink),
                   metrics::format(errors.windowShrinkMultiplier(
                       static_cast<double>(shrink))),
                   metrics::format(toMicroseconds(r.tProg), 1),
                   metrics::formatPercent(cut)});
    }
    table.print(std::cout);

    metrics::PaperComparison cmp("Fig. 11 (BER_EP1-driven margins)");
    cmp.add("BER_EP1 predicts total BER", "strong correlation",
            "r = " + metrics::format(corr));
    cmp.add("tPROG cut at a 320 mV adjustment", "19.7%",
            metrics::formatPercent(cutAt320),
            "window-shrink portion only");
    cmp.print(std::cout);
    return 0;
}
