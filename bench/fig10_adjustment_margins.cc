/**
 * @file
 * Reproduces paper Fig. 10: safe V_Start and V_Final adjustment
 * margins per h-layer.
 *
 * For each h-layer we search the largest total window adjustment whose
 * BER cost, projected to end-of-retention at the current wear, stays
 * inside the ECC limit — the offline characterization that [13]-style
 * schemes (and the paper's conversion tables) are built from. Good
 * layers have hundreds of mV of margin; the worst layers have none.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Fig. 10: V_Start/V_Final adjustment margins ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &process = chip.process();
    const auto &errors = chip.errors();
    const double eccLimitNorm =
        chip.ecc().limitBer() / errors.params().baseBer;
    const ftl::OpmConfig opm;

    for (const auto &aging :
         {nand::AgingState{0, 0.0}, nand::AgingState{2000, 0.0}}) {
        std::cout << "\n-- total safe margin per h-layer at "
                  << aging.peCycles
                  << " P/E (projected to 12-month retention) --\n";
        metrics::Table table({"h-layer", "quality q", "margin (mV)",
                              "V_Start share", "V_Final share",
                              "note"});
        RunningStat margins;
        for (std::uint32_t l = 0;
             l < chip.geometry().layersPerBlock; ++l) {
            const double q = process.layerQuality(0, l);
            const double measured = errors.normalizedBer(
                q, aging, process.chipFactor());
            const double projected =
                errors.projectedRetentionNorm(measured, aging);
            const double allowed =
                opm.marginGuard * eccLimitNorm / projected;
            double margin = errors.safeWindowShrinkMv(allowed);
            margin = std::min(
                margin, static_cast<double>(opm.maxShrinkMv));
            margins.add(margin);
            if (l % 4 == 0 || l == process.layerKappa() ||
                l == process.layerBeta()) {
                std::string note;
                if (l == process.layerOmega()) note = "omega";
                if (l == process.layerKappa()) note = "kappa";
                if (l == process.layerBeta()) note = "beta";
                if (l == process.layerAlpha()) note = "alpha";
                const double vStart =
                    std::floor(margin * opm.vStartShare / 10.0) * 10.0;
                table.row({std::to_string(l), metrics::format(q, 3),
                           metrics::format(margin, 0),
                           metrics::format(vStart, 0),
                           metrics::format(margin - vStart, 0), note});
            }
        }
        table.print(std::cout);
        std::cout << "  margin mean: "
                  << metrics::format(margins.mean(), 0)
                  << " mV, min: " << metrics::format(margins.min(), 0)
                  << " mV, max: " << metrics::format(margins.max(), 0)
                  << " mV\n";
    }

    // Paper-shape checks at end-of-life wear.
    const nand::AgingState eol{2000, 0.0};
    auto marginOf = [&](std::uint32_t l) {
        const double q = process.layerQuality(0, l);
        const double projected = errors.projectedRetentionNorm(
            errors.normalizedBer(q, eol, process.chipFactor()), eol);
        return std::min(
            errors.safeWindowShrinkMv(opm.marginGuard * eccLimitNorm /
                                      projected),
            static_cast<double>(opm.maxShrinkMv));
    };

    metrics::PaperComparison cmp("Fig. 10 (adjustment margins)");
    cmp.add("good layers keep large margins",
            "up to ~300-500 mV",
            metrics::format(marginOf(process.layerBeta()), 0) +
                " mV (beta, at 2K P/E)");
    cmp.add("worst layer has no margin at end of life", "~0 mV",
            metrics::format(marginOf(process.layerOmega()), 0) +
                " mV (omega, at 2K P/E)");
    cmp.add("[13] static grant for beta-like layers", "~130 mV",
            "see vertFTL table (fig11/fig17 benches)");
    cmp.print(std::cout);
    return 0;
}
