/**
 * @file
 * Reproduces paper Fig. 8: the effect of skipped VFYs on program-state
 * BER.
 *
 *  (a) BER vs number of skipped VFYs for each program state: flat up
 *      to the safe count (the leader's L_min - 1), rising beyond as
 *      fast cells over-program; higher states can skip more in
 *      absolute terms;
 *  (b) the distribution of safe skip counts N_skip per state (from
 *      the monitored [L_min, L_max] windows);
 *  plus the in-text claim: the safe plan cuts average tPROG ~16.2%.
 */

#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

int
main()
{
    std::cout << "=== Fig. 8: VFY skipping vs program-state BER ===\n";
    nand::NandChip chip(bench::chipConfig(1));
    const auto &geom = chip.geometry();
    const auto &ispp = chip.ispp();
    std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);

    // Work on a mid-quality layer at the paper's normalization
    // condition (2K P/E + 1 year, Fig. 8 caption).
    chip.setAging({2000, 12.0});
    const std::uint32_t layer = 20;

    // Monitor the leader to get the safe plan.
    chip.eraseBlock(0);
    const auto leader = chip.programWl({0, layer, 0},
                                       nand::ProgramCommand{}, tokens);
    const auto safePlan = nand::IsppEngine::safeSkipPlan(leader.loops);

    // (a): per-state sweep of extra skips.
    std::cout << "\n-- Fig. 8(a): normalized BER vs skipped VFYs "
                 "(per state) --\n";
    metrics::Table table({"state", "safe N_skip", "+0", "+1", "+2",
                          "+3", "+4"});
    const auto &errors = chip.errors();
    for (int s = 1; s <= nand::kTlcStates; ++s) {
        std::vector<std::string> cells{
            "P" + std::to_string(s),
            std::to_string(safePlan[static_cast<std::size_t>(s - 1)])};
        for (int extra = 0; extra <= 4; ++extra) {
            // BER multiplier of this state with `extra` unsafe skips.
            cells.push_back(metrics::format(
                errors.overProgramMultiplier(extra, s)));
        }
        table.row(cells);
    }
    table.print(std::cout);
    std::cout << "  (columns are BER multipliers relative to a safe "
                 "program; +0 == safe)\n";

    // (b): N_skip distribution over many leader monitorings.
    std::cout << "\n-- Fig. 8(b): safe N_skip distribution per state "
                 "(min/mean/max over layers and blocks) --\n";
    metrics::Table dist({"state", "min", "mean", "max"});
    std::vector<RunningStat> perState(nand::kTlcStates);
    for (std::uint32_t block = 1; block < geom.blocksPerChip;
         block += 3) {
        chip.eraseBlock(block);
        for (std::uint32_t l = 0; l < geom.layersPerBlock; l += 6) {
            const auto r = chip.programWl({block, l, 0},
                                          nand::ProgramCommand{},
                                          tokens);
            const auto plan = nand::IsppEngine::safeSkipPlan(r.loops);
            for (int s = 0; s < nand::kTlcStates; ++s)
                perState[static_cast<std::size_t>(s)].add(
                    plan[static_cast<std::size_t>(s)]);
        }
    }
    for (int s = 0; s < nand::kTlcStates; ++s) {
        const auto &st = perState[static_cast<std::size_t>(s)];
        dist.row({"P" + std::to_string(s + 1),
                  metrics::format(st.min(), 0),
                  metrics::format(st.mean(), 1),
                  metrics::format(st.max(), 0)});
    }
    dist.print(std::cout);

    // In-text: tPROG saving from the safe plan alone (fresh chip).
    chip.setAging({0, 0.0});
    chip.eraseBlock(2);
    RunningStat saving;
    for (std::uint32_t l = 0; l < geom.layersPerBlock; l += 4) {
        const auto lead = chip.programWl({2, l, 0},
                                         nand::ProgramCommand{},
                                         tokens);
        nand::ProgramCommand cmd;
        cmd.useSkipPlan = true;
        cmd.skipVfy = nand::IsppEngine::safeSkipPlan(lead.loops);
        const auto follow = chip.programWl({2, l, 1}, cmd, tokens);
        saving.add(1.0 - static_cast<double>(follow.tProg) /
                             static_cast<double>(lead.tProg));
    }
    std::cout << "\n  average tPROG saving from VFY skipping alone: "
              << metrics::formatPercent(saving.mean()) << "\n";
    (void)ispp;

    metrics::PaperComparison cmp("Fig. 8 (VFY skipping)");
    cmp.add("BER flat within safe skips, rising beyond",
            "yes (Fig. 8(a))", "yes (multiplier 1.0 at +0, rising)");
    cmp.add("higher states skip more VFYs", "P7 ~7 vs P1 ~1",
            "P7 " + metrics::format(perState[6].mean(), 1) + " vs P1 " +
                metrics::format(perState[0].mean(), 1));
    cmp.add("avg tPROG cut from skipped VFYs", "16.2%",
            metrics::formatPercent(saving.mean()));
    cmp.print(std::cout);
    return 0;
}
