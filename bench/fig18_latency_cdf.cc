/**
 * @file
 * Reproduces paper Fig. 18: write and read latency CDFs under the
 * Rocks workload at the fresh state, for pageFTL, vertFTL, cubeFTL-,
 * and cubeFTL.
 *
 * Paper observations: (a) cubeFTL's 90th-percentile write latency is
 * 0.72 ms vs pageFTL's 1.10 ms (1.53x); cubeFTL-'s 80th percentile is
 * ~42% above cubeFTL's (the WAM's contribution); (b) cubeFTL also has
 * the best read latency even at fresh state, because reads are less
 * often blocked behind slow programs.
 */

#include <exception>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

int
runBench()
{
    std::cout << "=== Fig. 18: latency CDFs, Rocks @ fresh ===\n";
    // The paper's latency experiment runs at moderate load: commit
    // bursts overflow the write buffer (so writes genuinely wait for
    // flushes and the program-latency differences show), but the
    // device drains between bursts (so unbounded queueing does not
    // drown those differences). Pace the Rocks stream accordingly.
    auto spec = workload::rocks();
    spec.burstLength = 32;
    spec.interBurstGap = 25 * kMillisecond;
    const nand::AgingState fresh{0, 0.0};
    const std::uint64_t requests = bench::benchRequests(30000);

    const ssd::FtlKind kinds[] = {
        ssd::FtlKind::Page, ssd::FtlKind::Vert, ssd::FtlKind::CubeMinus,
        ssd::FtlKind::Cube};

    // One cell per FTL; `--jobs N` runs them concurrently, and the
    // cell-order results below make the output independent of which
    // finished first. Cell 0 (pageFTL) is the traced cell, matching
    // the sequential bench's first-run-traced behaviour.
    std::vector<workload::SweepCell> cells;
    for (const auto kind : kinds)
        cells.push_back(bench::makeCell(kind, spec, fresh, 42, requests));
    const auto cellResults = bench::runSweep(cells);

    std::map<ssd::FtlKind, workload::RunResult> results;
    for (std::size_t i = 0; i < std::size(kinds); ++i)
        results[kinds[i]] = cellResults[i].run;

    // Machine-readable sidecar for CI artifacts; stdout is unchanged.
    // Per FTL: full latency summaries (incl. p99.9), the per-phase
    // decomposition, and channel/die utilization.
    {
        auto jsonOut = bench::openBenchJson("fig18_latency_cdf");
        metrics::JsonWriter json(jsonOut);
        json.beginObject();
        json.field("figure", "fig18_latency_cdf");
        json.field("scale", bench::scaleName());
        json.field("requests", requests);
        json.field("workload", spec.name);
        json.key("ftls");
        json.beginObject();
        for (const auto kind : kinds) {
            json.key(ssd::ftlKindName(kind));
            json.beginObject();
            json.key("requests");
            metrics::writeRequestMetrics(json,
                                         results[kind].requestMetrics);
            json.key("utilization");
            metrics::writeUtilization(json, results[kind].utilization);
            json.endObject();
        }
        json.endObject();
        json.endObject();
        jsonOut << '\n';
    }

    for (const bool isWrite : {true, false}) {
        std::cout << "\n-- " << (isWrite ? "write" : "read")
                  << " latency percentiles (ms) --\n";
        metrics::Table table({"percentile", "pageFTL", "vertFTL",
                              "cubeFTL-", "cubeFTL"});
        for (const double p : {50.0, 70.0, 80.0, 90.0, 95.0, 99.0}) {
            std::vector<std::string> row{metrics::format(p, 0)};
            for (const auto kind : kinds) {
                auto &rec = isWrite ? results[kind].writeLatencyUs
                                    : results[kind].readLatencyUs;
                row.push_back(
                    metrics::format(rec.percentile(p) / 1000.0, 3));
            }
            table.row(row);
        }
        table.print(std::cout);
    }

    // Compact CDF curves for plotting.
    std::cout << "\n-- write-latency CDF points (ms, F) --\n";
    for (const auto kind : kinds) {
        std::cout << ssd::ftlKindName(kind) << ":";
        for (const auto &[x, f] :
             results[kind].writeLatencyUs.cdf(8)) {
            std::cout << "  (" << metrics::format(x / 1000.0, 2) << ", "
                      << metrics::format(f, 2) << ")";
        }
        std::cout << "\n";
    }

    const double pageP90 =
        results[ssd::FtlKind::Page].writeLatencyUs.percentile(90);
    const double cubeP90 =
        results[ssd::FtlKind::Cube].writeLatencyUs.percentile(90);
    const double cubeMinusP90 =
        results[ssd::FtlKind::CubeMinus].writeLatencyUs.percentile(90);
    const double pageReadP50 =
        results[ssd::FtlKind::Page].readLatencyUs.percentile(50);
    const double cubeReadP50 =
        results[ssd::FtlKind::Cube].readLatencyUs.percentile(50);

    metrics::PaperComparison cmp("Fig. 18 (Rocks latency CDFs)");
    cmp.add("p90 write latency, pageFTL vs cubeFTL",
            "1.10 ms vs 0.72 ms (1.53x)",
            metrics::format(pageP90 / 1000.0, 2) + " ms vs " +
                metrics::format(cubeP90 / 1000.0, 2) + " ms (" +
                metrics::format(pageP90 / cubeP90, 2) + "x)",
            "ordering holds; absolute values depend on buffer depth");
    cmp.add("write tail, cubeFTL- vs cubeFTL (the WAM's share)",
            "cubeFTL ~42% shorter at p80",
            metrics::formatPercent(1.0 - cubeP90 / cubeMinusP90) +
                " shorter at p90");
    cmp.add("cubeFTL reads fastest even at fresh state",
            "yes (less blocking behind programs)",
            cubeReadP50 < pageReadP50
                ? "yes (p50 " +
                      metrics::format(cubeReadP50 / 1000.0, 2) +
                      " ms vs " +
                      metrics::format(pageReadP50 / 1000.0, 2) + " ms)"
                : "NO");
    cmp.print(std::cout);
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchOptions(argc, argv);
    try {
        return runBench();
    } catch (const std::exception &e) {
        std::cerr << "fig18_latency_cdf: " << e.what() << '\n';
        return 1;
    }
}
