/**
 * @file
 * Extension (paper Sec. 8, future work): leader-informed ECC
 * decode-mode selection.
 *
 * LDPC controllers attempt a fast hard-decision decode first and fall
 * back to the slow soft decode on noisy pages, paying for the failed
 * hard attempt. Thanks to horizontal similarity, the first retried
 * read of an h-layer tells the controller that the *whole layer* is
 * noisy, so every later read of that layer can start directly in the
 * soft decode. cubeFTL keys this off its ORT (a non-default entry ==
 * "this layer needed retries").
 *
 * This bench measures aged-state read latency with the hint disabled
 * vs enabled (everything else equal).
 */

#include <iostream>

#include "bench/bench_util.h"

using namespace cubessd;

namespace {

workload::RunResult
run(bool hint, std::uint64_t seed)
{
    auto config = bench::ssdConfig(ssd::FtlKind::Cube, seed);
    config.cubeFeatures.eccHint = hint;
    ssd::Ssd dev(config);
    auto spec = workload::web();  // read-dominated
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), seed + 7);
    workload::Driver driver(dev, gen);
    dev.setAging({2000, 0.0});
    driver.prefill(0.2);
    dev.setAging({2000, 12.0});
    return driver.run(30000);
}

}  // namespace

int
main()
{
    std::cout << "=== Extension: PS-aware ECC decode-mode selection "
                 "(Web @ 2K P/E + 1 yr) ===\n\n";

    metrics::Table table({"configuration", "IOPS", "read p50 (us)",
                          "read p90 (us)"});
    double iopsOff = 0.0, iopsOn = 0.0, p90Off = 0.0, p90On = 0.0;
    for (const bool hint : {false, true}) {
        RunningStat iops;
        LatencyRecorder all;
        for (std::uint64_t seed : {42ull, 137ull, 999ull}) {
            auto result = run(hint, seed);
            iops.add(result.iops);
            // Merge the seed's latencies into one pooled recorder.
            for (double p = 1; p <= 99; p += 1)
                all.add(result.readLatencyUs.percentile(p));
        }
        table.row({hint ? "cubeFTL + ECC hint" : "cubeFTL (hint off)",
                   metrics::format(iops.mean(), 0),
                   metrics::format(all.percentile(50), 0),
                   metrics::format(all.percentile(90), 0)});
        (hint ? iopsOn : iopsOff) = iops.mean();
        (hint ? p90On : p90Off) = all.percentile(90);
    }
    table.print(std::cout);

    metrics::PaperComparison cmp(
        "Sec. 8 extension (leader-informed ECC)");
    cmp.add("IOPS benefit of the decode hint",
            "proposed, not quantified",
            metrics::formatPercent(iopsOn / iopsOff - 1.0),
            "bounded by the decode share of tREAD");
    cmp.add("read p90 improvement", "proposed, not quantified",
            metrics::formatPercent(1.0 - p90On / p90Off));
    cmp.print(std::cout);
    return 0;
}
