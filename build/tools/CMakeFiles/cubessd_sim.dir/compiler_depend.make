# Empty compiler generated dependencies file for cubessd_sim.
# This may be replaced when dependencies are built.
