file(REMOVE_RECURSE
  "CMakeFiles/cubessd_sim.dir/cubessd_sim.cpp.o"
  "CMakeFiles/cubessd_sim.dir/cubessd_sim.cpp.o.d"
  "cubessd_sim"
  "cubessd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubessd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
