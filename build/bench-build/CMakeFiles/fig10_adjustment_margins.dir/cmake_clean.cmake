file(REMOVE_RECURSE
  "../bench/fig10_adjustment_margins"
  "../bench/fig10_adjustment_margins.pdb"
  "CMakeFiles/fig10_adjustment_margins.dir/fig10_adjustment_margins.cc.o"
  "CMakeFiles/fig10_adjustment_margins.dir/fig10_adjustment_margins.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_adjustment_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
