# Empty dependencies file for fig10_adjustment_margins.
# This may be replaced when dependencies are built.
