file(REMOVE_RECURSE
  "../bench/ablation_techniques"
  "../bench/ablation_techniques.pdb"
  "CMakeFiles/ablation_techniques.dir/ablation_techniques.cc.o"
  "CMakeFiles/ablation_techniques.dir/ablation_techniques.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
