# Empty compiler generated dependencies file for ablation_techniques.
# This may be replaced when dependencies are built.
