# Empty compiler generated dependencies file for fig08_vfy_skip.
# This may be replaced when dependencies are built.
