file(REMOVE_RECURSE
  "../bench/fig08_vfy_skip"
  "../bench/fig08_vfy_skip.pdb"
  "CMakeFiles/fig08_vfy_skip.dir/fig08_vfy_skip.cc.o"
  "CMakeFiles/fig08_vfy_skip.dir/fig08_vfy_skip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vfy_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
