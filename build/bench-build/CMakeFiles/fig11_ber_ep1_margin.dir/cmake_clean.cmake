file(REMOVE_RECURSE
  "../bench/fig11_ber_ep1_margin"
  "../bench/fig11_ber_ep1_margin.pdb"
  "CMakeFiles/fig11_ber_ep1_margin.dir/fig11_ber_ep1_margin.cc.o"
  "CMakeFiles/fig11_ber_ep1_margin.dir/fig11_ber_ep1_margin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ber_ep1_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
