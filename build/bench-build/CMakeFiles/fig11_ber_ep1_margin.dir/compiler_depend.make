# Empty compiler generated dependencies file for fig11_ber_ep1_margin.
# This may be replaced when dependencies are built.
