# Empty dependencies file for fig18_latency_cdf.
# This may be replaced when dependencies are built.
