file(REMOVE_RECURSE
  "../bench/fig18_latency_cdf"
  "../bench/fig18_latency_cdf.pdb"
  "CMakeFiles/fig18_latency_cdf.dir/fig18_latency_cdf.cc.o"
  "CMakeFiles/fig18_latency_cdf.dir/fig18_latency_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_latency_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
