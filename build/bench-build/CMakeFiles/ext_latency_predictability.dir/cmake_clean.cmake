file(REMOVE_RECURSE
  "../bench/ext_latency_predictability"
  "../bench/ext_latency_predictability.pdb"
  "CMakeFiles/ext_latency_predictability.dir/ext_latency_predictability.cc.o"
  "CMakeFiles/ext_latency_predictability.dir/ext_latency_predictability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_latency_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
