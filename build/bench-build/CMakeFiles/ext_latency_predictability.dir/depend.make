# Empty dependencies file for ext_latency_predictability.
# This may be replaced when dependencies are built.
