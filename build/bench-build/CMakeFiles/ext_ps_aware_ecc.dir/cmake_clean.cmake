file(REMOVE_RECURSE
  "../bench/ext_ps_aware_ecc"
  "../bench/ext_ps_aware_ecc.pdb"
  "CMakeFiles/ext_ps_aware_ecc.dir/ext_ps_aware_ecc.cc.o"
  "CMakeFiles/ext_ps_aware_ecc.dir/ext_ps_aware_ecc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ps_aware_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
