# Empty dependencies file for ext_ps_aware_ecc.
# This may be replaced when dependencies are built.
