# Empty compiler generated dependencies file for fig06_inter_layer_variability.
# This may be replaced when dependencies are built.
