file(REMOVE_RECURSE
  "../bench/fig06_inter_layer_variability"
  "../bench/fig06_inter_layer_variability.pdb"
  "CMakeFiles/fig06_inter_layer_variability.dir/fig06_inter_layer_variability.cc.o"
  "CMakeFiles/fig06_inter_layer_variability.dir/fig06_inter_layer_variability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_inter_layer_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
