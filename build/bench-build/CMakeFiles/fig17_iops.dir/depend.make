# Empty dependencies file for fig17_iops.
# This may be replaced when dependencies are built.
