file(REMOVE_RECURSE
  "../bench/fig17_iops"
  "../bench/fig17_iops.pdb"
  "CMakeFiles/fig17_iops.dir/fig17_iops.cc.o"
  "CMakeFiles/fig17_iops.dir/fig17_iops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
