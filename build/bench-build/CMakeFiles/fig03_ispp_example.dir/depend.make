# Empty dependencies file for fig03_ispp_example.
# This may be replaced when dependencies are built.
