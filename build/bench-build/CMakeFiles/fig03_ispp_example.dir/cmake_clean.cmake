file(REMOVE_RECURSE
  "../bench/fig03_ispp_example"
  "../bench/fig03_ispp_example.pdb"
  "CMakeFiles/fig03_ispp_example.dir/fig03_ispp_example.cc.o"
  "CMakeFiles/fig03_ispp_example.dir/fig03_ispp_example.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ispp_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
