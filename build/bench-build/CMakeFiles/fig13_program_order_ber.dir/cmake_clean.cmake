file(REMOVE_RECURSE
  "../bench/fig13_program_order_ber"
  "../bench/fig13_program_order_ber.pdb"
  "CMakeFiles/fig13_program_order_ber.dir/fig13_program_order_ber.cc.o"
  "CMakeFiles/fig13_program_order_ber.dir/fig13_program_order_ber.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_program_order_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
