# Empty compiler generated dependencies file for fig13_program_order_ber.
# This may be replaced when dependencies are built.
