file(REMOVE_RECURSE
  "../bench/fig14_read_retry"
  "../bench/fig14_read_retry.pdb"
  "CMakeFiles/fig14_read_retry.dir/fig14_read_retry.cc.o"
  "CMakeFiles/fig14_read_retry.dir/fig14_read_retry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_read_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
