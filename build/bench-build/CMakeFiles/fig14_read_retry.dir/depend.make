# Empty dependencies file for fig14_read_retry.
# This may be replaced when dependencies are built.
