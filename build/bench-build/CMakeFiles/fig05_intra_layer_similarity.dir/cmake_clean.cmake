file(REMOVE_RECURSE
  "../bench/fig05_intra_layer_similarity"
  "../bench/fig05_intra_layer_similarity.pdb"
  "CMakeFiles/fig05_intra_layer_similarity.dir/fig05_intra_layer_similarity.cc.o"
  "CMakeFiles/fig05_intra_layer_similarity.dir/fig05_intra_layer_similarity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_intra_layer_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
