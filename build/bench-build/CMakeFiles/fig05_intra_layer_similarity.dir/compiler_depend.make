# Empty compiler generated dependencies file for fig05_intra_layer_similarity.
# This may be replaced when dependencies are built.
