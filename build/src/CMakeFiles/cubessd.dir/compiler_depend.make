# Empty compiler generated dependencies file for cubessd.
# This may be replaced when dependencies are built.
