
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/cubessd.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cubessd.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/cubessd.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/common/stats.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/cubessd.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/common/zipf.cc.o.d"
  "/root/repo/src/ecc/ecc.cc" "src/CMakeFiles/cubessd.dir/ecc/ecc.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ecc/ecc.cc.o.d"
  "/root/repo/src/ftl/block_manager.cc" "src/CMakeFiles/cubessd.dir/ftl/block_manager.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/block_manager.cc.o.d"
  "/root/repo/src/ftl/cube_ftl.cc" "src/CMakeFiles/cubessd.dir/ftl/cube_ftl.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/cube_ftl.cc.o.d"
  "/root/repo/src/ftl/ftl_base.cc" "src/CMakeFiles/cubessd.dir/ftl/ftl_base.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/ftl_base.cc.o.d"
  "/root/repo/src/ftl/mapping.cc" "src/CMakeFiles/cubessd.dir/ftl/mapping.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/mapping.cc.o.d"
  "/root/repo/src/ftl/opm.cc" "src/CMakeFiles/cubessd.dir/ftl/opm.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/opm.cc.o.d"
  "/root/repo/src/ftl/ort.cc" "src/CMakeFiles/cubessd.dir/ftl/ort.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/ort.cc.o.d"
  "/root/repo/src/ftl/page_ftl.cc" "src/CMakeFiles/cubessd.dir/ftl/page_ftl.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/page_ftl.cc.o.d"
  "/root/repo/src/ftl/program_order.cc" "src/CMakeFiles/cubessd.dir/ftl/program_order.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/program_order.cc.o.d"
  "/root/repo/src/ftl/vert_ftl.cc" "src/CMakeFiles/cubessd.dir/ftl/vert_ftl.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/vert_ftl.cc.o.d"
  "/root/repo/src/ftl/wam.cc" "src/CMakeFiles/cubessd.dir/ftl/wam.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ftl/wam.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/cubessd.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/metrics/report.cc.o.d"
  "/root/repo/src/nand/chip.cc" "src/CMakeFiles/cubessd.dir/nand/chip.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/chip.cc.o.d"
  "/root/repo/src/nand/error_model.cc" "src/CMakeFiles/cubessd.dir/nand/error_model.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/error_model.cc.o.d"
  "/root/repo/src/nand/geometry.cc" "src/CMakeFiles/cubessd.dir/nand/geometry.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/geometry.cc.o.d"
  "/root/repo/src/nand/ispp.cc" "src/CMakeFiles/cubessd.dir/nand/ispp.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/ispp.cc.o.d"
  "/root/repo/src/nand/process_model.cc" "src/CMakeFiles/cubessd.dir/nand/process_model.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/process_model.cc.o.d"
  "/root/repo/src/nand/read_model.cc" "src/CMakeFiles/cubessd.dir/nand/read_model.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/read_model.cc.o.d"
  "/root/repo/src/nand/vth_model.cc" "src/CMakeFiles/cubessd.dir/nand/vth_model.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/nand/vth_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/cubessd.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/ssd/channel.cc" "src/CMakeFiles/cubessd.dir/ssd/channel.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ssd/channel.cc.o.d"
  "/root/repo/src/ssd/chip_unit.cc" "src/CMakeFiles/cubessd.dir/ssd/chip_unit.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ssd/chip_unit.cc.o.d"
  "/root/repo/src/ssd/ssd.cc" "src/CMakeFiles/cubessd.dir/ssd/ssd.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ssd/ssd.cc.o.d"
  "/root/repo/src/ssd/write_buffer.cc" "src/CMakeFiles/cubessd.dir/ssd/write_buffer.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/ssd/write_buffer.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/cubessd.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/cubessd.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/cubessd.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/cubessd.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
