file(REMOVE_RECURSE
  "libcubessd.a"
)
