file(REMOVE_RECURSE
  "CMakeFiles/characterization.dir/characterization.cpp.o"
  "CMakeFiles/characterization.dir/characterization.cpp.o.d"
  "characterization"
  "characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
