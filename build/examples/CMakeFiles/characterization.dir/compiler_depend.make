# Empty compiler generated dependencies file for characterization.
# This may be replaced when dependencies are built.
