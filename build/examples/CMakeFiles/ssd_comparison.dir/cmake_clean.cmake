file(REMOVE_RECURSE
  "CMakeFiles/ssd_comparison.dir/ssd_comparison.cpp.o"
  "CMakeFiles/ssd_comparison.dir/ssd_comparison.cpp.o.d"
  "ssd_comparison"
  "ssd_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
