# Empty compiler generated dependencies file for ssd_comparison.
# This may be replaced when dependencies are built.
