
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_manager.cc" "tests/CMakeFiles/cubessd_tests.dir/test_block_manager.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_block_manager.cc.o.d"
  "/root/repo/tests/test_chip.cc" "tests/CMakeFiles/cubessd_tests.dir/test_chip.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_chip.cc.o.d"
  "/root/repo/tests/test_chip_unit.cc" "tests/CMakeFiles/cubessd_tests.dir/test_chip_unit.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_chip_unit.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/cubessd_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_cube_ftl.cc" "tests/CMakeFiles/cubessd_tests.dir/test_cube_ftl.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_cube_ftl.cc.o.d"
  "/root/repo/tests/test_ecc.cc" "tests/CMakeFiles/cubessd_tests.dir/test_ecc.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_ecc.cc.o.d"
  "/root/repo/tests/test_error_model.cc" "tests/CMakeFiles/cubessd_tests.dir/test_error_model.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_error_model.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/cubessd_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_ftl.cc" "tests/CMakeFiles/cubessd_tests.dir/test_ftl.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_ftl.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/cubessd_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_ispp.cc" "tests/CMakeFiles/cubessd_tests.dir/test_ispp.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_ispp.cc.o.d"
  "/root/repo/tests/test_mapping.cc" "tests/CMakeFiles/cubessd_tests.dir/test_mapping.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_mapping.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/cubessd_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_opm.cc" "tests/CMakeFiles/cubessd_tests.dir/test_opm.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_opm.cc.o.d"
  "/root/repo/tests/test_ort.cc" "tests/CMakeFiles/cubessd_tests.dir/test_ort.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_ort.cc.o.d"
  "/root/repo/tests/test_process_model.cc" "tests/CMakeFiles/cubessd_tests.dir/test_process_model.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_process_model.cc.o.d"
  "/root/repo/tests/test_program_order.cc" "tests/CMakeFiles/cubessd_tests.dir/test_program_order.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_program_order.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/cubessd_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_read_model.cc" "tests/CMakeFiles/cubessd_tests.dir/test_read_model.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_read_model.cc.o.d"
  "/root/repo/tests/test_ssd_integration.cc" "tests/CMakeFiles/cubessd_tests.dir/test_ssd_integration.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_ssd_integration.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/cubessd_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_wam.cc" "tests/CMakeFiles/cubessd_tests.dir/test_wam.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_wam.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/cubessd_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_workload.cc.o.d"
  "/root/repo/tests/test_write_buffer.cc" "tests/CMakeFiles/cubessd_tests.dir/test_write_buffer.cc.o" "gcc" "tests/CMakeFiles/cubessd_tests.dir/test_write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cubessd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
