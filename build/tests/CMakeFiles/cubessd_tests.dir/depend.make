# Empty dependencies file for cubessd_tests.
# This may be replaced when dependencies are built.
