/**
 * @file
 * Unit tests for trace recording, parsing, and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/ftl/ftl_base.h"
#include "src/workload/trace.h"
#include "src/workload/workload.h"

namespace cubessd::workload {
namespace {

TEST(Trace, RoundTripThroughStream)
{
    std::vector<ssd::HostRequest> requests;
    WorkloadGenerator gen(mail(), 10000, 3);
    SimTime t = 0;
    for (int i = 0; i < 100; ++i) {
        auto req = gen.next();
        req.arrival = t;
        t += 1000;
        requests.push_back(req);
    }
    std::stringstream stream;
    TraceWriter::write(stream, requests);
    const auto back = TraceReader::read(stream);
    ASSERT_EQ(back.size(), requests.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].arrival, requests[i].arrival);
        EXPECT_EQ(back[i].lba, requests[i].lba);
        EXPECT_EQ(back[i].pages, requests[i].pages);
        EXPECT_EQ(static_cast<int>(back[i].type),
                  static_cast<int>(requests[i].type));
    }
}

TEST(Trace, SkipsCommentsAndBlankLines)
{
    std::stringstream stream;
    stream << "# a comment\n\n100 R 5 2\n# another\n200 W 9 1\n";
    const auto requests = TraceReader::read(stream);
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].arrival, 100u);
    EXPECT_EQ(static_cast<int>(requests[0].type),
              static_cast<int>(ssd::IoType::Read));
    EXPECT_EQ(requests[1].lba, 9u);
}

TEST(TraceDeathTest, MalformedLineIsFatal)
{
    std::stringstream stream;
    stream << "100 X 5 2\n";
    EXPECT_EXIT(TraceReader::read(stream),
                ::testing::ExitedWithCode(1), "malformed");
}

TEST(Trace, ReplayCompletesAllRequests)
{
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 16;
    config.chip.geometry.layersPerBlock = 8;
    config.writeBufferPages = 24;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    ssd::Ssd dev(config);

    std::vector<ssd::HostRequest> requests;
    SimTime t = 0;
    for (int i = 0; i < 200; ++i) {
        ssd::HostRequest req;
        req.type = i % 3 ? ssd::IoType::Write : ssd::IoType::Read;
        req.lba = static_cast<Lba>((i * 37) % 500);
        req.pages = 1;
        req.arrival = t;
        t += 100 * kMicrosecond;
        requests.push_back(req);
    }
    const auto result = replayTrace(dev, requests);
    EXPECT_EQ(result.completed, requests.size());
    EXPECT_GT(result.iops, 0.0);
    EXPECT_GT(result.elapsed, 0u);
    EXPECT_GT(result.readLatencyUs.count() +
                  result.writeLatencyUs.count(),
              0u);
    dev.ftl().checkConsistency();
}

TEST(Trace, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/cubessd_trace.txt";
    std::vector<ssd::HostRequest> requests;
    ssd::HostRequest req;
    req.type = ssd::IoType::Write;
    req.lba = 42;
    req.pages = 3;
    req.arrival = 12345;
    requests.push_back(req);
    TraceWriter::writeFile(path, requests);
    const auto back = TraceReader::readFile(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].lba, 42u);
    EXPECT_EQ(back[0].pages, 3u);
}

}  // namespace
}  // namespace cubessd::workload
