/**
 * @file
 * Tests for the timeline-tracing subsystem: span recording and
 * pairing, ring-buffer overflow (drop-oldest, never corrupt), counter
 * sampling cadence through the event queue's sampler hook, and a
 * valid-JSON round-trip of a small traced whole-device run.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/ftl/ftl_base.h"
#include "src/sim/event_queue.h"
#include "src/ssd/ssd.h"
#include "src/trace/counters.h"
#include "src/trace/trace.h"
#include "src/workload/driver.h"
#include "src/workload/workload.h"
#include "tests/json_test_util.h"

namespace cubessd::trace {
namespace {

using testutil::JsonValue;
using testutil::parseJson;

// ------------------------------------------------------------------
// Recording
// ------------------------------------------------------------------

TEST(TraceSession, RecordsSpansInOrder)
{
    TraceSession session;
    const auto track = session.addTrack("t0");
    session.begin(track, "outer", 100, {{"depth", 0}});
    session.begin(track, "inner", 200);
    session.end(track, 300);
    session.end(track, 500);
    session.instant(track, "mark", 600);
    session.complete(track, "xfer", 700, 50, {{"bytes", 4096}});

    ASSERT_EQ(session.size(), 6u);
    EXPECT_EQ(session.dropped(), 0u);

    const auto &outer = session.event(0);
    EXPECT_EQ(outer.kind, EventKind::Begin);
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(outer.ts, 100u);
    ASSERT_EQ(outer.argCount, 1u);
    EXPECT_STREQ(outer.args[0].key, "depth");
    EXPECT_EQ(outer.args[0].value, 0);

    EXPECT_EQ(session.event(1).kind, EventKind::Begin);
    EXPECT_EQ(session.event(2).kind, EventKind::End);
    EXPECT_EQ(session.event(3).kind, EventKind::End);
    EXPECT_EQ(session.event(4).kind, EventKind::Instant);

    const auto &xfer = session.event(5);
    EXPECT_EQ(xfer.kind, EventKind::Complete);
    EXPECT_EQ(xfer.ts, 700u);
    EXPECT_EQ(xfer.dur, 50u);
}

TEST(TraceSession, AsyncSpansCarryCategoryAndId)
{
    TraceSession session;
    session.asyncBegin("request", "read", 7, 100, {{"lba", 42}});
    session.asyncBegin("request", "write", 8, 150);
    session.asyncEnd("request", "read", 7, 400);
    session.asyncEnd("request", "write", 8, 500);

    ASSERT_EQ(session.size(), 4u);
    const auto &b = session.event(0);
    EXPECT_EQ(b.kind, EventKind::AsyncBegin);
    EXPECT_STREQ(b.cat, "request");
    EXPECT_EQ(b.id, 7u);
    const auto &e = session.event(2);
    EXPECT_EQ(e.kind, EventKind::AsyncEnd);
    EXPECT_EQ(e.id, 7u);
}

TEST(TraceSession, OverflowDropsOldestNeverCorrupts)
{
    TraceConfig config;
    config.capacityEvents = 4;
    TraceSession session(config);
    const auto track = session.addTrack("t0");
    for (int i = 0; i < 10; ++i)
        session.instant(track, "e", static_cast<SimTime>(i));

    EXPECT_EQ(session.size(), 4u);
    EXPECT_EQ(session.capacity(), 4u);
    EXPECT_EQ(session.recorded(), 10u);
    EXPECT_EQ(session.dropped(), 6u);
    // The survivors are the newest four, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(session.event(i).ts, 6u + i);

    // The overflowed ring still serializes to valid JSON that
    // advertises the loss.
    std::ostringstream out;
    session.writeJson(out);
    const JsonValue root = parseJson(out.str());
    EXPECT_DOUBLE_EQ(root.at("otherData").at("dropped_events").number,
                     6.0);
    EXPECT_DOUBLE_EQ(root.at("otherData").at("recorded_events").number,
                     10.0);
}

TEST(TraceSession, ExtraArgsBeyondLimitAreTruncated)
{
    TraceSession session;
    const auto track = session.addTrack("t0");
    session.instant(track, "crowded", 1,
                    {{"a", 1},
                     {"b", 2},
                     {"c", 3},
                     {"d", 4},
                     {"e", 5},
                     {"f", 6},
                     {"g", 7}});
    ASSERT_EQ(session.size(), 1u);
    EXPECT_EQ(session.event(0).argCount, TraceSession::kMaxArgs);
}

// ------------------------------------------------------------------
// JSON serialization
// ------------------------------------------------------------------

TEST(TraceSession, JsonCarriesTrackMetadataAndMicroseconds)
{
    TraceSession session;
    const auto die = session.addTrack("die/0");
    const auto bus = session.addTrack("bus/ch0");
    session.complete(die, "program", 2'000'000, 500'000,
                     {{"block", 3}});
    session.instant(bus, "mark", 1'500);
    session.counter("queue_depth", 1'000'000, 7.0);

    std::ostringstream out;
    session.writeJson(out);
    const JsonValue root = parseJson(out.str());
    const auto &events = root.at("traceEvents").items;

    // One thread_name metadata record per track (plus process_name).
    std::map<double, std::string> threadNames;
    int processNames = 0;
    for (const auto &e : events) {
        if (e.at("ph").text != "M")
            continue;
        if (e.at("name").text == "thread_name")
            threadNames[e.at("tid").number] =
                e.at("args").at("name").text;
        else if (e.at("name").text == "process_name")
            ++processNames;
    }
    EXPECT_EQ(processNames, 1);
    EXPECT_EQ(threadNames.at(die), "die/0");
    EXPECT_EQ(threadNames.at(bus), "bus/ch0");

    // Timestamps convert ns -> us without losing resolution.
    for (const auto &e : events) {
        if (e.at("ph").text == "X") {
            EXPECT_DOUBLE_EQ(e.at("ts").number, 2000.0);
            EXPECT_DOUBLE_EQ(e.at("dur").number, 500.0);
            EXPECT_DOUBLE_EQ(e.at("args").at("block").number, 3.0);
        } else if (e.at("ph").text == "i") {
            EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5);
        } else if (e.at("ph").text == "C") {
            EXPECT_EQ(e.at("name").text, "queue_depth");
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 7.0);
        }
    }
}

// ------------------------------------------------------------------
// Counter sampling through the event-queue hook
// ------------------------------------------------------------------

TEST(CounterRegistry, SamplesAtFixedSimulatedCadence)
{
    sim::EventQueue queue;
    int work = 0;
    // Three well-spaced events; the last lands off the sampling grid.
    queue.schedule(1'000, [&] { ++work; });
    queue.schedule(5'000, [&] { ++work; });
    queue.schedule(10'500, [&] { ++work; });

    CounterRegistry registry;
    registry.add("work", "steps",
                 [&](SimTime) { return static_cast<double>(work); });
    registry.installSampler(queue, 2'000);
    queue.run();

    EXPECT_EQ(work, 3);
    const auto &series = registry.series(0);
    // Boundaries at 2,4,6,8,10 us fall before the 10.5 us event; the
    // sampler never fires past the last event.
    ASSERT_EQ(series.size(), 5u);
    for (std::size_t i = 0; i < series.size(); ++i)
        EXPECT_EQ(series[i].ts, 2'000u * (i + 1));
    // At 2 us only the 1 us event has run; from 6 us the 5 us event
    // has run too.
    EXPECT_DOUBLE_EQ(series[0].value, 1.0);
    EXPECT_DOUBLE_EQ(series[2].value, 2.0);
    EXPECT_DOUBLE_EQ(series[4].value, 2.0);
}

TEST(CounterRegistry, ForwardsSamplesToTrace)
{
    sim::EventQueue queue;
    queue.schedule(3'000, [] {});

    TraceSession session;
    CounterRegistry registry;
    registry.add("gauge", "units", [](SimTime) { return 1.25; });
    registry.attachTrace(&session);
    registry.installSampler(queue, 1'000);
    queue.run();

    ASSERT_EQ(session.size(), 3u);
    for (std::size_t i = 0; i < session.size(); ++i) {
        EXPECT_EQ(session.event(i).kind, EventKind::Counter);
        EXPECT_DOUBLE_EQ(session.event(i).number, 1.25);
    }
}

// ------------------------------------------------------------------
// Whole-device round-trip
// ------------------------------------------------------------------

ssd::SsdConfig
smallConfig()
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Cube;
    config.seed = 11;
    return config;
}

TEST(TraceIntegration, TracedRunSerializesToValidChromeTrace)
{
    ssd::Ssd dev(smallConfig());
    workload::WorkloadSpec spec = workload::allWorkloads()[3];
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 19);
    workload::Driver driver(dev, gen);
    driver.prefill(0.1);

    // Trace only the measured run (prefill's bulk writes would flood
    // the ring), as the CLI and benches do.
    TraceSession session;
    CounterRegistry registry;
    dev.attachTrace(&session);
    dev.registerCounters(registry);
    registry.attachTrace(&session);
    registry.installSampler(dev.queue(), 50'000);
    driver.run(400);

    EXPECT_GT(session.size(), 0u);
    EXPECT_GT(registry.samplesTaken(), 0u);

    std::ostringstream out;
    session.writeJson(out);
    const JsonValue root = parseJson(out.str());
    const auto &events = root.at("traceEvents").items;

    // Per-die program spans, request async spans, and counter samples
    // are all present.
    std::set<std::string> diePhases;
    std::set<std::string> counterNames;
    int asyncBegins = 0;
    int asyncEnds = 0;
    for (const auto &e : events) {
        const std::string &ph = e.at("ph").text;
        if (ph == "X")
            diePhases.insert(e.at("name").text);
        else if (ph == "C")
            counterNames.insert(e.at("name").text);
        else if (ph == "b")
            ++asyncBegins;
        else if (ph == "e")
            ++asyncEnds;
    }
    EXPECT_TRUE(diePhases.count("program") > 0);
    EXPECT_TRUE(diePhases.count("xfer_in") > 0);
    EXPECT_GE(counterNames.size(), 3u);
    EXPECT_GT(asyncBegins, 0);
    // Nothing dropped in this small run, so async spans pair up.
    EXPECT_EQ(session.dropped(), 0u);
    EXPECT_EQ(asyncBegins, asyncEnds);
}

TEST(TraceIntegration, TracingIsObservationOnly)
{
    // The same workload with and without a trace attached must land
    // on identical simulated end states (bit-identical behaviour).
    auto run = [](bool traced) {
        ssd::Ssd dev(smallConfig());
        TraceSession session;
        if (traced)
            dev.attachTrace(&session);
        workload::WorkloadSpec spec = workload::allWorkloads()[3];
        workload::WorkloadGenerator gen(spec, dev.logicalPages(), 19);
        workload::Driver driver(dev, gen);
        driver.prefill(0.1);
        driver.run(300);
        return std::tuple(dev.queue().now(),
                          dev.ftl().stats().hostPrograms,
                          dev.ftl().stats().readRetries,
                          dev.ftl().gcStats().collections);
    };
    EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace cubessd::trace
