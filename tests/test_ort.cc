/**
 * @file
 * Unit tests for the optimal read-reference table (ORT).
 */

#include <gtest/gtest.h>

#include "src/ftl/ort.h"

namespace cubessd::ftl {
namespace {

TEST(Ort, StartsEmpty)
{
    Ort ort(2, 4, 8);
    for (std::uint32_t c = 0; c < 2; ++c)
        for (std::uint32_t b = 0; b < 4; ++b)
            for (std::uint32_t l = 0; l < 8; ++l) {
                EXPECT_FALSE(ort.contains(c, b, l));
                EXPECT_EQ(ort.lookup(c, b, l), std::nullopt);
            }
    EXPECT_EQ(ort.hits(), 0u);
    EXPECT_EQ(ort.misses(), 2u * 4u * 8u);
}

TEST(Ort, UpdateThenLookup)
{
    Ort ort(2, 4, 8);
    ort.update(1, 2, 3, 90);
    EXPECT_EQ(ort.lookup(1, 2, 3), 90);
    EXPECT_EQ(ort.lookup(1, 2, 4), std::nullopt);  // neighbours untouched
    EXPECT_EQ(ort.lookup(0, 2, 3), std::nullopt);
}

TEST(Ort, ZeroShiftEntryIsAHit)
{
    // Regression: a calibrated 0 mV offset is a legitimate cached
    // entry (the retry walk can snap back to the chip default). It
    // must be returned as a *hit*, indistinguishable from any other
    // cached shift — the old zero-sentinel encoding reported it as a
    // miss, so callers re-treated the h-layer as unknown and the
    // hit/retry accounting was inflated.
    Ort ort(1, 2, 2);
    ort.update(0, 1, 1, 0);
    EXPECT_TRUE(ort.contains(0, 1, 1));
    const auto entry = ort.lookup(0, 1, 1);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(*entry, 0);
    EXPECT_EQ(ort.hits(), 1u);
    EXPECT_EQ(ort.misses(), 0u);
}

TEST(Ort, ResetBlockClearsAllLayers)
{
    Ort ort(1, 4, 8);
    for (std::uint32_t l = 0; l < 8; ++l)
        ort.update(0, 1, l, 60);
    ort.update(0, 2, 0, 30);
    ort.update(0, 3, 0, 0);  // valid zero-shift entry
    ort.resetBlock(0, 1);
    ort.resetBlock(0, 3);
    for (std::uint32_t l = 0; l < 8; ++l)
        EXPECT_EQ(ort.lookup(0, 1, l), std::nullopt);
    // resetBlock must clear validity too: the zero-shift entry is gone.
    EXPECT_FALSE(ort.contains(0, 3, 0));
    EXPECT_EQ(ort.lookup(0, 3, 0), std::nullopt);
    EXPECT_EQ(ort.lookup(0, 2, 0), 30);  // other blocks keep entries
}

TEST(Ort, TwoBytesPerHLayer)
{
    // The paper's space-overhead claim (Sec. 5.1): 2 bytes per
    // h-layer. Check both a small table and the paper's evaluation
    // configuration (8 chips x 428 blocks x 48 layers).
    Ort small(1, 2, 3);
    EXPECT_EQ(small.bytes(), 1u * 2u * 3u * 2u);
    Ort paper(8, 428, 48);
    EXPECT_EQ(paper.bytes(), 8u * 428u * 48u * 2u);
    // ~0.3 MB to serve a ~30 GB SSD: ~0.001% as the paper computes.
    EXPECT_LT(paper.bytes(), 1u << 20);
}

TEST(Ort, ClampsToInt16)
{
    Ort ort(1, 1, 1);
    ort.update(0, 0, 0, 1 << 20);
    EXPECT_EQ(ort.lookup(0, 0, 0), 32767);
    ort.update(0, 0, 0, -(1 << 20));
    EXPECT_EQ(ort.lookup(0, 0, 0), -32768);
}

TEST(Ort, CountsHitsMissesAndUpdates)
{
    Ort ort(1, 2, 2);
    ort.lookup(0, 0, 0);  // empty: a miss
    EXPECT_EQ(ort.hits(), 0u);
    EXPECT_EQ(ort.misses(), 1u);
    ort.update(0, 0, 0, 30);
    ort.lookup(0, 0, 0);
    EXPECT_EQ(ort.hits(), 1u);
    EXPECT_EQ(ort.misses(), 1u);
    EXPECT_EQ(ort.updates(), 1u);
    // contains() is a pure observer: no hit/miss accounting.
    ort.contains(0, 0, 0);
    ort.contains(0, 1, 1);
    EXPECT_EQ(ort.hits(), 1u);
    EXPECT_EQ(ort.misses(), 1u);
}

TEST(OrtDeathTest, OutOfRangePanics)
{
    Ort ort(1, 2, 2);
    EXPECT_DEATH(ort.lookup(1, 0, 0), "out of range");
    EXPECT_DEATH(ort.update(0, 2, 0, 1), "out of range");
}

}  // namespace
}  // namespace cubessd::ftl
