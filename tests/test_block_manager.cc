/**
 * @file
 * Unit tests for the per-chip block manager: free-list lifecycle,
 * valid-page accounting, and greedy victim selection.
 */

#include <gtest/gtest.h>

#include "src/ftl/block_manager.h"

namespace cubessd::ftl {
namespace {

nand::NandGeometry
tinyGeom()
{
    nand::NandGeometry g;
    g.blocksPerChip = 4;
    g.layersPerBlock = 2;
    g.wlsPerLayer = 2;
    g.pagesPerWl = 3;
    return g;
}

class BlockManagerTest : public ::testing::Test
{
  protected:
    BlockManagerTest() : mgr_(tinyGeom()) {}

    /** Fully program a block and mark `valid` pages valid. */
    void
    fillBlock(std::uint32_t block, std::uint32_t valid)
    {
        const auto geom = tinyGeom();
        for (std::uint32_t w = 0; w < geom.wlsPerBlock(); ++w)
            mgr_.noteWlProgrammed(block);
        for (std::uint32_t p = 0; p < valid; ++p)
            mgr_.markValid(block, p, p);
        mgr_.close(block);
    }

    BlockManager mgr_;
};

TEST_F(BlockManagerTest, AllocateDrainsFreeList)
{
    EXPECT_EQ(mgr_.freeCount(), 4u);
    const auto b = mgr_.allocate();
    EXPECT_EQ(mgr_.freeCount(), 3u);
    EXPECT_FALSE(mgr_.info(b).isFree);
    EXPECT_TRUE(mgr_.info(b).isActive);
}

TEST_F(BlockManagerTest, ReleaseReturnsToFreeList)
{
    const auto b = mgr_.allocate();
    mgr_.close(b);
    mgr_.release(b);
    EXPECT_EQ(mgr_.freeCount(), 4u);
    EXPECT_TRUE(mgr_.info(b).isFree);
}

TEST_F(BlockManagerTest, ValidAccounting)
{
    const auto b = mgr_.allocate();
    mgr_.markValid(b, 0, 100);
    mgr_.markValid(b, 5, 105);
    EXPECT_EQ(mgr_.info(b).validCount, 2u);
    EXPECT_EQ(mgr_.info(b).p2l[5], 105u);
    mgr_.markInvalid(b, 0);
    EXPECT_EQ(mgr_.info(b).validCount, 1u);
    EXPECT_EQ(mgr_.info(b).p2l[0], kInvalidLba);
    // Idempotent double-invalidation.
    mgr_.markInvalid(b, 0);
    EXPECT_EQ(mgr_.info(b).validCount, 1u);
    EXPECT_EQ(mgr_.totalValid(), 1u);
}

TEST_F(BlockManagerTest, VictimIsLeastValid)
{
    const auto b0 = mgr_.allocate();
    const auto b1 = mgr_.allocate();
    fillBlock(b0, 5);
    fillBlock(b1, 2);
    const auto victim = mgr_.pickVictim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, b1);
}

TEST_F(BlockManagerTest, ActiveAndPartialBlocksAreNotVictims)
{
    const auto b0 = mgr_.allocate();  // active, stays open
    mgr_.markValid(b0, 0, 1);
    EXPECT_FALSE(mgr_.pickVictim().has_value());
}

TEST_F(BlockManagerTest, NearlyFullBlocksAreNotVictims)
{
    // A victim must reclaim more than one WL of padding waste.
    const auto geom = tinyGeom();
    const auto b = mgr_.allocate();
    fillBlock(b, geom.pagesPerBlock() - 1);  // only 1 invalid page
    EXPECT_FALSE(mgr_.pickVictim().has_value());
}

TEST_F(BlockManagerTest, ProfitableVictimFound)
{
    const auto geom = tinyGeom();
    const auto b = mgr_.allocate();
    fillBlock(b, geom.pagesPerBlock() - geom.pagesPerWl);
    const auto victim = mgr_.pickVictim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, b);
}

TEST_F(BlockManagerTest, ReleaseWithValidPagesPanics)
{
    const auto b = mgr_.allocate();
    mgr_.markValid(b, 0, 1);
    mgr_.close(b);
    EXPECT_DEATH(mgr_.release(b), "valid pages");
}

TEST_F(BlockManagerTest, DoubleMarkValidPanics)
{
    const auto b = mgr_.allocate();
    mgr_.markValid(b, 0, 1);
    EXPECT_DEATH(mgr_.markValid(b, 0, 2), "already valid");
}

TEST_F(BlockManagerTest, ReleaseCountsWear)
{
    const auto b = mgr_.allocate();
    mgr_.close(b);
    mgr_.release(b);
    EXPECT_EQ(mgr_.info(b).eraseCount, 1u);
    const auto again = mgr_.allocate();  // least-worn: a fresh block
    mgr_.close(again);
    mgr_.release(again);
    // Two blocks have wear 1, two have wear 0.
    EXPECT_EQ(mgr_.wearSpread(), 1u);
}

TEST_F(BlockManagerTest, AllocatePrefersLeastWorn)
{
    // Cycle block X twice so it is the most worn, then check that a
    // fresh allocation picks a different (unworn) block first.
    const auto worn = mgr_.allocate();
    mgr_.close(worn);
    mgr_.release(worn);
    const auto next = mgr_.allocate();
    EXPECT_NE(next, worn);  // three unworn blocks still exist
}

TEST_F(BlockManagerTest, VictimTieBreaksTowardLeastWorn)
{
    // Two equally-invalid victims; the less-worn one must be chosen.
    const auto b0 = mgr_.allocate();
    const auto b1 = mgr_.allocate();
    // Pre-wear b0 by cycling it once through the free list.
    mgr_.close(b0);
    mgr_.release(b0);
    const auto b0Again = mgr_.allocate();  // least-worn picks another
    EXPECT_NE(b0Again, b0);
    fillBlock(b1, 2);
    // Re-grab b0 explicitly to fill it too (it has wear 1 now).
    std::uint32_t b0Refetched = b0Again;
    while (b0Refetched != b0 && mgr_.freeCount() > 0)
        b0Refetched = mgr_.allocate();
    ASSERT_EQ(b0Refetched, b0);
    fillBlock(b0, 2);
    fillBlock(b0Again, 2);
    const auto victim = mgr_.pickVictim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_NE(*victim, b0);  // b0 is the worn one
}

TEST_F(BlockManagerTest, ExhaustedFreeListIsFatal)
{
    for (int i = 0; i < 4; ++i)
        mgr_.allocate();
    EXPECT_EXIT(mgr_.allocate(), ::testing::ExitedWithCode(1),
                "out of free blocks");
}

}  // namespace
}  // namespace cubessd::ftl
