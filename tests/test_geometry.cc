/**
 * @file
 * Unit tests for the 3D NAND geometry and address codec.
 */

#include <gtest/gtest.h>

#include "src/nand/geometry.h"

namespace cubessd::nand {
namespace {

TEST(Geometry, DerivedCountsDefaultConfig)
{
    NandGeometry g;  // paper defaults
    EXPECT_EQ(g.wlsPerBlock(), 48u * 4u);
    EXPECT_EQ(g.pagesPerBlock(), 48u * 4u * 3u);
    EXPECT_EQ(g.pagesPerChip(), 428ull * 576ull);
    EXPECT_TRUE(g.valid());
}

TEST(Geometry, InvalidOnZeroDimension)
{
    NandGeometry g;
    g.wlsPerLayer = 0;
    EXPECT_FALSE(g.valid());
}

TEST(AddressCodec, RoundTripsAllPagesOfSmallChip)
{
    NandGeometry g;
    g.blocksPerChip = 3;
    g.layersPerBlock = 4;
    g.wlsPerLayer = 2;
    g.pagesPerWl = 3;
    AddressCodec codec(g);
    for (std::uint64_t i = 0; i < g.pagesPerChip(); ++i) {
        const PageAddr addr = codec.decode(i);
        EXPECT_TRUE(codec.contains(addr));
        EXPECT_EQ(codec.encode(addr), i);
    }
}

TEST(AddressCodec, EncodeIsDenseAndOrdered)
{
    NandGeometry g;
    AddressCodec codec(g);
    // Page-major within WL, WL within layer, layer within block.
    const PageAddr a{0, 0, 0, 0};
    const PageAddr b{0, 0, 0, 1};
    const PageAddr c{0, 0, 1, 0};
    const PageAddr d{0, 1, 0, 0};
    const PageAddr e{1, 0, 0, 0};
    EXPECT_EQ(codec.encode(a) + 1, codec.encode(b));
    EXPECT_EQ(codec.encode(c), codec.encode(a) + g.pagesPerWl);
    EXPECT_EQ(codec.encode(d), codec.encode(a) + g.pagesPerLayer());
    EXPECT_EQ(codec.encode(e), codec.encode(a) + g.pagesPerBlock());
}

TEST(AddressCodec, WlRoundTrip)
{
    NandGeometry g;
    AddressCodec codec(g);
    for (std::uint64_t i = 0; i < 500; ++i) {
        const WlAddr addr = codec.decodeWl(i);
        EXPECT_EQ(codec.encodeWl(addr), i);
    }
}

TEST(AddressCodec, ContainsRejectsOutOfRange)
{
    NandGeometry g;
    AddressCodec codec(g);
    EXPECT_FALSE(codec.contains(PageAddr{g.blocksPerChip, 0, 0, 0}));
    EXPECT_FALSE(codec.contains(PageAddr{0, g.layersPerBlock, 0, 0}));
    EXPECT_FALSE(codec.contains(PageAddr{0, 0, g.wlsPerLayer, 0}));
    EXPECT_FALSE(codec.contains(PageAddr{0, 0, 0, g.pagesPerWl}));
    EXPECT_TRUE(codec.contains(PageAddr{0, 0, 0, 0}));
}

TEST(AddressCodec, PageAddrWlAddrConsistency)
{
    const PageAddr p{5, 7, 2, 1};
    const WlAddr w = p.wlAddr();
    EXPECT_EQ(w.block, 5u);
    EXPECT_EQ(w.layer, 7u);
    EXPECT_EQ(w.wl, 2u);
}

}  // namespace
}  // namespace cubessd::nand
