/**
 * @file
 * Unit tests for the program orders (Fig. 12): each sequence is a
 * permutation of all WLs, and each has the promised leader/follower
 * structure.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/ftl/program_order.h"

namespace cubessd::ftl {
namespace {

nand::NandGeometry
geom()
{
    nand::NandGeometry g;
    g.blocksPerChip = 2;
    g.layersPerBlock = 6;
    g.wlsPerLayer = 4;
    return g;
}

/** Every order must touch every WL exactly once. */
class OrderProperty
    : public ::testing::TestWithParam<ProgramOrderKind>
{
};

TEST_P(OrderProperty, IsAPermutationOfAllWls)
{
    const auto g = geom();
    const auto seq = programSequence(GetParam(), g, 1);
    ASSERT_EQ(seq.size(), g.wlsPerBlock());
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (const auto &wl : seq) {
        EXPECT_EQ(wl.block, 1u);
        EXPECT_LT(wl.layer, g.layersPerBlock);
        EXPECT_LT(wl.wl, g.wlsPerLayer);
        EXPECT_TRUE(seen.emplace(wl.layer, wl.wl).second)
            << "duplicate WL in sequence";
    }
}

TEST_P(OrderProperty, LeadersPrecedeTheirFollowers)
{
    // In every order, the leader of an h-layer is programmed before
    // any follower of that h-layer (the OPM depends on this).
    const auto g = geom();
    const auto seq = programSequence(GetParam(), g, 0);
    std::set<std::uint32_t> leaderDone;
    for (const auto &wl : seq) {
        if (isLeaderWl(wl)) {
            leaderDone.insert(wl.layer);
        } else {
            EXPECT_TRUE(leaderDone.count(wl.layer))
                << "follower before leader on layer " << wl.layer;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, OrderProperty,
    ::testing::Values(ProgramOrderKind::HorizontalFirst,
                      ProgramOrderKind::VerticalFirst,
                      ProgramOrderKind::Mixed));

TEST(ProgramOrder, HorizontalFirstShape)
{
    const auto g = geom();
    const auto seq =
        programSequence(ProgramOrderKind::HorizontalFirst, g, 0);
    // w11 w12 w13 w14 w21 ... (Fig. 12(a))
    EXPECT_EQ(seq[0], (nand::WlAddr{0, 0, 0}));
    EXPECT_EQ(seq[1], (nand::WlAddr{0, 0, 1}));
    EXPECT_EQ(seq[4], (nand::WlAddr{0, 1, 0}));
}

TEST(ProgramOrder, VerticalFirstShape)
{
    const auto g = geom();
    const auto seq =
        programSequence(ProgramOrderKind::VerticalFirst, g, 0);
    // w11 w21 ... wL1 w12 ... (Fig. 12(b))
    EXPECT_EQ(seq[0], (nand::WlAddr{0, 0, 0}));
    EXPECT_EQ(seq[1], (nand::WlAddr{0, 1, 0}));
    EXPECT_EQ(seq[g.layersPerBlock], (nand::WlAddr{0, 0, 1}));
}

TEST(ProgramOrder, VerticalFirstFrontloadsAllLeaders)
{
    // The v-layer-0 pass makes every later WL a follower: the whole
    // tail of the sequence is followers (the MOS motivation).
    const auto g = geom();
    const auto seq =
        programSequence(ProgramOrderKind::VerticalFirst, g, 0);
    for (std::uint32_t i = 0; i < g.layersPerBlock; ++i)
        EXPECT_TRUE(isLeaderWl(seq[i]));
    for (std::size_t i = g.layersPerBlock; i < seq.size(); ++i)
        EXPECT_FALSE(isLeaderWl(seq[i]));
}

TEST(ProgramOrder, MixedInterleavesLeadersAndFollowers)
{
    const auto g = geom();
    const auto seq = programSequence(ProgramOrderKind::Mixed, g, 0);
    // Unlike horizontal-first, leaders run ahead: by the time the
    // first follower appears, more than one leader is programmed.
    std::uint32_t leadersBeforeFirstFollower = 0;
    for (const auto &wl : seq) {
        if (isLeaderWl(wl))
            ++leadersBeforeFirstFollower;
        else
            break;
    }
    EXPECT_GT(leadersBeforeFirstFollower, 1u);
    EXPECT_LT(leadersBeforeFirstFollower, g.layersPerBlock);
}

TEST(ProgramOrder, MixedHandlesTinyBlocks)
{
    nand::NandGeometry g;
    g.blocksPerChip = 1;
    g.layersPerBlock = 1;
    g.wlsPerLayer = 4;
    const auto seq = programSequence(ProgramOrderKind::Mixed, g, 0);
    EXPECT_EQ(seq.size(), 4u);
    EXPECT_TRUE(isLeaderWl(seq[0]));
}

TEST(ProgramOrder, Names)
{
    EXPECT_STREQ(programOrderName(ProgramOrderKind::HorizontalFirst),
                 "horizontal-first");
    EXPECT_STREQ(programOrderName(ProgramOrderKind::VerticalFirst),
                 "vertical-first");
    EXPECT_STREQ(programOrderName(ProgramOrderKind::Mixed),
                 "mixed (MOS)");
}

}  // namespace
}  // namespace cubessd::ftl
