/**
 * @file
 * Unit tests for the Optimal Parameter Manager: derivation of follower
 * parameters from leader monitoring, margin projection, and the
 * safety check (Sec. 4.1.4).
 */

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ecc/ecc.h"
#include "src/ftl/opm.h"
#include "src/nand/ispp.h"

namespace cubessd::ftl {
namespace {

class OpmTest : public ::testing::Test
{
  protected:
    nand::IsppConfig ispp_{};
    nand::ErrorModel errors_{};
    ecc::EccModel ecc_{};
    Opm opm_{OpmConfig{}, errors_, ecc_, nand::IsppConfig{}.deltaVMv};
    nand::IsppEngine engine_{ispp_, errors_};
    Rng rng_{321};

    nand::WlProgramResult
    leaderAt(double q, const nand::AgingState &aging)
    {
        const double speed = 80.0 * (q - 1.0);
        return engine_.program(q, speed, aging, 1.0,
                               nand::ProgramCommand{}, rng_);
    }
};

TEST_F(OpmTest, FreshLeaderGetsCappedAdjustment)
{
    const nand::AgingState fresh{0, 0.0};
    const auto params = opm_.derive(leaderAt(1.0, fresh), fresh);
    EXPECT_TRUE(params.valid);
    // Fresh chips have enormous margin: the physical cap binds.
    EXPECT_EQ(params.vStartAdjMv + params.vFinalAdjMv,
              OpmConfig{}.maxShrinkMv);
    EXPECT_GT(params.vStartAdjMv, 0);
    EXPECT_GT(params.vFinalAdjMv, 0);
}

TEST_F(OpmTest, AdjustmentRespectsGranularity)
{
    const nand::AgingState fresh{0, 0.0};
    const auto params = opm_.derive(leaderAt(1.2, fresh), fresh);
    EXPECT_EQ(params.vStartAdjMv % OpmConfig{}.granularityMv, 0);
    EXPECT_EQ(params.vFinalAdjMv % OpmConfig{}.granularityMv, 0);
}

TEST_F(OpmTest, WornWorstLayerGetsNoAdjustment)
{
    // Paper Fig. 9: at end of life the worst layer has no spare
    // margin, so V_Start/V_Final stay at defaults.
    const nand::AgingState eol{2000, 1.0};
    const auto params = opm_.derive(leaderAt(1.6, eol), eol);
    EXPECT_EQ(params.vStartAdjMv + params.vFinalAdjMv, 0);
}

TEST_F(OpmTest, AdjustmentShrinksWithWear)
{
    // The S_M-driven adaptivity: the same layer earns progressively
    // smaller adjustments as the block wears out.
    const nand::AgingState fresh{0, 0.0};
    const nand::AgingState mid{1200, 0.0};
    const nand::AgingState eol{2000, 0.5};
    const auto pFresh = opm_.derive(leaderAt(1.25, fresh), fresh);
    const auto pMid = opm_.derive(leaderAt(1.25, mid), mid);
    const auto pEol = opm_.derive(leaderAt(1.25, eol), eol);
    EXPECT_GE(pFresh.totalAdjustMv(), pMid.totalAdjustMv());
    EXPECT_GE(pMid.totalAdjustMv(), pEol.totalAdjustMv());
    EXPECT_GT(pFresh.totalAdjustMv(), pEol.totalAdjustMv());
}

TEST_F(OpmTest, BetterLayersEarnMoreAtEol)
{
    const nand::AgingState eol{2000, 0.5};
    const auto good = opm_.derive(leaderAt(1.0, eol), eol);
    const auto bad = opm_.derive(leaderAt(1.6, eol), eol);
    EXPECT_GT(good.totalAdjustMv(), bad.totalAdjustMv());
}

TEST_F(OpmTest, SkipPlanShiftedByVStart)
{
    const nand::AgingState fresh{0, 0.0};
    const auto leader = leaderAt(1.0, fresh);
    const auto params = opm_.derive(leader, fresh);
    const auto unshifted = nand::IsppEngine::safeSkipPlan(leader.loops);
    const int shift =
        (params.vStartAdjMv + ispp_.deltaVMv - 1) / ispp_.deltaVMv;
    for (int s = 0; s < nand::kTlcStates; ++s) {
        EXPECT_EQ(params.skipPlan[static_cast<std::size_t>(s)],
                  std::max(0, unshifted[static_cast<std::size_t>(s)] -
                                  shift));
    }
}

TEST_F(OpmTest, FollowerCommandCarriesEverything)
{
    const nand::AgingState fresh{0, 0.0};
    const auto params = opm_.derive(leaderAt(1.1, fresh), fresh);
    const auto cmd = params.followerCommand();
    EXPECT_TRUE(cmd.useSkipPlan);
    EXPECT_EQ(cmd.vStartAdjMv, params.vStartAdjMv);
    EXPECT_EQ(cmd.vFinalAdjMv, params.vFinalAdjMv);
    EXPECT_TRUE(cmd.nonDefault());
}

TEST_F(OpmTest, FollowerWithinExpectationPassesSafetyCheck)
{
    const nand::AgingState fresh{0, 0.0};
    const auto leader = leaderAt(1.05, fresh);
    const auto params = opm_.derive(leader, fresh);
    const auto follower = engine_.program(
        1.05, 80.0 * 0.05, fresh, 1.0, params.followerCommand(), rng_);
    EXPECT_FALSE(opm_.needsReprogram(params, follower));
}

TEST_F(OpmTest, WildlyDeviantFollowerFailsSafetyCheck)
{
    const nand::AgingState fresh{0, 0.0};
    const auto leader = leaderAt(1.05, fresh);
    const auto params = opm_.derive(leader, fresh);
    nand::WlProgramResult bogus;
    bogus.berMultiplier = params.expectedMultiplier * 3.0;
    EXPECT_TRUE(opm_.needsReprogram(params, bogus));
}

TEST(OpmConfigTest, TighterGuardSmallerAdjustment)
{
    nand::ErrorModel errors;
    ecc::EccModel ecc;
    nand::IsppConfig ispp;
    nand::IsppEngine engine(ispp, errors);
    Rng rng(5);
    const nand::AgingState mid{2000, 0.0};
    const auto leader = engine.program(1.2, 16.0, mid, 1.0,
                                       nand::ProgramCommand{}, rng);
    OpmConfig loose;
    loose.marginGuard = 0.9;
    OpmConfig tight;
    tight.marginGuard = 0.2;
    Opm a(loose, errors, ecc, ispp.deltaVMv);
    Opm b(tight, errors, ecc, ispp.deltaVMv);
    EXPECT_GE(a.derive(leader, mid).totalAdjustMv(),
              b.derive(leader, mid).totalAdjustMv());
}

}  // namespace
}  // namespace cubessd::ftl
