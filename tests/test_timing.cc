/**
 * @file
 * Unit tests for the chip-level timing constants (src/nand/timing.h).
 */

#include <gtest/gtest.h>

#include "src/nand/timing.h"

namespace cubessd::nand {
namespace {

TEST(NandTiming, BusTransferRoundsUp)
{
    // Regression: the bus is held for whole clock edges, so
    // fractional nanoseconds must round *up*. The old static_cast
    // truncated 1.25 ns -> 1 ns, under-counting occupancy for every
    // transfer size that is not a multiple of the byte clock.
    NandTiming timing;  // busNsPerByte = 1.25
    EXPECT_GE(timing.busTransferTime(1), 2);
    EXPECT_EQ(timing.busTransferTime(1), 2);
    EXPECT_EQ(timing.busTransferTime(2), 3);   // 2.5 -> 3
    EXPECT_EQ(timing.busTransferTime(3), 4);   // 3.75 -> 4
    EXPECT_EQ(timing.busTransferTime(0), 0);
}

TEST(NandTiming, BusTransferExactMultiplesUnchanged)
{
    // Whole-nanosecond transfers must not change: a default 16 KB
    // page is 16384 * 1.25 = 20480 ns exactly, which is why the
    // rounding fix leaves the page-granular benches bit-identical.
    NandTiming timing;
    EXPECT_EQ(timing.busTransferTime(4), 5);
    EXPECT_EQ(timing.busTransferTime(16384), 20480);
    EXPECT_EQ(timing.busTransferTime(3 * 16384), 61440);
}

TEST(NandTiming, BusTransferMonotonic)
{
    NandTiming timing;
    for (std::uint64_t b = 1; b < 64; ++b)
        EXPECT_GE(timing.busTransferTime(b),
                  timing.busTransferTime(b - 1));
}

}  // namespace
}  // namespace cubessd::nand
