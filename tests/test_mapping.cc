/**
 * @file
 * Unit tests for the L2P mapping table.
 */

#include <gtest/gtest.h>

#include <optional>

#include "src/ftl/mapping.h"

namespace cubessd::ftl {
namespace {

TEST(Mapping, StartsUnmapped)
{
    MappingTable map(100);
    for (Lba l = 0; l < 100; ++l) {
        EXPECT_EQ(map.lookup(l), std::nullopt);
        EXPECT_EQ(map.mappedVersion(l), 0u);
    }
    EXPECT_EQ(map.mappedCount(), 0u);
}

TEST(Mapping, MapReturnsOldPpa)
{
    MappingTable map(10);
    EXPECT_EQ(map.map(3, 777, 1), std::nullopt);
    EXPECT_EQ(map.lookup(3), 777u);
    EXPECT_EQ(map.mappedVersion(3), 1u);
    EXPECT_EQ(map.map(3, 888, 2), 777u);
    EXPECT_EQ(map.lookup(3), 888u);
    EXPECT_EQ(map.mappedVersion(3), 2u);
}

TEST(Mapping, MappedCountTracksFirstMapping)
{
    MappingTable map(10);
    map.map(1, 100, 1);
    map.map(1, 200, 2);
    map.map(2, 300, 3);
    EXPECT_EQ(map.mappedCount(), 2u);
}

TEST(MappingDeathTest, OutOfRangePanics)
{
    MappingTable map(10);
    EXPECT_DEATH(map.lookup(10), "out of range");
    EXPECT_DEATH(map.map(11, 0, 1), "out of range");
}

}  // namespace
}  // namespace cubessd::ftl
