/**
 * @file
 * Unit tests for the ECC capability model.
 */

#include <gtest/gtest.h>

#include "src/ecc/ecc.h"

namespace cubessd::ecc {
namespace {

TEST(Ecc, DefaultLimit)
{
    EccModel ecc;
    // 88 bits over 1 KiB data, derated.
    const double raw = 88.0 / (1024.0 * 8.0);
    EXPECT_NEAR(ecc.limitBer(), raw * ecc.config().derating, 1e-12);
}

TEST(Ecc, VerdictThreshold)
{
    EccModel ecc;
    EXPECT_TRUE(ecc.correctable(ecc.limitBer() * 0.99));
    EXPECT_TRUE(ecc.correctable(ecc.limitBer()));
    EXPECT_FALSE(ecc.correctable(ecc.limitBer() * 1.01));
    EXPECT_TRUE(ecc.correctable(0.0));
}

TEST(Ecc, ExpectedErrors)
{
    EccModel ecc;
    EXPECT_NEAR(ecc.expectedErrors(1e-3), 1e-3 * 8192.0, 1e-9);
}

TEST(Ecc, CodewordsPerPage)
{
    EccModel ecc;
    EXPECT_EQ(ecc.codewordsPerPage(16 * 1024), 16u);
    EXPECT_EQ(ecc.codewordsPerPage(16 * 1024 + 1), 17u);
    EXPECT_EQ(ecc.codewordsPerPage(1), 1u);
}

TEST(Ecc, StrongerCodeHigherLimit)
{
    EccConfig weak;
    weak.correctableBits = 40;
    EccConfig strong;
    strong.correctableBits = 120;
    EXPECT_GT(EccModel(strong).limitBer(), EccModel(weak).limitBer());
}

TEST(Ecc, DecodeLatencyModes)
{
    EccModel ecc;
    const double clean = ecc.hardLimitBer() * 0.5;
    const double noisy = ecc.hardLimitBer() * 1.5;
    // Clean pages: the hard decode hides inside the bus transfer.
    EXPECT_EQ(ecc.decodeLatencyNs(clean, false), 0u);
    EXPECT_EQ(ecc.decodeLatencyNs(clean, true), 0u);
    // Noisy pages: the hint skips the doomed hard attempt.
    EXPECT_EQ(ecc.decodeLatencyNs(noisy, false),
              ecc.config().tHardDecodeNs + ecc.config().tSoftDecodeNs);
    EXPECT_EQ(ecc.decodeLatencyNs(noisy, true),
              ecc.config().tSoftDecodeNs);
}

TEST(Ecc, HardLimitBelowFullLimit)
{
    EccModel ecc;
    EXPECT_LT(ecc.hardLimitBer(), ecc.limitBer());
    EXPECT_GT(ecc.hardLimitBer(), 0.0);
}

TEST(EccDeathTest, ZeroCodeRejected)
{
    EccConfig bad;
    bad.correctableBits = 0;
    EXPECT_EXIT(EccModel{bad}, ::testing::ExitedWithCode(1),
                "zero-sized");
}

}  // namespace
}  // namespace cubessd::ecc
