/**
 * @file
 * Unit tests for the workload generators.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/workload/workload.h"

namespace cubessd::workload {
namespace {

constexpr std::uint64_t kPages = 100000;

TEST(Workload, AllSpecsWellFormed)
{
    for (const auto &spec : allWorkloads()) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GE(spec.readFraction, 0.0);
        EXPECT_LE(spec.readFraction, 1.0);
        EXPECT_GE(spec.minPages, 1u);
        EXPECT_GE(spec.maxPages, spec.minPages);
        if (spec.maxWritePages != 0)
            EXPECT_GE(spec.maxWritePages, spec.minWritePages);
        EXPECT_GT(spec.workingSetFraction, 0.0);
        EXPECT_LE(spec.workingSetFraction, 1.0);
        if (spec.burstLength > 0)
            EXPECT_GT(spec.interBurstGap, 0u);
    }
}

TEST(Workload, SixPaperWorkloads)
{
    const auto all = allWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "Mail");
    EXPECT_EQ(all[1].name, "Web");
    EXPECT_EQ(all[2].name, "Proxy");
    EXPECT_EQ(all[3].name, "OLTP");
    EXPECT_EQ(all[4].name, "Rocks");
    EXPECT_EQ(all[5].name, "Mongo");
}

TEST(Workload, RequestsStayWithinWorkingSet)
{
    WorkloadGenerator gen(oltp(), kPages, 1);
    for (int i = 0; i < 5000; ++i) {
        const auto req = gen.next();
        EXPECT_LT(req.lba + req.pages, gen.workingSetPages() + 1);
        EXPECT_GE(req.pages, 1u);
    }
}

TEST(Workload, ReadFractionRespected)
{
    WorkloadGenerator gen(web(), kPages, 2);
    int reads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        reads += gen.next().type == ssd::IoType::Read;
    EXPECT_NEAR(static_cast<double>(reads) / n, web().readFraction,
                0.02);
}

TEST(Workload, WriteSizeRangeRespected)
{
    WorkloadGenerator gen(proxy(), kPages, 3);
    for (int i = 0; i < 5000; ++i) {
        const auto req = gen.next();
        if (req.type == ssd::IoType::Read) {
            EXPECT_GE(req.pages, proxy().minPages);
            EXPECT_LE(req.pages, proxy().maxPages);
        } else {
            EXPECT_GE(req.pages, proxy().minWritePages);
            EXPECT_LE(req.pages, proxy().maxWritePages);
        }
    }
}

TEST(Workload, ZipfSkewConcentratesAccesses)
{
    WorkloadGenerator gen(mongo(), kPages, 4);  // theta 0.99
    std::map<Lba, int> hits;
    for (int i = 0; i < 30000; ++i)
        ++hits[gen.next().lba];
    // The hottest page must absorb far more than the uniform share.
    int maxHits = 0;
    for (const auto &[lba, count] : hits)
        maxHits = std::max(maxHits, count);
    EXPECT_GT(maxHits, 100);
}

TEST(Workload, SequentialWritesAdvance)
{
    auto spec = rocks();
    spec.sequentialWriteFraction = 1.0;
    spec.readFraction = 0.0;
    WorkloadGenerator gen(spec, kPages, 5);
    Lba prevEnd = 0;
    for (int i = 0; i < 100; ++i) {
        const auto req = gen.next();
        EXPECT_EQ(req.lba, prevEnd);
        prevEnd = req.lba + req.pages;
    }
}

TEST(Workload, DeterministicPerSeed)
{
    WorkloadGenerator a(mail(), kPages, 9), b(mail(), kPages, 9);
    for (int i = 0; i < 1000; ++i) {
        const auto ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.lba, rb.lba);
        EXPECT_EQ(ra.pages, rb.pages);
        EXPECT_EQ(static_cast<int>(ra.type), static_cast<int>(rb.type));
    }
}

TEST(Workload, DifferentSeedsDiffer)
{
    WorkloadGenerator a(mail(), kPages, 1), b(mail(), kPages, 2);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += a.next().lba == b.next().lba;
    EXPECT_LT(same, 50);
}

TEST(WorkloadDeathTest, EmptyDeviceRejected)
{
    EXPECT_EXIT(WorkloadGenerator(mail(), 0, 1),
                ::testing::ExitedWithCode(1), "empty device");
}

}  // namespace
}  // namespace cubessd::workload
