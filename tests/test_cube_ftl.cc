/**
 * @file
 * cubeFTL-specific tests: leader monitoring feeds follower commands,
 * follower programs are faster, the ORT eliminates repeat retries,
 * WAM steering reacts to buffer pressure, and cubeFTL- degenerates to
 * horizontal-first.
 */

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ftl/cube_ftl.h"
#include "src/ssd/ssd.h"

namespace cubessd {
namespace {

ssd::SsdConfig
smallConfig(ssd::FtlKind kind)
{
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 16;
    config.chip.geometry.layersPerBlock = 8;
    config.chip.geometry.wlsPerLayer = 4;
    config.writeBufferPages = 24;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = kind;
    config.seed = 91;
    return config;
}

void
writeSync(ssd::Ssd &dev, Lba lba, std::uint32_t pages)
{
    ssd::HostRequest req;
    req.type = ssd::IoType::Write;
    req.lba = lba;
    req.pages = pages;
    dev.submitSync(req);
}

ssd::Completion
readSync(ssd::Ssd &dev, Lba lba, std::uint32_t pages = 1)
{
    ssd::HostRequest req;
    req.type = ssd::IoType::Read;
    req.lba = lba;
    req.pages = pages;
    return dev.submitSync(req);
}

TEST(CubeFtl, FollowersUseDerivedParams)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube));
    for (Lba lba = 0; lba < 300; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    const auto &cube = static_cast<ftl::CubeFtl &>(dev.ftl());
    const auto &cs = cube.cubeStats();
    EXPECT_GT(cs.followerWithParams, 0u);
    // Nearly every follower must ride on leader-derived parameters.
    EXPECT_LT(cs.followerWithoutParams, cs.followerWithParams / 10 + 3);
}

TEST(CubeFtl, FollowerProgramsAreFasterOnAverage)
{
    auto run = [](ssd::FtlKind kind) {
        ssd::Ssd dev(smallConfig(kind));
        for (Lba lba = 0; lba < 400; ++lba)
            writeSync(dev, lba, 1);
        dev.drain();
        return dev.ftl().stats().avgProgramLatencyUs();
    };
    const double cube = run(ssd::FtlKind::Cube);
    const double page = run(ssd::FtlKind::Page);
    // Paper: ~30% average tPROG reduction for cubeFTL.
    EXPECT_LT(cube, page * 0.82);
    EXPECT_GT(cube, page * 0.55);
}

TEST(CubeFtl, OrtEliminatesRepeatRetries)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube));
    dev.setAging({2000, 0.0});
    for (Lba lba = 0; lba < 120; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    dev.setAging({2000, 12.0});

    // First read of each page on an h-layer may retry; repeats of the
    // same pages must ride the ORT.
    auto readAll = [&] {
        const auto before = dev.ftl().stats().readRetries;
        for (Lba lba = 0; lba < 120; ++lba)
            readSync(dev, lba);
        return dev.ftl().stats().readRetries - before;
    };
    const auto firstPass = readAll();
    const auto secondPass = readAll();
    EXPECT_GT(firstPass, 0u);
    EXPECT_LT(secondPass, firstPass / 3);

    const auto &cube = static_cast<ftl::CubeFtl &>(dev.ftl());
    EXPECT_GT(cube.cubeStats().ortGuidedReads, 0u);
}

TEST(CubeFtl, PsUnawareFtlRetriesEveryTime)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    dev.setAging({2000, 0.0});
    for (Lba lba = 0; lba < 120; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    dev.setAging({2000, 12.0});
    auto readAll = [&] {
        const auto before = dev.ftl().stats().readRetries;
        for (Lba lba = 0; lba < 120; ++lba)
            readSync(dev, lba);
        return dev.ftl().stats().readRetries - before;
    };
    const auto firstPass = readAll();
    const auto secondPass = readAll();
    // No learning: the second pass pays all over again.
    EXPECT_GT(secondPass, firstPass / 2);
}

TEST(CubeFtl, CubeMinusUsesSingleWritePointHorizontalOrder)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::CubeMinus));
    for (Lba lba = 0; lba < 300; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    const auto &stats = dev.ftl().stats();
    // Horizontal-first: leader:follower == 1:3.
    const double ratio = static_cast<double>(stats.followerPrograms) /
                         static_cast<double>(stats.leaderPrograms);
    EXPECT_NEAR(ratio, 3.0, 0.35);
    dev.ftl().checkConsistency();
}

TEST(CubeFtl, DataIntegrityUnderGcChurn)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube));
    const Lba span = dev.logicalPages() * 9 / 10;
    Rng rng(8);
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba, 1);
    std::vector<std::uint64_t> latest(span);
    for (int i = 0; i < static_cast<int>(span); ++i)
        writeSync(dev, rng.uniformInt(span), 1);
    dev.drain();
    for (Lba lba = 0; lba < span; ++lba)
        latest[lba] = dev.peek(lba).value();
    dev.ftl().checkConsistency();
    EXPECT_GT(dev.ftl().stats().gcCollections, 0u);
    // Reads return exactly the latest tokens.
    for (Lba lba = 0; lba < span; lba += 7) {
        readSync(dev, lba);
        EXPECT_EQ(dev.peek(lba).value(), latest[lba]);
    }
}

TEST(CubeFtl, ConsistencyHoldsUnderMixedLoad)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube));
    Rng rng(15);
    const Lba span = dev.logicalPages() / 2;
    for (int i = 0; i < 2000; ++i) {
        ssd::HostRequest req;
        req.type = rng.bernoulli(0.5) ? ssd::IoType::Read
                                      : ssd::IoType::Write;
        req.lba = rng.uniformInt(span);
        req.pages = 1 + static_cast<std::uint32_t>(rng.uniformInt(4));
        dev.submitSync(req);
    }
    dev.drain();
    dev.ftl().checkConsistency();
}

TEST(CubeFtl, SafetyReprogramsAreRareButHandled)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube));
    const Lba span = dev.logicalPages() * 3 / 4;
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    const auto &stats = dev.ftl().stats();
    // The check exists and almost never fires under stable conditions.
    EXPECT_LT(stats.safetyReprograms,
              (stats.hostPrograms + stats.gcPrograms) / 50 + 2);
    dev.ftl().checkConsistency();
    for (Lba lba = 0; lba < span; lba += 11)
        EXPECT_TRUE(dev.peek(lba).has_value());
}

TEST(CubeFtl, AblationSwitchesChangeBehaviour)
{
    auto run = [](const ssd::CubeFeatures &features) {
        auto config = smallConfig(ssd::FtlKind::Cube);
        config.cubeFeatures = features;
        ssd::Ssd dev(config);
        for (Lba lba = 0; lba < 400; ++lba)
            writeSync(dev, lba, 1);
        dev.drain();
        return dev.ftl().stats().avgProgramLatencyUs();
    };
    const double all = run({true, true, true, true});
    const double noSkip = run({false, true, true, true});
    const double noWindow = run({true, false, true, true});
    const double none = run({false, false, true, true});
    // Each program-path technique contributes latency on its own.
    EXPECT_LT(all, noSkip);
    EXPECT_LT(all, noWindow);
    EXPECT_LT(noSkip, none * 1.01);
    EXPECT_LT(noWindow, none * 1.01);
    // With both program techniques off, followers run at default
    // speed (like pageFTL).
    EXPECT_NEAR(none, 700.0, 25.0);
}

TEST(CubeFtl, OrtSwitchDisablesReadLearning)
{
    auto retriesSecondPass = [](bool ortOn) {
        auto config = smallConfig(ssd::FtlKind::Cube);
        config.cubeFeatures.ort = ortOn;
        ssd::Ssd dev(config);
        dev.setAging({2000, 0.0});
        for (Lba lba = 0; lba < 120; ++lba)
            writeSync(dev, lba, 1);
        dev.drain();
        dev.setAging({2000, 12.0});
        for (Lba lba = 0; lba < 120; ++lba)
            readSync(dev, lba);
        const auto before = dev.ftl().stats().readRetries;
        for (Lba lba = 0; lba < 120; ++lba)
            readSync(dev, lba);
        return dev.ftl().stats().readRetries - before;
    };
    const auto with = retriesSecondPass(true);
    const auto without = retriesSecondPass(false);
    EXPECT_LT(with, without / 2);
}

TEST(CubeFtl, SafetyCheckFiresOnSuddenConditionChange)
{
    // Sec. 4.1.4: a sudden operating-condition change invalidates the
    // leader's monitored parameters; the FTL must detect the deviant
    // follower program and re-program the data.
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube));
    // Program leaders (and derive parameters) under fresh conditions.
    for (Lba lba = 0; lba < 60; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    // Sudden severe change: heavy wear + retention shifts the ISPP
    // windows, so the cached skip plans now over-program.
    dev.setAging({2000, 12.0});
    for (Lba lba = 60; lba < 400; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    EXPECT_GT(dev.ftl().stats().safetyReprograms, 0u);
    dev.ftl().checkConsistency();
    // The re-programmed data is intact.
    for (Lba lba = 0; lba < 400; ++lba)
        EXPECT_TRUE(dev.peek(lba).has_value());
}

}  // namespace
}  // namespace cubessd
