/**
 * @file
 * Round-trip tests for the JSON metrics export: emit with JsonWriter,
 * re-parse with a minimal strict JSON parser, and check the values —
 * proving the export is valid JSON that downstream tooling (and the
 * BENCH_*.json diffs) can consume.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/json.h"
#include "src/metrics/request_metrics.h"
#include "tests/json_test_util.h"

namespace cubessd::metrics {
namespace {

using testutil::JsonValue;
using testutil::parseJson;

// ------------------------------------------------------------------
// JsonWriter basics
// ------------------------------------------------------------------

TEST(JsonWriter, NestedStructuresRoundTrip)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("name", "cube\"ssd\"");
    w.field("iops", 12345.5);
    w.field("count", std::uint64_t{42});
    w.field("ok", true);
    w.key("list");
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(2.5);
    w.value("three");
    w.endArray();
    w.key("nested");
    w.beginObject().field("deep", std::int64_t{-7}).endObject();
    w.endObject();

    const JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("name").text, "cube\"ssd\"");
    EXPECT_DOUBLE_EQ(root.at("iops").number, 12345.5);
    EXPECT_DOUBLE_EQ(root.at("count").number, 42.0);
    EXPECT_TRUE(root.at("ok").boolean);
    ASSERT_EQ(root.at("list").items.size(), 3u);
    EXPECT_DOUBLE_EQ(root.at("list").items[1].number, 2.5);
    EXPECT_EQ(root.at("list").items[2].text, "three");
    EXPECT_DOUBLE_EQ(root.at("nested").at("deep").number, -7.0);
}

TEST(JsonWriter, NonFiniteValuesSerializeAsNull)
{
    // NaN/Inf have no JSON representation; emitting the printf tokens
    // ("nan", "inf") would corrupt the document. They must come out
    // as null — and the strict parser must accept the result.
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("not_a_number", std::nan(""));
    w.field("too_big", std::numeric_limits<double>::infinity());
    w.field("too_small", -std::numeric_limits<double>::infinity());
    w.field("fine", 1.5);
    w.key("explicit_null");
    w.null();
    w.endObject();

    const JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("not_a_number").kind, JsonValue::Kind::Null);
    EXPECT_EQ(root.at("too_big").kind, JsonValue::Kind::Null);
    EXPECT_EQ(root.at("too_small").kind, JsonValue::Kind::Null);
    EXPECT_DOUBLE_EQ(root.at("fine").number, 1.5);
    EXPECT_EQ(root.at("explicit_null").kind, JsonValue::Kind::Null);
}

TEST(JsonWriter, SigDigitsControlPrecision)
{
    // Trace timestamps are nanosecond-resolution microsecond values;
    // the default 6 significant digits would quantize them. The
    // explicit-precision overload must round-trip them exactly.
    const double ts = 123456789.012345;  // ~123.46 s in us
    std::ostringstream out;
    JsonWriter w(out);
    w.beginArray();
    w.value(ts);       // default precision: lossy
    w.value(ts, 16);   // trace precision: exact
    w.endArray();

    const JsonValue root = parseJson(out.str());
    EXPECT_NE(root.items[0].number, ts);
    EXPECT_EQ(root.items[1].number, ts);
}

TEST(JsonWriter, EmptyContainers)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("arr");
    w.beginArray().endArray();
    w.key("obj");
    w.beginObject().endObject();
    w.endObject();
    const JsonValue root = parseJson(out.str());
    EXPECT_TRUE(root.at("arr").items.empty());
    EXPECT_TRUE(root.at("obj").members.empty());
}

// ------------------------------------------------------------------
// Metrics schema round-trip
// ------------------------------------------------------------------

ssd::Completion
makeCompletion(ssd::IoType type, SimTime latencyNs,
               const ssd::PhaseTimes &phases)
{
    ssd::Completion c;
    c.type = type;
    c.arrival = 0;
    c.start = phases.queueWait;
    c.finish = latencyNs;
    c.phases = phases;
    return c;
}

TEST(JsonExport, RequestMetricsRoundTrip)
{
    RequestMetrics metrics;
    for (int i = 1; i <= 100; ++i) {
        ssd::PhaseTimes p;
        p.queueWait = 1000 * i;
        p.bus = 20480;
        p.die = 58000;
        p.retry = (i % 10 == 0) ? 58000 : 0;
        metrics.record(makeCompletion(ssd::IoType::Read,
                                      100000 + 1000 * i, p));
    }
    ssd::PhaseTimes wp;
    wp.buffer = 5000;
    metrics.record(makeCompletion(ssd::IoType::Write, 5000, wp));

    std::ostringstream out;
    JsonWriter w(out);
    writeRequestMetrics(w, metrics);
    const JsonValue root = parseJson(out.str());

    const JsonValue &read = root.at("read");
    EXPECT_DOUBLE_EQ(read.at("latency").at("count").number, 100.0);
    // 100..200 us latencies: p50 within histogram quantization.
    const double p50 = read.at("latency").at("p50_us").number;
    EXPECT_GE(p50, 150.0);
    EXPECT_LE(p50, 150.0 * 1.125);
    // All percentile keys of the schema are present.
    for (const char *key :
         {"count", "mean_us", "min_us", "p50_us", "p95_us", "p99_us",
          "p999_us", "max_us"})
        EXPECT_NO_THROW(read.at("latency").at(key)) << key;
    // Phase decomposition present for all five phases.
    for (const char *phase :
         {"queueWait", "buffer", "bus", "die", "retry"})
        EXPECT_DOUBLE_EQ(
            read.at("phases").at(phase).at("count").number, 100.0)
            << phase;
    // The bus phase is a constant 20.48 us; exact small-count check.
    EXPECT_DOUBLE_EQ(read.at("phases").at("bus").at("max_us").number,
                     20.48);
    // Every 10th read retried once (58 us): retry count still 100
    // (zeros recorded), max is the retry time.
    EXPECT_DOUBLE_EQ(read.at("phases").at("retry").at("max_us").number,
                     58.0);

    const JsonValue &write = root.at("write");
    EXPECT_DOUBLE_EQ(write.at("latency").at("count").number, 1.0);
    EXPECT_DOUBLE_EQ(write.at("phases").at("buffer").at("max_us").number,
                     5.0);
}

TEST(JsonExport, UtilizationRoundTrip)
{
    Utilization util;
    util.window = 1000000;
    util.channel = {0.5, 0.25};
    util.die = {0.1, 0.2, 0.3, 0.4};

    std::ostringstream out;
    JsonWriter w(out);
    writeUtilization(w, util);
    const JsonValue root = parseJson(out.str());

    EXPECT_DOUBLE_EQ(root.at("window_us").number, 1000.0);
    ASSERT_EQ(root.at("channel").items.size(), 2u);
    EXPECT_DOUBLE_EQ(root.at("channel").items[0].number, 0.5);
    EXPECT_DOUBLE_EQ(root.at("channel_avg").number, 0.375);
    ASSERT_EQ(root.at("die").items.size(), 4u);
    EXPECT_DOUBLE_EQ(root.at("die_avg").number, 0.25);
}

TEST(JsonExport, EmptyMetricsStillValid)
{
    RequestMetrics metrics;
    std::ostringstream out;
    JsonWriter w(out);
    writeRequestMetrics(w, metrics);
    const JsonValue root = parseJson(out.str());
    EXPECT_DOUBLE_EQ(root.at("read").at("latency").at("count").number,
                     0.0);
    EXPECT_DOUBLE_EQ(root.at("write").at("latency").at("count").number,
                     0.0);
}

}  // namespace
}  // namespace cubessd::metrics
