/**
 * @file
 * Round-trip tests for the JSON metrics export: emit with JsonWriter,
 * re-parse with a minimal strict JSON parser, and check the values —
 * proving the export is valid JSON that downstream tooling (and the
 * BENCH_*.json diffs) can consume.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/json.h"
#include "src/metrics/request_metrics.h"

namespace cubessd::metrics {
namespace {

// ------------------------------------------------------------------
// Minimal strict JSON parser (test-only). Numbers parse as double,
// objects as maps; throws std::runtime_error on malformed input.
// ------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &name) const
    {
        auto it = members.find(name);
        if (it == members.end())
            throw std::runtime_error("missing key: " + name);
        return it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text)
        : text_(std::move(text))
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default:  return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            if (!v.members.emplace(key.text, parseValue()).second)
                throw std::runtime_error("duplicate key: " + key.text);
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':  c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/':  c = '/'; break;
                  case 'n':  c = '\n'; break;
                  case 't':  c = '\t'; break;
                  case 'r':  c = '\r'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("bad \\u escape");
                    c = static_cast<char>(std::stoi(
                        text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                  }
                  default: throw std::runtime_error("bad escape");
                }
            }
            v.text += c;
        }
        expect('"');
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            throw std::runtime_error("bad number");
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

// ------------------------------------------------------------------
// JsonWriter basics
// ------------------------------------------------------------------

TEST(JsonWriter, NestedStructuresRoundTrip)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("name", "cube\"ssd\"");
    w.field("iops", 12345.5);
    w.field("count", std::uint64_t{42});
    w.field("ok", true);
    w.key("list");
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(2.5);
    w.value("three");
    w.endArray();
    w.key("nested");
    w.beginObject().field("deep", std::int64_t{-7}).endObject();
    w.endObject();

    const JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("name").text, "cube\"ssd\"");
    EXPECT_DOUBLE_EQ(root.at("iops").number, 12345.5);
    EXPECT_DOUBLE_EQ(root.at("count").number, 42.0);
    EXPECT_TRUE(root.at("ok").boolean);
    ASSERT_EQ(root.at("list").items.size(), 3u);
    EXPECT_DOUBLE_EQ(root.at("list").items[1].number, 2.5);
    EXPECT_EQ(root.at("list").items[2].text, "three");
    EXPECT_DOUBLE_EQ(root.at("nested").at("deep").number, -7.0);
}

TEST(JsonWriter, EmptyContainers)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("arr");
    w.beginArray().endArray();
    w.key("obj");
    w.beginObject().endObject();
    w.endObject();
    const JsonValue root = parseJson(out.str());
    EXPECT_TRUE(root.at("arr").items.empty());
    EXPECT_TRUE(root.at("obj").members.empty());
}

// ------------------------------------------------------------------
// Metrics schema round-trip
// ------------------------------------------------------------------

ssd::Completion
makeCompletion(ssd::IoType type, SimTime latencyNs,
               const ssd::PhaseTimes &phases)
{
    ssd::Completion c;
    c.type = type;
    c.arrival = 0;
    c.start = phases.queueWait;
    c.finish = latencyNs;
    c.phases = phases;
    return c;
}

TEST(JsonExport, RequestMetricsRoundTrip)
{
    RequestMetrics metrics;
    for (int i = 1; i <= 100; ++i) {
        ssd::PhaseTimes p;
        p.queueWait = 1000 * i;
        p.bus = 20480;
        p.die = 58000;
        p.retry = (i % 10 == 0) ? 58000 : 0;
        metrics.record(makeCompletion(ssd::IoType::Read,
                                      100000 + 1000 * i, p));
    }
    ssd::PhaseTimes wp;
    wp.buffer = 5000;
    metrics.record(makeCompletion(ssd::IoType::Write, 5000, wp));

    std::ostringstream out;
    JsonWriter w(out);
    writeRequestMetrics(w, metrics);
    const JsonValue root = parseJson(out.str());

    const JsonValue &read = root.at("read");
    EXPECT_DOUBLE_EQ(read.at("latency").at("count").number, 100.0);
    // 100..200 us latencies: p50 within histogram quantization.
    const double p50 = read.at("latency").at("p50_us").number;
    EXPECT_GE(p50, 150.0);
    EXPECT_LE(p50, 150.0 * 1.125);
    // All percentile keys of the schema are present.
    for (const char *key :
         {"count", "mean_us", "min_us", "p50_us", "p95_us", "p99_us",
          "p999_us", "max_us"})
        EXPECT_NO_THROW(read.at("latency").at(key)) << key;
    // Phase decomposition present for all five phases.
    for (const char *phase :
         {"queueWait", "buffer", "bus", "die", "retry"})
        EXPECT_DOUBLE_EQ(
            read.at("phases").at(phase).at("count").number, 100.0)
            << phase;
    // The bus phase is a constant 20.48 us; exact small-count check.
    EXPECT_DOUBLE_EQ(read.at("phases").at("bus").at("max_us").number,
                     20.48);
    // Every 10th read retried once (58 us): retry count still 100
    // (zeros recorded), max is the retry time.
    EXPECT_DOUBLE_EQ(read.at("phases").at("retry").at("max_us").number,
                     58.0);

    const JsonValue &write = root.at("write");
    EXPECT_DOUBLE_EQ(write.at("latency").at("count").number, 1.0);
    EXPECT_DOUBLE_EQ(write.at("phases").at("buffer").at("max_us").number,
                     5.0);
}

TEST(JsonExport, UtilizationRoundTrip)
{
    Utilization util;
    util.window = 1000000;
    util.channel = {0.5, 0.25};
    util.die = {0.1, 0.2, 0.3, 0.4};

    std::ostringstream out;
    JsonWriter w(out);
    writeUtilization(w, util);
    const JsonValue root = parseJson(out.str());

    EXPECT_DOUBLE_EQ(root.at("window_us").number, 1000.0);
    ASSERT_EQ(root.at("channel").items.size(), 2u);
    EXPECT_DOUBLE_EQ(root.at("channel").items[0].number, 0.5);
    EXPECT_DOUBLE_EQ(root.at("channel_avg").number, 0.375);
    ASSERT_EQ(root.at("die").items.size(), 4u);
    EXPECT_DOUBLE_EQ(root.at("die_avg").number, 0.25);
}

TEST(JsonExport, EmptyMetricsStillValid)
{
    RequestMetrics metrics;
    std::ostringstream out;
    JsonWriter w(out);
    writeRequestMetrics(w, metrics);
    const JsonValue root = parseJson(out.str());
    EXPECT_DOUBLE_EQ(root.at("read").at("latency").at("count").number,
                     0.0);
    EXPECT_DOUBLE_EQ(root.at("write").at("latency").at("count").number,
                     0.0);
}

}  // namespace
}  // namespace cubessd::metrics
