/**
 * @file
 * Unit tests for the common utilities: RNG, Zipf, statistics,
 * lookup tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/zipf.h"

namespace cubessd {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntUnbiasedBounds)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, UniformIntZeroAndOne)
{
    Rng rng(9);
    EXPECT_EQ(rng.uniformInt(0), 0u);
    EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.02);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.exponential(5.0));
    EXPECT_NEAR(stat.mean(), 5.0, 0.1);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, ForkIndependence)
{
    Rng parent(23);
    Rng child = parent.fork();
    // The child stream should not reproduce the parent stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent() == child();
    EXPECT_LT(same, 4);
}

TEST(Zipf, InRange)
{
    Rng rng(29);
    ZipfGenerator zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(Zipf, SkewOrdersRanks)
{
    Rng rng(31);
    ZipfGenerator zipf(1000, 0.99);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf.sample(rng)];
    // Rank 0 must be the clear winner and the head must dominate.
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[100]);
    int head = 0;
    for (int i = 0; i < 100; ++i)
        head += counts[i];
    EXPECT_GT(head, 200000 / 2);  // top 10% gets over half the mass
}

TEST(Zipf, LowThetaIsFlatter)
{
    Rng rng(37);
    ZipfGenerator skewed(1000, 1.1), flat(1000, 0.3);
    int skewedHead = 0, flatHead = 0;
    for (int i = 0; i < 50000; ++i) {
        skewedHead += skewed.sample(rng) < 10;
        flatHead += flat.sample(rng) < 10;
    }
    EXPECT_GT(skewedHead, 2 * flatHead);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 6.0, 8.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_NEAR(s.variance(), 20.0 / 3.0, 1e-12);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng rng(41);
    RunningStat whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(15.0);
    h.add(5.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.count(5), 1u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binHigh(3), 4.0);
}

TEST(LatencyRecorder, ExactPercentiles)
{
    LatencyRecorder rec;
    for (int i = 100; i >= 1; --i)
        rec.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(rec.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(rec.percentile(90), 90.0);
    EXPECT_DOUBLE_EQ(rec.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0), 1.0);
}

TEST(LatencyRecorder, CdfMonotone)
{
    LatencyRecorder rec;
    Rng rng(43);
    for (int i = 0; i < 1000; ++i)
        rec.add(rng.uniform(0.0, 100.0));
    const auto cdf = rec.cdf(20);
    ASSERT_EQ(cdf.size(), 20u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_LE(cdf[i - 1].first, cdf[i].first);
        EXPECT_LE(cdf[i - 1].second, cdf[i].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(PiecewiseLinearTable, InterpolatesAndClamps)
{
    PiecewiseLinearTable table({{0.0, 0.0}, {1.0, 100.0}, {2.0, 400.0}});
    EXPECT_DOUBLE_EQ(table.lookup(0.5), 50.0);
    EXPECT_DOUBLE_EQ(table.lookup(1.5), 250.0);
    EXPECT_DOUBLE_EQ(table.lookup(-1.0), 0.0);   // clamp low
    EXPECT_DOUBLE_EQ(table.lookup(5.0), 400.0);  // clamp high
}

}  // namespace
}  // namespace cubessd
