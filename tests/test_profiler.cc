/**
 * @file
 * Self-profiler tests (src/prof/).
 *
 * The profiler's contract has three parts, each pinned here:
 *
 *  1. Accounting: nested scopes charge inclusive time to themselves
 *     AND child time to the enclosing scope, so self = inclusive -
 *     child is exact when every hit is timed (setSamplePeriod(1)).
 *  2. Sampling: hit COUNTS are exact at any sampling period — only
 *     the timestamps are stride-sampled, and snapshot() scales them
 *     back up by the period.
 *  3. Observation-only + determinism: a run produces bit-identical
 *     simulation results with profiling on or off, and a merged sweep
 *     profile has identical slot counts for --jobs 1 and --jobs N.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/json.h"
#include "src/prof/prof.h"
#include "src/sim/sweep.h"
#include "src/ssd/ssd.h"
#include "src/workload/driver.h"
#include "src/workload/sweep.h"
#include "src/workload/workload.h"

namespace cubessd {
namespace {

/** Burn enough cycles that a timed scope accumulates nonzero ticks. */
std::uint64_t
spin(int iters = 20000)
{
    volatile std::uint64_t x = 0;
    for (int i = 0; i < iters; ++i)
        x = x + static_cast<std::uint64_t>(i);
    return x;
}

/** Saves and restores the global profiler switches around each test:
 *  the main test binary shares one process, so a test must not leak
 *  an enabled profiler or a non-default sampling period. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled_ = prof::enabled();
        oldPeriod_ = prof::samplePeriod();
        prof::resetThread();
    }

    void
    TearDown() override
    {
        prof::setEnabled(wasEnabled_);
        prof::setSamplePeriod(oldPeriod_);
        prof::resetThread();
    }

  private:
    bool wasEnabled_ = false;
    std::uint32_t oldPeriod_ = 16;
};

TEST_F(ProfilerTest, NestedScopeAccountingIsExact)
{
    prof::setSamplePeriod(1);  // time every hit: exact arithmetic
    prof::setEnabled(true);
    prof::resetThread();
    {
        prof::ProfScope outer(prof::Slot::FtlMapping);
        spin();
        {
            prof::ProfScope inner(prof::Slot::FtlOrtLookup);
            spin();
        }
        spin();
    }
    const prof::ProfileData d = prof::snapshot();

    EXPECT_EQ(d.count(prof::Slot::FtlMapping), 1u);
    EXPECT_EQ(d.count(prof::Slot::FtlOrtLookup), 1u);
    EXPECT_GT(d.totalTicks(prof::Slot::FtlOrtLookup), 0u);
    // The child's interval lies inside the parent's.
    EXPECT_GE(d.totalTicks(prof::Slot::FtlMapping),
              d.totalTicks(prof::Slot::FtlOrtLookup));
    // Exclusive + child inclusive == parent inclusive, to the tick:
    // the very same dt is added to the child's ticks and the parent's
    // childTicks.
    EXPECT_EQ(d.selfTicks(prof::Slot::FtlMapping) +
                  d.totalTicks(prof::Slot::FtlOrtLookup),
              d.totalTicks(prof::Slot::FtlMapping));
    // A leaf has no children: self == inclusive.
    EXPECT_EQ(d.selfTicks(prof::Slot::FtlOrtLookup),
              d.totalTicks(prof::Slot::FtlOrtLookup));
    // selfTicksSum never double-counts nested time.
    EXPECT_EQ(d.selfTicksSum(), d.totalTicks(prof::Slot::FtlMapping));
}

TEST_F(ProfilerTest, ThreeLevelNestingChargesEachParentOnce)
{
    prof::setSamplePeriod(1);
    prof::setEnabled(true);
    prof::resetThread();
    {
        prof::ProfScope a(prof::Slot::SimLoop);
        spin();
        {
            prof::ProfScope b(prof::Slot::SchedChipOp);
            spin();
            {
                prof::ProfScope c(prof::Slot::NandRead);
                spin();
            }
        }
    }
    const prof::ProfileData d = prof::snapshot();
    // Child time propagates one level only (to the immediate parent),
    // so the exclusive times partition the outermost inclusive time.
    EXPECT_EQ(d.selfTicks(prof::Slot::SimLoop) +
                  d.selfTicks(prof::Slot::SchedChipOp) +
                  d.selfTicks(prof::Slot::NandRead),
              d.totalTicks(prof::Slot::SimLoop));
}

TEST_F(ProfilerTest, ReenteredSlotAccumulatesCounts)
{
    prof::setSamplePeriod(1);
    prof::setEnabled(true);
    prof::resetThread();
    for (int i = 0; i < 8; ++i) {
        prof::ProfScope s(prof::Slot::NandProgramIspp);
        spin(2000);
    }
    const prof::ProfileData d = prof::snapshot();
    EXPECT_EQ(d.count(prof::Slot::NandProgramIspp), 8u);
    EXPECT_GT(d.totalTicks(prof::Slot::NandProgramIspp), 0u);
}

TEST_F(ProfilerTest, SamplePeriodRoundsUpToPowerOfTwo)
{
    prof::setSamplePeriod(1);
    EXPECT_EQ(prof::samplePeriod(), 1u);
    prof::setSamplePeriod(0);
    EXPECT_EQ(prof::samplePeriod(), 1u);
    prof::setSamplePeriod(3);
    EXPECT_EQ(prof::samplePeriod(), 4u);
    prof::setSamplePeriod(16);
    EXPECT_EQ(prof::samplePeriod(), 16u);
    prof::setSamplePeriod(17);
    EXPECT_EQ(prof::samplePeriod(), 32u);
}

TEST_F(ProfilerTest, SamplingKeepsCountsExactAndScalesTicks)
{
    prof::setSamplePeriod(4);
    prof::setEnabled(true);
    prof::resetThread();
    for (int i = 0; i < 11; ++i) {
        prof::ProfScope s(prof::Slot::NandReadBerEval);
        spin(2000);
    }
    const prof::ProfileData d = prof::snapshot();
    // Counts never sample: 11 hits is 11, not ~11.
    EXPECT_EQ(d.count(prof::Slot::NandReadBerEval), 11u);
    // The first hit of a slot is always timed, so even a rare slot
    // reports nonzero time...
    EXPECT_GT(d.totalTicks(prof::Slot::NandReadBerEval), 0u);
    // ...and snapshot() scales the sampled sum by the period.
    EXPECT_EQ(d.totalTicks(prof::Slot::NandReadBerEval) % 4, 0u);
}

TEST_F(ProfilerTest, DisabledScopesRecordNothing)
{
    prof::setEnabled(false);
    prof::resetThread();
    {
        prof::ProfScope s(prof::Slot::FtlGc);
        spin(2000);
    }
    const prof::ProfileData d = prof::snapshot();
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.count(prof::Slot::FtlGc), 0u);
}

TEST_F(ProfilerTest, SnapshotSinceIsolatesTheDelta)
{
    prof::setSamplePeriod(1);
    prof::setEnabled(true);
    prof::resetThread();
    {
        prof::ProfScope s(prof::Slot::SsdArbiter);
    }
    const prof::ProfileData before = prof::snapshot();
    for (int i = 0; i < 3; ++i) {
        prof::ProfScope s(prof::Slot::SsdArbiter);
        spin(2000);
    }
    const prof::ProfileData delta = prof::snapshot().since(before);
    EXPECT_EQ(delta.count(prof::Slot::SsdArbiter), 3u);

    prof::ProfileData merged = before;
    merged.merge(delta);
    EXPECT_EQ(merged.count(prof::Slot::SsdArbiter), 4u);
}

// ---------------------------------------------------------------------
// Simulation integration: observation-only and jobs-invariant.
// ---------------------------------------------------------------------

ssd::SsdConfig
smallConfig(ssd::FtlKind kind, std::uint64_t seed)
{
    // The test_determinism.cc pin shape (see test_sweep.cc).
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = kind;
    config.seed = seed;
    return config;
}

/** Exact textual fingerprint of a run's deterministic observables. */
std::string
fingerprint(const workload::RunResult &r)
{
    std::ostringstream out;
    metrics::JsonWriter w(out);
    w.beginObject();
    w.field("completed", r.completedRequests);
    w.field("elapsed", r.elapsed);
    w.field("iops", r.iops);
    w.key("status");
    w.beginArray();
    for (const auto count : r.statusCounts)
        w.value(count);
    w.endArray();
    w.key("requests");
    metrics::writeRequestMetrics(w, r.requestMetrics);
    w.endObject();
    return out.str();
}

std::string
runOnce(std::uint64_t seed)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube, seed));
    auto spec = workload::oltp();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.3);
    return fingerprint(driver.run(1500));
}

TEST_F(ProfilerTest, SimulationIsBitIdenticalWithProfilingOnOrOff)
{
    prof::setEnabled(false);
    const std::string off = runOnce(42);
    prof::setEnabled(true);
    const std::string on = runOnce(42);
    EXPECT_EQ(off, on)
        << "profiling must be observation-only: enabling it changed "
           "the simulation's results";
}

std::vector<workload::SweepCell>
smallGrid()
{
    std::vector<workload::SweepCell> cells;
    for (const auto kind : {ssd::FtlKind::Page, ssd::FtlKind::Cube}) {
        for (const std::uint64_t seed : {42ull, 137ull}) {
            workload::SweepCell cell;
            cell.config = smallConfig(kind, seed);
            cell.spec = workload::oltp();
            cell.requests = 800;
            cells.push_back(cell);
        }
    }
    return cells;
}

TEST_F(ProfilerTest, MergedSweepProfileCountsAreJobInvariant)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "built without CUBESSD_PROFILING";
    prof::setEnabled(true);

    sim::SweepTelemetry seqTel, parTel;
    const auto seq = workload::runCells(smallGrid(), 1, {}, &seqTel);
    const auto par = workload::runCells(smallGrid(), 4, {}, &parTel);
    const prof::ProfileData seqProf = workload::mergeCellProfiles(seq);
    const prof::ProfileData parProf = workload::mergeCellProfiles(par);

    // Slot hit counts depend only on the simulation, so the merged
    // profile's counts are bit-identical for any worker count. (Tick
    // times are wall-clock and noisy — no assertion on those.)
    for (std::size_t i = 0; i < prof::kSlotCount; ++i) {
        const auto slot = static_cast<prof::Slot>(i);
        EXPECT_EQ(seqProf.count(slot), parProf.count(slot))
            << "slot " << prof::slotName(slot)
            << " count diverged under --jobs 4";
    }

    // The run did real work through the instrumented paths.
    EXPECT_GT(seqProf.count(prof::Slot::SchedChipOp), 0u);
    EXPECT_GT(seqProf.count(prof::Slot::NandReadBerEval), 0u);
    EXPECT_GT(seqProf.count(prof::Slot::NandProgramIspp), 0u);
    EXPECT_GT(seqProf.count(prof::Slot::FtlMapping), 0u);

    // Worker telemetry: one entry on the inline path, `jobs` entries
    // on the pooled path, every cell accounted for exactly once.
    ASSERT_EQ(seqTel.workers.size(), 1u);
    EXPECT_EQ(seqTel.workers[0].jobs, smallGrid().size());
    ASSERT_EQ(parTel.workers.size(), 4u);
    std::uint64_t claimed = 0;
    for (const auto &w : parTel.workers)
        claimed += w.jobs;
    EXPECT_EQ(claimed, smallGrid().size());
    EXPECT_GE(parTel.imbalance(), 1.0);
}

TEST_F(ProfilerTest, TermFillCountMatchesCacheMissCounters)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "built without CUBESSD_PROFILING";
    prof::setEnabled(true);
    prof::resetThread();

    ssd::Ssd dev(smallConfig(ssd::FtlKind::Cube, 42));
    auto spec = workload::oltp();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.3);

    const prof::ProfileData before = prof::snapshot();
    driver.run(1500);
    const prof::ProfileData d = prof::snapshot().since(before);

    // Every cache miss (aging-level or WL-level) opens exactly one
    // nand.term_fill scope, and nothing else does — the profiler's
    // count and the cache's own counters are two independent tallies
    // of the same events. (The prefill runs outside the snapshot
    // delta, so compare against cumulative counters via >=, then pin
    // the exact identity on a fresh device below.)
    std::uint64_t misses = 0;
    std::uint64_t hits = 0;
    for (std::uint32_t i = 0; i < dev.chipCount(); ++i) {
        const auto &c = dev.chip(i).termCache().counters();
        misses += c.agingMisses + c.wlMisses;
        hits += c.agingHits + c.wlHits;
    }
    EXPECT_GT(misses, 0u);
    EXPECT_GT(hits, 0u);  // the cache actually served the hot path
    EXPECT_GE(misses, d.count(prof::Slot::NandTermFill));

    // Fresh device, whole life inside one snapshot window: exact.
    prof::resetThread();
    ssd::Ssd dev2(smallConfig(ssd::FtlKind::Cube, 43));
    workload::WorkloadGenerator gen2(spec, dev2.logicalPages(), 7);
    workload::Driver driver2(dev2, gen2);
    const prof::ProfileData before2 = prof::snapshot();
    driver2.prefill(0.3);
    driver2.run(1500);
    const prof::ProfileData d2 = prof::snapshot().since(before2);
    std::uint64_t misses2 = 0;
    for (std::uint32_t i = 0; i < dev2.chipCount(); ++i) {
        const auto &c = dev2.chip(i).termCache().counters();
        misses2 += c.agingMisses + c.wlMisses;
    }
    EXPECT_EQ(misses2, d2.count(prof::Slot::NandTermFill));

    // Slot-structure sanity for the split read attribution: every
    // read runs ber_eval and the decode walk once; only reads whose
    // first sense failed enter the retry scope.
    EXPECT_EQ(d2.count(prof::Slot::NandReadDecode),
              d2.count(prof::Slot::NandReadBerEval));
    EXPECT_LE(d2.count(prof::Slot::NandReadRetry),
              d2.count(prof::Slot::NandReadDecode));
}

TEST_F(ProfilerTest, ReportAndJsonNameTheKeySubsystems)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "built without CUBESSD_PROFILING";
    prof::setEnabled(true);
    prof::resetThread();
    runOnce(42);
    const prof::ProfileData d = prof::snapshot();

    std::ostringstream table;
    prof::report(table, d, /*wallNs=*/0.0);
    EXPECT_NE(table.str().find("nand.read.ber_eval"),
              std::string::npos);
    EXPECT_NE(table.str().find("ftl.mapping"), std::string::npos);

    std::ostringstream json;
    metrics::JsonWriter w(json);
    prof::writeJson(w, d, /*wallNs=*/1e9);
    EXPECT_NE(json.str().find("\"sample_period\""), std::string::npos);
    EXPECT_NE(json.str().find("\"nand.program.ispp\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"self_ns_per_call\""),
              std::string::npos);
}

}  // namespace
}  // namespace cubessd
