/**
 * @file
 * Steady-state allocation audit of the simulation hot path.
 *
 * This test binary replaces the global allocator with a counting
 * wrapper and asserts the zero-allocation contract of the event/
 * request pipeline: after a warm-up phase has grown every pool, map
 * and ring to its working-set size, driving further events through
 * the device performs NO heap allocations at all.
 *
 * Kept as its own executable (see tests/CMakeLists.txt) so the
 * operator new/delete overrides cannot interfere with the main test
 * binary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/ftl/cube_ftl.h"
#include "src/prof/prof.h"
#include "src/sim/event_queue.h"
#include "src/ssd/ssd.h"
#include "src/workload/driver.h"
#include "src/workload/workload.h"

namespace {

// Not atomic: the simulator is single-threaded and gtest does not
// allocate concurrently with the measured regions.
std::uint64_t gAllocCount = 0;

}  // namespace

void *
operator new(std::size_t size)
{
    ++gAllocCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    ++gAllocCount;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) - 1) &
                                         ~(static_cast<std::size_t>(align) - 1)))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace cubessd {
namespace {

/** Typed self-rescheduling actor (the micro hot path). */
struct PingActor final : sim::EventHandler
{
    sim::EventQueue *eq = nullptr;
    SimTime step = 0;
    std::uint64_t remaining = 0;

    void
    onEvent(sim::EventKind, const sim::EventPayload &) override
    {
        if (remaining-- > 1)
            eq->schedule(step, sim::EventKind::DriverTick, this);
    }
};

TEST(ZeroAlloc, EventQueueSteadyState)
{
    sim::EventQueue eq;
    constexpr int kActors = 64;
    PingActor actors[kActors];
    for (int i = 0; i < kActors; ++i) {
        actors[i].eq = &eq;
        actors[i].step = static_cast<SimTime>(37 + i);
    }

    // Warm-up: grows the event pool to the working set.
    for (auto &a : actors) {
        a.remaining = 100;
        eq.schedule(a.step, sim::EventKind::DriverTick, &a);
    }
    eq.run();

    // Steady state: identical load, zero allocations allowed.
    for (auto &a : actors) {
        a.remaining = 10000;
        eq.schedule(a.step, sim::EventKind::DriverTick, &a);
    }
    const std::uint64_t before = gAllocCount;
    const std::uint64_t fired = eq.run();
    const std::uint64_t allocs = gAllocCount - before;
    EXPECT_GE(fired, 64u * 10000u - 64u);
    EXPECT_EQ(allocs, 0u)
        << allocs << " allocations over " << fired << " events";
}

/** Closed-loop load generator that bypasses the (allocating) metrics
 *  recorders: completions immediately submit replacement requests. */
struct LoadSink final : ssd::CompletionSink
{
    ssd::Ssd *dev = nullptr;
    Rng rng{9};
    std::uint64_t workingSet = 0;
    std::uint64_t toSubmit = 0;
    std::uint64_t outstanding = 0;

    void
    submitOne()
    {
        ssd::HostRequest req;
        req.type = rng.uniformInt(100) < 60 ? ssd::IoType::Write
                                            : ssd::IoType::Read;
        req.pages = 1 + static_cast<std::uint32_t>(rng.uniformInt(4));
        req.lba = rng.uniformInt(workingSet - req.pages);
        --toSubmit;
        ++outstanding;
        dev->hostQueue().submit(req, this, 0);
    }

    void
    onCompletion(const ssd::Completion &, std::uint64_t) override
    {
        --outstanding;
        if (toSubmit > 0)
            submitOne();
    }

    void
    drive(std::uint64_t requests)
    {
        toSubmit = requests;
        for (int i = 0; i < 16 && toSubmit > 0; ++i)
            submitOne();
        while ((toSubmit > 0 || outstanding > 0) && dev->queue().step()) {
        }
        ASSERT_EQ(toSubmit, 0u);
        ASSERT_EQ(outstanding, 0u);
    }
};

TEST(ZeroAlloc, DeviceRequestPathSteadyState)
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Cube;
    config.seed = 42;
    ssd::Ssd dev(config);

    // Fill the device so GC runs during the measured window.
    auto spec = workload::oltp();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.3);

    LoadSink sink;
    sink.dev = &dev;
    sink.workingSet = dev.logicalPages();

    // Warm-up: grow request pools, in-flight maps, GC scratch, rings.
    sink.drive(8000);
    const std::uint64_t gcBefore = dev.ftl().gcStats().collections;

    const std::uint64_t firedBefore = dev.queue().fired();
    const std::uint64_t before = gAllocCount;
    sink.drive(8000);
    const std::uint64_t allocs = gAllocCount - before;
    const std::uint64_t fired = dev.queue().fired() - firedBefore;

    EXPECT_GT(fired, 50000u);  // the window did real work
    // GC must have been active inside the measured window for the
    // audit to cover the relocation path.
    EXPECT_GT(dev.ftl().gcStats().collections, gcBefore);
    EXPECT_EQ(allocs, 0u)
        << allocs << " allocations over " << fired << " events";
}

TEST(ZeroAlloc, DeviceRequestPathWithProfilerOn)
{
    // The self-profiler shares the hot path's contract: fixed-slot
    // thread_local accumulators, raw clock reads — an enabled
    // ProfScope must not add a single heap allocation per event.
    if (!prof::compiledIn())
        GTEST_SKIP() << "built without CUBESSD_PROFILING";
    prof::setEnabled(true);
    prof::resetThread();

    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Cube;
    config.seed = 42;
    ssd::Ssd dev(config);

    auto spec = workload::oltp();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.3);

    LoadSink sink;
    sink.dev = &dev;
    sink.workingSet = dev.logicalPages();

    sink.drive(8000);  // warm-up, profiler already on

    const std::uint64_t firedBefore = dev.queue().fired();
    const std::uint64_t before = gAllocCount;
    sink.drive(8000);
    const std::uint64_t allocs = gAllocCount - before;
    const std::uint64_t fired = dev.queue().fired() - firedBefore;
    prof::setEnabled(false);

    EXPECT_GT(fired, 50000u);
    // The scopes really were live in the measured window (snapshot()
    // is a plain value copy — no allocation even inside the window).
    const prof::ProfileData profile = prof::snapshot();
    EXPECT_GT(profile.count(prof::Slot::SchedChipOp), 0u);
    EXPECT_GT(profile.count(prof::Slot::NandReadBerEval), 0u);
    EXPECT_EQ(allocs, 0u)
        << allocs << " allocations over " << fired
        << " events with the profiler enabled";
}

TEST(ZeroAlloc, NandProgramPathWithProfilerOn)
{
    // The NAND model layer itself: erase -> program -> read cycles on
    // a bare chip, profiler on. Covers the term-cache fill/hit paths
    // (every erase opens a new epoch and refills), the fixed-capacity
    // verify schedule, and the ISPP/read hot paths — none of which may
    // touch the heap after construction.
    if (!prof::compiledIn())
        GTEST_SKIP() << "built without CUBESSD_PROFILING";
    prof::setEnabled(true);
    prof::resetThread();

    nand::NandChipConfig config;
    config.geometry.blocksPerChip = 4;
    config.geometry.layersPerBlock = 8;
    config.seed = 3;
    nand::NandChip chip(config);

    const std::uint64_t tokens[3] = {1, 2, 3};
    const auto cycle = [&](std::uint32_t block) {
        chip.eraseBlock(block);
        for (std::uint32_t l = 0; l < config.geometry.layersPerBlock;
             ++l) {
            for (std::uint32_t w = 0; w < config.geometry.wlsPerLayer;
                 ++w) {
                const nand::WlAddr wl{block, l, w};
                chip.programWl(wl, nand::ProgramCommand{}, tokens);
                chip.readPage(nand::PageAddr{block, l, w, 0}, 0);
            }
        }
    };

    // Warm-up epoch: first touch of every WL fills the static terms.
    for (std::uint32_t b = 0; b < config.geometry.blocksPerChip; ++b)
        cycle(b);

    const std::uint64_t before = gAllocCount;
    for (int rep = 0; rep < 4; ++rep) {
        chip.setAging({100u * static_cast<std::uint32_t>(rep + 1),
                       static_cast<double>(rep)});
        for (std::uint32_t b = 0; b < config.geometry.blocksPerChip; ++b)
            cycle(b);
    }
    const std::uint64_t allocs = gAllocCount - before;
    prof::setEnabled(false);

    // The epoch churn really exercised the refill path.
    const auto &counters = chip.termCache().counters();
    EXPECT_GT(counters.wlMisses, 0u);
    EXPECT_GT(counters.wlHits, 0u);
    EXPECT_EQ(allocs, 0u)
        << allocs << " allocations across erase/program/read cycles";
}

}  // namespace
}  // namespace cubessd
