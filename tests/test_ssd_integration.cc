/**
 * @file
 * Whole-device integration tests: the Driver against a populated SSD,
 * the paper's FTL ordering on a small configuration, and aging
 * injection end to end.
 */

#include <gtest/gtest.h>

#include "src/ftl/cube_ftl.h"
#include "src/workload/driver.h"

namespace cubessd {
namespace {

ssd::SsdConfig
integrationConfig(ssd::FtlKind kind, std::uint64_t seed = 42)
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = kind;
    config.seed = seed;
    return config;
}

TEST(SsdIntegration, DriverPrefillFillsDevice)
{
    ssd::Ssd dev(integrationConfig(ssd::FtlKind::Page));
    auto spec = workload::oltp();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.1);
    EXPECT_EQ(dev.ftl().mapping().mappedCount(), dev.logicalPages());
    dev.ftl().checkConsistency();
}

TEST(SsdIntegration, SteadyRunProducesSaneLatencies)
{
    ssd::Ssd dev(integrationConfig(ssd::FtlKind::Page));
    auto spec = workload::web();  // steady closed loop
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.1);
    const auto result = driver.run(3000);
    EXPECT_EQ(result.completedRequests, 3000u);
    EXPECT_GT(result.iops, 100.0);
    EXPECT_GT(result.readLatencyUs.count(), 1000u);
    // Reads: at least a sense + transfer.
    EXPECT_GT(result.readLatencyUs.percentile(50), 50.0);
}

TEST(SsdIntegration, BurstyRunCompletes)
{
    ssd::Ssd dev(integrationConfig(ssd::FtlKind::Cube));
    auto spec = workload::oltp();  // bursty mode
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.1);
    const auto result = driver.run(3000);
    EXPECT_EQ(result.completedRequests, 3000u);
    dev.ftl().checkConsistency();
}

TEST(SsdIntegration, CubeBeatsPageOnWriteHeavyWorkload)
{
    // The headline direction of Fig. 17(a) on a scaled-down device.
    auto run = [](ssd::FtlKind kind) {
        ssd::Ssd dev(integrationConfig(kind));
        auto spec = workload::oltp();
        workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
        workload::Driver driver(dev, gen);
        driver.prefill(0.2);
        return driver.run(8000).iops;
    };
    const double page = run(ssd::FtlKind::Page);
    const double cube = run(ssd::FtlKind::Cube);
    EXPECT_GT(cube, page * 1.05);
}

TEST(SsdIntegration, AgingInjectionSlowsPsUnawareReads)
{
    // Fig. 17(c) direction: pageFTL IOPS collapses at EOL retention;
    // cubeFTL holds up via the ORT.
    auto run = [](ssd::FtlKind kind) {
        ssd::Ssd dev(integrationConfig(kind));
        auto spec = workload::web();
        workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
        workload::Driver driver(dev, gen);
        dev.setAging({2000, 0.0});
        driver.prefill(0.1);
        dev.setAging({2000, 12.0});
        return driver.run(4000).iops;
    };
    const double page = run(ssd::FtlKind::Page);
    const double cube = run(ssd::FtlKind::Cube);
    EXPECT_GT(cube, page * 1.3);
}

TEST(SsdIntegration, FourFtlsAllPreserveData)
{
    for (auto kind :
         {ssd::FtlKind::Page, ssd::FtlKind::Vert, ssd::FtlKind::Cube,
          ssd::FtlKind::CubeMinus}) {
        ssd::Ssd dev(integrationConfig(kind));
        auto spec = workload::mongo();
        workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
        workload::Driver driver(dev, gen);
        driver.prefill(0.15);
        driver.run(2000);
        dev.drain();
        dev.ftl().checkConsistency();
        for (Lba lba = 0; lba < dev.logicalPages(); lba += 997)
            EXPECT_TRUE(dev.peek(lba).has_value())
                << ssd::ftlKindName(kind);
    }
}

TEST(SsdIntegration, SeedsChangeOutcomesDeterministically)
{
    auto run = [](std::uint64_t seed) {
        ssd::Ssd dev(integrationConfig(ssd::FtlKind::Cube, seed));
        auto spec = workload::mail();
        workload::WorkloadGenerator gen(spec, dev.logicalPages(),
                                        seed + 1);
        workload::Driver driver(dev, gen);
        driver.prefill(0.1);
        return driver.run(1500).iops;
    };
    const double a1 = run(3), a2 = run(3), b = run(4);
    EXPECT_DOUBLE_EQ(a1, a2);  // same seed: bit-identical
    EXPECT_NE(a1, b);          // different seed: different run
}

TEST(SsdIntegration, CompletionsCarryPhaseDecomposition)
{
    ssd::Ssd dev(integrationConfig(ssd::FtlKind::Page));
    auto spec = workload::web();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    driver.prefill(0.1);
    const auto result = driver.run(3000);

    // NAND reads dominate this read-heavy run: the recorded read
    // phases must show die (sense) and bus (transfer) time.
    const auto &readPhases =
        result.requestMetrics.phases(ssd::IoType::Read);
    EXPECT_GT(readPhases.die.max(), 0u);
    EXPECT_GT(readPhases.bus.max(), 0u);
    // Host-visible write time is the buffer insert.
    const auto &writePhases =
        result.requestMetrics.phases(ssd::IoType::Write);
    EXPECT_GT(writePhases.buffer.max(), 0u);
    // One latency histogram sample per completed request.
    EXPECT_EQ(result.requestMetrics.recorded(ssd::IoType::Read) +
                  result.requestMetrics.recorded(ssd::IoType::Write),
              result.completedRequests);

    // A run that moved data must have kept channels and dies busy for
    // part of the measured window.
    ASSERT_EQ(result.utilization.channel.size(), 2u);
    ASSERT_EQ(result.utilization.die.size(), 4u);
    EXPECT_GT(result.utilization.averageChannel(), 0.0);
    EXPECT_GT(result.utilization.averageDie(), 0.0);
    for (const double u : result.utilization.die) {
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(SsdIntegration, BufferHitReadHasBufferPhaseOnly)
{
    ssd::Ssd dev(integrationConfig(ssd::FtlKind::Page));
    ssd::HostRequest write;
    write.type = ssd::IoType::Write;
    write.lba = 5;
    write.pages = 1;
    dev.submitWithCallback(write, [](const ssd::Completion &) {});
    ssd::HostRequest read;
    read.type = ssd::IoType::Read;
    read.lba = 5;
    read.pages = 1;
    ssd::Completion seen;
    dev.submitWithCallback(read,
                           [&](const ssd::Completion &c) { seen = c; });
    dev.queue().run();
    // The read is served from the write buffer: DRAM time, no NAND.
    EXPECT_GT(seen.phases.buffer, 0u);
    EXPECT_EQ(seen.phases.die, 0u);
    EXPECT_EQ(seen.phases.bus, 0u);
    EXPECT_EQ(seen.phases.retry, 0u);
}

TEST(SsdIntegration, SubmitAssignsIdsAndHonorsArrival)
{
    ssd::Ssd dev(integrationConfig(ssd::FtlKind::Page));
    ssd::HostRequest req;
    req.type = ssd::IoType::Write;
    req.lba = 0;
    req.pages = 1;
    req.arrival = 500 * kMicrosecond;
    ssd::Completion seen;
    dev.submitWithCallback(req,
                           [&](const ssd::Completion &c) { seen = c; });
    dev.queue().run();
    EXPECT_GT(seen.id, 0u);
    EXPECT_EQ(seen.arrival, 500 * kMicrosecond);
    EXPECT_GE(seen.finish, seen.arrival);
}

}  // namespace
}  // namespace cubessd
