/**
 * @file
 * Unit/property tests for the ISPP engine: Eq. (1)/(2) timing, loop
 * windows, the safe skip plan (Sec. 4.1.1), window adjustment
 * (Sec. 4.1.2), and the in-text calibration targets (~700 us default
 * tPROG, ~16% VFY-skip saving, up to ~36% combined).
 */

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nand/error_model.h"
#include "src/nand/ispp.h"

namespace cubessd::nand {
namespace {

class IsppTest : public ::testing::Test
{
  protected:
    IsppConfig config_{};
    ErrorModel errors_{};
    IsppEngine engine_{config_, errors_};
    Rng rng_{1234};
    AgingState fresh_{0, 0.0};
};

TEST_F(IsppTest, StateLoopsOrderedAndWithinWindow)
{
    const auto loops = engine_.stateLoops(0.0, 1.0, fresh_, 0);
    int prevMin = 0;
    for (int s = 0; s < kTlcStates; ++s) {
        const auto &w = loops[static_cast<std::size_t>(s)];
        EXPECT_GE(w.lMin, 1);
        EXPECT_LE(w.lMin, w.lMax);
        EXPECT_GE(w.lMin, prevMin);  // higher states arrive later
        prevMin = w.lMin;
    }
    EXPECT_LE(loops[kTlcStates - 1].lMax, config_.maxLoops());
}

TEST_F(IsppTest, DefaultTprogNearNominal700us)
{
    const auto r = engine_.program(1.0, 0.0, fresh_, 1.0,
                                   ProgramCommand{}, rng_);
    EXPECT_NEAR(static_cast<double>(r.tProg), 700e3, 25e3);  // ns
    EXPECT_EQ(r.verifiesSkipped, 0);
    EXPECT_FALSE(r.truncated);
    EXPECT_DOUBLE_EQ(r.berMultiplier, 1.0);
}

TEST_F(IsppTest, TprogMatchesLoopAccounting)
{
    const auto r = engine_.program(1.2, 5.0, fresh_, 1.0,
                                   ProgramCommand{}, rng_);
    const SimTime expected =
        static_cast<SimTime>(r.loopsUsed) * config_.tPgm +
        static_cast<SimTime>(r.verifiesDone) * config_.tVfy;
    EXPECT_EQ(r.tProg, expected);  // Eq. (1)
}

TEST_F(IsppTest, DefaultVerifiesEveryLoopPerActiveState)
{
    // Default behaviour (Fig. 3): state s verified on loops 1..Lmax(s).
    const auto r = engine_.program(1.0, 0.0, fresh_, 1.0,
                                   ProgramCommand{}, rng_);
    int expected = 0;
    for (const auto &w : r.loops)
        expected += std::min(w.lMax, r.loopsUsed);
    EXPECT_EQ(r.verifiesDone, expected);
}

TEST_F(IsppTest, SafeSkipPlanSkipsToLmin)
{
    const auto loops = engine_.stateLoops(0.0, 1.0, fresh_, 0);
    const auto plan = IsppEngine::safeSkipPlan(loops);
    for (int s = 0; s < kTlcStates; ++s) {
        EXPECT_EQ(plan[static_cast<std::size_t>(s)],
                  loops[static_cast<std::size_t>(s)].lMin - 1);
    }
}

TEST_F(IsppTest, SafeSkipSavesAround16Percent)
{
    // Sec. 4.1.1: skipped VFYs alone cut average tPROG by ~16.2%.
    const auto leader = engine_.program(1.0, 0.0, fresh_, 1.0,
                                        ProgramCommand{}, rng_);
    ProgramCommand cmd;
    cmd.useSkipPlan = true;
    cmd.skipVfy = IsppEngine::safeSkipPlan(leader.loops);
    const auto follower =
        engine_.program(1.0, 0.0, fresh_, 1.0, cmd, rng_);
    const double cut =
        1.0 - static_cast<double>(follower.tProg) /
                  static_cast<double>(leader.tProg);
    EXPECT_GT(cut, 0.12);
    EXPECT_LT(cut, 0.20);
    EXPECT_NEAR(follower.berMultiplier, 1.0, 0.02);  // safe: no cost
}

TEST_F(IsppTest, WindowShrinkReducesLoops)
{
    ProgramCommand cmd;
    cmd.vStartAdjMv = 180;
    cmd.vFinalAdjMv = 120;
    const auto base = engine_.program(1.0, 0.0, fresh_, 1.0,
                                      ProgramCommand{}, rng_);
    const auto adjusted = engine_.program(1.0, 0.0, fresh_, 1.0, cmd,
                                          rng_);
    EXPECT_LT(adjusted.loopsUsed, base.loopsUsed);
    EXPECT_LT(adjusted.tProg, base.tProg);
    EXPECT_GT(adjusted.berMultiplier, 1.0);  // margin was spent
}

TEST_F(IsppTest, CombinedFollowerCutUpTo36Percent)
{
    // Sec. 6.1: follower tPROG shortened by up to 35.9%.
    const auto leader = engine_.program(1.0, 0.0, fresh_, 1.0,
                                        ProgramCommand{}, rng_);
    ProgramCommand cmd;
    cmd.vStartAdjMv = 180;
    cmd.vFinalAdjMv = 120;
    cmd.useSkipPlan = true;
    const int shift = (cmd.vStartAdjMv + config_.deltaVMv - 1) /
                      config_.deltaVMv;
    cmd.skipVfy = IsppEngine::safeSkipPlan(leader.loops);
    for (auto &s : cmd.skipVfy)
        s = std::max(0, s - shift);
    const auto follower =
        engine_.program(1.0, 0.0, fresh_, 1.0, cmd, rng_);
    const double cut =
        1.0 - static_cast<double>(follower.tProg) /
                  static_cast<double>(leader.tProg);
    EXPECT_GT(cut, 0.25);
    EXPECT_LT(cut, 0.42);
}

TEST_F(IsppTest, OverSkippingRaisesBer)
{
    // Fig. 8(a): skipping beyond the safe count over-programs.
    const auto leader = engine_.program(1.0, 0.0, fresh_, 1.0,
                                        ProgramCommand{}, rng_);
    ProgramCommand cmd;
    cmd.useSkipPlan = true;
    cmd.skipVfy = IsppEngine::safeSkipPlan(leader.loops);
    for (auto &s : cmd.skipVfy)
        s += 3;  // unsafe
    const auto r = engine_.program(1.0, 0.0, fresh_, 1.0, cmd, rng_);
    EXPECT_GT(r.berMultiplier, 1.3);
}

TEST_F(IsppTest, TruncationFlaggedWhenWindowTooTight)
{
    ProgramCommand cmd;
    cmd.vFinalAdjMv = 600;  // far below what the slowest cells need
    const auto r = engine_.program(1.0, 0.0, fresh_, 1.0, cmd, rng_);
    EXPECT_TRUE(r.truncated);
}

TEST_F(IsppTest, AgingSlowsBadLayers)
{
    // sigma growth + speed loss: an aged worst-layer WL takes longer.
    const AgingState eol{2000, 12.0};
    const auto fresh = engine_.program(1.6, 48.0, fresh_, 1.0,
                                       ProgramCommand{}, rng_);
    const auto aged = engine_.program(1.6, 48.0, eol, 1.0,
                                      ProgramCommand{}, rng_);
    EXPECT_GE(aged.loopsUsed, fresh.loopsUsed);
}

TEST_F(IsppTest, FasterWlNeedsFewerLoops)
{
    const auto slow = engine_.stateLoops(0.0, 1.0, fresh_, 0);
    const auto fast = engine_.stateLoops(150.0, 1.0, fresh_, 0);
    EXPECT_LT(fast[kTlcStates - 1].lMax, slow[kTlcStates - 1].lMax);
}

TEST_F(IsppTest, BerEp1ReflectsQualityAndAging)
{
    const auto good = engine_.program(1.0, 0.0, fresh_, 1.0,
                                      ProgramCommand{}, rng_);
    const auto bad = engine_.program(
        1.6, 0.0, AgingState{2000, 1.0}, 1.0, ProgramCommand{}, rng_);
    EXPECT_GT(bad.berEp1Norm, good.berEp1Norm);
}

TEST(IsppMlc, ThreeStateConfigWorks)
{
    // 2-bit MLC: 3 program states (paper Fig. 3's example).
    nand::IsppConfig config;
    config.programStates = 3;
    config.windowMv = 1050;
    config.deltaVMv = 150;
    config.firstStateOffsetMv = 350;
    config.stateSpacingMv = 300;
    config.cellSigmaMv = 30.0;
    ErrorModel errors;
    IsppEngine engine(config, errors);
    Rng rng(5);
    const auto r = engine.program(1.0, 0.0, {0, 0.0}, 1.0,
                                  ProgramCommand{}, rng);
    EXPECT_EQ(r.loopsUsed, 7);
    EXPECT_EQ(r.verifiesDone, 15);  // 3+3+3+2+2+1+1
    // Unused state slots stay at their defaults.
    for (int s = 3; s < kTlcStates; ++s)
        EXPECT_EQ(r.loops[static_cast<std::size_t>(s)].lMax, 1);
}

TEST(IsppMlc, DefaultVerifyScheduleMatchesFig3)
{
    nand::IsppConfig config;
    config.programStates = 3;
    config.windowMv = 1050;
    config.deltaVMv = 150;
    config.firstStateOffsetMv = 350;
    config.stateSpacingMv = 300;
    config.cellSigmaMv = 30.0;
    ErrorModel errors;
    IsppEngine engine(config, errors);
    const auto loops = engine.stateLoops(0.0, 1.0, {0, 0.0}, 0);
    const auto schedule = engine.defaultVerifySchedule(loops);
    EXPECT_EQ(std::vector<int>(schedule.begin(), schedule.end()),
              (std::vector<int>{3, 3, 3, 2, 2, 1, 1}));
}

TEST(IsppMlc, ScheduleIsNonIncreasing)
{
    // k_i can only shrink as states complete, for any state count.
    for (int states : {1, 3, 7}) {
        nand::IsppConfig config;
        config.programStates = states;
        ErrorModel errors;
        IsppEngine engine(config, errors);
        const auto loops = engine.stateLoops(10.0, 1.2, {500, 1.0}, 0);
        const auto schedule = engine.defaultVerifySchedule(loops);
        for (std::size_t i = 1; i < schedule.size(); ++i)
            EXPECT_LE(schedule[i], schedule[i - 1]);
        EXPECT_EQ(schedule.front(), states);
    }
}

TEST(IsppMlcDeathTest, BadStateCountRejected)
{
    nand::IsppConfig config;
    config.programStates = 9;
    ErrorModel errors;
    EXPECT_EXIT(IsppEngine(config, errors),
                ::testing::ExitedWithCode(1), "programStates");
}

/** Property sweep: the safe skip plan never costs BER, for any layer
 *  quality and wear. */
class IsppSafetyProperty
    : public ::testing::TestWithParam<std::tuple<double, PeCycles>>
{
};

TEST_P(IsppSafetyProperty, SafeSkipPlanIsAlwaysSafe)
{
    const auto [q, pe] = GetParam();
    IsppConfig config;
    ErrorModel errors;
    IsppEngine engine(config, errors);
    Rng rng(77);
    const AgingState aging{pe, 0.5};
    const double speed = 80.0 * (q - 1.0);

    const auto leader =
        engine.program(q, speed, aging, 1.0, ProgramCommand{}, rng);
    ProgramCommand cmd;
    cmd.useSkipPlan = true;
    cmd.skipVfy = IsppEngine::safeSkipPlan(leader.loops);
    // Many followers: per-op jitter may shift a loop boundary once in
    // a while, but the typical follower must be penalty-free.
    int clean = 0;
    for (int i = 0; i < 50; ++i) {
        const auto f = engine.program(q, speed, aging, 1.0, cmd, rng);
        clean += f.berMultiplier < 1.05;
        EXPECT_LT(f.tProg, leader.tProg);
    }
    EXPECT_GE(clean, 40);
}

INSTANTIATE_TEST_SUITE_P(
    QualityWearSweep, IsppSafetyProperty,
    ::testing::Combine(::testing::Values(1.0, 1.15, 1.35, 1.6),
                       ::testing::Values(0u, 1000u, 2000u)));

}  // namespace
}  // namespace cubessd::nand
