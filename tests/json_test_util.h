/**
 * @file
 * Minimal strict JSON parser shared by the JSON-export and trace
 * tests. Numbers parse as double, objects as maps; throws
 * std::runtime_error on malformed input. Test-only: intentionally
 * rejects anything outside the subset our writers emit (no NaN/Inf
 * tokens, no comments) so a passing round-trip proves the output is
 * real JSON.
 */

#ifndef CUBESSD_TESTS_JSON_TEST_UTIL_H
#define CUBESSD_TESTS_JSON_TEST_UTIL_H

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cubessd::testutil {

// ------------------------------------------------------------------
// Minimal strict JSON parser (test-only). Numbers parse as double,
// objects as maps; throws std::runtime_error on malformed input.
// ------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &name) const
    {
        auto it = members.find(name);
        if (it == members.end())
            throw std::runtime_error("missing key: " + name);
        return it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text)
        : text_(std::move(text))
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default:  return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            if (!v.members.emplace(key.text, parseValue()).second)
                throw std::runtime_error("duplicate key: " + key.text);
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':  c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/':  c = '/'; break;
                  case 'n':  c = '\n'; break;
                  case 't':  c = '\t'; break;
                  case 'r':  c = '\r'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("bad \\u escape");
                    c = static_cast<char>(std::stoi(
                        text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                  }
                  default: throw std::runtime_error("bad escape");
                }
            }
            v.text += c;
        }
        expect('"');
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            throw std::runtime_error("bad number");
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

inline JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

}  // namespace cubessd::testutil

#endif  // CUBESSD_TESTS_JSON_TEST_UTIL_H
