/**
 * @file
 * Unit tests for the per-chip operation scheduler and the channel
 * occupancy model.
 */

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/nand/chip.h"
#include "src/sim/event_queue.h"
#include "src/ssd/channel.h"
#include "src/ssd/chip_unit.h"

namespace cubessd::ssd {
namespace {

using NandOpCallback = std::function<void(const NandOpResult &)>;

/** Adapts the listener interface back to per-op closures for tests. */
struct CallbackListener final : NandOpListener
{
    NandOpCallback fn;

    void
    onNandOpComplete(const NandOp &, const NandOpResult &result) override
    {
        if (fn)
            fn(result);
    }
};

class ChipUnitTest : public ::testing::Test
{
  protected:
    ChipUnitTest()
    {
        nand::NandChipConfig config;
        config.geometry.blocksPerChip = 4;
        chip_ = std::make_unique<nand::NandChip>(config);
        unit_ = std::make_unique<ChipUnit>(*chip_, channel_, queue_);
    }

    NandOpListener *
    listen(NandOpCallback cb)
    {
        listeners_.push_back(std::make_unique<CallbackListener>());
        listeners_.back()->fn = std::move(cb);
        return listeners_.back().get();
    }

    /** Per-WL token storage outliving the op (NandOp borrows it). */
    const std::uint64_t *
    wlTokens(const nand::NandGeometry &geom)
    {
        tokenStorage_.emplace_back(geom.pagesPerWl, 1);
        return tokenStorage_.back().data();
    }

    NandOp
    eraseOp(std::uint32_t block, NandOpCallback cb)
    {
        NandOp op;
        op.kind = NandOp::Kind::Erase;
        op.block = block;
        if (cb)
            op.listener = listen(std::move(cb));
        return op;
    }

    NandOp
    programOp(const nand::WlAddr &wl, NandOpCallback cb)
    {
        NandOp op;
        op.kind = NandOp::Kind::Program;
        op.wl = wl;
        op.tokens = wlTokens(chip_->geometry());
        op.tokenCount = chip_->geometry().pagesPerWl;
        if (cb)
            op.listener = listen(std::move(cb));
        return op;
    }

    NandOp
    readOp(const nand::PageAddr &page, NandOpCallback cb,
           bool highPriority = false)
    {
        NandOp op;
        op.kind = NandOp::Kind::Read;
        op.page = page;
        op.highPriority = highPriority;
        if (cb)
            op.listener = listen(std::move(cb));
        return op;
    }

    sim::EventQueue queue_;
    Channel channel_;
    std::unique_ptr<nand::NandChip> chip_;
    std::unique_ptr<ChipUnit> unit_;
    std::deque<std::unique_ptr<CallbackListener>> listeners_;
    std::deque<std::vector<std::uint64_t>> tokenStorage_;
};

TEST(Channel, ReservationsSerialize)
{
    Channel ch;
    EXPECT_EQ(ch.reserve(0, 10), 0u);
    EXPECT_EQ(ch.reserve(0, 10), 10u);   // bus busy: pushed back
    EXPECT_EQ(ch.reserve(50, 10), 50u);  // idle gap respected
    EXPECT_EQ(ch.busyTime(), 30u);
    EXPECT_EQ(ch.freeAt(), 60u);
}

TEST_F(ChipUnitTest, OpsExecuteInFifoOrder)
{
    std::vector<int> order;
    unit_->enqueue(eraseOp(0, [&](const NandOpResult &) {
        order.push_back(0);
    }));
    unit_->enqueue(programOp({0, 0, 0}, [&](const NandOpResult &) {
        order.push_back(1);
    }));
    unit_->enqueue(readOp({0, 0, 0, 0}, [&](const NandOpResult &) {
        order.push_back(2);
    }));
    queue_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(ChipUnitTest, HighPriorityJumpsQueue)
{
    std::vector<int> order;
    // Pre-program a page to read, synchronously via ops.
    unit_->enqueue(eraseOp(0, nullptr));
    unit_->enqueue(programOp({0, 0, 0}, nullptr));
    queue_.run();

    // Busy op + two queued ops; the high-priority read runs first
    // among the queued ones.
    unit_->enqueue(eraseOp(1, [&](const NandOpResult &) {
        order.push_back(0);
    }));
    unit_->enqueue(programOp({0, 0, 1}, [&](const NandOpResult &) {
        order.push_back(1);
    }));
    unit_->enqueue(readOp({0, 0, 0, 0},
                          [&](const NandOpResult &) {
                              order.push_back(2);
                          },
                          /*highPriority=*/true));
    queue_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(ChipUnitTest, TimesAreConsistent)
{
    NandOpResult eraseResult, programResult;
    unit_->enqueue(eraseOp(0, [&](const NandOpResult &r) {
        eraseResult = r;
    }));
    unit_->enqueue(programOp({0, 0, 0}, [&](const NandOpResult &r) {
        programResult = r;
    }));
    queue_.run();
    EXPECT_EQ(eraseResult.start, 0u);
    EXPECT_EQ(eraseResult.end, chip_->timing().tErase);
    // The program starts when the erase ends and lasts transfer+tPROG.
    EXPECT_EQ(programResult.start, eraseResult.end);
    const SimTime tx = chip_->timing().busTransferTime(
        static_cast<std::uint64_t>(chip_->geometry().pageSizeBytes) *
        chip_->geometry().pagesPerWl);
    EXPECT_EQ(programResult.end,
              programResult.start + tx + programResult.program.tProg);
}

TEST_F(ChipUnitTest, ReadIncludesBusTransfer)
{
    unit_->enqueue(eraseOp(0, nullptr));
    unit_->enqueue(programOp({0, 0, 0}, nullptr));
    NandOpResult readResult;
    unit_->enqueue(readOp({0, 0, 0, 0}, [&](const NandOpResult &r) {
        readResult = r;
    }));
    queue_.run();
    const SimTime tx =
        chip_->timing().busTransferTime(chip_->geometry().pageSizeBytes);
    EXPECT_EQ(readResult.end,
              readResult.start + readResult.read.tRead + tx);
}

TEST_F(ChipUnitTest, SharedChannelSerializesTransfers)
{
    // Two chips on one channel: their read transfers may not overlap.
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = 4;
    config.seed = 2;
    nand::NandChip chip2(config);
    ChipUnit unit2(chip2, channel_, queue_);

    unit_->enqueue(eraseOp(0, nullptr));
    unit_->enqueue(programOp({0, 0, 0}, nullptr));
    NandOp e2;
    e2.kind = NandOp::Kind::Erase;
    e2.block = 0;
    unit2.enqueue(e2);
    NandOp p2;
    p2.kind = NandOp::Kind::Program;
    p2.wl = {0, 0, 0};
    p2.tokens = wlTokens(chip2.geometry());
    p2.tokenCount = chip2.geometry().pagesPerWl;
    unit2.enqueue(p2);
    queue_.run();

    const SimTime busBefore = channel_.busyTime();
    NandOpResult r1, r2;
    unit_->enqueue(readOp({0, 0, 0, 0}, [&](const NandOpResult &r) {
        r1 = r;
    }));
    NandOp read2;
    read2.kind = NandOp::Kind::Read;
    read2.page = {0, 0, 0, 0};
    read2.listener = listen([&](const NandOpResult &r) { r2 = r; });
    unit2.enqueue(read2);
    queue_.run();

    const SimTime tx =
        chip_->timing().busTransferTime(chip_->geometry().pageSizeBytes);
    EXPECT_EQ(channel_.busyTime() - busBefore, 2 * tx);
    // Both reads completed, at distinct transfer slots.
    EXPECT_NE(r1.end, r2.end);
}

TEST_F(ChipUnitTest, IdleReflectsQueueState)
{
    EXPECT_TRUE(unit_->idle());
    unit_->enqueue(eraseOp(0, nullptr));
    EXPECT_FALSE(unit_->idle());
    queue_.run();
    EXPECT_TRUE(unit_->idle());
}

}  // namespace
}  // namespace cubessd::ssd
