/**
 * @file
 * Property-based sweeps across geometries, seeds, and aging states:
 * the paper's invariants must hold for *every* configuration, not
 * just the defaults.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/ftl/cube_ftl.h"
#include "src/ftl/program_order.h"
#include "src/nand/chip.h"
#include "src/ssd/ssd.h"

namespace cubessd {
namespace {

/** Horizontal similarity must hold for any chip seed and any aging. */
class SimilarityProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, PeCycles, double>>
{
};

TEST_P(SimilarityProperty, DeltaHNearOne)
{
    const auto [seed, pe, months] = GetParam();
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = 6;
    config.seed = seed;
    nand::NandChip chip(config);
    chip.setAging({pe, months});

    std::vector<std::uint64_t> tokens(chip.geometry().pagesPerWl, 1);
    for (std::uint32_t block = 0; block < 6; block += 2) {
        chip.eraseBlock(block);
        for (std::uint32_t layer = 0;
             layer < chip.geometry().layersPerBlock; layer += 11) {
            // Compare the calibrated BER measurement of the WLs on
            // one h-layer (the paper's N_ret procedure).
            double lo = 1e30, hi = 0.0;
            for (std::uint32_t w = 0; w < chip.geometry().wlsPerLayer;
                 ++w) {
                chip.programWl({block, layer, w},
                               nand::ProgramCommand{}, tokens);
                const double ber =
                    chip.measureBerNorm({block, layer, w, 0});
                lo = std::min(lo, ber);
                hi = std::max(hi, ber);
            }
            // DeltaH ~= 1: within the paper's 3% RTN bound plus
            // measurement-noise allowance.
            EXPECT_LT(hi / lo, 1.08)
                << "seed " << seed << " pe " << pe << " block "
                << block << " layer " << layer;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAging, SimilarityProperty,
    ::testing::Combine(::testing::Values(1ull, 17ull, 5003ull),
                       ::testing::Values(0u, 2000u),
                       ::testing::Values(0.0, 12.0)));

/** The leader-derived follower command must be safe and faster across
 *  every layer of a block. */
class LeaderFollowerProperty
    : public ::testing::TestWithParam<PeCycles>
{
};

TEST_P(LeaderFollowerProperty, FollowersFasterNeverUncorrectable)
{
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = 2;
    config.seed = 31;
    nand::NandChip chip(config);
    chip.setAging({GetParam(), 0.0});
    ftl::Opm opm(ftl::OpmConfig{}, chip.errors(), chip.ecc(),
                 chip.ispp().config().deltaVMv);

    std::vector<std::uint64_t> tokens(chip.geometry().pagesPerWl, 1);
    chip.eraseBlock(0);
    for (std::uint32_t layer = 0;
         layer < chip.geometry().layersPerBlock; layer += 3) {
        const auto leader = chip.programWl(
            {0, layer, 0}, nand::ProgramCommand{}, tokens);
        const auto params =
            opm.derive(leader, chip.blockAging(0));
        const auto follower = chip.programWl(
            {0, layer, 1}, params.followerCommand(), tokens);
        EXPECT_LE(follower.tProg, leader.tProg);
        // After full retention at this wear, the follower page must
        // still decode (possibly with retries, never uncorrectable).
        const auto out = chip.readPage({0, layer, 1, 0}, 0);
        EXPECT_FALSE(out.uncorrectable)
            << "pe " << GetParam() << " layer " << layer;
    }
}

INSTANTIATE_TEST_SUITE_P(WearSweep, LeaderFollowerProperty,
                         ::testing::Values(0u, 1000u, 2000u));

/** End-to-end data integrity for random operation sequences across
 *  FTLs and geometries. */
class FtlFuzzProperty
    : public ::testing::TestWithParam<
          std::tuple<ssd::FtlKind, std::uint32_t, std::uint64_t>>
{
};

TEST_P(FtlFuzzProperty, RandomOpsPreserveLatestData)
{
    const auto [kind, wlsPerLayer, seed] = GetParam();
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 12;
    config.chip.geometry.layersPerBlock = 6;
    config.chip.geometry.wlsPerLayer = wlsPerLayer;
    config.writeBufferPages = 16;
    config.logicalFraction = 0.45;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = kind;
    config.seed = seed;
    ssd::Ssd dev(config);

    const Lba span = std::min<Lba>(dev.logicalPages(), 400);
    Rng rng(seed * 7 + 1);
    std::vector<bool> written(span, false);
    for (int i = 0; i < 3000; ++i) {
        ssd::HostRequest req;
        req.lba = rng.uniformInt(span);
        req.pages = 1 + static_cast<std::uint32_t>(rng.uniformInt(3));
        req.pages = static_cast<std::uint32_t>(
            std::min<Lba>(req.pages, span - req.lba));
        req.type = rng.bernoulli(0.6) ? ssd::IoType::Write
                                      : ssd::IoType::Read;
        if (req.type == ssd::IoType::Write) {
            for (Lba l = req.lba; l < req.lba + req.pages; ++l)
                written[l] = true;
        }
        dev.submitSync(req);
        if (i % 500 == 0)
            dev.ftl().checkConsistency();
    }
    dev.drain();
    dev.ftl().checkConsistency();
    for (Lba l = 0; l < span; ++l)
        EXPECT_EQ(dev.peek(l).has_value(), written[l]) << "LBA " << l;
}

INSTANTIATE_TEST_SUITE_P(
    FtlGeometrySeeds, FtlFuzzProperty,
    ::testing::Combine(
        ::testing::Values(ssd::FtlKind::Page, ssd::FtlKind::Cube,
                          ssd::FtlKind::CubeMinus, ssd::FtlKind::Vert),
        ::testing::Values(2u, 4u),
        ::testing::Values(11ull, 23ull)));

/** Program-order reliability equivalence (Fig. 13) as a property:
 *  whole-block BER must agree across orders within a few percent. */
class OrderBerProperty
    : public ::testing::TestWithParam<ftl::ProgramOrderKind>
{
};

TEST_P(OrderBerProperty, OrderDoesNotChangeBlockBer)
{
    nand::NandChipConfig config;
    config.geometry.blocksPerChip = 4;
    config.seed = 3;
    nand::NandChip chip(config);
    std::vector<std::uint64_t> tokens(chip.geometry().pagesPerWl, 1);

    auto blockBer = [&](std::uint32_t block,
                        ftl::ProgramOrderKind kind) {
        chip.eraseBlock(block);
        double sum = 0.0;
        int n = 0;
        for (const auto &wl :
             ftl::programSequence(kind, chip.geometry(), block)) {
            chip.programWl(wl, nand::ProgramCommand{}, tokens);
        }
        for (std::uint32_t l = 0; l < chip.geometry().layersPerBlock;
             l += 5) {
            for (std::uint32_t w = 0; w < chip.geometry().wlsPerLayer;
                 ++w) {
                sum += chip.readPage({block, l, w, 0}, 0).rawBerNorm;
                ++n;
            }
        }
        return sum / n;
    };

    const double reference =
        blockBer(0, ftl::ProgramOrderKind::HorizontalFirst);
    const double measured = blockBer(1, GetParam());
    // Paper Fig. 13: max difference below 3% (plus RTN noise).
    EXPECT_NEAR(measured / reference, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, OrderBerProperty,
    ::testing::Values(ftl::ProgramOrderKind::HorizontalFirst,
                      ftl::ProgramOrderKind::VerticalFirst,
                      ftl::ProgramOrderKind::Mixed));

}  // namespace
}  // namespace cubessd
