/**
 * @file
 * Unit tests for the WL Allocation Manager (Sec. 5.2 / Fig. 16):
 * leader/follower steering by buffer utilization, MOS write-point
 * invariants, and block exhaustion.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/ftl/wam.h"

namespace cubessd::ftl {
namespace {

nand::NandGeometry
geom()
{
    nand::NandGeometry g;
    g.layersPerBlock = 4;
    g.wlsPerLayer = 4;
    return g;
}

TEST(Wam, LowUtilizationPrefersLeaders)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    const auto c1 = wam.choose(wp, g, 0.1);
    ASSERT_TRUE(c1.has_value());
    EXPECT_TRUE(c1->isLeader);
    EXPECT_EQ(c1->wl.layer, 0u);
    const auto c2 = wam.choose(wp, g, 0.1);
    EXPECT_TRUE(c2->isLeader);
    EXPECT_EQ(c2->wl.layer, 1u);  // leaders advance bottom-up
}

TEST(Wam, HighUtilizationPrefersFollowers)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    // Open two layers' followers first.
    wam.choose(wp, g, 0.0);
    wam.choose(wp, g, 0.0);
    const auto c = wam.choose(wp, g, 0.95);
    ASSERT_TRUE(c.has_value());
    EXPECT_FALSE(c->isLeader);
    EXPECT_EQ(c->wl.layer, 0u);
    EXPECT_EQ(c->wl.wl, 1u);
}

TEST(Wam, HighUtilizationFallsBackToLeaderWhenNoFollowers)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    // No leaders programmed yet -> no followers available.
    const auto c = wam.choose(wp, g, 1.0);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->isLeader);
}

TEST(Wam, LowUtilizationFallsBackToFollowersWhenLeadersExhausted)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    for (std::uint32_t l = 0; l < g.layersPerBlock; ++l)
        EXPECT_TRUE(wam.choose(wp, g, 0.0)->isLeader);
    const auto c = wam.choose(wp, g, 0.0);
    ASSERT_TRUE(c.has_value());
    EXPECT_FALSE(c->isLeader);
}

TEST(Wam, FollowersOnlyFromLayersWithProgrammedLeader)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    wam.choose(wp, g, 0.0);  // leader of layer 0 only
    std::set<std::uint32_t> followerLayers;
    for (int i = 0; i < 3; ++i) {
        const auto c = wam.takeFollower(wp, g);
        ASSERT_TRUE(c.has_value());
        followerLayers.insert(c->wl.layer);
    }
    EXPECT_EQ(followerLayers, std::set<std::uint32_t>{0});
    // Layer 0's followers are gone and layer 1 has no leader yet.
    EXPECT_FALSE(wam.takeFollower(wp, g).has_value());
}

TEST(Wam, BlockDrainsToExactlyAllWls)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    // Alternate utilization to exercise both paths.
    for (std::uint32_t i = 0; i < g.wlsPerBlock(); ++i) {
        const auto c = wam.choose(wp, g, i % 2 ? 1.0 : 0.0);
        ASSERT_TRUE(c.has_value()) << "exhausted early at " << i;
        EXPECT_TRUE(seen.emplace(c->wl.layer, c->wl.wl).second)
            << "duplicate WL";
        // Invariant: leader flag matches the v-layer-0 definition.
        EXPECT_EQ(c->isLeader, c->wl.wl == 0);
    }
    EXPECT_TRUE(wp.full(g));
    EXPECT_FALSE(wam.choose(wp, g, 0.5).has_value());
}

TEST(Wam, TakeLeaderExhausts)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    const auto g = geom();
    for (std::uint32_t l = 0; l < g.layersPerBlock; ++l)
        EXPECT_TRUE(wam.takeLeader(wp, g).has_value());
    EXPECT_FALSE(wam.takeLeader(wp, g).has_value());
}

TEST(Wam, SingleWlPerLayerHasNoFollowers)
{
    nand::NandGeometry g = geom();
    g.wlsPerLayer = 1;
    Wam wam(0.9);
    MixedWritePoint wp;
    for (std::uint32_t l = 0; l < g.layersPerBlock; ++l) {
        const auto c = wam.choose(wp, g, 1.0);
        ASSERT_TRUE(c.has_value());
        EXPECT_TRUE(c->isLeader);
    }
    EXPECT_FALSE(wam.choose(wp, g, 1.0).has_value());
}

TEST(Wam, BlockIdPropagates)
{
    Wam wam(0.9);
    MixedWritePoint wp;
    wp.block = 17;
    const auto c = wam.choose(wp, geom(), 0.0);
    EXPECT_EQ(c->wl.block, 17u);
}

}  // namespace
}  // namespace cubessd::ftl
