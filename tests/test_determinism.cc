/**
 * @file
 * Determinism regression pins.
 *
 * The simulator's contract is bit-identical replay: same config and
 * seed => same event sequence => same integer timestamps and stats.
 * These tests pin the exact end-to-end fingerprint of a small
 * fig17-style workload (captured from the calendar-queue scheduler
 * the day it landed, verified bit-identical to the std::function-heap
 * scheduler it replaced) so any future change that silently perturbs
 * event ordering — a different tie-break, a reordered schedule call,
 * a float sneaking into control flow — fails loudly here instead of
 * subtly shifting every benchmark figure.
 *
 * Only integer observables are pinned (simulated times, counters);
 * doubles are derived and would only add brittleness.
 */

#include <gtest/gtest.h>

#include "src/ftl/cube_ftl.h"
#include "src/workload/driver.h"

namespace cubessd {
namespace {

ssd::SsdConfig
pinConfig()
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Cube;
    config.seed = 42;
    return config;
}

struct Fingerprint
{
    SimTime elapsed = 0;
    std::uint64_t events = 0;
    std::uint64_t completed = 0;
    SimTime latencySum = 0;
    SimTime queueWaitSum = 0;
    std::uint64_t gcCollections = 0;

    bool
    operator==(const Fingerprint &o) const = default;
};

Fingerprint
runPinned(bool sampled)
{
    ssd::Ssd dev(pinConfig());
    if (sampled) {
        // Observation-only sampling must not perturb the simulation.
        dev.queue().setSampler(10'000, [](SimTime) {});
    }
    auto spec = workload::oltp();
    workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
    workload::Driver driver(dev, gen);
    // Deep prefill so GC collections happen inside the pinned window:
    // the fingerprint then covers the relocation path too.
    driver.prefill(0.6);
    const SimTime start = dev.queue().now();
    const std::uint64_t fired = dev.queue().fired();
    const auto result = driver.run(6000);

    Fingerprint fp;
    fp.elapsed = dev.queue().now() - start;
    fp.events = dev.queue().fired() - fired;
    fp.completed = result.completedRequests;
    fp.latencySum = dev.hostQueue().stats().latencySum;
    fp.queueWaitSum = dev.hostQueue().stats().queueWaitSum;
    fp.gcCollections = dev.ftl().gcStats().collections;
    return fp;
}

TEST(DeterminismPin, Fig17StyleWorkloadFingerprint)
{
    const Fingerprint fp = runPinned(/*sampled=*/false);

    // Golden values. If an intentional semantic change moves them,
    // re-pin: build, run this test, copy the reported values, and
    // re-verify the full-size figures against their references.
    EXPECT_EQ(fp.completed, 6000u);
    EXPECT_EQ(fp.elapsed, 375'214'700u);
    EXPECT_EQ(fp.events, 16'414u);
    EXPECT_EQ(fp.latencySum, 291'814'308'762u);
    EXPECT_EQ(fp.queueWaitSum, 0u);
    EXPECT_EQ(fp.gcCollections, 32u);
}

TEST(DeterminismPin, RepeatedRunsAreBitIdentical)
{
    EXPECT_EQ(runPinned(false), runPinned(false));
}

TEST(DeterminismPin, SamplingOnOffIsBitIdentical)
{
    EXPECT_EQ(runPinned(false), runPinned(true));
}

}  // namespace
}  // namespace cubessd
