/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_queue.h"

namespace cubessd::sim {
namespace {

/** Typed-event target that logs payload.raw.u0 (and fire times). */
struct RecordingHandler final : EventHandler
{
    EventQueue *eq = nullptr;
    std::vector<std::uint64_t> *log = nullptr;
    std::vector<SimTime> *times = nullptr;

    void
    onEvent(EventKind, const EventPayload &payload) override
    {
        if (log != nullptr)
            log->push_back(payload.raw.u0);
        if (times != nullptr)
            times->push_back(eq->now());
    }
};

EventPayload
tagged(std::uint64_t u0)
{
    EventPayload p;
    p.raw.u0 = u0;
    return p;
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTimesAreFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<SimTime> fireTimes;
    eq.schedule(10, [&] {
        fireTimes.push_back(eq.now());
        eq.schedule(5, [&] { fireTimes.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(fireTimes.size(), 2u);
    EXPECT_EQ(fireTimes[0], 10u);
    EXPECT_EQ(fireTimes[1], 15u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    SimTime seen = 0;
    eq.scheduleAt(25, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 25u);
}

TEST(EventQueue, ZeroDelayFiresAtNow)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    SimTime seen = 1;
    eq.schedule(0, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 10u);
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(10, [] {}), "past");
}

TEST(EventQueue, TypedEventsDispatchWithPayload)
{
    EventQueue eq;
    std::vector<std::uint64_t> log;
    std::vector<SimTime> times;
    RecordingHandler h;
    h.eq = &eq;
    h.log = &log;
    h.times = &times;

    eq.schedule(30, EventKind::DriverTick, &h, tagged(3));
    eq.schedule(10, EventKind::ChipOpComplete, &h, tagged(1));
    eq.schedule(20, EventKind::RequestComplete, &h, tagged(2));
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 30}));
}

TEST(EventQueue, SameTimestampFifoStressMixedKinds)
{
    // Many events on a handful of shared timestamps, scheduled in
    // interleaved order, mixing typed and Generic records: within each
    // timestamp the firing order must equal the scheduling order.
    EventQueue eq;
    std::vector<std::uint64_t> log;
    RecordingHandler h;
    h.eq = &eq;
    h.log = &log;

    const SimTime ts[4] = {40, 10, 20, 40};  // includes a duplicate
    std::vector<std::uint64_t> nextTag(4, 0);
    std::vector<std::vector<std::uint64_t>> expected(4);
    for (int round = 0; round < 500; ++round) {
        const std::size_t slot =
            static_cast<std::size_t>(round * 7 % 4);
        const std::uint64_t tag =
            static_cast<std::uint64_t>(slot) * 10000 + nextTag[slot]++;
        expected[slot].push_back(tag);
        if (round % 3 == 0) {
            // Closure events share the same FIFO ordering domain.
            eq.scheduleAt(ts[slot],
                          [&log, tag] { log.push_back(tag); });
        } else {
            eq.scheduleAt(ts[slot], EventKind::DriverTick, &h,
                          tagged(tag));
        }
    }
    eq.run();

    // Reconstruct the expected global order: slots sorted by time,
    // equal-time slots (0 and 3, both at t=40) interleaved in their
    // original scheduling order -- which is exactly what `log` holds
    // filtered by slot; check per-slot subsequences and the time
    // grouping.
    std::vector<std::vector<std::uint64_t>> got(4);
    for (std::uint64_t v : log)
        got[static_cast<std::size_t>(v / 10000)].push_back(v);
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(got[s], expected[s]) << "slot " << s;
    // Slot 1 (t=10) fully precedes slot 2 (t=20), which precedes the
    // t=40 events.
    std::vector<std::size_t> firstIndex(4, 0), lastIndex(4, 0);
    for (std::size_t i = 0; i < log.size(); ++i) {
        const std::size_t s = static_cast<std::size_t>(log[i] / 10000);
        if (firstIndex[s] == 0 && lastIndex[s] == 0)
            firstIndex[s] = i + 1;
        lastIndex[s] = i + 1;
    }
    EXPECT_LT(lastIndex[1], firstIndex[2]);
    EXPECT_LT(lastIndex[2], firstIndex[0]);
    EXPECT_LT(lastIndex[2], firstIndex[3]);
}

TEST(EventQueue, CalendarRolloverFarFuture)
{
    // The initial calendar spans ~1M ns (1024 buckets x 1024 ns).
    // Events several "years" out exercise the rotation fallback that
    // jumps the cursor instead of scanning every intervening day.
    EventQueue eq;
    std::vector<std::uint64_t> log;
    std::vector<SimTime> times;
    RecordingHandler h;
    h.eq = &eq;
    h.log = &log;
    h.times = &times;

    eq.schedule(7'500'000, EventKind::DriverTick, &h, tagged(4));
    eq.schedule(100, EventKind::DriverTick, &h, tagged(1));
    eq.schedule(5'000'000, EventKind::DriverTick, &h, tagged(3));
    eq.schedule(1'048'576, EventKind::DriverTick, &h, tagged(2));

    EXPECT_EQ(eq.run(), 4u);
    EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(times,
              (std::vector<SimTime>{100, 1'048'576, 5'000'000,
                                    7'500'000}));
}

TEST(EventQueue, RepeatedYearJumpsKeepOrder)
{
    // A self-rescheduling actor that hops ~1.3 years per step: every
    // dequeue goes through the full-rotation + cursor-jump path.
    EventQueue eq;
    int hops = 0;
    SimTime last = 0;
    std::function<void()> hop = [&] {
        EXPECT_GT(eq.now(), last);
        last = eq.now();
        if (++hops < 50)
            eq.schedule(1'350'000, hop);
    };
    eq.schedule(1'350'000, hop);
    eq.run();
    EXPECT_EQ(hops, 50);
    EXPECT_EQ(eq.now(), 50u * 1'350'000u);
}

TEST(EventQueue, BucketGrowthPreservesOrder)
{
    // Push pending above 2x the initial bucket count to force the
    // calendar to resize mid-run, with pseudorandom times: output must
    // still be sorted by time with FIFO tie-break.
    EventQueue eq;
    std::vector<std::uint64_t> log;
    RecordingHandler h;
    h.eq = &eq;
    h.log = &log;

    const std::size_t bucketsBefore = eq.bucketCount();
    cubessd::Rng rng(42);
    constexpr std::uint64_t kEvents = 5000;
    std::vector<SimTime> when(kEvents);
    for (std::uint64_t i = 0; i < kEvents; ++i) {
        when[i] = rng.uniformInt(1u << 20);
        eq.scheduleAt(when[i], EventKind::DriverTick, &h, tagged(i));
    }
    EXPECT_GT(eq.pending(), 2 * bucketsBefore);
    eq.run();
    EXPECT_GT(eq.bucketCount(), bucketsBefore);

    ASSERT_EQ(log.size(), kEvents);
    for (std::size_t i = 1; i < log.size(); ++i) {
        const SimTime a = when[log[i - 1]];
        const SimTime b = when[log[i]];
        ASSERT_LE(a, b) << "out of time order at " << i;
        if (a == b) {
            ASSERT_LT(log[i - 1], log[i])
                << "FIFO tie-break violated at " << i;
        }
    }
}

TEST(EventQueue, PoolGrowsOnceThenRecyclesRecords)
{
    EventQueue eq;
    EXPECT_EQ(eq.poolCapacity(), 0u);
    std::vector<std::uint64_t> log;
    RecordingHandler h;
    h.eq = &eq;
    h.log = &log;

    for (std::uint64_t i = 0; i < 1000; ++i)
        eq.schedule(i, EventKind::DriverTick, &h, tagged(i));
    const std::size_t warm = eq.poolCapacity();
    EXPECT_GE(warm, 1000u);
    eq.run();

    // Same load again after draining: every record comes from the
    // free list, the pool must not grow.
    for (std::uint64_t i = 0; i < 1000; ++i)
        eq.schedule(i, EventKind::DriverTick, &h, tagged(i));
    eq.run();
    EXPECT_EQ(eq.poolCapacity(), warm);
    EXPECT_EQ(log.size(), 2000u);
}

TEST(EventQueue, SamplerDoesNotPerturbDispatch)
{
    // The sampling hook is observation-only: an identical workload run
    // with and without a sampler must produce a bit-identical firing
    // sequence and final clock.
    auto runWorkload = [](EventQueue &eq,
                          std::vector<std::pair<SimTime, int>> &log) {
        cubessd::Rng rng(7);
        std::function<void(int, int)> actor = [&](int id, int left) {
            log.emplace_back(eq.now(), id);
            if (left > 0) {
                const SimTime d = 1 + rng.uniformInt(777);
                eq.schedule(d, [&actor, id, left] {
                    actor(id, left - 1);
                });
            }
        };
        for (int id = 0; id < 4; ++id) {
            eq.schedule(static_cast<SimTime>(id),
                        [&actor, id] { actor(id, 200); });
        }
        eq.run();
    };

    std::vector<std::pair<SimTime, int>> plain;
    SimTime plainEnd = 0;
    {
        EventQueue eq;
        runWorkload(eq, plain);
        plainEnd = eq.now();
    }

    std::vector<std::pair<SimTime, int>> sampled;
    std::vector<SimTime> sampleTimes;
    SimTime sampledEnd = 0;
    {
        EventQueue eq;
        eq.setSampler(100, [&sampleTimes](SimTime t) {
            sampleTimes.push_back(t);
        });
        runWorkload(eq, sampled);
        sampledEnd = eq.now();
    }

    EXPECT_EQ(plain, sampled);
    EXPECT_EQ(plainEnd, sampledEnd);
    ASSERT_FALSE(sampleTimes.empty());
    for (std::size_t i = 0; i < sampleTimes.size(); ++i) {
        EXPECT_EQ(sampleTimes[i] % 100, 0u);
        if (i > 0) {
            EXPECT_LT(sampleTimes[i - 1], sampleTimes[i]);
        }
    }
}

}  // namespace
}  // namespace cubessd::sim
