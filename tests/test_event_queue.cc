/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace cubessd::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTimesAreFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<SimTime> fireTimes;
    eq.schedule(10, [&] {
        fireTimes.push_back(eq.now());
        eq.schedule(5, [&] { fireTimes.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(fireTimes.size(), 2u);
    EXPECT_EQ(fireTimes[0], 10u);
    EXPECT_EQ(fireTimes[1], 15u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    SimTime seen = 0;
    eq.scheduleAt(25, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 25u);
}

TEST(EventQueue, ZeroDelayFiresAtNow)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    SimTime seen = 1;
    eq.schedule(0, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 10u);
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(10, [] {}), "past");
}

}  // namespace
}  // namespace cubessd::sim
