/**
 * @file
 * Tests of the multi-tenant front end: tenant-spec parsing, arrival
 * processes, WRR arbitration fairness, per-tenant metric isolation,
 * SLO accounting, and the MSR-Cambridge trace auto-detection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/ssd/arbiter.h"
#include "src/ssd/ssd.h"
#include "src/workload/multi_tenant.h"
#include "src/workload/tenant.h"
#include "src/workload/trace.h"

namespace cubessd {
namespace {

ssd::SsdConfig
mtConfig()
{
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 24;
    config.chip.geometry.layersPerBlock = 8;
    config.chip.geometry.wlsPerLayer = 4;
    config.writeBufferPages = 24;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Page;
    config.seed = 99;
    config.hostQueueDepth = 0;  // the arbiter owns the window
    return config;
}

/** All-read / all-write personalities for isolation tests. */
workload::WorkloadSpec
pureSpec(const std::string &name, double readFraction)
{
    workload::WorkloadSpec spec;
    spec.name = name;
    spec.readFraction = readFraction;
    spec.minPages = 1;
    spec.maxPages = 1;
    spec.zipfTheta = 0.9;
    spec.workingSetFraction = 0.5;
    spec.burstLength = 0;
    return spec;
}

workload::TenantSpec
tenant(const std::string &name, const workload::WorkloadSpec &wl,
       std::uint32_t weight)
{
    workload::TenantSpec spec;
    spec.name = name;
    spec.workload = wl;
    spec.weight = weight;
    return spec;
}

// ---------------------------------------------------------------------
// TenantSpec parsing and validation
// ---------------------------------------------------------------------

TEST(TenantSpecParse, FullSpecRoundTrips)
{
    workload::TenantSpec spec;
    const std::string err = workload::parseTenantSpec(
        "A:readhot:w=3:slo=500us:arrival=bursty:burst=16:rate=25000:"
        "ns=0.25",
        &spec);
    ASSERT_EQ(err, "");
    EXPECT_EQ(spec.name, "A");
    EXPECT_EQ(spec.workload.name, "ReadHot");
    EXPECT_EQ(spec.weight, 3u);
    EXPECT_EQ(spec.sloTarget, 500 * kMicrosecond);
    EXPECT_EQ(spec.arrival, workload::ArrivalKind::Bursty);
    EXPECT_DOUBLE_EQ(spec.burstMean, 16.0);
    EXPECT_DOUBLE_EQ(spec.rate, 25000.0);
    EXPECT_DOUBLE_EQ(spec.namespaceFraction, 0.25);
}

TEST(TenantSpecParse, ListParsesTheAcceptanceExample)
{
    std::vector<workload::TenantSpec> specs;
    const std::string err = workload::parseTenantList(
        "A:readhot:w=3:slo=500us,B:writeheavy:w=1:slo=2ms", &specs);
    ASSERT_EQ(err, "");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "A");
    EXPECT_EQ(specs[0].weight, 3u);
    EXPECT_EQ(specs[0].sloTarget, 500 * kMicrosecond);
    EXPECT_EQ(specs[1].name, "B");
    EXPECT_EQ(specs[1].workload.name, "WriteHeavy");
    EXPECT_EQ(specs[1].sloTarget, 2 * kMillisecond);
    EXPECT_EQ(workload::validateTenants(specs), "");
}

TEST(TenantSpecParse, ErrorsNameTheProblem)
{
    workload::TenantSpec spec;

    std::string err = workload::parseTenantSpec("lonely", &spec);
    EXPECT_NE(err.find("expected <name>:<workload>"), std::string::npos);

    err = workload::parseTenantSpec("A:nosuchworkload", &spec);
    EXPECT_NE(err.find("unknown workload 'nosuchworkload'"),
              std::string::npos);

    err = workload::parseTenantSpec("A:readhot:w=0", &spec);
    EXPECT_NE(err.find("bad weight '0'"), std::string::npos);

    err = workload::parseTenantSpec("A:readhot:slo=5parsec", &spec);
    EXPECT_NE(err.find("unit must be ns, us, ms or s"),
              std::string::npos);

    err = workload::parseTenantSpec("A:readhot:color=red", &spec);
    EXPECT_NE(err.find("unknown tenant option 'color'"),
              std::string::npos);
}

TEST(TenantSpecParse, DurationUnits)
{
    SimTime out = 0;
    EXPECT_EQ(workload::parseDuration("250ns", &out), "");
    EXPECT_EQ(out, 250u);
    EXPECT_EQ(workload::parseDuration("500us", &out), "");
    EXPECT_EQ(out, 500 * kMicrosecond);
    EXPECT_EQ(workload::parseDuration("2ms", &out), "");
    EXPECT_EQ(out, 2 * kMillisecond);
    EXPECT_EQ(workload::parseDuration("1.5s", &out), "");
    EXPECT_EQ(out, static_cast<SimTime>(1.5 * kSecond));
    EXPECT_NE(workload::parseDuration("abc", &out), "");
    EXPECT_NE(workload::parseDuration("10min", &out), "");
}

TEST(TenantSpecValidate, CrossTenantChecks)
{
    std::vector<workload::TenantSpec> specs;
    specs.push_back(tenant("A", pureSpec("R", 1.0), 1));
    specs.push_back(tenant("A", pureSpec("W", 0.0), 1));
    EXPECT_NE(workload::validateTenants(specs)
                  .find("duplicate tenant name 'A'"),
              std::string::npos);

    specs[1].name = "B";
    specs[0].namespaceFraction = 0.6;
    specs[1].namespaceFraction = 0.6;
    EXPECT_NE(workload::validateTenants(specs)
                  .find("sum to more than 1"),
              std::string::npos);

    specs[0].namespaceFraction = 0.3;
    specs[1].namespaceFraction = 0.3;
    EXPECT_NE(workload::validateTenants(specs)
                  .find("must sum to 1"),
              std::string::npos);

    specs[1].namespaceFraction = 0.7;
    EXPECT_EQ(workload::validateTenants(specs), "");
}

// ---------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------

TEST(ArrivalProcess, PoissonInterArrivalStatistics)
{
    // Exponential gaps at 1e6 arrivals/s: mean 1000 ns, and the
    // coefficient of variation of an exponential is 1.
    workload::ArrivalProcess process(workload::ArrivalKind::Poisson,
                                     1e6, 1.0, 1234);
    constexpr int kSamples = 20000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double gap =
            static_cast<double>(process.nextGap());
        EXPECT_EQ(process.batchSize(), 1u);
        sum += gap;
        sumSq += gap * gap;
    }
    const double mean = sum / kSamples;
    const double variance = sumSq / kSamples - mean * mean;
    const double cv = std::sqrt(variance) / mean;
    EXPECT_NEAR(mean, 1000.0, 50.0);  // +-5%
    EXPECT_NEAR(cv, 1.0, 0.1);
}

TEST(ArrivalProcess, BurstyPreservesMeanRateInBatches)
{
    // Batch-Poisson at the same average rate: epochs are 8x sparser,
    // batches are geometric with mean 8, so requests/time match the
    // configured rate.
    workload::ArrivalProcess process(workload::ArrivalKind::Bursty,
                                     1e6, 8.0, 77);
    constexpr int kEpochs = 20000;
    double totalTime = 0.0;
    double totalRequests = 0.0;
    double maxBatch = 0.0;
    for (int i = 0; i < kEpochs; ++i) {
        totalTime += static_cast<double>(process.nextGap());
        const double batch = process.batchSize();
        totalRequests += batch;
        maxBatch = std::max(maxBatch, batch);
    }
    const double rate =
        totalRequests / (totalTime / static_cast<double>(kSecond));
    EXPECT_NEAR(rate, 1e6, 1e5);  // +-10%
    EXPECT_NEAR(totalRequests / kEpochs, 8.0, 0.8);
    EXPECT_GT(maxBatch, 16.0);  // genuinely bursty, not constant
}

// ---------------------------------------------------------------------
// WRR arbitration
// ---------------------------------------------------------------------

/** Records completions with the submitter-provided queue index. */
struct OrderSink final : ssd::CompletionSink
{
    struct Item
    {
        std::uint64_t queue = 0;
        std::uint64_t id = 0;
    };
    std::vector<Item> items;

    void onCompletion(const ssd::Completion &c, std::uint64_t ctx) override
    {
        items.push_back({ctx, c.id});
    }
};

TEST(WrrArbiter, WeightedFairnessUnderSaturation)
{
    ssd::Ssd dev(mtConfig());
    for (Lba lba = 0; lba < 64; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        dev.submitSync(req);
    }
    dev.drain();

    // Two fully backlogged queues, weights 3:1, small shared window:
    // request ids are assigned at dispatch into the host queue, so the
    // id order of the completions IS the dispatch order.
    ssd::WrrArbiter arbiter(dev.hostQueue(), {4, 1});
    const auto queueA = arbiter.addQueue(3);
    const auto queueB = arbiter.addQueue(1);
    OrderSink sink;
    constexpr int kPerQueue = 200;
    for (int i = 0; i < kPerQueue; ++i) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Read;
        req.lba = static_cast<Lba>(i % 64);
        arbiter.submit(queueA, req, &sink, queueA);
    }
    for (int i = 0; i < kPerQueue; ++i) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Read;
        req.lba = static_cast<Lba>((i * 7) % 64);
        arbiter.submit(queueB, req, &sink, queueB);
    }
    dev.queue().run();
    ASSERT_EQ(sink.items.size(),
              static_cast<std::size_t>(2 * kPerQueue));
    EXPECT_EQ(arbiter.inFlight(), 0u);
    EXPECT_EQ(arbiter.stats(queueA).dispatched,
              static_cast<std::uint64_t>(kPerQueue));
    EXPECT_EQ(arbiter.stats(queueB).dispatched,
              static_cast<std::uint64_t>(kPerQueue));

    // While both queues are backlogged (the first 240 dispatches:
    // queue A still holds >= 200 - 180), the 3:1 weights must show as
    // a ~3:1 dispatch ratio.
    std::sort(sink.items.begin(), sink.items.end(),
              [](const OrderSink::Item &a, const OrderSink::Item &b) {
                  return a.id < b.id;
              });
    int dispatchedA = 0, dispatchedB = 0;
    for (int i = 0; i < 240; ++i) {
        if (sink.items[static_cast<std::size_t>(i)].queue == queueA)
            ++dispatchedA;
        else
            ++dispatchedB;
    }
    const double ratio =
        static_cast<double>(dispatchedA) / dispatchedB;
    EXPECT_GT(ratio, 2.1);  // 3:1 +-30%
    EXPECT_LT(ratio, 3.9);
}

TEST(WrrArbiter, QueueWaitIncludesSubmissionQueueTime)
{
    ssd::Ssd dev(mtConfig());
    for (Lba lba = 0; lba < 16; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        dev.submitSync(req);
    }
    dev.drain();

    // Window 1 serializes: the later submissions park in the
    // submission queue, and that wait must be inside latency().
    ssd::WrrArbiter arbiter(dev.hostQueue(), {1, 1});
    const auto queue = arbiter.addQueue(1);
    OrderSink sink;
    for (int i = 0; i < 4; ++i) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Read;
        req.lba = static_cast<Lba>(i);
        req.arrival = dev.queue().now();
        arbiter.submit(queue, req, &sink, queue);
    }
    std::vector<ssd::Completion> completions;
    struct Collect final : ssd::CompletionSink
    {
        std::vector<ssd::Completion> *out = nullptr;
        void onCompletion(const ssd::Completion &c,
                          std::uint64_t) override
        {
            out->push_back(c);
        }
    } collect;
    collect.out = &completions;
    for (int i = 0; i < 4; ++i) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Read;
        req.lba = static_cast<Lba>(4 + i);
        req.arrival = dev.queue().now();
        arbiter.submit(queue, req, &collect, 0);
    }
    dev.queue().run();
    ASSERT_EQ(completions.size(), 4u);
    std::sort(completions.begin(), completions.end(),
              [](const ssd::Completion &a, const ssd::Completion &b) {
                  return a.id < b.id;
              });
    // All four arrived at the same instant; each later one waited for
    // its predecessors, and the wait is visible in queueWait().
    for (std::size_t i = 1; i < completions.size(); ++i) {
        EXPECT_GT(completions[i].queueWait(),
                  completions[i - 1].queueWait());
        EXPECT_EQ(completions[i].latency(),
                  completions[i].queueWait() +
                      completions[i].serviceTime());
    }
}

// ---------------------------------------------------------------------
// MultiTenantDriver
// ---------------------------------------------------------------------

TEST(MultiTenantDriver, PerTenantMetricsAreIsolated)
{
    ssd::Ssd dev(mtConfig());
    std::vector<workload::TenantSpec> specs;
    specs.push_back(tenant("reader", pureSpec("PureRead", 1.0), 1));
    specs.push_back(tenant("writer", pureSpec("PureWrite", 0.0), 1));

    workload::MultiTenantOptions options;
    options.window = 16;
    workload::MultiTenantDriver driver(dev, specs, options);
    driver.prefill(0.1);

    // Disjoint namespaces covering the device in spec order.
    const auto &nsA = driver.nameSpace(0);
    const auto &nsB = driver.nameSpace(1);
    EXPECT_EQ(nsA.base, 0u);
    EXPECT_EQ(nsB.base, nsA.pages);
    EXPECT_LE(nsB.base + nsB.pages, dev.logicalPages());

    constexpr std::uint64_t kRequests = 3000;
    const auto result = driver.run(kRequests);
    EXPECT_EQ(result.completed, kRequests);

    // The all-read tenant's histograms contain no writes and vice
    // versa: completions are attributed by tenant tag, never leaked.
    const auto &reader = result.tenants[0];
    const auto &writer = result.tenants[1];
    EXPECT_EQ(reader.metrics.recorded(ssd::IoType::Write), 0u);
    EXPECT_GT(reader.metrics.recorded(ssd::IoType::Read), 0u);
    EXPECT_EQ(writer.metrics.recorded(ssd::IoType::Read), 0u);
    EXPECT_GT(writer.metrics.recorded(ssd::IoType::Write), 0u);
    EXPECT_EQ(reader.completed + writer.completed, result.completed);
    EXPECT_EQ(reader.metrics.recorded(ssd::IoType::Read) +
                  writer.metrics.recorded(ssd::IoType::Write),
              result.completed);
    EXPECT_EQ(reader.submitted, reader.completed);
    EXPECT_EQ(writer.submitted, writer.completed);
}

TEST(MultiTenantDriver, ClosedLoopThroughputFollowsWeights)
{
    ssd::Ssd dev(mtConfig());
    std::vector<workload::TenantSpec> specs;
    specs.push_back(tenant("heavy", pureSpec("PureReadA", 1.0), 3));
    specs.push_back(tenant("light", pureSpec("PureReadB", 1.0), 1));

    // Saturating closed loop: both tenants keep far more in flight
    // than the shared window admits, so dispatch share == WRR share.
    workload::MultiTenantOptions options;
    options.window = 8;
    options.closedLoopQd = 32;
    workload::MultiTenantDriver driver(dev, specs, options);
    driver.prefill(0.1);
    const auto result = driver.run(4000);

    const double ratio =
        static_cast<double>(result.tenants[0].completed) /
        static_cast<double>(result.tenants[1].completed);
    EXPECT_GT(ratio, 2.1);  // 3:1 +-30%
    EXPECT_LT(ratio, 3.9);
}

TEST(MultiTenantDriver, OpenLoopExplicitRatesAndSloAccounting)
{
    ssd::Ssd dev(mtConfig());
    std::vector<workload::TenantSpec> specs;
    specs.push_back(tenant("fast", pureSpec("PureReadA", 1.0), 1));
    specs.push_back(tenant("slow", pureSpec("PureReadB", 1.0), 1));
    specs[0].rate = 40000.0;
    specs[0].sloTarget = 1;  // 1 ns: every completion violates
    specs[1].rate = 20000.0;
    specs[1].arrival = workload::ArrivalKind::Bursty;
    specs[1].burstMean = 4.0;

    workload::MultiTenantOptions options;
    options.openLoop = true;
    workload::MultiTenantDriver driver(dev, specs, options);
    driver.prefill(0.1);

    constexpr std::uint64_t kRequests = 3000;
    const auto result = driver.run(kRequests);
    EXPECT_EQ(result.completed, kRequests);
    EXPECT_EQ(result.calibratedIops, 0.0);  // explicit rates: no
                                            // calibration needed

    const auto &fast = result.tenants[0];
    const auto &slow = result.tenants[1];
    EXPECT_DOUBLE_EQ(fast.offeredRate, 40000.0);
    EXPECT_DOUBLE_EQ(slow.offeredRate, 20000.0);
    // 2:1 arrival rates show up as a ~2:1 request split.
    const double split = static_cast<double>(fast.submitted) /
                         static_cast<double>(slow.submitted);
    EXPECT_GT(split, 1.4);
    EXPECT_LT(split, 2.8);
    // Open loop: elapsed tracks the offered rate (60k req/s
    // aggregate), not the device's appetite.
    const double seconds = toSeconds(result.elapsed);
    EXPECT_GT(seconds, 3000.0 / 60000.0 * 0.5);
    EXPECT_LT(seconds, 3000.0 / 60000.0 * 3.0);

    // SLO accounting: a 1 ns target is violated by every completion;
    // no target means no violations counted.
    EXPECT_EQ(fast.sloViolations, fast.completed);
    EXPECT_DOUBLE_EQ(fast.sloViolationFraction(), 1.0);
    EXPECT_EQ(slow.sloViolations, 0u);
}

TEST(MultiTenantDriver, CompletionsCarryTenantTags)
{
    ssd::Ssd dev(mtConfig());
    ssd::HostRequest req;
    req.type = ssd::IoType::Write;
    req.lba = 3;
    req.tenant = 2;
    req.namespaceId = 2;
    const auto completion = dev.submitSync(req);
    EXPECT_EQ(completion.tenant, 2u);

    // Untagged requests stay untagged end to end.
    ssd::HostRequest plain;
    plain.type = ssd::IoType::Write;
    plain.lba = 4;
    const auto untagged = dev.submitSync(plain);
    EXPECT_EQ(untagged.tenant, ssd::kNoTenant);
}

// ---------------------------------------------------------------------
// MSR-Cambridge trace auto-detection
// ---------------------------------------------------------------------

TEST(TraceReaderMsr, ParsesCsvAndConvertsUnits)
{
    std::istringstream in(
        "128166372003061629,hm,0,Read,32768,16384,1331\n"
        "128166372003061729,hm,0,Write,8192,20480,334\n");
    std::vector<ssd::HostRequest> requests;
    ASSERT_EQ(workload::TraceReader::parse(in, &requests), "");
    ASSERT_EQ(requests.size(), 2u);

    // First record anchors t=0; offsets/sizes convert to 16 KB pages.
    EXPECT_EQ(requests[0].arrival, 0u);
    EXPECT_EQ(requests[0].type, ssd::IoType::Read);
    EXPECT_EQ(requests[0].lba, 2u);
    EXPECT_EQ(requests[0].pages, 1u);
    // 100 FILETIME ticks later = 10 us; 20 KB spanning two pages.
    EXPECT_EQ(requests[1].arrival, 10 * kMicrosecond);
    EXPECT_EQ(requests[1].type, ssd::IoType::Write);
    EXPECT_EQ(requests[1].lba, 0u);
    EXPECT_EQ(requests[1].pages, 2u);
}

TEST(TraceReaderMsr, MixedFormatsAndComments)
{
    std::istringstream in(
        "# native lines and MSR records can coexist\n"
        "1000 R 5 2\n"
        "128166372003061629,hm,0,Read,0,16384,10\n");
    std::vector<ssd::HostRequest> requests;
    ASSERT_EQ(workload::TraceReader::parse(in, &requests), "");
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].arrival, 1000u);
    EXPECT_EQ(requests[0].pages, 2u);
    EXPECT_EQ(requests[1].lba, 0u);
}

TEST(TraceReaderMsr, MalformedLinesNameFormatAndLine)
{
    std::istringstream msr(
        "128166372003061629,hm,0,Read,32768,16384,1331\n"
        "totally,not,a,record\n");
    std::vector<ssd::HostRequest> requests;
    std::string err = workload::TraceReader::parse(msr, &requests);
    EXPECT_NE(err.find("MSR-Cambridge"), std::string::npos);
    EXPECT_NE(err.find("line 2"), std::string::npos);

    std::istringstream badType(
        "128166372003061629,hm,0,Erase,32768,16384,1331\n");
    requests.clear();
    err = workload::TraceReader::parse(badType, &requests);
    EXPECT_NE(err.find("bad I/O type 'Erase'"), std::string::npos);

    std::istringstream native("bogus native line\n");
    requests.clear();
    err = workload::TraceReader::parse(native, &requests);
    EXPECT_NE(err.find("malformed trace line 1"), std::string::npos);
    EXPECT_NE(err.find("<arrival_ns> <R|W> <lba> <pages>"),
              std::string::npos);
}

}  // namespace
}  // namespace cubessd
