/**
 * @file
 * Unit/property tests for the reliability model: monotonicity in all
 * aging dimensions, the nonlinear layer divergence of Fig. 6, the
 * window-shrink conversion (Fig. 11), and the over-program penalty
 * (Fig. 8).
 */

#include <gtest/gtest.h>

#include "src/nand/error_model.h"

namespace cubessd::nand {
namespace {

class ErrorModelTest : public ::testing::Test
{
  protected:
    ErrorModel model_{};
};

TEST_F(ErrorModelTest, SeverityEndpoints)
{
    EXPECT_DOUBLE_EQ(model_.severity({0, 0.0}), 0.0);
    EXPECT_NEAR(model_.severity({2000, 12.0}), 1.0, 1e-9);
}

TEST_F(ErrorModelTest, SeverityMonotone)
{
    double prev = -1.0;
    for (PeCycles pe : {0u, 500u, 1000u, 1500u, 2000u}) {
        const double s = model_.severity({pe, 1.0});
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST_F(ErrorModelTest, BerMonotoneInPe)
{
    double prev = 0.0;
    for (PeCycles pe : {0u, 250u, 500u, 1000u, 2000u}) {
        const double ber = model_.normalizedBer(1.2, {pe, 1.0});
        EXPECT_GT(ber, prev);
        prev = ber;
    }
}

TEST_F(ErrorModelTest, BerMonotoneInRetention)
{
    double prev = 0.0;
    for (double t : {0.0, 0.5, 1.0, 3.0, 6.0, 12.0}) {
        const double ber = model_.normalizedBer(1.2, {1000, t});
        EXPECT_GT(ber, prev);
        prev = ber;
    }
}

TEST_F(ErrorModelTest, BerMonotoneInQuality)
{
    double prev = 0.0;
    for (double q : {1.0, 1.1, 1.3, 1.6}) {
        const double ber = model_.normalizedBer(q, {1000, 1.0});
        EXPECT_GT(ber, prev);
        prev = ber;
    }
}

TEST_F(ErrorModelTest, FreshBestLayerNormalizedToOne)
{
    EXPECT_NEAR(model_.normalizedBer(1.0, {0, 0.0}), 1.0, 1e-9);
    EXPECT_NEAR(model_.retentionBer(1.0, {0, 0.0}),
                model_.params().baseBer, 1e-12);
}

TEST_F(ErrorModelTest, LayerDivergenceGrowsWithAging)
{
    // Fig. 6: DeltaV ~ q_max/q_min fresh, growing to ~2.3 at EOL+1yr.
    const double qWorst = 1.6, qBest = 1.0;
    const double freshRatio =
        model_.normalizedBer(qWorst, {0, 0.0}) /
        model_.normalizedBer(qBest, {0, 0.0});
    const double eolRatio =
        model_.normalizedBer(qWorst, {2000, 12.0}) /
        model_.normalizedBer(qBest, {2000, 12.0});
    EXPECT_NEAR(freshRatio, 1.6, 0.05);
    EXPECT_GT(eolRatio, 2.0);
    EXPECT_LT(eolRatio, 2.6);
}

TEST_F(ErrorModelTest, Ep1TracksTotal)
{
    const AgingState aging{1500, 6.0};
    const double total = model_.normalizedBer(1.3, aging);
    const double ep1 = model_.berEp1Norm(1.3, aging);
    EXPECT_NEAR(ep1 / total, model_.params().ep1Fraction, 1e-9);
    EXPECT_NEAR(model_.totalNormFromEp1(ep1), total, 1e-9);
}

TEST_F(ErrorModelTest, WindowShrinkIdentityAtZero)
{
    EXPECT_DOUBLE_EQ(model_.windowShrinkMultiplier(0.0), 1.0);
    EXPECT_DOUBLE_EQ(model_.windowShrinkMultiplier(-10.0), 1.0);
}

TEST_F(ErrorModelTest, WindowShrinkMonotone)
{
    double prev = 1.0;
    for (double mv : {50.0, 100.0, 200.0, 400.0}) {
        const double m = model_.windowShrinkMultiplier(mv);
        EXPECT_GT(m, prev);
        prev = m;
    }
}

TEST_F(ErrorModelTest, SafeShrinkInvertsMultiplier)
{
    for (double mv : {40.0, 130.0, 320.0, 400.0}) {
        const double mult = model_.windowShrinkMultiplier(mv);
        EXPECT_NEAR(model_.safeWindowShrinkMv(mult), mv, 1e-6);
    }
    EXPECT_DOUBLE_EQ(model_.safeWindowShrinkMv(1.0), 0.0);
    EXPECT_DOUBLE_EQ(model_.safeWindowShrinkMv(0.5), 0.0);
}

TEST_F(ErrorModelTest, OverProgramPenaltyShape)
{
    // Fig. 8(a): no penalty within the safe count; growing with extra
    // skips; higher states pay more for the same overshoot.
    EXPECT_DOUBLE_EQ(model_.overProgramMultiplier(0, 4), 1.0);
    EXPECT_DOUBLE_EQ(model_.overProgramMultiplier(-3, 4), 1.0);
    double prev = 1.0;
    for (int extra = 1; extra <= 5; ++extra) {
        const double m = model_.overProgramMultiplier(extra, 4);
        EXPECT_GT(m, prev);
        prev = m;
    }
    EXPECT_GT(model_.overProgramMultiplier(2, 7),
              model_.overProgramMultiplier(2, 1));
}

TEST_F(ErrorModelTest, RetentionProjectionRecoversQuality)
{
    // Measure at some condition, project to full retention: must match
    // evaluating the true quality at full retention (chipFactor 1).
    for (double q : {1.0, 1.2, 1.5}) {
        for (AgingState aging :
             {AgingState{0, 0.0}, {1000, 0.0}, {2000, 1.0}}) {
            const double measured = model_.normalizedBer(q, aging);
            const double projected =
                model_.projectedRetentionNorm(measured, aging);
            const double expected = model_.normalizedBer(
                q, {aging.peCycles, model_.params().retEolMonths});
            EXPECT_NEAR(projected, expected, expected * 1e-6)
                << "q=" << q << " pe=" << aging.peCycles;
        }
    }
}

TEST_F(ErrorModelTest, ProjectionIsMonotoneInMeasurement)
{
    const AgingState aging{500, 0.0};
    double prev = 0.0;
    for (double m : {1.0, 2.0, 4.0, 8.0}) {
        const double p = model_.projectedRetentionNorm(m, aging);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

}  // namespace
}  // namespace cubessd::nand
