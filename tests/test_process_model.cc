/**
 * @file
 * Unit/property tests for the process model — the paper's two key
 * findings are encoded as invariants here:
 *
 *  - horizontal intra-layer similarity: WLs of one h-layer agree to
 *    RTN precision (DeltaH ~= 1, Fig. 5);
 *  - vertical inter-layer variability: layers differ substantially
 *    (DeltaV ~ 1.6 fresh, Fig. 6), with edge and bottom layers worst.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/nand/process_model.h"

namespace cubessd::nand {
namespace {

class ProcessModelTest : public ::testing::Test
{
  protected:
    NandGeometry geom_;
    ProcessParams params_;
    ProcessModel model_{geom_, params_, 99};
};

TEST_F(ProcessModelTest, Deterministic)
{
    ProcessModel other(geom_, params_, 99);
    for (std::uint32_t l = 0; l < geom_.layersPerBlock; ++l)
        EXPECT_DOUBLE_EQ(model_.layerQuality(3, l),
                         other.layerQuality(3, l));
}

TEST_F(ProcessModelTest, DifferentSeedsAreDifferentChips)
{
    ProcessModel other(geom_, params_, 100);
    EXPECT_NE(model_.chipFactor(), other.chipFactor());
}

TEST_F(ProcessModelTest, QualityAtLeastOne)
{
    for (std::uint32_t b = 0; b < geom_.blocksPerChip; b += 37) {
        for (std::uint32_t l = 0; l < geom_.layersPerBlock; ++l)
            EXPECT_GE(model_.layerQuality(b, l), 1.0);
    }
}

TEST_F(ProcessModelTest, IntraLayerSimilarity)
{
    // The WLs of one h-layer must agree to well under 3% (the paper's
    // RTN bound), across many blocks and layers.
    for (std::uint32_t b = 0; b < geom_.blocksPerChip; b += 17) {
        for (std::uint32_t l = 0; l < geom_.layersPerBlock; l += 5) {
            double lo = 1e30, hi = 0.0;
            for (std::uint32_t w = 0; w < geom_.wlsPerLayer; ++w) {
                const double q = model_.wlQuality(WlAddr{b, l, w});
                lo = std::min(lo, q);
                hi = std::max(hi, q);
            }
            EXPECT_LT(hi / lo, 1.03)
                << "block " << b << " layer " << l;
        }
    }
}

TEST_F(ProcessModelTest, InterLayerVariability)
{
    // DeltaV well above 1 on every block: layers genuinely differ.
    for (std::uint32_t b = 0; b < geom_.blocksPerChip; b += 31) {
        double lo = 1e30, hi = 0.0;
        for (std::uint32_t l = 0; l < geom_.layersPerBlock; ++l) {
            const double q = model_.layerQuality(b, l);
            lo = std::min(lo, q);
            hi = std::max(hi, q);
        }
        EXPECT_GT(hi / lo, 1.3) << "block " << b;
        EXPECT_LT(hi / lo, 2.5) << "block " << b;
    }
}

TEST_F(ProcessModelTest, RepresentativeLayerOrdering)
{
    const std::uint32_t b = 0;
    const double beta = model_.layerQuality(b, model_.layerBeta());
    const double alpha = model_.layerQuality(b, model_.layerAlpha());
    const double kappa = model_.layerQuality(b, model_.layerKappa());
    const double omega = model_.layerQuality(b, model_.layerOmega());
    // Beta is the best layer; edges and the bottom band are worse.
    EXPECT_LT(beta, alpha);
    EXPECT_LT(beta, kappa);
    EXPECT_LT(beta, omega);
    // The bottom edge compounds taper + distortion + edge penalty.
    EXPECT_GT(omega, alpha);
}

TEST_F(ProcessModelTest, EdgeLayersPenalized)
{
    const std::uint32_t b = 2;
    const double top = model_.layerQuality(b, geom_.layersPerBlock - 1);
    const double nextToTop =
        model_.layerQuality(b, geom_.layersPerBlock - 2);
    EXPECT_GT(top, nextToTop);  // Fig. 5: block-edge layers high BER
}

TEST_F(ProcessModelTest, BottomLayersWorseThanTopHalf)
{
    const std::uint32_t b = 1;
    // Averages: the bottom quarter (excluding the edge) must be worse
    // than the top quarter (excluding the edge) - etch taper.
    double bottom = 0.0, top = 0.0;
    const std::uint32_t quarter = geom_.layersPerBlock / 4;
    for (std::uint32_t i = 1; i <= quarter; ++i) {
        bottom += model_.layerQuality(b, i);
        top += model_.layerQuality(b, geom_.layersPerBlock - 1 - i);
    }
    EXPECT_GT(bottom, top);
}

TEST_F(ProcessModelTest, BlockSeverityVariesAcrossBlocks)
{
    double lo = 1e30, hi = 0.0;
    for (std::uint32_t b = 0; b < geom_.blocksPerChip; ++b) {
        lo = std::min(lo, model_.blockSeverity(b));
        hi = std::max(hi, model_.blockSeverity(b));
    }
    EXPECT_GT(hi / lo, 1.2);  // per-block variation exists (Fig. 6(d))
    EXPECT_LT(hi / lo, 3.0);  // ...but is bounded
}

TEST_F(ProcessModelTest, ProgramSpeedSharedWithinLayer)
{
    // tPROG equality within an h-layer (Fig. 5(d)) requires the mean
    // program speed to agree within a few mV.
    for (std::uint32_t l = 0; l < geom_.layersPerBlock; l += 7) {
        const double s0 = model_.programSpeedMv(WlAddr{5, l, 0});
        for (std::uint32_t w = 1; w < geom_.wlsPerLayer; ++w) {
            const double sw = model_.programSpeedMv(WlAddr{5, l, w});
            EXPECT_NEAR(sw, s0, 10.0);
        }
    }
}

TEST_F(ProcessModelTest, WorseLayersProgramFaster)
{
    // Narrow channel holes concentrate the field: the worst layer has
    // a larger speed boost than the best layer.
    const double worst =
        model_.programSpeedMv(WlAddr{0, model_.layerOmega(), 0});
    const double best =
        model_.programSpeedMv(WlAddr{0, model_.layerBeta(), 0});
    EXPECT_GT(worst, best);
}

TEST(ProcessModelParam, TinyGeometrySupported)
{
    NandGeometry g;
    g.blocksPerChip = 2;
    g.layersPerBlock = 2;
    g.wlsPerLayer = 1;
    ProcessModel m(g, ProcessParams{}, 5);
    EXPECT_GE(m.layerQuality(0, 0), 1.0);
    EXPECT_GE(m.layerQuality(1, 1), 1.0);
}

}  // namespace
}  // namespace cubessd::nand
