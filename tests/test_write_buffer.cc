/**
 * @file
 * Unit tests for the DRAM write buffer.
 */

#include <gtest/gtest.h>

#include "src/ssd/write_buffer.h"

namespace cubessd::ssd {
namespace {

std::vector<BufferEntry>
popOldest(WriteBuffer &buf, std::uint32_t n)
{
    std::vector<BufferEntry> out;
    buf.popOldest(n, out);
    return out;
}

TEST(WriteBuffer, InsertLookup)
{
    WriteBuffer buf(4);
    EXPECT_TRUE(buf.insert(10, 111, 1));
    EXPECT_TRUE(buf.insert(20, 222, 2));
    EXPECT_EQ(buf.lookup(10).value(), 111u);
    EXPECT_EQ(buf.lookup(20).value(), 222u);
    EXPECT_FALSE(buf.lookup(30).has_value());
}

TEST(WriteBuffer, CoalescesRewrites)
{
    WriteBuffer buf(2);
    EXPECT_TRUE(buf.insert(10, 111, 1));
    EXPECT_TRUE(buf.insert(10, 999, 2));
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.lookup(10).value(), 999u);
}

TEST(WriteBuffer, FullRejectsNewAcceptsCoalesce)
{
    WriteBuffer buf(2);
    EXPECT_TRUE(buf.insert(1, 1, 1));
    EXPECT_TRUE(buf.insert(2, 2, 2));
    EXPECT_TRUE(buf.full());
    EXPECT_FALSE(buf.insert(3, 3, 3));
    EXPECT_TRUE(buf.insert(1, 11, 4));  // coalesce still works
}

TEST(WriteBuffer, UtilizationTracksOccupancy)
{
    WriteBuffer buf(10);
    EXPECT_DOUBLE_EQ(buf.utilization(), 0.0);
    for (Lba l = 0; l < 9; ++l)
        buf.insert(l, l, l + 1);
    EXPECT_DOUBLE_EQ(buf.utilization(), 0.9);
}

TEST(WriteBuffer, PopOldestIsFifo)
{
    WriteBuffer buf(8);
    for (Lba l = 0; l < 5; ++l)
        buf.insert(l, 100 + l, l + 1);
    const auto popped = popOldest(buf, 3);
    ASSERT_EQ(popped.size(), 3u);
    EXPECT_EQ(popped[0].lba, 0u);
    EXPECT_EQ(popped[1].lba, 1u);
    EXPECT_EQ(popped[2].lba, 2u);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_FALSE(buf.lookup(0).has_value());
    EXPECT_TRUE(buf.lookup(4).has_value());
}

TEST(WriteBuffer, PopMoreThanAvailable)
{
    WriteBuffer buf(8);
    buf.insert(1, 1, 1);
    const auto popped = popOldest(buf, 5);
    EXPECT_EQ(popped.size(), 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(WriteBuffer, CoalesceDoesNotChangeFifoPosition)
{
    WriteBuffer buf(8);
    buf.insert(1, 1, 1);
    buf.insert(2, 2, 2);
    buf.insert(1, 11, 3);  // rewrite of the oldest entry
    const auto popped = popOldest(buf, 1);
    ASSERT_EQ(popped.size(), 1u);
    EXPECT_EQ(popped[0].lba, 1u);
    EXPECT_EQ(popped[0].token, 11u);
    EXPECT_EQ(popped[0].version, 3u);
}

TEST(WriteBufferDeathTest, ZeroCapacityRejected)
{
    EXPECT_EXIT(WriteBuffer{0}, ::testing::ExitedWithCode(1),
                "capacity");
}

}  // namespace
}  // namespace cubessd::ssd
