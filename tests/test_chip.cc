/**
 * @file
 * Unit tests for the behavioural chip model: command semantics,
 * data-token storage, wear accounting, stats, and the horizontal
 * similarity of tPROG (Fig. 5(d)).
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/nand/chip.h"

namespace cubessd::nand {
namespace {

NandChipConfig
smallConfig()
{
    NandChipConfig config;
    config.geometry.blocksPerChip = 8;
    config.seed = 11;
    return config;
}

class ChipTest : public ::testing::Test
{
  protected:
    ChipTest() : chip_(smallConfig()) {}

    std::vector<std::uint64_t>
    tokens(std::uint64_t base)
    {
        std::vector<std::uint64_t> t;
        for (std::uint32_t p = 0; p < chip_.geometry().pagesPerWl; ++p)
            t.push_back(base + p);
        return t;
    }

    NandChip chip_;
};

TEST_F(ChipTest, ProgramThenReadReturnsTokens)
{
    chip_.eraseBlock(0);
    const WlAddr wl{0, 10, 2};
    chip_.programWl(wl, ProgramCommand{}, tokens(100));
    for (std::uint32_t p = 0; p < chip_.geometry().pagesPerWl; ++p) {
        const PageAddr addr{0, 10, 2, p};
        EXPECT_TRUE(chip_.isPageProgrammed(addr));
        EXPECT_EQ(chip_.pageToken(addr), 100 + p);
        const auto out = chip_.readPage(addr, 0);
        EXPECT_FALSE(out.uncorrectable);
    }
}

TEST_F(ChipTest, EraseClearsState)
{
    chip_.eraseBlock(1);
    chip_.programWl({1, 0, 0}, ProgramCommand{}, tokens(7));
    EXPECT_TRUE(chip_.isWlProgrammed({1, 0, 0}));
    chip_.eraseBlock(1);
    EXPECT_FALSE(chip_.isWlProgrammed({1, 0, 0}));
    EXPECT_EQ(chip_.pageToken({1, 0, 0, 0}), 0u);
}

TEST_F(ChipTest, EraseCountsWear)
{
    EXPECT_EQ(chip_.eraseCount(2), 0u);
    chip_.eraseBlock(2);
    chip_.eraseBlock(2);
    EXPECT_EQ(chip_.eraseCount(2), 2u);
    EXPECT_EQ(chip_.blockAging(2).peCycles, 2u);
}

TEST_F(ChipTest, InjectedAgingAddsToRuntimeWear)
{
    chip_.setAging({1000, 3.0});
    chip_.eraseBlock(3);
    const auto aging = chip_.blockAging(3);
    EXPECT_EQ(aging.peCycles, 1001u);
    EXPECT_DOUBLE_EQ(aging.retentionMonths, 3.0);
}

TEST_F(ChipTest, DoubleProgramPanics)
{
    chip_.eraseBlock(0);
    chip_.programWl({0, 0, 0}, ProgramCommand{}, tokens(1));
    EXPECT_DEATH(chip_.programWl({0, 0, 0}, ProgramCommand{},
                                 tokens(2)),
                 "without erase");
}

TEST_F(ChipTest, ReadUnprogrammedPanics)
{
    chip_.eraseBlock(0);
    EXPECT_DEATH(chip_.readPage({0, 5, 1, 0}, 0), "not programmed");
}

TEST_F(ChipTest, WrongTokenCountPanics)
{
    chip_.eraseBlock(0);
    std::vector<std::uint64_t> wrong(2, 1);
    EXPECT_DEATH(chip_.programWl({0, 0, 0}, ProgramCommand{}, wrong),
                 "tokens");
}

TEST_F(ChipTest, TprogEqualWithinLayerDifferentAcrossLayers)
{
    // Fig. 5(d): all WLs on an h-layer share tPROG; layers may differ.
    chip_.eraseBlock(4);
    const auto &process = chip_.process();
    std::vector<SimTime> best, worst;
    for (std::uint32_t w = 0; w < chip_.geometry().wlsPerLayer; ++w) {
        best.push_back(
            chip_.programWl({4, process.layerBeta(), w},
                            ProgramCommand{}, tokens(w))
                .tProg);
        worst.push_back(
            chip_.programWl({4, process.layerOmega(), w},
                            ProgramCommand{}, tokens(w))
                .tProg);
    }
    for (std::uint32_t w = 1; w < best.size(); ++w) {
        EXPECT_NEAR(static_cast<double>(best[w]),
                    static_cast<double>(best[0]),
                    static_cast<double>(best[0]) * 0.05);
        EXPECT_NEAR(static_cast<double>(worst[w]),
                    static_cast<double>(worst[0]),
                    static_cast<double>(worst[0]) * 0.05);
    }
}

TEST_F(ChipTest, FeatureSetOverheadCharged)
{
    chip_.eraseBlock(5);
    const auto plain =
        chip_.programWl({5, 20, 0}, ProgramCommand{}, tokens(1));
    ProgramCommand cmd;
    cmd.vFinalAdjMv = 100;
    const auto tuned =
        chip_.programWl({5, 20, 1}, cmd, tokens(2));
    EXPECT_EQ(chip_.stats().featureSets, 1u);
    EXPECT_LT(tuned.tProg, plain.tProg);
}

TEST_F(ChipTest, StatsAccumulate)
{
    chip_.eraseBlock(6);
    chip_.programWl({6, 0, 0}, ProgramCommand{}, tokens(1));
    chip_.readPage({6, 0, 0, 0}, 0);
    const auto &stats = chip_.stats();
    EXPECT_EQ(stats.erases, 1u);
    EXPECT_EQ(stats.wlPrograms, 1u);
    EXPECT_EQ(stats.pageReads, 1u);
    EXPECT_GT(stats.totalProgramTime, 0u);
    EXPECT_GT(stats.totalReadTime, 0u);
    EXPECT_GT(stats.totalEraseTime, 0u);
    chip_.resetStats();
    EXPECT_EQ(chip_.stats().erases, 0u);
}

TEST_F(ChipTest, ProgramBerPenaltyAffectsLaterReads)
{
    // A WL programmed with an abusive skip plan stores its penalty;
    // reads of that WL see the elevated BER once the chip ages.
    chip_.setAging({2000, 6.0});
    chip_.eraseBlock(7);
    const auto clean =
        chip_.programWl({7, 30, 0}, ProgramCommand{}, tokens(1));
    ProgramCommand bad;
    bad.useSkipPlan = true;
    for (auto &s : bad.skipVfy)
        s = 14;  // skip everything: heavy over-programming
    const auto dirty = chip_.programWl({7, 30, 1}, bad, tokens(2));
    EXPECT_GT(dirty.berMultiplier, clean.berMultiplier);

    const auto cleanRead = chip_.readPage({7, 30, 0, 0}, 0);
    const auto dirtyRead = chip_.readPage({7, 30, 1, 0}, 0);
    EXPECT_GT(dirtyRead.rawBerNorm, cleanRead.rawBerNorm);
}

TEST(ChipConfigTest, MlcChipEndToEnd)
{
    // A 2-bit MLC chip: 2 pages per WL, 3 program states.
    NandChipConfig config;
    config.geometry.blocksPerChip = 4;
    config.geometry.pagesPerWl = 2;
    config.ispp.programStates = 3;
    config.ispp.windowMv = 1050;
    config.ispp.deltaVMv = 150;
    config.ispp.firstStateOffsetMv = 350;
    config.ispp.stateSpacingMv = 300;
    config.ispp.cellSigmaMv = 30.0;
    NandChip chip(config);
    chip.eraseBlock(0);
    std::vector<std::uint64_t> tokens{11, 22};
    const auto r = chip.programWl({0, 5, 0}, ProgramCommand{}, tokens);
    EXPECT_EQ(r.loopsUsed, 7);
    EXPECT_EQ(r.verifiesDone, 15);
    EXPECT_LT(r.tProg, 700u * kMicrosecond);  // MLC programs faster
    EXPECT_EQ(chip.pageToken({0, 5, 0, 0}), 11u);
    EXPECT_EQ(chip.pageToken({0, 5, 0, 1}), 22u);
    const auto out = chip.readPage({0, 5, 0, 1}, 0);
    EXPECT_FALSE(out.uncorrectable);
}

TEST(ChipConfigTest, SameSeedSameBehaviour)
{
    NandChip a(smallConfig()), b(smallConfig());
    a.eraseBlock(0);
    b.eraseBlock(0);
    std::vector<std::uint64_t> toks(a.geometry().pagesPerWl, 9);
    const auto ra = a.programWl({0, 12, 1}, ProgramCommand{}, toks);
    const auto rb = b.programWl({0, 12, 1}, ProgramCommand{}, toks);
    EXPECT_EQ(ra.tProg, rb.tProg);
    EXPECT_EQ(ra.loopsUsed, rb.loopsUsed);
    EXPECT_DOUBLE_EQ(ra.berEp1Norm, rb.berEp1Norm);
}

}  // namespace
}  // namespace cubessd::nand
