/**
 * @file
 * Bit-identity and invalidation tests for the model-term memoization
 * layer (ErrorTermCache).
 *
 * The cache's contract is exact: a cached term must be the *same
 * double*, bit for bit, as the direct model evaluation — the fig17/
 * fig18 reproduction outputs are byte-compared in CI, so even one ULP
 * of drift is a failure. EXPECT_EQ on doubles checks exact equality
 * (not near-equality), which is precisely the contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/nand/chip.h"
#include "src/nand/term_cache.h"

namespace cubessd::nand {
namespace {

class TermCacheTest : public ::testing::Test
{
  protected:
    TermCacheTest()
        : process_(geom_, ProcessParams{}, kSeed),
          errors_(ErrorParams{}),
          vth_(VthParams{}, kSeed),
          ispp_(IsppConfig{}, errors_),
          cache_(geom_, process_, errors_, vth_, ispp_)
    {
    }

    static constexpr std::uint64_t kSeed = 17;
    NandGeometry geom_{8, 8, 4, 3, 16 * 1024};
    ProcessModel process_;
    ErrorModel errors_;
    VthModel vth_;
    IsppEngine ispp_;
    ErrorTermCache cache_;
};

TEST_F(TermCacheTest, TermsAreBitIdenticalToDirectEvaluation)
{
    // Sweep WL positions (varying q) x erase counts x retention: every
    // cached term must equal its direct evaluation exactly. Each point
    // is looked up twice so both the miss-fill and the hit path are
    // checked against the same reference.
    const double chipFactor = process_.chipFactor();
    for (const PeCycles pe : {0u, 300u, 2000u}) {
        for (const double ret : {0.0, 1.0, 12.0}) {
            cache_.bumpRetentionGen();  // new (pe, ret) epoch
            for (std::uint32_t block : {0u, 3u, 7u}) {
                for (std::uint32_t layer : {0u, 2u, 7u}) {
                    const WlAddr addr{block, layer, 1};
                    const AgingState aging{pe, ret};
                    const double q = process_.wlQuality(addr);
                    for (int pass = 0; pass < 2; ++pass) {
                        const WlTerms t =
                            cache_.terms(addr, pe, aging);
                        EXPECT_EQ(t.q, q);
                        EXPECT_EQ(t.speedMv,
                                  process_.programSpeedMv(addr));
                        EXPECT_EQ(t.severity, errors_.severity(aging));
                        EXPECT_EQ(t.sigma, ispp_.effectiveSigma(
                                               errors_.severity(aging)));
                        EXPECT_EQ(t.shiftBase,
                                  vth_.optimalShiftMv(block, q, aging,
                                                      errors_));
                        EXPECT_EQ(t.normBase,
                                  errors_.normalizedBer(q, aging,
                                                        chipFactor));
                    }
                }
            }
        }
    }
}

TEST_F(TermCacheTest, EraseAdvancesEpochAndRecomputes)
{
    // An erase bumps the block's erase count; the next lookup must
    // recompute against the new aging state, not serve the stale
    // entry — and the recomputed values must equal direct evaluation.
    const WlAddr addr{2, 4, 0};
    const double q = process_.wlQuality(addr);
    const AgingState aging0{0, 0.0};
    const WlTerms before = cache_.terms(addr, 0, aging0);

    const AgingState aging1{1, 0.0};  // one more P/E cycle
    const WlTerms after = cache_.terms(addr, 1, aging1);
    EXPECT_NE(cache_.epochOf(0), cache_.epochOf(1));
    EXPECT_EQ(after.normBase,
              errors_.normalizedBer(q, aging1, process_.chipFactor()));
    EXPECT_GT(after.normBase, before.normBase);  // wear raises BER
}

TEST_F(TermCacheTest, RetentionGenerationInvalidatesAllBlocks)
{
    const WlAddr addr{5, 1, 2};
    const double q = process_.wlQuality(addr);
    const AgingState fresh{100, 0.0};
    cache_.terms(addr, 100, fresh);

    // Retention advance at unchanged erase count: same low 32 epoch
    // bits, new generation — the stale entry must not survive.
    cache_.bumpRetentionGen();
    const AgingState baked{100, 6.0};
    const WlTerms t = cache_.terms(addr, 100, baked);
    EXPECT_EQ(t.severity, errors_.severity(baked));
    EXPECT_EQ(t.shiftBase,
              vth_.optimalShiftMv(addr.block, q, baked, errors_));
    EXPECT_EQ(t.normBase,
              errors_.normalizedBer(q, baked, process_.chipFactor()));
    EXPECT_GT(t.shiftBase, 0.0);  // retention drift demands a shift
}

TEST_F(TermCacheTest, CountersTrackHitsAndMisses)
{
    const AgingState aging{0, 0.0};
    const WlAddr a{0, 0, 0};
    const WlAddr b{0, 0, 1};  // same block: shares the aging entry

    cache_.terms(a, 0, aging);  // aging miss + wl miss (static fill)
    cache_.terms(a, 0, aging);  // both hit
    cache_.terms(b, 0, aging);  // aging hit, wl miss (static fill)

    const TermCacheCounters &c = cache_.counters();
    EXPECT_EQ(c.agingMisses, 1u);
    EXPECT_EQ(c.agingHits, 2u);
    EXPECT_EQ(c.wlMisses, 2u);
    EXPECT_EQ(c.wlHits, 1u);
    EXPECT_EQ(c.staticFills, 2u);
    EXPECT_DOUBLE_EQ(cache_.hitRate(), 1.0 / 3.0);

    // A retention bump forces refills but not static re-derivation.
    cache_.bumpRetentionGen();
    cache_.terms(a, 0, aging);
    EXPECT_EQ(cache_.counters().staticFills, 2u);
    EXPECT_EQ(cache_.counters().wlMisses, 3u);
}

TEST(TermCacheChipTest, ChipReadsAndProgramsMatchDirectModels)
{
    // End-to-end equivalence at chip level: a chip whose hot paths run
    // through the cache must produce the same outcomes as the direct
    // model entry points fed the same RNG stream. The direct entry
    // points (ReadModel::read, IsppEngine::program) delegate to the
    // same *FromTerms implementations, so any divergence here means
    // the cache returned a different double than direct evaluation.
    NandChipConfig config;
    config.geometry.blocksPerChip = 4;
    config.geometry.layersPerBlock = 6;
    config.seed = 29;
    NandChip chip(config);

    const std::uint64_t tokens[3] = {7, 8, 9};
    chip.setAging({500, 2.0});
    Rng shadow(config.seed ^ 0xC0FFEE123456789ull);  // chip's rng seed

    for (std::uint32_t l = 0; l < 3; ++l) {
        const WlAddr wl{1, l, 0};
        const WlProgramResult got =
            chip.programWl(wl, ProgramCommand{}, tokens);

        // Replay the same program with the direct (uncached) engine
        // on a shadow RNG that mirrors the chip's draw sequence.
        const AgingState aging = chip.blockAging(1);
        const WlProgramResult want = chip.ispp().program(
            chip.wlQuality(wl), chip.process().programSpeedMv(wl),
            aging, chip.process().chipFactor(), ProgramCommand{},
            shadow);
        EXPECT_EQ(got.tProg, want.tProg);
        EXPECT_EQ(got.loopsUsed, want.loopsUsed);
        EXPECT_EQ(got.verifiesDone, want.verifiesDone);
        EXPECT_EQ(got.berEp1Norm, want.berEp1Norm);
        EXPECT_EQ(got.berMultiplier, want.berMultiplier);
    }
}

}  // namespace
}  // namespace cubessd::nand
