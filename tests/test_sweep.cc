/**
 * @file
 * Parallel sweep driver tests.
 *
 * The sweep's contract is threefold:
 *
 *  1. Determinism: an N-job run of a cell grid is bit-identical to
 *     the sequential (1-job) run, cell for cell — the merge happens
 *     in cell order, never completion order (pins reuse the
 *     test_determinism.cc device shape).
 *  2. Merge algebra: histogram/RequestMetrics merges are
 *     order-independent (integer bucket counts), so the cell-order
 *     rule is a convention that COSTS nothing, not a numerical
 *     necessity that could silently break.
 *  3. Error propagation: a throwing cell does not abort the process
 *     or the other cells; the lowest-index failure is rethrown on the
 *     calling thread, annotated with the failing cell's
 *     configuration.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/metrics/json.h"
#include "src/sim/sweep.h"
#include "src/workload/sweep.h"

namespace cubessd {
namespace {

ssd::SsdConfig
smallConfig(ssd::FtlKind kind, std::uint64_t seed)
{
    // The test_determinism.cc pin shape: small enough to prefill in
    // well under a second, busy enough that GC runs inside the
    // measured window.
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.75;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = kind;
    config.seed = seed;
    return config;
}

std::vector<workload::SweepCell>
smallGrid(std::uint64_t requests = 1200)
{
    // A miniature fig17-style grid: 2 FTLs x 2 seeds.
    std::vector<workload::SweepCell> cells;
    for (const auto kind : {ssd::FtlKind::Page, ssd::FtlKind::Cube}) {
        for (const std::uint64_t seed : {42ull, 137ull}) {
            workload::SweepCell cell;
            cell.config = smallConfig(kind, seed);
            cell.spec = workload::oltp();
            cell.requests = requests;
            cells.push_back(cell);
        }
    }
    return cells;
}

/** Exact textual fingerprint of one cell's observables: integer
 *  counters plus the full serialized per-IoType histograms. */
std::string
fingerprint(const workload::CellResult &r)
{
    std::ostringstream out;
    metrics::JsonWriter w(out);
    w.beginObject();
    w.field("completed", r.run.completedRequests);
    w.field("elapsed", r.run.elapsed);
    w.key("status");
    w.beginArray();
    for (const auto count : r.run.statusCounts)
        w.value(count);
    w.endArray();
    w.field("host_programs", r.ftl.hostPrograms);
    w.field("gc_collections", r.gc.collections);
    w.field("read_retries", r.ftl.readRetries);
    w.key("requests");
    metrics::writeRequestMetrics(w, r.run.requestMetrics);
    w.endObject();
    return out.str();
}

/** The grid's sequential reference results, computed once. */
const std::vector<workload::CellResult> &
sequentialResults()
{
    static const auto results = workload::runCells(smallGrid(), 1);
    return results;
}

TEST(SweepDeterminism, ParallelRunIsBitIdenticalToSequential)
{
    const auto &seq = sequentialResults();
    const auto par = workload::runCells(smallGrid(), 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(fingerprint(seq[i]), fingerprint(par[i]))
            << "cell " << i << " diverged under --jobs 4";
}

TEST(SweepDeterminism, MoreWorkersThanCellsIsBitIdentical)
{
    const auto &seq = sequentialResults();
    const auto par = workload::runCells(smallGrid(), 16);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(fingerprint(seq[i]), fingerprint(par[i]));
}

std::string
metricsJson(const metrics::RequestMetrics &m)
{
    std::ostringstream out;
    metrics::JsonWriter w(out);
    metrics::writeRequestMetrics(w, m);
    return out.str();
}

TEST(SweepMerge, RequestMetricsMergeIsOrderIndependent)
{
    const auto &results = sequentialResults();
    metrics::RequestMetrics forward;
    for (std::size_t i = 0; i < results.size(); ++i)
        forward.merge(results[i].run.requestMetrics);
    metrics::RequestMetrics reverse;
    for (std::size_t i = results.size(); i-- > 0;)
        reverse.merge(results[i].run.requestMetrics);
    EXPECT_EQ(metricsJson(forward), metricsJson(reverse));
}

TEST(SweepMerge, HistogramMergeIsOrderIndependent)
{
    metrics::LatencyHistogram a, b;
    for (std::uint64_t v = 1; v < 2000; v += 7)
        a.add(v * 13);
    for (std::uint64_t v = 1; v < 1500; v += 3)
        b.add(v * 101);

    metrics::LatencyHistogram ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.total(), ba.total());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
    for (std::size_t bucket = 0;
         bucket < metrics::LatencyHistogram::kBuckets; ++bucket)
        ASSERT_EQ(ab.count(bucket), ba.count(bucket));
}

TEST(SweepRunner, PropagatesLowestIndexFailure)
{
    sim::SweepRunner runner(3);
    try {
        runner.run(8, [](std::size_t i) {
            if (i == 2 || i == 5)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "expected SweepError";
    } catch (const sim::SweepError &e) {
        EXPECT_EQ(e.job(), 2u);
        EXPECT_NE(std::string(e.what()).find("boom 2"),
                  std::string::npos);
    }
}

TEST(SweepRunner, SurvivingJobsStillRunAfterAFailure)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::atomic<int> ran{0};
        sim::SweepRunner runner(jobs);
        EXPECT_THROW(runner.run(10,
                                [&](std::size_t i) {
                                    ran.fetch_add(1);
                                    if (i == 0)
                                        throw std::runtime_error("x");
                                }),
                     sim::SweepError);
        EXPECT_EQ(ran.load(), 10) << "jobs=" << jobs;
    }
}

TEST(SweepRunner, EachJobRunsExactlyOnce)
{
    std::vector<std::atomic<int>> hits(64);
    sim::SweepRunner runner(4);
    runner.run(hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(SweepCells, WorkerErrorNamesTheFailingCell)
{
    // An unwritable trace file is the one runtime error a valid cell
    // can hit; pin the trace to cell 1 and expect the error to carry
    // that cell's configuration, not just an index.
    auto cells = smallGrid(/*requests=*/200);
    cells.resize(2);
    workload::SweepTrace trace;
    trace.out = "/nonexistent-dir/never-created/trace.json";
    trace.cell = 1;
    try {
        workload::runCells(cells, 2, trace);
        FAIL() << "expected SweepError";
    } catch (const sim::SweepError &e) {
        EXPECT_EQ(e.job(), 1u);
        const std::string what = e.what();
        EXPECT_NE(what.find("cell 1"), std::string::npos) << what;
        EXPECT_NE(what.find("workload=OLTP"), std::string::npos) << what;
        EXPECT_NE(what.find("seed=137"), std::string::npos) << what;
        EXPECT_NE(what.find("cannot open trace file"),
                  std::string::npos)
            << what;
    }
}

TEST(ResolveJobs, CliWinsThenEnvThenOne)
{
    constexpr const char *kVar = "CUBESSD_JOBS_TEST_ONLY";
    ::unsetenv(kVar);
    EXPECT_EQ(sim::resolveJobs(3, kVar), 3u);
    EXPECT_EQ(sim::resolveJobs(0, kVar), 1u);
    ::setenv(kVar, "5", 1);
    EXPECT_EQ(sim::resolveJobs(0, kVar), 5u);
    EXPECT_EQ(sim::resolveJobs(2, kVar), 2u);
    ::setenv(kVar, "bogus", 1);
    EXPECT_EQ(sim::resolveJobs(0, kVar), 1u);
    ::setenv(kVar, "-4", 1);
    EXPECT_EQ(sim::resolveJobs(0, kVar), 1u);
    ::unsetenv(kVar);
}

}  // namespace
}  // namespace cubessd
