/**
 * @file
 * FTL engine tests (via the baseline PageFtl and VertFtl): write/read
 * data path, coalescing, GC relocation, stalls, drain, and the
 * cross-structure consistency invariant.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/ftl/vert_ftl.h"
#include "src/ssd/ssd.h"

namespace cubessd {
namespace {

ssd::SsdConfig
smallConfig(ssd::FtlKind kind)
{
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 16;
    config.chip.geometry.layersPerBlock = 8;
    config.chip.geometry.wlsPerLayer = 4;
    config.writeBufferPages = 24;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = kind;
    config.seed = 77;
    return config;
}

ssd::Completion
writeSync(ssd::Ssd &dev, Lba lba, std::uint32_t pages)
{
    ssd::HostRequest req;
    req.type = ssd::IoType::Write;
    req.lba = lba;
    req.pages = pages;
    return dev.submitSync(req);
}

ssd::Completion
readSync(ssd::Ssd &dev, Lba lba, std::uint32_t pages)
{
    ssd::HostRequest req;
    req.type = ssd::IoType::Read;
    req.lba = lba;
    req.pages = pages;
    return dev.submitSync(req);
}

TEST(Ftl, WriteThenPeekSeesData)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    EXPECT_FALSE(dev.peek(5).has_value());
    writeSync(dev, 5, 1);
    EXPECT_TRUE(dev.peek(5).has_value());
}

TEST(Ftl, OverwriteChangesToken)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    writeSync(dev, 9, 1);
    const auto first = dev.peek(9);
    writeSync(dev, 9, 1);
    const auto second = dev.peek(9);
    ASSERT_TRUE(first && second);
    EXPECT_NE(*first, *second);
}

TEST(Ftl, DataSurvivesDrainToFlash)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    std::map<Lba, std::uint64_t> expected;
    for (Lba lba = 0; lba < 40; ++lba) {
        writeSync(dev, lba, 1);
        expected[lba] = dev.peek(lba).value();
    }
    dev.drain();
    EXPECT_TRUE(dev.ftl().buffer().empty());
    for (const auto &[lba, token] : expected)
        EXPECT_EQ(dev.peek(lba).value(), token) << "LBA " << lba;
    dev.ftl().checkConsistency();
}

TEST(Ftl, ReadCompletesWithPlausibleLatency)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    for (Lba lba = 0; lba < 30; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    const auto completion = readSync(dev, 7, 1);
    // One NAND sense + transfer: tens of microseconds.
    EXPECT_GT(completion.latency(), 50u * kMicrosecond);
    EXPECT_LT(completion.latency(), 1u * kMillisecond);
    EXPECT_EQ(dev.ftl().stats().nandReads, 1u);
}

TEST(Ftl, BufferedReadIsFast)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    writeSync(dev, 3, 1);
    const auto completion = readSync(dev, 3, 1);
    EXPECT_EQ(completion.latency(),
              smallConfig(ssd::FtlKind::Page).bufferReadTime);
    EXPECT_EQ(dev.ftl().stats().bufferHits, 1u);
}

TEST(Ftl, UnmappedReadServedAsZeros)
{
    ssd::Ssd dev(smallConfig(ssd::FtlKind::Page));
    const auto completion = readSync(dev, 100, 1);
    EXPECT_EQ(dev.ftl().stats().unmappedReads, 1u);
    EXPECT_GT(completion.finish, 0u);
}

TEST(Ftl, LargeWriteStallsAndCompletes)
{
    auto config = smallConfig(ssd::FtlKind::Page);
    ssd::Ssd dev(config);
    // One request far larger than the write buffer must stall and
    // finish via background flushes.
    const std::uint32_t pages = config.writeBufferPages * 3;
    const auto completion = writeSync(dev, 0, pages);
    EXPECT_EQ(completion.pages, pages);
    EXPECT_GT(dev.ftl().stats().writeStalls, 0u);
    dev.drain();
    for (Lba lba = 0; lba < pages; ++lba)
        EXPECT_TRUE(dev.peek(lba).has_value());
}

TEST(Ftl, GcReclaimsSpaceAndPreservesData)
{
    auto config = smallConfig(ssd::FtlKind::Page);
    ssd::Ssd dev(config);
    const Lba span = dev.logicalPages() * 9 / 10;
    Rng rng(4);
    // Fill, then overwrite randomly until GC must have run.
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba, 1);
    for (int i = 0; i < static_cast<int>(span); ++i)
        writeSync(dev, rng.uniformInt(span), 1);
    dev.drain();
    const auto &stats = dev.ftl().stats();
    EXPECT_GT(stats.gcCollections, 0u);
    EXPECT_GT(stats.erases, 0u);
    EXPECT_GT(stats.gcRelocatedPages, 0u);
    dev.ftl().checkConsistency();
    // Every logical page still readable with its latest token.
    std::map<Lba, std::uint64_t> seen;
    for (Lba lba = 0; lba < span; ++lba) {
        const auto token = dev.peek(lba);
        ASSERT_TRUE(token.has_value()) << "LBA " << lba;
        seen[lba] = *token;
    }
    // Tokens are unique per (lba, version) — no cross-page clobbering.
    std::set<std::uint64_t> uniq;
    for (auto &[lba, token] : seen)
        EXPECT_TRUE(uniq.insert(token).second);
}

TEST(Ftl, WriteAmplificationReported)
{
    auto config = smallConfig(ssd::FtlKind::Page);
    ssd::Ssd dev(config);
    const Lba span = dev.logicalPages() * 9 / 10;
    Rng rng(4);
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba, 1);
    for (int i = 0; i < static_cast<int>(span / 2); ++i)
        writeSync(dev, rng.uniformInt(span), 1);
    dev.drain();
    const double waf = dev.ftl().stats().writeAmplification();
    EXPECT_GE(waf, 1.0);
    EXPECT_LT(waf, 20.0);
}

TEST(Ftl, LeaderFollowerCountsMatchGeometry)
{
    auto config = smallConfig(ssd::FtlKind::Page);
    ssd::Ssd dev(config);
    for (Lba lba = 0; lba < dev.logicalPages() / 2; ++lba)
        writeSync(dev, lba, 1);
    dev.drain();
    const auto &stats = dev.ftl().stats();
    // Horizontal-first: 1 leader per 4 WLs.
    const double ratio =
        static_cast<double>(stats.followerPrograms) /
        static_cast<double>(stats.leaderPrograms);
    EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(Ftl, VertFtlBuildsMonotoneTable)
{
    auto config = smallConfig(ssd::FtlKind::Vert);
    config.chip.geometry.layersPerBlock = 48;  // realistic profile
    ssd::Ssd dev(config);
    const auto &vert = static_cast<const ftl::VertFtl &>(dev.ftl());
    const auto &table = vert.table();
    ASSERT_EQ(table.size(), 48u);
    // The best layers earn the largest static V_Final reduction;
    // the worst (bottom edge) earns nothing.
    const auto &process = dev.chip(0).process();
    EXPECT_GT(table[process.layerBeta()], 0);
    EXPECT_EQ(table[process.layerOmega()], 0);
    EXPECT_GE(table[process.layerBeta()], table[process.layerKappa()]);
}

TEST(Ftl, SequentialThenSequentialOverwriteIsCheapGc)
{
    // Pure sequential overwrite invalidates whole blocks: GC victims
    // should be nearly empty (low relocation count).
    auto config = smallConfig(ssd::FtlKind::Page);
    ssd::Ssd dev(config);
    const Lba span = dev.logicalPages() * 8 / 10;
    for (int round = 0; round < 2; ++round)
        for (Lba lba = 0; lba < span; ++lba)
            writeSync(dev, lba, 1);
    dev.drain();
    const auto &stats = dev.ftl().stats();
    const double relocPerCollection =
        stats.gcCollections
            ? static_cast<double>(stats.gcRelocatedPages) /
                  static_cast<double>(stats.gcCollections)
            : 0.0;
    EXPECT_LT(relocPerCollection,
              config.chip.geometry.pagesPerBlock() / 2.0);
    dev.ftl().checkConsistency();
}

}  // namespace
}  // namespace cubessd
