/**
 * @file
 * Tests of the standalone GC subsystem (src/ftl/gc.h): steady-state
 * behaviour under sustained random overwrite, watermark maintenance,
 * stats accounting, and the policy factory.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/ftl/ftl_base.h"
#include "src/ssd/ssd.h"

namespace cubessd {
namespace {

ssd::SsdConfig
smallConfig()
{
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 16;
    config.chip.geometry.layersPerBlock = 8;
    config.chip.geometry.wlsPerLayer = 4;
    config.writeBufferPages = 24;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Page;
    config.seed = 77;
    return config;
}

void
writeSync(ssd::Ssd &dev, Lba lba)
{
    ssd::HostRequest req;
    req.type = ssd::IoType::Write;
    req.lba = lba;
    req.pages = 1;
    dev.submitSync(req);
}

TEST(Gc, SteadyStateOverwriteRespectsWatermarksAndKeepsMapping)
{
    const auto config = smallConfig();
    ssd::Ssd dev(config);
    const Lba span = dev.logicalPages() * 9 / 10;
    Rng rng(4);

    // Fill once, then overwrite randomly for two full spans — enough
    // churn that every chip cycles through collections repeatedly and
    // the device reaches a GC steady state.
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba);
    for (std::uint64_t i = 0; i < 2 * span; ++i) {
        writeSync(dev, rng.uniformInt(span));
        if (i % 64 == 0) {
            // The urgent watermark reserves blocks for GC progress: a
            // chip may only be out of free blocks while its GC is
            // actively reclaiming one (the relocation target itself
            // takes the last free block).
            for (std::uint32_t c = 0; c < dev.chipCount(); ++c) {
                ASSERT_TRUE(dev.ftl().blockManager(c).freeCount() >= 1 ||
                            dev.ftl().gc().active(c))
                    << "chip " << c << " exhausted with GC idle";
            }
        }
    }
    dev.drain();

    const auto &gc = dev.ftl().gcStats();
    EXPECT_GT(gc.collections, 0u);
    EXPECT_GT(gc.relocatedPages, 0u);
    EXPECT_GT(gc.erases, 0u);
    EXPECT_GT(gc.scanReads, 0u);

    // Sustained random overwrite of a 90%-utilized device must
    // relocate live data: write amplification strictly above 1.
    EXPECT_GT(dev.ftl().stats().writeAmplification(), 1.0);

    // After the drain, hysteresis has run every chip back above the
    // urgent watermark.
    for (std::uint32_t c = 0; c < dev.chipCount(); ++c) {
        EXPECT_GE(dev.ftl().blockManager(c).freeCount(),
                  config.gcUrgentWatermark);
    }

    // No mapping entry is lost by relocation: every written LBA is
    // still readable and structures are mutually consistent.
    for (Lba lba = 0; lba < span; ++lba)
        ASSERT_TRUE(dev.peek(lba).has_value()) << "LBA " << lba;
    dev.ftl().checkConsistency();
}

TEST(Gc, StatsMirrorFtlCounters)
{
    ssd::Ssd dev(smallConfig());
    const Lba span = dev.logicalPages() * 9 / 10;
    Rng rng(9);
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba);
    for (std::uint64_t i = 0; i < span; ++i)
        writeSync(dev, rng.uniformInt(span));
    dev.drain();

    const auto &gc = dev.ftl().gcStats();
    const auto &ftl = dev.ftl().stats();
    EXPECT_EQ(gc.collections, ftl.gcCollections);
    EXPECT_EQ(gc.relocatedPages, ftl.gcRelocatedPages);
    EXPECT_EQ(gc.erases, ftl.erases);
    EXPECT_EQ(gc.programs, ftl.gcPrograms);
}

TEST(Gc, ProgramLatencyAttributed)
{
    ssd::Ssd dev(smallConfig());
    const Lba span = dev.logicalPages() * 9 / 10;
    Rng rng(11);
    for (Lba lba = 0; lba < span; ++lba)
        writeSync(dev, lba);
    for (std::uint64_t i = 0; i < span; ++i)
        writeSync(dev, rng.uniformInt(span));
    dev.drain();

    const auto &gc = dev.ftl().gcStats();
    ASSERT_GT(gc.programs, 0u);
    EXPECT_GT(gc.programLatencySum, 0u);
    EXPECT_GT(gc.avgProgramLatencyUs(), 0.0);
    // GC programs are a subset of all programs, so the GC-attributed
    // latency must be a subset of the total program latency.
    EXPECT_LE(gc.programLatencySum,
              dev.ftl().stats().programLatencySum);
}

TEST(Gc, PolicyFactoryReturnsGreedyDefault)
{
    const auto policy = ftl::makeGcPolicy(ssd::GcPolicyKind::Greedy);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), "greedy");

    ssd::Ssd dev(smallConfig());
    EXPECT_STREQ(dev.ftl().gc().policy().name(), "greedy");
}

}  // namespace
}  // namespace cubessd
