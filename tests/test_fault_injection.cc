/**
 * @file
 * Fault injection and graceful degradation: injector determinism, the
 * Status-carrying completion contract, bad-block retirement with data
 * preservation, read-only mode, and config validation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/ftl/ftl_base.h"
#include "src/nand/fault_injector.h"
#include "src/ssd/ssd.h"

namespace cubessd {
namespace {

// ---------------------------------------------------------------------
// FaultInjector unit behaviour
// ---------------------------------------------------------------------

nand::ErrorModel
testErrors()
{
    return nand::ErrorModel(nand::ErrorParams{});
}

TEST(FaultInjector, DisabledNeverFails)
{
    const auto errors = testErrors();
    nand::FaultParams params;  // enabled = false
    params.programFailBase = 1.0;
    params.eraseFailBase = 1.0;
    params.uncorrectableNormLimit = 0.001;
    nand::FaultInjector inj(params, errors, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.programFails(1.2, {2000, 12.0}));
        EXPECT_FALSE(inj.eraseFails({2000, 12.0}));
    }
    EXPECT_FALSE(inj.readUncorrectable(100.0));
}

TEST(FaultInjector, SameSeedSameDecisions)
{
    const auto errors = testErrors();
    nand::FaultParams params;
    params.enabled = true;
    params.programFailBase = 0.3;
    params.eraseFailBase = 0.2;
    nand::FaultInjector a(params, errors, 99);
    nand::FaultInjector b(params, errors, 99);
    for (int i = 0; i < 200; ++i) {
        const double q = 1.0 + (i % 7) * 0.1;
        EXPECT_EQ(a.programFails(q, {1000, 1.0}),
                  b.programFails(q, {1000, 1.0}));
        EXPECT_EQ(a.eraseFails({1000, 1.0}), b.eraseFails({1000, 1.0}));
    }
}

TEST(FaultInjector, WearAndQualityRaiseProbability)
{
    const auto errors = testErrors();
    nand::FaultParams params;
    params.enabled = true;
    params.programFailBase = 1e-3;
    nand::FaultInjector inj(params, errors, 1);
    const double fresh = inj.programFailProbability(1.0, {0, 0.0});
    const double worn = inj.programFailProbability(1.0, {3000, 12.0});
    const double badLayer = inj.programFailProbability(1.5, {0, 0.0});
    EXPECT_GT(worn, fresh);
    EXPECT_GT(badLayer, fresh);
    EXPECT_LE(inj.programFailProbability(10.0, {3000, 12.0}), 1.0);
}

TEST(FaultInjector, UncorrectableThresholdIsDeterministic)
{
    const auto errors = testErrors();
    nand::FaultParams params;
    params.enabled = true;
    params.uncorrectableNormLimit = 5.0;
    nand::FaultInjector inj(params, errors, 1);
    EXPECT_FALSE(inj.readUncorrectable(4.9));
    EXPECT_TRUE(inj.readUncorrectable(5.1));
}

// ---------------------------------------------------------------------
// Device-level behaviour
// ---------------------------------------------------------------------

ssd::SsdConfig
faultConfig(double programFailBase, std::uint64_t seed = 42)
{
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 32;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Page;
    config.seed = seed;
    config.chip.faults.enabled = programFailBase > 0.0;
    config.chip.faults.programFailBase = programFailBase;
    return config;
}

/** Write `pages` logical pages (one request each) and drain. */
void
fillPages(ssd::Ssd &dev, std::uint64_t pages)
{
    for (Lba lba = 0; lba < pages; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        dev.submit(req, nullptr);
    }
    dev.drain();
}

TEST(FaultDevice, SameSeedSameRetirements)
{
    auto runOnce = [](std::uint64_t seed) {
        ssd::Ssd dev(faultConfig(2e-3, seed));
        dev.setAging({2000, 1.0});
        fillPages(dev, dev.logicalPages() / 2);
        return dev.ftl().stats();
    };
    const auto a = runOnce(42);
    const auto b = runOnce(42);
    EXPECT_GT(a.programFailures, 0u) << "tune the rate: no failures";
    EXPECT_EQ(a.programFailures, b.programFailures);
    EXPECT_EQ(a.retiredBlocks, b.retiredBlocks);
    EXPECT_EQ(a.badBlockRelocations, b.badBlockRelocations);
    EXPECT_EQ(a.flushReplays, b.flushReplays);
    EXPECT_EQ(a.hostPrograms, b.hostPrograms);
}

TEST(FaultDevice, BadBlockRemapPreservesData)
{
    // Rate tuned so the half-device fill sees a handful of program
    // failures without exhausting any chip's spare pool (seed 42:
    // 9 retirements spread over the 4 chips, no read-only).
    ssd::Ssd dev(faultConfig(2e-4));
    dev.setAging({2000, 1.0});

    const std::uint64_t pages = dev.logicalPages() / 2;
    std::vector<std::uint64_t> expected(pages);
    for (Lba lba = 0; lba < pages; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        ASSERT_TRUE(dev.submitSync(req).ok());
        // The token is fixed at buffering and must survive flushing,
        // program failure, and bad-block relocation unchanged.
        const auto token = dev.peek(lba);
        ASSERT_TRUE(token.has_value());
        expected[lba] = *token;
    }
    dev.drain();

    const auto &stats = dev.ftl().stats();
    ASSERT_GT(stats.retiredBlocks, 0u) << "tune the rate: no failures";
    ASSERT_GT(stats.badBlockRelocations, 0u);
    ASSERT_FALSE(dev.ftl().readOnly());
    for (Lba lba = 0; lba < pages; ++lba)
        EXPECT_EQ(dev.peek(lba), expected[lba]) << "lba " << lba;
    dev.ftl().checkConsistency();
}

TEST(FaultDevice, SpareExhaustionEntersReadOnlyMode)
{
    ssd::Ssd dev(faultConfig(0.05));
    dev.setAging({2000, 1.0});
    fillPages(dev, dev.logicalPages());
    ASSERT_TRUE(dev.ftl().readOnly());

    // New writes complete with ReadOnly instead of asserting.
    ssd::HostRequest wr;
    wr.type = ssd::IoType::Write;
    wr.lba = 0;
    const auto wc = dev.submitSync(wr);
    EXPECT_EQ(wc.status, ssd::Status::ReadOnly);
    EXPECT_FALSE(wc.ok());
    EXPECT_GT(dev.ftl().stats().readOnlyRejects, 0u);

    // Reads continue to be served (Ok or Uncorrectable, not ReadOnly).
    ssd::HostRequest rd;
    rd.type = ssd::IoType::Read;
    rd.lba = 0;
    const auto rc = dev.submitSync(rd);
    EXPECT_NE(rc.status, ssd::Status::ReadOnly);
    dev.ftl().checkConsistency();
}

TEST(FaultDevice, UncorrectableReadCarriesStatus)
{
    auto config = faultConfig(0.0);
    config.chip.faults.enabled = true;
    // Far below the fresh-device normalized BER (~1), so every NAND
    // read exhausts the retry walk and the soft LDPC fallthrough.
    config.chip.faults.uncorrectableNormLimit = 0.1;
    ssd::Ssd dev(config);

    ssd::HostRequest wr;
    wr.type = ssd::IoType::Write;
    wr.lba = 7;
    EXPECT_TRUE(dev.submitSync(wr).ok());  // completes at buffering
    dev.drain();

    ssd::HostRequest rd;
    rd.type = ssd::IoType::Read;
    rd.lba = 7;
    const auto c = dev.submitSync(rd);
    EXPECT_EQ(c.status, ssd::Status::Uncorrectable);
    EXPECT_GT(dev.ftl().stats().uncorrectableReads, 0u);
}

TEST(FaultDevice, OutOfRangeRequestsAreRejected)
{
    ssd::Ssd dev(faultConfig(0.0));

    ssd::HostRequest rd;
    rd.type = ssd::IoType::Read;
    rd.lba = dev.logicalPages();
    EXPECT_EQ(dev.submitSync(rd).status, ssd::Status::Rejected);

    // A request straddling the end of the logical space is rejected
    // whole, not truncated.
    ssd::HostRequest wr;
    wr.type = ssd::IoType::Write;
    wr.lba = dev.logicalPages() - 1;
    wr.pages = 2;
    EXPECT_EQ(dev.submitSync(wr).status, ssd::Status::Rejected);

    ssd::HostRequest zero;
    zero.type = ssd::IoType::Read;
    zero.lba = 0;
    zero.pages = 0;
    EXPECT_EQ(dev.submitSync(zero).status, ssd::Status::Rejected);

    EXPECT_EQ(dev.ftl().stats().rejectedRequests, 3u);
}

TEST(FaultDevice, QueueDepthOneBackpressureWithFailures)
{
    auto config = faultConfig(0.05);
    config.hostQueueDepth = 1;
    ssd::Ssd dev(config);
    dev.setAging({2000, 1.0});

    // Drive into read-only through the depth-1 queue: every
    // completion — including ReadOnly rejections — must release its
    // queue slot or the remaining submissions would never finish.
    const std::uint64_t pages = dev.logicalPages();
    std::uint64_t completions = 0;
    std::uint64_t readOnlyCompletions = 0;
    for (Lba lba = 0; lba < pages; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        dev.submitWithCallback(req, [&](const ssd::Completion &c) {
            ++completions;
            if (c.status == ssd::Status::ReadOnly)
                ++readOnlyCompletions;
        });
    }
    dev.drain();

    EXPECT_EQ(completions, pages);
    EXPECT_GT(dev.hostQueue().stats().blockedSubmissions, 0u);
    EXPECT_TRUE(dev.ftl().readOnly());
    EXPECT_GT(readOnlyCompletions, 0u);
    dev.ftl().checkConsistency();
}

// ---------------------------------------------------------------------
// SsdConfig::validate
// ---------------------------------------------------------------------

TEST(ConfigValidate, DefaultConfigIsValid)
{
    EXPECT_EQ(ssd::SsdConfig{}.validate(), "");
}

TEST(ConfigValidate, ReportsDescriptiveErrors)
{
    {
        ssd::SsdConfig c;
        c.channels = 0;
        EXPECT_NE(c.validate().find("channels"), std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.chip.geometry.pagesPerWl = 0;
        EXPECT_NE(c.validate().find("geometry"), std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.logicalFraction = 0.0;
        EXPECT_NE(c.validate().find("logicalFraction"),
                  std::string::npos);
        c.logicalFraction = 1.5;
        EXPECT_NE(c.validate().find("logicalFraction"),
                  std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.gcUrgentWatermark = 5;  // >= low watermark (4)
        EXPECT_NE(c.validate().find("gcUrgentWatermark"),
                  std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.gcLowWatermark = 7;  // > high watermark (6)
        EXPECT_NE(c.validate().find("gcLowWatermark"),
                  std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.writeBufferPages = 1;
        EXPECT_NE(c.validate().find("writeBufferPages"),
                  std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.logicalFraction = 0.999;  // no spare blocks left
        EXPECT_NE(c.validate().find("spare"), std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.chip.faults.programFailBase = 1.5;
        EXPECT_NE(c.validate().find("programFailBase"),
                  std::string::npos);
    }
    {
        ssd::SsdConfig c;
        c.chip.faults.wearScale = -1.0;
        EXPECT_NE(c.validate().find("wearScale"), std::string::npos);
    }
}

TEST(ConfigValidateDeathTest, SsdConstructorRejectsInvalidConfig)
{
    ssd::SsdConfig c;
    c.gcUrgentWatermark = 9;
    EXPECT_DEATH(ssd::Ssd dev(c), "invalid configuration");
}

}  // namespace
}  // namespace cubessd
