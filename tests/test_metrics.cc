/**
 * @file
 * Unit tests for the reporting helpers and logging.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/logging.h"
#include "src/metrics/report.h"

namespace cubessd::metrics {
namespace {

TEST(Format, Fixed)
{
    EXPECT_EQ(format(1.23456, 3), "1.235");
    EXPECT_EQ(format(2.0, 0), "2");
    EXPECT_EQ(format(-0.5, 1), "-0.5");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.162), "16.2%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
    EXPECT_EQ(formatPercent(-0.05), "-5.0%");
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    std::ostringstream out;
    t.print(out);
    const std::string s = out.str();
    // Header, separator, and both rows present.
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    // All data lines are equal width up to the last column start.
    const auto posA = s.find("\n  a");
    const auto posB = s.find("\n  longer-name");
    ASSERT_NE(posA, std::string::npos);
    ASSERT_NE(posB, std::string::npos);
}

TEST(TableDeathTest, RowWidthMismatchFatal)
{
    Table t({"a", "b"});
    EXPECT_EXIT(t.row({"only-one"}), ::testing::ExitedWithCode(1),
                "cells");
}

TEST(PaperComparisonTest, PrintsExperimentHeader)
{
    PaperComparison cmp("Fig. X (test)");
    cmp.add("some metric", "42", "41", "close");
    std::ostringstream out;
    cmp.print(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("paper vs measured: Fig. X (test)"),
              std::string::npos);
    EXPECT_NE(s.find("some metric"), std::string::npos);
    EXPECT_NE(s.find("close"), std::string::npos);
}

TEST(PrintCdf, TwoColumns)
{
    std::ostringstream out;
    printCdf(out, "title", {{1.0, 0.5}, {2.0, 1.0}});
    const std::string s = out.str();
    EXPECT_NE(s.find("title"), std::string::npos);
    EXPECT_NE(s.find("0.5000"), std::string::npos);
}

TEST(Logging, LevelFiltering)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    // Suppressed levels must not crash (output goes to stdout/stderr).
    logf(LogLevel::Debug, "suppressed %d", 1);
    logf(LogLevel::Error, "emitted %d", 2);
    setLogLevel(old);
}

}  // namespace
}  // namespace cubessd::metrics
