/**
 * @file
 * Unit/property tests for the Vth drift model and the read-retry loop
 * (Sec. 2.3 / 4.2): fresh reads never retry, retries grow with aging,
 * and starting from a cached good shift eliminates them.
 */

#include <gtest/gtest.h>

#include "src/ecc/ecc.h"
#include "src/nand/process_model.h"
#include "src/nand/read_model.h"
#include "src/nand/vth_model.h"

namespace cubessd::nand {
namespace {

class ReadModelTest : public ::testing::Test
{
  protected:
    VthModel vth_{VthParams{}, 3};
    ErrorModel errors_{};
    ecc::EccModel ecc_{};
    ReadModel read_{ReadParams{}, vth_, errors_, ecc_};
    Rng rng_{55};
};

TEST_F(ReadModelTest, NoShiftWhenFresh)
{
    EXPECT_DOUBLE_EQ(vth_.optimalShiftMv(0, 1.2, {0, 0.0}, errors_),
                     0.0);
}

TEST_F(ReadModelTest, ShiftGrowsWithAging)
{
    double prev = 0.0;
    for (double t : {0.5, 1.0, 3.0, 12.0}) {
        const double s =
            vth_.optimalShiftMv(0, 1.2, {2000, t}, errors_);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST_F(ReadModelTest, ShiftScalesWithQuality)
{
    const AgingState aging{2000, 6.0};
    EXPECT_GT(vth_.optimalShiftMv(0, 1.6, aging, errors_),
              vth_.optimalShiftMv(0, 1.0, aging, errors_));
}

TEST_F(ReadModelTest, BlockDriftIsDeterministicAndVaried)
{
    EXPECT_DOUBLE_EQ(vth_.blockDrift(7), vth_.blockDrift(7));
    double lo = 1e30, hi = 0.0;
    for (std::uint32_t b = 0; b < 100; ++b) {
        lo = std::min(lo, vth_.blockDrift(b));
        hi = std::max(hi, vth_.blockDrift(b));
    }
    EXPECT_GT(hi / lo, 1.5);
}

TEST_F(ReadModelTest, ExpandOffsetsMonotoneInBoundary)
{
    const auto offsets = vth_.expandOffsets(60.0);
    for (int i = 1; i < kTlcBoundaries; ++i) {
        // Higher boundaries shift more (deeper negative offsets).
        EXPECT_LE(offsets[static_cast<std::size_t>(i)],
                  offsets[static_cast<std::size_t>(i - 1)]);
    }
    EXPECT_LT(offsets[kTlcBoundaries - 1], 0);
}

TEST_F(ReadModelTest, FreshReadNeverRetries)
{
    for (int i = 0; i < 200; ++i) {
        const auto out = read_.read(0, 1.3, {0, 0.0}, 1.0, 1.0, 0,
                                    rng_);
        EXPECT_EQ(out.numRetries, 0);
        EXPECT_FALSE(out.uncorrectable);
        // One sense; the hard decode pipelines with the transfer.
        EXPECT_EQ(out.tRead, ReadParams{}.tSense);
    }
}

TEST_F(ReadModelTest, AgedReadsRetryAndConverge)
{
    const AgingState aged{2000, 12.0};
    int totalRetries = 0;
    for (int i = 0; i < 100; ++i) {
        const auto out = read_.read(3, 1.2, aged, 1.0, 1.0, 0, rng_);
        totalRetries += out.numRetries;
        if (!out.uncorrectable) {
            // The successful shift must be near the model optimum.
            const double opt =
                vth_.optimalShiftMv(3, 1.2, aged, errors_);
            EXPECT_LT(std::abs(out.successShiftMv - opt), 100.0);
        }
    }
    EXPECT_GT(totalRetries, 50);
}

TEST_F(ReadModelTest, RetryLatencyGrowsWithRetries)
{
    const AgingState aged{2000, 12.0};
    const auto out = read_.read(3, 1.3, aged, 1.0, 1.0, 0, rng_);
    // At least one sense per attempt, plus decode time per attempt.
    const SimTime senses =
        ReadParams{}.tSense * static_cast<SimTime>(1 + out.numRetries);
    EXPECT_GE(out.tRead, senses);
    EXPECT_LE(out.tRead,
              senses + static_cast<SimTime>(1 + out.numRetries) *
                           (ecc::EccConfig{}.tHardDecodeNs +
                            ecc::EccConfig{}.tSoftDecodeNs));
}

TEST_F(ReadModelTest, SoftHintSkipsFailedHardDecode)
{
    // On a noisy-but-aligned page the hinted read must be exactly one
    // failed-hard-decode cheaper per attempt.
    const AgingState aged{2000, 12.0};
    // Find the optimal shift first so both reads are retry-free.
    const auto pilot = read_.read(9, 1.25, aged, 1.0, 1.0, 0, rng_);
    ASSERT_FALSE(pilot.uncorrectable);
    const auto plain = read_.read(9, 1.25, aged, 1.0, 1.0,
                                  pilot.successShiftMv, rng_, false);
    const auto hinted = read_.read(9, 1.25, aged, 1.0, 1.0,
                                   pilot.successShiftMv, rng_, true);
    if (plain.numRetries == 0 && hinted.numRetries == 0 &&
        plain.rawBerNorm * ErrorParams{}.baseBer >
            ecc_.hardLimitBer()) {
        EXPECT_EQ(plain.tRead - hinted.tRead,
                  ecc::EccConfig{}.tHardDecodeNs);
    }
}

TEST_F(ReadModelTest, GoodStartingShiftEliminatesRetries)
{
    // The PS-aware path (Sec. 4.2): reuse of the h-layer's known good
    // shift makes subsequent reads retry-free.
    const AgingState aged{2000, 12.0};
    const auto first = read_.read(5, 1.15, aged, 1.0, 1.0, 0, rng_);
    ASSERT_FALSE(first.uncorrectable);
    ASSERT_GT(first.numRetries, 0);
    int retriesWithHint = 0;
    for (int i = 0; i < 100; ++i) {
        const auto again = read_.read(5, 1.15, aged, 1.0, 1.0,
                                      first.successShiftMv, rng_);
        retriesWithHint += again.numRetries;
    }
    // >= 95% retry elimination on repeat reads (paper: 66% average
    // including first reads).
    EXPECT_LT(retriesWithHint, 100 * first.numRetries / 20 + 5);
}

TEST_F(ReadModelTest, MisalignmentRaisesRawBer)
{
    EXPECT_GT(read_.rawBerNorm(10.0, 50.0), read_.rawBerNorm(10.0, 0.0));
    EXPECT_DOUBLE_EQ(read_.rawBerNorm(10.0, 0.0), 10.0);
}

TEST_F(ReadModelTest, UncorrectableWhenBerBeyondEcc)
{
    // A hopeless page: enormous program-time multiplier.
    const AgingState aged{2000, 12.0};
    const auto out = read_.read(0, 1.6, aged, 1.0, 50.0, 0, rng_);
    EXPECT_TRUE(out.uncorrectable);
    EXPECT_EQ(out.numRetries, ReadParams{}.maxRetries);
}

/** Property sweep: retry fractions rise with aging (Sec. 6.2's
 *  probabilistic retry model: 0% fresh, ~30% at 2K P/E + 1 month,
 *  ~90%+ at 2K P/E + 1 year). Quality factors are drawn from a real
 *  ProcessModel layer profile so the layer mix is representative. */
class RetryFractionProperty
    : public ::testing::TestWithParam<std::pair<PeCycles, double>>
{
};

TEST_P(RetryFractionProperty, FractionWithinExpectedBand)
{
    const auto [pe, months] = GetParam();
    VthModel vth(VthParams{}, 17);
    ErrorModel errors;
    ecc::EccModel ecc;
    ReadModel read(ReadParams{}, vth, errors, ecc);
    NandGeometry geom;
    geom.blocksPerChip = 40;
    ProcessModel process(geom, ProcessParams{}, 17);
    Rng rng(3);
    const AgingState aging{pe, months};

    int needRetry = 0, n = 0;
    for (std::uint32_t block = 0; block < geom.blocksPerChip; ++block) {
        for (std::uint32_t layer = 0; layer < geom.layersPerBlock;
             layer += 4) {
            const double q = process.layerQuality(block, layer);
            const auto out =
                read.read(block, q, aging, 1.0, 1.0, 0, rng);
            needRetry += out.numRetries > 0;
            ++n;
        }
    }
    const double fraction = static_cast<double>(needRetry) / n;
    if (pe == 0) {
        EXPECT_EQ(needRetry, 0);  // fresh: no retries (paper Sec. 6.2)
    } else if (months == 1.0) {
        EXPECT_GT(fraction, 0.10);
        EXPECT_LT(fraction, 0.60);
    } else {
        EXPECT_GT(fraction, 0.85);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AgingSweep, RetryFractionProperty,
    ::testing::Values(std::pair<PeCycles, double>{0, 0.0},
                      std::pair<PeCycles, double>{2000, 1.0},
                      std::pair<PeCycles, double>{2000, 12.0}));

}  // namespace
}  // namespace cubessd::nand
