/**
 * @file
 * Tests of the QD-aware host queue (src/ssd/host_queue.h): unbounded
 * pass-through, bounded-depth backpressure, FIFO slot hand-off, and
 * latency behaviour under a saturated queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/ssd/ssd.h"

namespace cubessd {
namespace {

ssd::SsdConfig
smallConfig(std::uint32_t hostQueueDepth)
{
    ssd::SsdConfig config;
    config.channels = 1;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 16;
    config.chip.geometry.layersPerBlock = 8;
    config.chip.geometry.wlsPerLayer = 4;
    config.writeBufferPages = 24;
    config.logicalFraction = 0.6;
    config.gcLowWatermark = 2;
    config.gcHighWatermark = 3;
    config.gcUrgentWatermark = 1;
    config.ftl = ssd::FtlKind::Page;
    config.seed = 77;
    config.hostQueueDepth = hostQueueDepth;
    return config;
}

/** Write `count` pages and flush them to NAND. */
void
prepare(ssd::Ssd &dev, Lba count)
{
    for (Lba lba = 0; lba < count; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        req.pages = 1;
        dev.submitSync(req);
    }
    dev.drain();
}

ssd::HostRequest
readRequest(Lba lba)
{
    ssd::HostRequest req;
    req.type = ssd::IoType::Read;
    req.lba = lba;
    req.pages = 1;
    return req;
}

TEST(HostQueue, UnboundedQueueDispatchesAtArrival)
{
    ssd::Ssd dev(smallConfig(0));
    prepare(dev, 8);
    const auto completion = dev.submitSync(readRequest(3));
    EXPECT_EQ(completion.queueWait(), 0u);
    EXPECT_EQ(completion.start, completion.arrival);
    EXPECT_GT(completion.serviceTime(), 0u);
    EXPECT_EQ(dev.hostQueue().stats().blockedSubmissions, 0u);
}

TEST(HostQueue, BoundedDepthBlocksExtraSubmissionUntilCompletion)
{
    ssd::Ssd dev(smallConfig(2));
    prepare(dev, 8);

    std::vector<ssd::Completion> completions;
    for (Lba lba = 0; lba < 3; ++lba) {
        dev.hostQueue().submitWithCallback(
            readRequest(lba), [&completions](const ssd::Completion &c) {
                completions.push_back(c);
            });
    }
    // Three submission events are pending; fire exactly those. The
    // first two take the queue's slots, the third must wait.
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(dev.queue().step());
    EXPECT_EQ(dev.hostQueue().inFlight(), 2u);
    EXPECT_EQ(dev.hostQueue().waiting(), 1u);

    dev.queue().run();
    ASSERT_EQ(completions.size(), 3u);
    const auto &stats = dev.hostQueue().stats();
    EXPECT_EQ(stats.blockedSubmissions, 1u);
    EXPECT_EQ(stats.maxWaiting, 1u);
    EXPECT_EQ(stats.completed, stats.submitted);

    // Completions arrive in device order, not submission order:
    // identify requests by id (assigned in submission order).
    std::sort(completions.begin(), completions.end(),
              [](const ssd::Completion &a, const ssd::Completion &b) {
                  return a.id < b.id;
              });
    // The first two took the queue's slots at arrival...
    EXPECT_EQ(completions[0].queueWait(), 0u);
    EXPECT_EQ(completions[1].queueWait(), 0u);
    // ...and the third only started once one of them completed.
    const auto &blocked = completions[2];
    EXPECT_GT(blocked.queueWait(), 0u);
    EXPECT_GE(blocked.start, std::min(completions[0].finish,
                                      completions[1].finish));
}

TEST(HostQueue, SaturatedQueueLatencyIsMonotone)
{
    ssd::Ssd dev(smallConfig(1));
    prepare(dev, 16);

    constexpr int kRequests = 8;
    std::vector<ssd::Completion> completions;
    for (Lba lba = 0; lba < kRequests; ++lba) {
        dev.hostQueue().submitWithCallback(
            readRequest(lba), [&completions](const ssd::Completion &c) {
                completions.push_back(c);
            });
    }
    dev.queue().run();
    ASSERT_EQ(completions.size(),
              static_cast<std::size_t>(kRequests));

    // QD 1 serializes the requests: completions arrive in submission
    // order and arrival->completion latency grows with queue position.
    for (int i = 1; i < kRequests; ++i) {
        EXPECT_GE(completions[i].start, completions[i - 1].finish);
        EXPECT_GT(completions[i].latency(),
                  completions[i - 1].latency());
        EXPECT_GE(completions[i].queueWait(),
                  completions[i - 1].queueWait());
    }
}

TEST(HostQueue, DriverRunsThroughBoundedQueue)
{
    // End to end: the closed-loop driver keeps more requests in
    // flight than the device queue admits; everything still
    // completes and the excess shows up as queue wait.
    ssd::Ssd dev(smallConfig(4));
    prepare(dev, 32);
    std::uint64_t outstanding = 0;
    for (Lba lba = 0; lba < 32; ++lba) {
        ++outstanding;
        dev.hostQueue().submitWithCallback(
            readRequest(lba % 16),
            [&outstanding](const ssd::Completion &) {
                --outstanding;
            });
    }
    dev.queue().run();
    EXPECT_EQ(outstanding, 0u);
    const auto &stats = dev.hostQueue().stats();
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_GT(stats.blockedSubmissions, 0u);
    EXPECT_GT(stats.avgQueueWaitUs(), 0.0);
    EXPECT_GE(stats.avgLatencyUs(), stats.avgQueueWaitUs());
}

}  // namespace
}  // namespace cubessd
