/**
 * @file
 * Unit tests for the fixed-bucket log-scale latency histogram.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/metrics/histogram.h"

namespace cubessd::metrics {
namespace {

TEST(LatencyHistogram, BucketBoundariesArePartition)
{
    // The fixed layout must tile [0, 2^64) with no gaps or overlaps:
    // high(i) + 1 == low(i+1), and low <= high everywhere.
    for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
        EXPECT_LE(LatencyHistogram::bucketLow(i),
                  LatencyHistogram::bucketHigh(i))
            << "bucket " << i;
        EXPECT_EQ(LatencyHistogram::bucketHigh(i) + 1,
                  LatencyHistogram::bucketLow(i + 1))
            << "bucket " << i;
    }
    EXPECT_EQ(LatencyHistogram::bucketLow(0), 0u);
    EXPECT_EQ(
        LatencyHistogram::bucketHigh(LatencyHistogram::kBuckets - 1),
        std::numeric_limits<std::uint64_t>::max());
}

TEST(LatencyHistogram, BucketIndexMatchesBoundaries)
{
    const std::uint64_t samples[] = {
        0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 4096, 123456789,
        std::uint64_t{1} << 40, std::numeric_limits<std::uint64_t>::max()};
    for (const std::uint64_t v : samples) {
        const std::size_t i = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(i, LatencyHistogram::kBuckets);
        EXPECT_LE(LatencyHistogram::bucketLow(i), v) << "value " << v;
        EXPECT_GE(LatencyHistogram::bucketHigh(i), v) << "value " << v;
    }
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Values 0..7 get dedicated buckets, so percentiles on them are
    // exact, not quantized.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 8; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(12.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.0);
}

TEST(LatencyHistogram, RelativeErrorBounded)
{
    // Any reported percentile is >= the exact sample and within one
    // sub-bucket (12.5%) of it.
    LatencyHistogram h;
    const std::uint64_t v = 1000000;  // 1 ms in ns
    h.add(v);
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, static_cast<double>(v));
    EXPECT_LE(p50, static_cast<double>(v) * 1.125);
}

TEST(LatencyHistogram, PercentileExtraction)
{
    LatencyHistogram h;
    for (std::uint64_t i = 1; i <= 1000; ++i)
        h.add(i * 1000);  // 1us .. 1ms
    EXPECT_EQ(h.total(), 1000u);
    // Nearest-rank with quantization: within 12.5% above the exact value.
    EXPECT_GE(h.percentile(50.0), 500.0 * 1000);
    EXPECT_LE(h.percentile(50.0), 500.0 * 1000 * 1.125);
    EXPECT_GE(h.percentile(99.0), 990.0 * 1000);
    EXPECT_LE(h.percentile(99.0), 990.0 * 1000 * 1.125);
    EXPECT_GE(h.percentile(99.9), 999.0 * 1000);
    // p100 and p99.9+ clamp to the true max, never beyond.
    EXPECT_LE(h.percentile(99.9), 1000.0 * 1000);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0 * 1000);
    EXPECT_EQ(h.min(), 1000u);
    EXPECT_EQ(h.max(), 1000000u);
    EXPECT_NEAR(h.mean(), 500500.0, 1.0);
}

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, MergeEqualsCombinedAdds)
{
    LatencyHistogram a, b, combined;
    for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t va = i * 37 + 5;
        const std::uint64_t vb = i * 91 + 100000;
        a.add(va);
        b.add(vb);
        combined.add(va);
        combined.add(vb);
    }
    a.merge(b);
    EXPECT_EQ(a.total(), combined.total());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    for (const double p : {10.0, 50.0, 95.0, 99.0, 99.9, 100.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p)) << p;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        ASSERT_EQ(a.count(i), combined.count(i)) << "bucket " << i;
}

TEST(LatencyHistogram, MergeWithEmpty)
{
    LatencyHistogram a, empty;
    a.add(42);
    a.merge(empty);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.min(), 42u);
    LatencyHistogram c;
    c.merge(a);
    EXPECT_EQ(c.total(), 1u);
    EXPECT_EQ(c.min(), 42u);
    EXPECT_EQ(c.max(), 42u);
}

TEST(LatencyHistogram, Reset)
{
    LatencyHistogram h;
    h.add(7);
    h.add(70000);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
    h.add(5);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.max(), 5u);
}

}  // namespace
}  // namespace cubessd::metrics
