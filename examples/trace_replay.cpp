/**
 * @file
 * Trace record + replay: generate a workload trace, save it to a
 * file, replay it open-loop against two FTLs, and compare.
 *
 *   ./trace_replay [trace_file]
 *
 * If trace_file exists it is replayed; otherwise a Rocks-like trace
 * is generated and written there first (default: ./rocks.trace).
 */

#include <fstream>
#include <iostream>
#include <string>

#include "src/cubessd.h"
#include "src/ftl/ftl_base.h"

using namespace cubessd;

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : "rocks.trace";

    std::vector<ssd::HostRequest> trace;
    if (std::ifstream probe(path); probe.good()) {
        std::cout << "replaying existing trace '" << path << "'\n";
        trace = workload::TraceReader::readFile(path);
    } else {
        std::cout << "generating a Rocks-like trace into '" << path
                  << "'\n";
        ssd::SsdConfig sizing;
        sizing.chip.geometry.blocksPerChip = 64;
        workload::WorkloadGenerator gen(workload::rocks(),
                                        sizing.logicalPages(), 11);
        SimTime t = 0;
        Rng rng(13);
        for (int i = 0; i < 20000; ++i) {
            auto req = gen.next();
            req.arrival = t;
            // Open-loop arrivals: ~8k requests/s with jitter, a
            // rate this small example device can sustain.
            t += static_cast<SimTime>(rng.exponential(125.0)) *
                 kMicrosecond;
            trace.push_back(req);
        }
        workload::TraceWriter::writeFile(path, trace);
    }
    std::cout << "trace: " << trace.size() << " requests spanning "
              << metrics::format(
                     toSeconds(trace.back().arrival -
                               trace.front().arrival),
                     2)
              << " s\n\n";

    metrics::Table table({"FTL", "completed", "IOPS",
                          "write p99 (ms)", "read p99 (ms)"});
    for (const auto kind : {ssd::FtlKind::Page, ssd::FtlKind::Cube}) {
        ssd::SsdConfig config;
        config.chip.geometry.blocksPerChip = 96;
        config.logicalFraction = 0.8;  // room for GC on small chips
        config.ftl = kind;
        ssd::Ssd dev(config);

        // Prefill so reads hit mapped pages.
        workload::WorkloadGenerator gen(workload::rocks(),
                                        dev.logicalPages(), 11);
        workload::Driver driver(dev, gen);
        driver.prefill(0.1);

        const auto result = workload::replayTrace(dev, trace);
        table.row({ssd::ftlKindName(kind),
                   std::to_string(result.completed),
                   metrics::format(result.iops, 0),
                   metrics::format(
                       result.writeLatencyUs.percentile(99) / 1000.0,
                       2),
                   metrics::format(
                       result.readLatencyUs.percentile(99) / 1000.0,
                       2)});
        dev.ftl().checkConsistency();
    }
    table.print(std::cout);
    return 0;
}
