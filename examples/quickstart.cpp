/**
 * @file
 * Quickstart: build a cubeFTL SSD, write and read some data, and
 * print the device statistics.
 *
 *   ./quickstart
 */

#include <iostream>

#include "src/cubessd.h"

using namespace cubessd;

int
main()
{
    // 1. Configure a small SSD driven by the PS-aware cubeFTL.
    ssd::SsdConfig config;
    config.channels = 2;
    config.chipsPerChannel = 2;
    config.chip.geometry.blocksPerChip = 64;  // ~2.3 GB, quick to run
    config.logicalFraction = 0.85;  // leave room for GC on small chips
    config.ftl = ssd::FtlKind::Cube;
    ssd::Ssd dev(config);

    std::cout << "device: " << dev.chipCount() << " chips, "
              << dev.logicalPages() << " logical pages of "
              << config.chip.geometry.pageSizeBytes / 1024 << " KiB\n";

    // 2. Write 1000 pages (synchronously for simplicity).
    for (Lba lba = 0; lba < 1000; ++lba) {
        ssd::HostRequest req;
        req.type = ssd::IoType::Write;
        req.lba = lba;
        req.pages = 1;
        dev.submitSync(req);
    }
    dev.drain();  // flush the write buffer to NAND

    // 3. Read them back and look at one completion in detail.
    ssd::HostRequest req;
    req.type = ssd::IoType::Read;
    req.lba = 123;
    req.pages = 8;
    const auto completion = dev.submitSync(req);
    std::cout << "8-page read completed in "
              << metrics::format(toMicroseconds(completion.latency()),
                                 1)
              << " us\n";

    // 4. Device statistics: leader vs follower programs show the
    //    PS-aware optimization at work.
    const auto &stats = dev.ftl().stats();
    std::cout << "host writes: " << stats.hostWritePages
              << " pages\nWL programs: "
              << stats.hostPrograms + stats.gcPrograms << " ("
              << stats.leaderPrograms << " leaders, "
              << stats.followerPrograms
              << " followers)\naverage program latency: "
              << metrics::format(stats.avgProgramLatencyUs(), 1)
              << " us (default tPROG is ~700 us; followers are "
                 "faster)\n";

    // 5. Integrity check: every write is retrievable.
    dev.ftl().checkConsistency();
    std::cout << "consistency check passed\n";
    return 0;
}
