/**
 * @file
 * Chip characterization study (the paper's Sec. 3 experiment): probe a
 * 3D TLC chip's process similarity and variability directly through
 * the chip-level API.
 *
 *   ./characterization [chips]
 *
 * Programs leader WLs across blocks and layers of several simulated
 * chips, measures calibrated BER under different wear/retention
 * conditions, and prints the DeltaH / DeltaV summary (paper Figs. 5-6).
 */

#include <cstdlib>
#include <iostream>

#include "src/cubessd.h"

using namespace cubessd;

int
main(int argc, char **argv)
{
    const int chips = argc > 1 ? std::atoi(argv[1]) : 4;
    std::cout << "characterizing " << chips << " simulated chips\n";

    RunningStat deltaH, deltaVFresh, deltaVEol;
    for (int c = 0; c < chips; ++c) {
        nand::NandChipConfig config;
        config.geometry.blocksPerChip = 16;
        config.seed = 1000 + static_cast<std::uint64_t>(c);
        nand::NandChip chip(config);
        const auto &geom = chip.geometry();
        std::vector<std::uint64_t> tokens(geom.pagesPerWl, 1);

        for (const auto &aging :
             {nand::AgingState{0, 0.0}, nand::AgingState{2000, 12.0}}) {
            chip.setAging(aging);
            for (std::uint32_t block = 0; block < geom.blocksPerChip;
                 block += 4) {
                chip.eraseBlock(block);
                double layerLo = 1e30, layerHi = 0.0;
                for (std::uint32_t l = 0; l < geom.layersPerBlock;
                     ++l) {
                    double lo = 1e30, hi = 0.0;
                    for (std::uint32_t w = 0; w < geom.wlsPerLayer;
                         ++w) {
                        chip.programWl({block, l, w},
                                       nand::ProgramCommand{}, tokens);
                        const double ber = chip.measureBerNorm(
                            {block, l, w, 0});
                        lo = std::min(lo, ber);
                        hi = std::max(hi, ber);
                    }
                    deltaH.add(hi / lo);
                    layerLo = std::min(layerLo, lo);
                    layerHi = std::max(layerHi, hi);
                }
                (aging.peCycles == 0 ? deltaVFresh : deltaVEol)
                    .add(layerHi / layerLo);
            }
        }
        std::cout << "  chip " << c << " done\n";
    }

    std::cout << "\n=== characterization summary ===\n"
              << "intra-layer similarity DeltaH: mean "
              << metrics::format(deltaH.mean()) << ", max "
              << metrics::format(deltaH.max())
              << "  (paper: virtually 1 everywhere)\n"
              << "inter-layer variability DeltaV: fresh "
              << metrics::format(deltaVFresh.mean())
              << ", 2K P/E + 1 year "
              << metrics::format(deltaVEol.mean())
              << "  (paper: ~1.6 -> ~2.3)\n";
    return 0;
}
