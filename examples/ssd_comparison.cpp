/**
 * @file
 * FTL comparison on a chosen workload and aging state — a miniature
 * version of the paper's evaluation (Sec. 6).
 *
 *   ./ssd_comparison [workload] [pe_cycles] [retention_months]
 *
 * workload: mail | web | proxy | oltp | rocks | mongo (default oltp)
 * Runs pageFTL, vertFTL, cubeFTL-, and cubeFTL, and prints IOPS,
 * latency percentiles, and the PS-aware statistics.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/cubessd.h"

using namespace cubessd;

namespace {

workload::WorkloadSpec
specByName(const std::string &name)
{
    for (const auto &spec : workload::allWorkloads()) {
        std::string lower = spec.name;
        for (auto &ch : lower)
            ch = static_cast<char>(std::tolower(ch));
        if (lower == name)
            return spec;
    }
    std::cerr << "unknown workload '" << name << "', using OLTP\n";
    return workload::oltp();
}

}  // namespace

int
main(int argc, char **argv)
{
    const auto spec = specByName(argc > 1 ? argv[1] : "oltp");
    nand::AgingState aging;
    aging.peCycles =
        argc > 2 ? static_cast<PeCycles>(std::atoi(argv[2])) : 0;
    aging.retentionMonths = argc > 3 ? std::atof(argv[3]) : 0.0;

    std::cout << "workload " << spec.name << ", " << aging.peCycles
              << " P/E + " << aging.retentionMonths
              << " months retention\n\n";

    metrics::Table table({"FTL", "IOPS", "write p90 (ms)",
                          "read p90 (ms)", "WAF", "avg tPROG (us)",
                          "retries"});
    double pageIops = 0.0, cubeIops = 0.0;
    for (const auto kind :
         {ssd::FtlKind::Page, ssd::FtlKind::Vert, ssd::FtlKind::CubeMinus,
          ssd::FtlKind::Cube}) {
        ssd::SsdConfig config;
        config.chip.geometry.blocksPerChip = 128;
        config.ftl = kind;
        ssd::Ssd dev(config);
        workload::WorkloadGenerator gen(spec, dev.logicalPages(), 7);
        workload::Driver driver(dev, gen);
        dev.setAging({aging.peCycles, 0.0});
        driver.prefill(0.2);
        dev.setAging(aging);
        const auto result = driver.run(20000);
        const auto &stats = dev.ftl().stats();
        table.row({ssd::ftlKindName(kind),
                   metrics::format(result.iops, 0),
                   metrics::format(
                       result.writeLatencyUs.percentile(90) / 1000.0,
                       2),
                   metrics::format(
                       result.readLatencyUs.percentile(90) / 1000.0,
                       2),
                   metrics::format(stats.writeAmplification(), 2),
                   metrics::format(stats.avgProgramLatencyUs(), 0),
                   std::to_string(stats.readRetries)});
        if (kind == ssd::FtlKind::Page)
            pageIops = result.iops;
        if (kind == ssd::FtlKind::Cube)
            cubeIops = result.iops;
    }
    table.print(std::cout);
    std::cout << "\ncubeFTL vs pageFTL: "
              << metrics::formatPercent(cubeIops / pageIops - 1.0)
              << " IOPS\n";
    return 0;
}
