/**
 * @file
 * cubessd_sim: command-line SSD simulation driver.
 *
 * The tool a downstream user reaches for first: pick an FTL, a
 * workload, an aging state, and a device size; get IOPS, latency
 * percentiles, and the FTL statistics.
 *
 *   cubessd_sim --ftl cube --workload oltp --pe 2000 --retention 12
 *   cubessd_sim --ftl page --workload web --blocks 428 --requests 50000
 *   cubessd_sim --help
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/cubessd.h"
#include "src/ftl/cube_ftl.h"
#include "src/prof/prof.h"
#include "src/sim/sweep.h"
#include "src/workload/sweep.h"

using namespace cubessd;

namespace {

struct Options
{
    std::string ftl = "cube";
    std::string workload = "oltp";
    PeCycles pe = 0;
    double retentionMonths = 0.0;
    std::uint32_t blocks = 128;
    std::uint64_t requests = 30000;
    std::uint64_t seed = 42;
    std::uint64_t seedCount = 1;
    unsigned jobs = 0;
    double prefillOverwrite = 0.2;
    std::uint32_t qd = 0;
    /** Multi-tenant mode: engaged when at least one tenant is given. */
    std::vector<workload::TenantSpec> tenants;
    bool openLoop = false;
    double load = 0.0;
    std::uint32_t arbBurst = 4;
    bool verbose = false;
    std::string metricsOut;
    std::string traceOut;
    std::size_t traceBuffer = std::size_t{1} << 18;
    std::uint64_t sampleIntervalUs = 0;
    bool sampleIntervalSet = false;
    bool listCounters = false;
    bool profile = false;
    std::string profileOut;
    nand::FaultParams faults{};
};

void
usage()
{
    std::cout <<
        "cubessd_sim - PS-aware 3D NAND SSD simulator (MICRO-52 "
        "reproduction)\n\n"
        "options:\n"
        "  --ftl <page|vert|cube|cube->   FTL to drive (default cube)\n"
        "  --workload <mail|web|proxy|oltp|rocks|mongo>\n"
        "                                 workload (default oltp)\n"
        "  --pe <cycles>                  injected P/E wear (default 0)\n"
        "  --retention <months>           injected retention (default 0)\n"
        "  --blocks <n>                   blocks per chip (default 128;\n"
        "                                 the paper's device uses 428)\n"
        "  --requests <n>                 measured requests (default 30000)\n"
        "  --seed <n>                     simulation seed (default 42)\n"
        "  --seeds <n>                    run n independent seeds\n"
        "                                 (seed..seed+n-1) and report the\n"
        "                                 merged result: mean IOPS, merged\n"
        "                                 latency percentiles, summed FTL\n"
        "                                 counters (default 1)\n"
        "  --jobs <n>                     worker threads for a --seeds\n"
        "                                 sweep (default 1, or the\n"
        "                                 CUBESSD_JOBS environment\n"
        "                                 variable); results are merged\n"
        "                                 deterministically in seed order,\n"
        "                                 so output is bit-identical for\n"
        "                                 any job count\n"
        "  --prefill-overwrite <frac>     random-overwrite fraction of the\n"
        "                                 working set before measuring\n"
        "                                 (default 0.2)\n"
        "  --qd <n>                       closed-loop host queue depth:\n"
        "                                 keep n requests in flight through\n"
        "                                 the bounded host queue (default:\n"
        "                                 the workload's native pacing)\n"
        "  --tenants <list>               multi-tenant mode: comma-\n"
        "                                 separated tenant specs, each\n"
        "                                 <name>:<workload>[:<key>=<val>]*\n"
        "                                 with keys w= (WRR weight), slo=\n"
        "                                 (latency target, e.g. 500us/2ms),\n"
        "                                 rate= (open-loop arrivals/s),\n"
        "                                 arrival= (poisson|bursty), burst=\n"
        "                                 (mean batch of bursty arrivals),\n"
        "                                 ns= (namespace fraction), trace=\n"
        "                                 (request-content trace file);\n"
        "                                 e.g. \"A:readhot:w=3:slo=500us,\n"
        "                                 B:writeheavy:w=1:slo=2ms\"\n"
        "  --tenant <spec>                add one tenant (repeatable;\n"
        "                                 same grammar as --tenants)\n"
        "  --open-loop                    pace tenants by independent\n"
        "                                 arrival processes instead of\n"
        "                                 fixed in-flight counts; demand\n"
        "                                 does not slow down when the\n"
        "                                 device falls behind, exposing\n"
        "                                 SLO violations\n"
        "  --load <frac>                  open-loop offered load as a\n"
        "                                 fraction of the calibrated\n"
        "                                 closed-loop capacity, split\n"
        "                                 across rate-less tenants by\n"
        "                                 weight (e.g. 0.8)\n"
        "  --arb-burst <n>                WRR arbitration burst:\n"
        "                                 consecutive commands per weight\n"
        "                                 unit per round-robin visit\n"
        "                                 (default 4); --qd sets the\n"
        "                                 shared in-flight window\n"
        "                                 (default 64)\n"
        "  --metrics-out <file>           write the full run metrics as\n"
        "                                 JSON: per-IoType latency\n"
        "                                 percentiles (p50/p95/p99/p99.9),\n"
        "                                 phase decomposition, channel and\n"
        "                                 die utilization, FTL/GC stats,\n"
        "                                 per-Status completion counts and\n"
        "                                 failure-domain counters\n"
        "  --fault-program <p>            per-WL program-failure base\n"
        "                                 probability (enables injection)\n"
        "  --fault-erase <p>              per-block erase-failure base\n"
        "                                 probability (enables injection)\n"
        "  --fault-read-limit <norm>      normalized-BER ceiling beyond\n"
        "                                 which a read is uncorrectable\n"
        "                                 (0 = unlimited; enables\n"
        "                                 injection)\n"
        "  --fault-wear-scale <x>         how strongly P/E wear amplifies\n"
        "                                 fault probabilities (default 6)\n"
        "  --trace-out <file>             record a Perfetto-loadable\n"
        "                                 Chrome trace (request spans,\n"
        "                                 per-die NAND ops, bus transfers,\n"
        "                                 GC episodes, sampled counters);\n"
        "                                 open at https://ui.perfetto.dev\n"
        "  --trace-buffer <events>        trace ring-buffer capacity in\n"
        "                                 events (default 262144; oldest\n"
        "                                 events are dropped on overflow)\n"
        "  --sample-interval-us <n>       counter sampling period in\n"
        "                                 simulated microseconds (default\n"
        "                                 1000 when --trace-out is given,\n"
        "                                 else off; 0 disables)\n"
        "  --list-counters                print the sampled counter names\n"
        "                                 and units for this config, then\n"
        "                                 exit\n"
        "  --profile                      self-profile the measured run:\n"
        "                                 attribute host wall-clock time\n"
        "                                 to fixed simulator hot-path\n"
        "                                 slots (scheduler dispatch, NAND\n"
        "                                 BER/ISPP/retry models, FTL\n"
        "                                 lookups, GC, bus, host queue,\n"
        "                                 trace overhead) and print the\n"
        "                                 breakdown table; in sweep mode\n"
        "                                 also report per-worker load\n"
        "                                 telemetry on stderr. Simulation\n"
        "                                 results are bit-identical with\n"
        "                                 profiling on or off\n"
        "  --profile-out <file>           also write the profile as a\n"
        "                                 JSON sidecar (implies\n"
        "                                 --profile)\n"
        "  --verbose                      print per-chip statistics\n"
        "  --help                         this text\n";
}

ssd::FtlKind
parseFtl(const std::string &name)
{
    if (name == "page") return ssd::FtlKind::Page;
    if (name == "vert") return ssd::FtlKind::Vert;
    if (name == "cube") return ssd::FtlKind::Cube;
    if (name == "cube-") return ssd::FtlKind::CubeMinus;
    fatal("unknown FTL '%s' (page|vert|cube|cube-)", name.c_str());
}

workload::WorkloadSpec
parseWorkload(const std::string &name)
{
    for (const auto &spec : workload::allWorkloads()) {
        std::string lower = spec.name;
        for (auto &ch : lower)
            ch = static_cast<char>(std::tolower(ch));
        if (lower == name)
            return spec;
    }
    fatal("unknown workload '%s' (mail|web|proxy|oltp|rocks|mongo)",
          name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (arg == "--ftl") {
            opt.ftl = value();
        } else if (arg == "--workload") {
            opt.workload = value();
        } else if (arg == "--pe") {
            opt.pe = static_cast<PeCycles>(std::atoi(value()));
        } else if (arg == "--retention") {
            opt.retentionMonths = std::atof(value());
        } else if (arg == "--blocks") {
            opt.blocks = static_cast<std::uint32_t>(std::atoi(value()));
        } else if (arg == "--requests") {
            opt.requests =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--seed") {
            opt.seed = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--seeds") {
            opt.seedCount =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--prefill-overwrite") {
            opt.prefillOverwrite = std::atof(value());
        } else if (arg == "--qd") {
            opt.qd = static_cast<std::uint32_t>(std::atoi(value()));
        } else if (arg == "--tenants") {
            if (const std::string err =
                    workload::parseTenantList(value(), &opt.tenants);
                !err.empty())
                fatal("%s", err.c_str());
        } else if (arg == "--tenant") {
            workload::TenantSpec spec;
            if (const std::string err =
                    workload::parseTenantSpec(value(), &spec);
                !err.empty())
                fatal("%s", err.c_str());
            opt.tenants.push_back(std::move(spec));
        } else if (arg == "--open-loop") {
            opt.openLoop = true;
        } else if (arg == "--load") {
            opt.load = std::atof(value());
        } else if (arg == "--arb-burst") {
            opt.arbBurst = static_cast<std::uint32_t>(std::atoi(value()));
        } else if (arg == "--metrics-out") {
            opt.metricsOut = value();
        } else if (arg == "--trace-out") {
            opt.traceOut = value();
        } else if (arg == "--trace-buffer") {
            opt.traceBuffer =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--sample-interval-us") {
            opt.sampleIntervalUs =
                static_cast<std::uint64_t>(std::atoll(value()));
            opt.sampleIntervalSet = true;
        } else if (arg == "--list-counters") {
            opt.listCounters = true;
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg == "--profile-out") {
            opt.profileOut = value();
            opt.profile = true;
        } else if (arg == "--fault-program") {
            opt.faults.programFailBase = std::atof(value());
            opt.faults.enabled = true;
        } else if (arg == "--fault-erase") {
            opt.faults.eraseFailBase = std::atof(value());
            opt.faults.enabled = true;
        } else if (arg == "--fault-read-limit") {
            opt.faults.uncorrectableNormLimit = std::atof(value());
            opt.faults.enabled = true;
        } else if (arg == "--fault-wear-scale") {
            opt.faults.wearScale = std::atof(value());
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    return opt;
}

/** Host wall-clock seconds elapsed since `t0`, in nanoseconds. */
double
wallNsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Write a profile as a standalone {"profile": {...}} sidecar. */
void
writeProfileSidecar(const std::string &path,
                    const prof::ProfileData &data, double wallNs)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open profile file '%s'", path.c_str());
    metrics::JsonWriter w(out);
    w.beginObject();
    w.key("profile");
    prof::writeJson(w, data, wallNs);
    w.endObject();
    out << '\n';
    std::cout << "profile written to " << path << '\n';
}

/**
 * Per-worker load telemetry of a sweep, on stderr (never stdout: the
 * sweep's stdout is part of the --jobs bit-identity contract, and
 * wall times are machine noise).
 */
void
reportWorkerTelemetry(const sim::SweepTelemetry &t)
{
    std::cerr << "sweep telemetry: wall "
              << metrics::format(t.wallS, 3) << " s, " << t.workers.size()
              << " worker" << (t.workers.size() == 1 ? "" : "s")
              << ", load imbalance "
              << metrics::format(t.imbalance(), 2) << "x\n";
    for (std::size_t i = 0; i < t.workers.size(); ++i) {
        const auto &w = t.workers[i];
        std::cerr << "  worker " << i << ": " << w.jobs << " cells ("
                  << w.steals << " stolen), busy "
                  << metrics::format(w.busyS, 3) << " s, idle "
                  << metrics::format(w.idleS, 3) << " s\n";
    }
}

/**
 * Write the full run metrics as a single JSON document: the run
 * configuration, throughput, per-IoType latency/phase histograms,
 * channel and die utilization, and the FTL/GC statistics. `profile`
 * (nullable) adds the self-profile of the measured run.
 */
void
writeMetricsFile(const std::string &path, const Options &opt,
                 const ssd::Ssd &dev, const workload::RunResult &result,
                 const trace::CounterRegistry *counters,
                 const prof::ProfileData *profile, double profileWallNs)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics file '%s'", path.c_str());

    metrics::JsonWriter w(out);
    w.beginObject();

    w.key("config");
    w.beginObject();
    w.field("ftl", opt.ftl);
    w.field("workload", opt.workload);
    w.field("pe_cycles", static_cast<std::uint64_t>(opt.pe));
    w.field("retention_months", opt.retentionMonths);
    w.field("blocks_per_chip", static_cast<std::uint64_t>(opt.blocks));
    w.field("requests", opt.requests);
    w.field("seed", opt.seed);
    w.field("queue_depth", static_cast<std::uint64_t>(opt.qd));
    w.key("faults");
    w.beginObject();
    w.field("enabled", opt.faults.enabled);
    w.field("program_fail_base", opt.faults.programFailBase);
    w.field("erase_fail_base", opt.faults.eraseFailBase);
    w.field("uncorrectable_norm_limit",
            opt.faults.uncorrectableNormLimit);
    w.field("wear_scale", opt.faults.wearScale);
    w.endObject();
    w.endObject();

    w.key("run");
    w.beginObject();
    w.field("iops", result.iops);
    w.field("elapsed_s", toSeconds(result.elapsed));
    w.field("completed", result.completedRequests);
    w.field("failed", result.failedRequests());
    w.field("read_only", dev.ftl().readOnly());
    w.endObject();

    w.key("requests");
    metrics::writeRequestMetrics(w, result.requestMetrics);

    w.key("utilization");
    metrics::writeUtilization(w, result.utilization);

    const auto &stats = dev.ftl().stats();
    w.key("ftl");
    w.beginObject();
    w.field("host_read_pages", stats.hostReadPages);
    w.field("host_write_pages", stats.hostWritePages);
    w.field("buffer_hits", stats.bufferHits);
    w.field("nand_reads", stats.nandReads);
    w.field("host_programs", stats.hostPrograms);
    w.field("gc_programs", stats.gcPrograms);
    w.field("leader_programs", stats.leaderPrograms);
    w.field("follower_programs", stats.followerPrograms);
    w.field("read_retries", stats.readRetries);
    w.field("safety_reprograms", stats.safetyReprograms);
    w.field("write_stalls", stats.writeStalls);
    w.field("write_amplification", stats.writeAmplification());
    w.field("avg_program_latency_us", stats.avgProgramLatencyUs());
    w.field("buffer_peak_pages",
            static_cast<std::uint64_t>(dev.ftl().buffer().peakSize()));
    w.endObject();

    w.key("failures");
    w.beginObject();
    w.field("program_failures", stats.programFailures);
    w.field("erase_failures", stats.eraseFailures);
    w.field("retired_blocks", stats.retiredBlocks);
    w.field("bad_block_relocations", stats.badBlockRelocations);
    w.field("flush_replays", stats.flushReplays);
    w.field("uncorrectable_reads", stats.uncorrectableReads);
    w.field("read_only_rejects", stats.readOnlyRejects);
    w.field("rejected_requests", stats.rejectedRequests);
    w.endObject();

    const auto &gc = dev.ftl().gcStats();
    w.key("gc");
    w.beginObject();
    w.field("collections", gc.collections);
    w.field("relocated_pages", gc.relocatedPages);
    w.field("erases", gc.erases);
    w.field("scan_reads", gc.scanReads);
    w.field("programs", gc.programs);
    w.field("avg_program_latency_us", gc.avgProgramLatencyUs());
    w.endObject();

    if (counters != nullptr) {
        w.key("timeseries");
        counters->writeTimeseries(w);
    }

    if (profile != nullptr) {
        w.key("profile");
        prof::writeJson(w, *profile, profileWallNs);
    }

    w.endObject();
    out << '\n';
}

/**
 * Write the merged metrics of a --seeds sweep as a single JSON
 * document: the run configuration, one summary object per seed (in
 * seed order), the merged per-IoType latency/phase histograms, and
 * the summed FTL/GC counters. Written once, from the main thread,
 * after the deterministic merge — never from sweep workers.
 */
void
writeSweepMetricsFile(const std::string &path, const Options &opt,
                      const std::vector<workload::SweepCell> &cells,
                      const std::vector<workload::CellResult> &results,
                      const metrics::RequestMetrics &mergedRequests,
                      const ftl::FtlStats &mergedFtl,
                      const ftl::GcStats &mergedGc)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics file '%s'", path.c_str());

    metrics::JsonWriter w(out);
    w.beginObject();

    w.key("config");
    w.beginObject();
    w.field("ftl", opt.ftl);
    w.field("workload", opt.workload);
    w.field("pe_cycles", static_cast<std::uint64_t>(opt.pe));
    w.field("retention_months", opt.retentionMonths);
    w.field("blocks_per_chip", static_cast<std::uint64_t>(opt.blocks));
    w.field("requests", opt.requests);
    w.field("seed", opt.seed);
    w.field("seeds", opt.seedCount);
    // NOTE: the job count is deliberately NOT recorded — the metrics
    // file must be byte-identical for any --jobs value.
    w.field("queue_depth", static_cast<std::uint64_t>(opt.qd));
    w.endObject();

    w.key("cells");
    w.beginArray();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        w.beginObject();
        w.field("seed", cells[i].config.seed);
        w.field("iops", r.run.iops);
        w.field("elapsed_s", toSeconds(r.run.elapsed));
        w.field("completed", r.run.completedRequests);
        w.field("failed", r.run.failedRequests());
        w.field("read_only", r.readOnly);
        w.endObject();
    }
    w.endArray();

    w.key("requests");
    metrics::writeRequestMetrics(w, mergedRequests);

    w.key("ftl");
    w.beginObject();
    w.field("host_read_pages", mergedFtl.hostReadPages);
    w.field("host_write_pages", mergedFtl.hostWritePages);
    w.field("buffer_hits", mergedFtl.bufferHits);
    w.field("nand_reads", mergedFtl.nandReads);
    w.field("host_programs", mergedFtl.hostPrograms);
    w.field("gc_programs", mergedFtl.gcPrograms);
    w.field("leader_programs", mergedFtl.leaderPrograms);
    w.field("follower_programs", mergedFtl.followerPrograms);
    w.field("read_retries", mergedFtl.readRetries);
    w.field("safety_reprograms", mergedFtl.safetyReprograms);
    w.field("write_stalls", mergedFtl.writeStalls);
    w.field("write_amplification", mergedFtl.writeAmplification());
    w.field("avg_program_latency_us", mergedFtl.avgProgramLatencyUs());
    w.endObject();

    w.key("gc");
    w.beginObject();
    w.field("collections", mergedGc.collections);
    w.field("relocated_pages", mergedGc.relocatedPages);
    w.field("erases", mergedGc.erases);
    w.field("scan_reads", mergedGc.scanReads);
    w.field("programs", mergedGc.programs);
    w.field("avg_program_latency_us", mergedGc.avgProgramLatencyUs());
    w.endObject();

    w.endObject();
    out << '\n';
}

/**
 * Write the metrics of a multi-tenant run as a single JSON document:
 * the run configuration (tenant specs included), the aggregate
 * summary, and one object per tenant with its latency percentiles,
 * SLO accounting, arbitration counters and full request metrics.
 */
void
writeMultiTenantMetricsFile(const std::string &path, const Options &opt,
                            const ssd::Ssd &dev,
                            const workload::MultiTenantResult &result,
                            const trace::CounterRegistry *counters,
                            const prof::ProfileData *profile,
                            double profileWallNs)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics file '%s'", path.c_str());

    metrics::JsonWriter w(out);
    w.beginObject();

    w.key("config");
    w.beginObject();
    w.field("ftl", opt.ftl);
    w.field("pe_cycles", static_cast<std::uint64_t>(opt.pe));
    w.field("retention_months", opt.retentionMonths);
    w.field("blocks_per_chip", static_cast<std::uint64_t>(opt.blocks));
    w.field("requests", opt.requests);
    w.field("seed", opt.seed);
    w.field("open_loop", opt.openLoop);
    w.field("load", opt.load);
    w.field("arb_burst", static_cast<std::uint64_t>(opt.arbBurst));
    w.field("window",
            static_cast<std::uint64_t>(opt.qd > 0 ? opt.qd : 64));
    w.endObject();

    w.key("run");
    w.beginObject();
    w.field("iops", result.iops);
    w.field("elapsed_s", toSeconds(result.elapsed));
    w.field("completed", result.completed);
    w.field("calibrated_iops", result.calibratedIops);
    w.field("read_only", dev.ftl().readOnly());
    w.endObject();

    w.key("tenants");
    w.beginArray();
    for (std::size_t i = 0; i < result.tenants.size(); ++i) {
        const auto &t = result.tenants[i];
        const auto &spec = opt.tenants[i];
        w.beginObject();
        w.field("name", t.name);
        w.field("workload", spec.workload.name.empty()
                                ? std::string("trace")
                                : spec.workload.name);
        w.field("weight", static_cast<std::uint64_t>(t.weight));
        w.field("arrival",
                std::string(workload::arrivalKindName(spec.arrival)));
        w.field("slo_target_ns",
                static_cast<std::uint64_t>(t.sloTarget));
        w.field("offered_rate", t.offeredRate);
        w.field("submitted", t.submitted);
        w.field("completed", t.completed);
        w.field("iops", t.iops);
        w.field("slo_violations", t.sloViolations);
        w.field("slo_violation_fraction", t.sloViolationFraction());
        for (const auto type :
             {ssd::IoType::Read, ssd::IoType::Write}) {
            const auto &h = t.metrics.latency(type);
            const std::string prefix =
                type == ssd::IoType::Read ? "read" : "write";
            w.field(prefix + "_p50_us",
                    h.percentile(50.0) / 1000.0);
            w.field(prefix + "_p99_us",
                    h.percentile(99.0) / 1000.0);
            w.field(prefix + "_p999_us",
                    h.percentile(99.9) / 1000.0);
        }
        w.key("arbitration");
        w.beginObject();
        w.field("submitted", t.arbitration.submitted);
        w.field("dispatched", t.arbitration.dispatched);
        w.field("completed", t.arbitration.completed);
        w.field("max_backlog", t.arbitration.maxBacklog);
        w.endObject();
        w.key("requests");
        metrics::writeRequestMetrics(w, t.metrics);
        w.endObject();
    }
    w.endArray();

    w.key("utilization");
    metrics::writeUtilization(w, result.utilization);

    const auto &stats = dev.ftl().stats();
    w.key("ftl");
    w.beginObject();
    w.field("host_read_pages", stats.hostReadPages);
    w.field("host_write_pages", stats.hostWritePages);
    w.field("buffer_hits", stats.bufferHits);
    w.field("nand_reads", stats.nandReads);
    w.field("host_programs", stats.hostPrograms);
    w.field("gc_programs", stats.gcPrograms);
    w.field("write_amplification", stats.writeAmplification());
    w.endObject();

    const auto &gc = dev.ftl().gcStats();
    w.key("gc");
    w.beginObject();
    w.field("collections", gc.collections);
    w.field("relocated_pages", gc.relocatedPages);
    w.field("erases", gc.erases);
    w.endObject();

    if (counters != nullptr) {
        w.key("timeseries");
        counters->writeTimeseries(w);
    }

    if (profile != nullptr) {
        w.key("profile");
        prof::writeJson(w, *profile, profileWallNs);
    }

    w.endObject();
    out << '\n';
}

/**
 * Multi-tenant mode: N tenant streams through per-tenant submission
 * queues and the WRR arbiter, closed- or open-loop, with per-tenant
 * latency percentiles and SLO accounting.
 */
int
runMultiTenant(const Options &opt, const ssd::SsdConfig &config)
{
    ssd::Ssd dev(config);

    std::cout << "device: " << dev.chipCount() << " chips x "
              << opt.blocks << " blocks ("
              << dev.logicalPages() *
                     config.chip.geometry.pageSizeBytes / kGiB
              << " GiB logical), FTL " << ssd::ftlKindName(config.ftl)
              << "\ntenants:";
    for (const auto &spec : opt.tenants) {
        std::cout << ' ' << spec.name << "("
                  << (spec.workload.name.empty() ? "trace"
                                                 : spec.workload.name)
                  << ",w=" << spec.weight << ')';
    }
    std::cout << "\npacing: "
              << (opt.openLoop ? "open loop" : "closed loop");
    if (opt.openLoop && opt.load > 0.0)
        std::cout << " @ load " << opt.load;
    std::cout << '\n';

    workload::MultiTenantOptions mtOptions;
    mtOptions.openLoop = opt.openLoop;
    mtOptions.load = opt.load;
    mtOptions.window = opt.qd > 0 ? opt.qd : 64;
    mtOptions.arbBurst = opt.arbBurst;
    workload::MultiTenantDriver driver(dev, opt.tenants, mtOptions);

    std::cout << "prefilling..." << std::flush;
    dev.setAging({opt.pe, 0.0});
    driver.prefill(opt.prefillOverwrite);
    dev.setAging({opt.pe, opt.retentionMonths});
    std::cout << " done\n";

    // As in the single-tenant path, tracing starts after the prefill
    // so it covers the measured (and calibration) window only.
    const std::uint64_t sampleIntervalUs =
        opt.sampleIntervalSet ? opt.sampleIntervalUs
                              : (opt.traceOut.empty() ? 0 : 1000);
    std::unique_ptr<trace::TraceSession> traceSession;
    if (!opt.traceOut.empty()) {
        trace::TraceConfig traceConfig;
        traceConfig.capacityEvents = opt.traceBuffer;
        traceSession = std::make_unique<trace::TraceSession>(traceConfig);
        dev.attachTrace(traceSession.get());
    }
    std::unique_ptr<trace::CounterRegistry> counterRegistry;
    if (sampleIntervalUs > 0) {
        counterRegistry = std::make_unique<trace::CounterRegistry>();
        dev.registerCounters(*counterRegistry);
        if (opt.profile)
            prof::registerCounters(*counterRegistry);
        counterRegistry->attachTrace(traceSession.get());
        counterRegistry->installSampler(dev.queue(),
                                        sampleIntervalUs * 1000);
    }

    std::cout << "running " << opt.requests << " requests..."
              << std::flush;
    const prof::ProfileData profBefore =
        opt.profile ? prof::snapshot() : prof::ProfileData{};
    const auto profT0 = std::chrono::steady_clock::now();
    const auto result = driver.run(opt.requests);
    const double profWallNs = wallNsSince(profT0);
    const prof::ProfileData profData =
        opt.profile ? prof::snapshot().since(profBefore)
                    : prof::ProfileData{};
    std::cout << " done\n\n";

    metrics::Table summary({"metric", "value"});
    summary.row({"aggregate IOPS", metrics::format(result.iops, 0)});
    summary.row({"simulated time",
                 metrics::format(toSeconds(result.elapsed), 3) + " s"});
    if (result.calibratedIops > 0.0)
        summary.row({"calibrated capacity (IOPS)",
                     metrics::format(result.calibratedIops, 0)});
    summary.row({"completed requests",
                 std::to_string(result.completed)});
    summary.print(std::cout);

    std::cout << "\nper-tenant results:\n";
    metrics::Table table({"tenant", "weight", "iops", "rd p50 (us)",
                          "rd p99 (us)", "rd p99.9 (us)", "wr p99 (us)",
                          "slo", "violations"});
    for (const auto &t : result.tenants) {
        const auto &read = t.metrics.latency(ssd::IoType::Read);
        const auto &write = t.metrics.latency(ssd::IoType::Write);
        std::string slo = "-";
        std::string violations = "-";
        if (t.sloTarget > 0) {
            slo = metrics::format(
                      static_cast<double>(t.sloTarget) / 1000.0, 0) +
                  " us";
            violations =
                std::to_string(t.sloViolations) + " (" +
                metrics::format(t.sloViolationFraction() * 100.0, 2) +
                "%)";
        }
        table.row({t.name, std::to_string(t.weight),
                   metrics::format(t.iops, 0),
                   metrics::format(read.percentile(50.0) / 1000.0, 1),
                   metrics::format(read.percentile(99.0) / 1000.0, 1),
                   metrics::format(read.percentile(99.9) / 1000.0, 1),
                   metrics::format(write.percentile(99.0) / 1000.0, 1),
                   slo, violations});
    }
    table.print(std::cout);

    std::cout << "\narbitration:\n";
    metrics::Table arb({"tenant", "submitted", "dispatched",
                        "max backlog"});
    for (const auto &t : result.tenants) {
        arb.row({t.name, std::to_string(t.arbitration.submitted),
                 std::to_string(t.arbitration.dispatched),
                 std::to_string(t.arbitration.maxBacklog)});
    }
    arb.print(std::cout);

    std::cout << '\n';
    metrics::gcStatsTable(dev.ftl().gcStats()).print(std::cout);

    if (opt.profile) {
        std::cout << '\n';
        prof::report(std::cout, profData, profWallNs);
    }

    if (!opt.metricsOut.empty()) {
        writeMultiTenantMetricsFile(opt.metricsOut, opt, dev, result,
                                    counterRegistry.get(),
                                    opt.profile ? &profData : nullptr,
                                    profWallNs);
        std::cout << "\nmetrics written to " << opt.metricsOut << '\n';
    }
    if (!opt.profileOut.empty())
        writeProfileSidecar(opt.profileOut, profData, profWallNs);

    if (traceSession) {
        std::ofstream traceFile(opt.traceOut);
        if (!traceFile)
            fatal("cannot open trace file '%s'", opt.traceOut.c_str());
        traceSession->writeJson(traceFile);
        std::cout << "\ntrace written to " << opt.traceOut << " ("
                  << traceSession->recorded() << " events recorded, "
                  << traceSession->dropped() << " dropped)\n";
    }

    dev.ftl().checkConsistency();
    return 0;
}

/**
 * --seeds N mode: N independent cells of the same configuration at
 * consecutive seeds, farmed onto --jobs worker threads, merged
 * deterministically in seed order on the main thread.
 */
int
runSeedSweep(const Options &opt, const ssd::SsdConfig &config,
             const workload::WorkloadSpec &spec)
{
    const unsigned jobs = sim::resolveJobs(opt.jobs, "CUBESSD_JOBS");

    std::vector<workload::SweepCell> cells;
    for (std::uint64_t s = 0; s < opt.seedCount; ++s) {
        workload::SweepCell cell;
        cell.config = config;
        cell.config.seed = opt.seed + s;
        cell.spec = spec;
        cell.aging = {opt.pe, opt.retentionMonths};
        cell.requests = opt.requests;
        cell.prefillOverwrite = opt.prefillOverwrite;
        cells.push_back(cell);
    }

    workload::SweepTrace trace;
    trace.out = opt.traceOut;
    trace.sampleIntervalUs =
        opt.sampleIntervalSet ? opt.sampleIntervalUs
                              : (opt.traceOut.empty() ? 0 : 1000);
    trace.cell = 0;

    std::cout << "device: " << config.totalChips() << " chips x "
              << opt.blocks << " blocks ("
              << config.logicalPages() *
                     config.chip.geometry.pageSizeBytes / kGiB
              << " GiB logical), FTL " << ssd::ftlKindName(config.ftl)
              << "\nworkload: " << spec.name << " @ " << opt.pe
              << " P/E + " << opt.retentionMonths
              << " months retention\nsweep: " << opt.seedCount
              << " seeds (" << opt.seed << ".." << opt.seed +
                     opt.seedCount - 1 << "), " << jobs << " worker"
              << (jobs == 1 ? "" : "s") << "\nrunning " << opt.seedCount
              << " x " << opt.requests << " requests..." << std::flush;

    sim::SweepTelemetry telemetry;
    const auto results =
        workload::runCells(cells, jobs, trace, &telemetry);
    std::cout << " done\n\n";

    // Deterministic merge, strictly in seed (cell) order.
    double iopsSum = 0.0;
    double iopsMin = 0.0, iopsMax = 0.0;
    std::uint64_t completed = 0, failed = 0;
    LatencyRecorder readUs, writeUs;
    metrics::RequestMetrics requests;
    ftl::FtlStats ftlStats;
    ftl::GcStats gcStats;
    bool anyReadOnly = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        iopsSum += r.run.iops;
        iopsMin = i == 0 ? r.run.iops : std::min(iopsMin, r.run.iops);
        iopsMax = i == 0 ? r.run.iops : std::max(iopsMax, r.run.iops);
        completed += r.run.completedRequests;
        failed += r.run.failedRequests();
        readUs.merge(r.run.readLatencyUs);
        writeUs.merge(r.run.writeLatencyUs);
        requests.merge(r.run.requestMetrics);
        ftlStats.merge(r.ftl);
        gcStats.merge(r.gc);
        anyReadOnly = anyReadOnly || r.readOnly;
    }
    const double iopsMean =
        iopsSum / static_cast<double>(results.size());

    metrics::Table table({"metric", "value"});
    table.row({"mean IOPS", metrics::format(iopsMean, 0)});
    table.row({"IOPS range", metrics::format(iopsMin, 0) + " - " +
                                 metrics::format(iopsMax, 0)});
    table.row({"completed requests", std::to_string(completed)});
    if (failed > 0 || opt.faults.enabled)
        table.row({"failed requests", std::to_string(failed)});
    for (const double p : {50.0, 90.0, 99.0}) {
        table.row({"write p" + metrics::format(p, 0) + " (ms)",
                   metrics::format(writeUs.percentile(p) / 1000.0, 3)});
        table.row({"read p" + metrics::format(p, 0) + " (ms)",
                   metrics::format(readUs.percentile(p) / 1000.0, 3)});
    }
    table.row({"write amplification",
               metrics::format(ftlStats.writeAmplification(), 2)});
    table.row({"avg program latency (us)",
               metrics::format(ftlStats.avgProgramLatencyUs(), 1)});
    table.row({"leader / follower programs",
               std::to_string(ftlStats.leaderPrograms) + " / " +
                   std::to_string(ftlStats.followerPrograms)});
    table.row({"read retries", std::to_string(ftlStats.readRetries)});
    if (opt.faults.enabled)
        table.row({"any seed read-only", anyReadOnly ? "yes" : "no"});
    table.print(std::cout);

    std::cout << '\n';
    metrics::gcStatsTable(gcStats).print(std::cout);

    if (opt.profile) {
        // "% wall" is computed against the workers' aggregate CPU
        // seconds, not the run's wall clock: with --jobs N the slots
        // accumulate across N threads at once, and only the aggregate
        // makes the coverage fraction meaningful.
        const prof::ProfileData profData =
            workload::mergeCellProfiles(results);
        double busySumNs = 0.0;
        for (const auto &w : telemetry.workers)
            busySumNs += w.busyS * 1e9;
        std::cout << '\n';
        prof::report(std::cout, profData, busySumNs);
        if (!opt.profileOut.empty())
            writeProfileSidecar(opt.profileOut, profData, busySumNs);
        // Worker telemetry goes to stderr: the sweep's stdout and its
        // --metrics-out file are part of the --jobs bit-identity
        // contract, and wall times are machine noise.
        reportWorkerTelemetry(telemetry);
    }

    if (!opt.metricsOut.empty()) {
        writeSweepMetricsFile(opt.metricsOut, opt, cells, results,
                              requests, ftlStats, gcStats);
        std::cout << "\nmetrics written to " << opt.metricsOut << '\n';
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    if (opt.profile) {
        if (!prof::compiledIn()) {
            std::cerr << "cubessd_sim: warning: this binary was built "
                         "with CUBESSD_PROFILING=OFF; --profile will "
                         "report no slots\n";
        }
        // Enabled before any Ssd or worker thread exists, so every
        // thread observes the flag at creation.
        prof::setEnabled(true);
    }

    ssd::SsdConfig config;
    config.chip.geometry.blocksPerChip = opt.blocks;
    config.chip.faults = opt.faults;
    config.ftl = parseFtl(opt.ftl);
    config.seed = opt.seed;
    // In multi-tenant mode the WRR arbiter owns the in-flight window
    // (--qd sizes it); the host queue underneath stays unbounded.
    config.hostQueueDepth = opt.tenants.empty() ? opt.qd : 0;
    if (const std::string err = config.validate(); !err.empty()) {
        std::cerr << "cubessd_sim: invalid configuration: " << err
                  << '\n';
        return 2;
    }

    if (!opt.tenants.empty() && !opt.listCounters) {
        if (const std::string err =
                workload::validateTenants(opt.tenants);
            !err.empty()) {
            std::cerr << "cubessd_sim: invalid tenants: " << err
                      << '\n';
            return 2;
        }
        if (opt.seedCount > 1) {
            std::cerr << "cubessd_sim: --seeds is not supported in "
                         "multi-tenant mode\n";
            return 2;
        }
        if (opt.openLoop && opt.load <= 0.0) {
            for (const auto &spec : opt.tenants) {
                if (spec.rate == 0.0) {
                    std::cerr << "cubessd_sim: --open-loop needs "
                                 "--load or an explicit rate= for "
                                 "every tenant (tenant '"
                              << spec.name << "' has neither)\n";
                    return 2;
                }
            }
        }
        if (!opt.openLoop && opt.load > 0.0) {
            std::cerr << "cubessd_sim: --load requires --open-loop\n";
            return 2;
        }
        return runMultiTenant(opt, config);
    }

    if (opt.seedCount > 1 && !opt.listCounters) {
        auto spec = parseWorkload(opt.workload);
        if (opt.qd > 0) {
            spec.burstLength = 0;
            spec.queueDepth = opt.qd;
        }
        try {
            return runSeedSweep(opt, config, spec);
        } catch (const std::exception &e) {
            // A failing cell surfaces here (annotated with its
            // configuration) after the other cells finish; nothing
            // has been written to --metrics-out at this point.
            std::cerr << "cubessd_sim: " << e.what() << '\n';
            return 1;
        }
    }

    ssd::Ssd dev(config);

    if (opt.listCounters) {
        trace::CounterRegistry registry;
        dev.registerCounters(registry);
        metrics::Table counters({"counter", "unit"});
        for (std::size_t i = 0; i < registry.size(); ++i)
            counters.row({registry.name(i), registry.unit(i)});
        counters.print(std::cout);
        return 0;
    }

    auto spec = parseWorkload(opt.workload);
    if (opt.qd > 0) {
        // Closed-loop QD sweep: a steady stream of `qd` in-flight
        // requests through the bounded host queue, replacing the
        // workload's native burst pacing.
        spec.burstLength = 0;
        spec.queueDepth = opt.qd;
    }
    std::cout << "device: " << dev.chipCount() << " chips x "
              << opt.blocks << " blocks ("
              << dev.logicalPages() *
                     config.chip.geometry.pageSizeBytes / kGiB
              << " GiB logical), FTL " << ssd::ftlKindName(config.ftl)
              << "\nworkload: " << spec.name << " @ " << opt.pe
              << " P/E + " << opt.retentionMonths
              << " months retention\n";

    workload::WorkloadGenerator gen(spec, dev.logicalPages(),
                                    opt.seed + 7);
    workload::Driver driver(dev, gen);

    std::cout << "prefilling..." << std::flush;
    dev.setAging({opt.pe, 0.0});
    driver.prefill(opt.prefillOverwrite);
    dev.setAging({opt.pe, opt.retentionMonths});

    // Tracing starts after the prefill so the ring buffer and the
    // counter series cover the measured run, not the bulk setup
    // writes. Counter sampling defaults on (1 ms cadence) whenever a
    // trace is requested; an explicit --sample-interval-us always
    // wins.
    const std::uint64_t sampleIntervalUs =
        opt.sampleIntervalSet ? opt.sampleIntervalUs
                              : (opt.traceOut.empty() ? 0 : 1000);
    std::unique_ptr<trace::TraceSession> traceSession;
    if (!opt.traceOut.empty()) {
        trace::TraceConfig traceConfig;
        traceConfig.capacityEvents = opt.traceBuffer;
        traceSession = std::make_unique<trace::TraceSession>(traceConfig);
        dev.attachTrace(traceSession.get());
    }
    std::unique_ptr<trace::CounterRegistry> counterRegistry;
    if (sampleIntervalUs > 0) {
        counterRegistry = std::make_unique<trace::CounterRegistry>();
        dev.registerCounters(*counterRegistry);
        if (opt.profile)
            prof::registerCounters(*counterRegistry);
        counterRegistry->attachTrace(traceSession.get());
        counterRegistry->installSampler(dev.queue(),
                                        sampleIntervalUs * 1000);
    }

    std::cout << " done\nrunning " << opt.requests << " requests..."
              << std::flush;
    // Snapshot-delta around the measured run only: the prefill's cost
    // is setup, not what --profile attributes.
    const prof::ProfileData profBefore =
        opt.profile ? prof::snapshot() : prof::ProfileData{};
    const auto profT0 = std::chrono::steady_clock::now();
    const auto result = driver.run(opt.requests);
    const double profWallNs = wallNsSince(profT0);
    const prof::ProfileData profData =
        opt.profile ? prof::snapshot().since(profBefore)
                    : prof::ProfileData{};
    std::cout << " done\n\n";

    metrics::Table table({"metric", "value"});
    table.row({"IOPS", metrics::format(result.iops, 0)});
    table.row({"simulated time",
               metrics::format(toSeconds(result.elapsed), 3) + " s"});
    for (const double p : {50.0, 90.0, 99.0}) {
        table.row({"write p" + metrics::format(p, 0) + " (ms)",
                   metrics::format(
                       result.writeLatencyUs.percentile(p) / 1000.0,
                       3)});
        table.row({"read p" + metrics::format(p, 0) + " (ms)",
                   metrics::format(
                       result.readLatencyUs.percentile(p) / 1000.0,
                       3)});
    }
    const auto &stats = dev.ftl().stats();
    table.row({"write amplification",
               metrics::format(stats.writeAmplification(), 2)});
    table.row({"avg program latency (us)",
               metrics::format(stats.avgProgramLatencyUs(), 1)});
    table.row({"leader / follower programs",
               std::to_string(stats.leaderPrograms) + " / " +
                   std::to_string(stats.followerPrograms)});
    table.row({"read retries", std::to_string(stats.readRetries)});
    table.row({"safety re-programs",
               std::to_string(stats.safetyReprograms)});
    if (opt.faults.enabled) {
        table.row({"failed requests",
                   std::to_string(result.failedRequests())});
        table.row({"retired blocks",
                   std::to_string(stats.retiredBlocks)});
        table.row({"bad-block relocations",
                   std::to_string(stats.badBlockRelocations)});
        table.row({"flush replays", std::to_string(stats.flushReplays)});
        table.row({"uncorrectable reads",
                   std::to_string(stats.uncorrectableReads)});
        table.row({"read-only mode",
                   dev.ftl().readOnly() ? "yes" : "no"});
    }
    if (opt.qd > 0) {
        const double meanLatencyUs =
            (result.readLatencyUs.mean() * result.readLatencyUs.count() +
             result.writeLatencyUs.mean() *
                 result.writeLatencyUs.count()) /
            static_cast<double>(result.readLatencyUs.count() +
                                result.writeLatencyUs.count());
        table.row({"host queue depth", std::to_string(opt.qd)});
        table.row({"mean latency (ms)",
                   metrics::format(meanLatencyUs / 1000.0, 3)});
        table.row({"mean queue wait (ms)",
                   metrics::format(result.queueWaitUs.mean() / 1000.0,
                                   3)});
    }
    table.print(std::cout);

    std::cout << '\n';
    metrics::gcStatsTable(dev.ftl().gcStats()).print(std::cout);

    if (config.ftl == ssd::FtlKind::Cube ||
        config.ftl == ssd::FtlKind::CubeMinus) {
        const auto &cube = static_cast<ftl::CubeFtl &>(dev.ftl());
        std::cout << "\ncubeFTL: " << cube.cubeStats().followerWithParams
                  << " followers with leader params, "
                  << cube.cubeStats().ortGuidedReads
                  << " ORT-guided reads, ORT size " << cube.ort().bytes()
                  << " B\n";
        if (cube.ort().hits() + cube.ort().misses() > 0) {
            std::cout << "\nORT hits by h-layer:\n";
            metrics::ortLayerTable(cube.ort()).print(std::cout);
        }
        std::uint64_t vfyDone = 0;
        std::uint64_t vfySkipped = 0;
        std::uint64_t vfySavedNs = 0;
        for (std::uint32_t i = 0; i < dev.chipCount(); ++i) {
            vfyDone += dev.chip(i).stats().verifiesDone;
            vfySkipped += dev.chip(i).stats().verifiesSkipped;
            vfySavedNs += dev.chip(i).vfyTimeSaved();
        }
        std::cout << "\nVFY-skip savings:\n";
        metrics::vfySavingsTable(vfyDone, vfySkipped, vfySavedNs)
            .print(std::cout);
    }

    if (opt.verbose) {
        std::cout << "\nper-chip statistics:\n";
        metrics::Table chips({"chip", "programs", "reads", "erases",
                              "retries"});
        for (std::uint32_t i = 0; i < dev.chipCount(); ++i) {
            const auto &cs = dev.chip(i).stats();
            chips.row({std::to_string(i),
                       std::to_string(cs.wlPrograms),
                       std::to_string(cs.pageReads),
                       std::to_string(cs.erases),
                       std::to_string(cs.readRetries)});
        }
        chips.print(std::cout);
    }

    if (opt.profile) {
        std::cout << '\n';
        prof::report(std::cout, profData, profWallNs);
    }

    if (!opt.metricsOut.empty()) {
        writeMetricsFile(opt.metricsOut, opt, dev, result,
                         counterRegistry.get(),
                         opt.profile ? &profData : nullptr, profWallNs);
        std::cout << "\nmetrics written to " << opt.metricsOut << '\n';
    }
    if (!opt.profileOut.empty())
        writeProfileSidecar(opt.profileOut, profData, profWallNs);

    if (traceSession) {
        std::ofstream traceFile(opt.traceOut);
        if (!traceFile)
            fatal("cannot open trace file '%s'", opt.traceOut.c_str());
        traceSession->writeJson(traceFile);
        std::cout << "\ntrace written to " << opt.traceOut << " ("
                  << traceSession->recorded() << " events recorded, "
                  << traceSession->dropped() << " dropped)\n";
    }

    dev.ftl().checkConsistency();
    return 0;
}
