#!/usr/bin/env python3
"""Validate or diff self-profiles produced by the prof:: subsystem.

A "profile" is the JSON object written by prof::writeJson: either the
`profile` key of a --metrics-out / BENCH_perf.json document, a
standalone {"profile": {...}} sidecar from --profile-out, or the bare
object itself. The slot schema is:

    {"ns_per_tick": ..., "wall_ns": ..., "coverage": ...,
     "slots": [{"name", "count", "total_ns", "self_ns",
                "ns_per_call", "self_ns_per_call"}, ...]}

Two modes:

    profile_report.py --check FILE
        Validate that FILE carries a well-formed profile: the section
        exists, the slots are non-empty and internally consistent
        (self <= total, counts positive), the load-bearing attribution
        slots (scheduler dispatch, BER eval, ISPP loop, FTL mapping)
        are present, and — when the profile records a wall time — the
        self-time coverage reaches the attribution floor (80%).
        Exit 0 on pass, 1 with a reason on stderr otherwise.

    profile_report.py A B
        Per-slot cost diff of two profiles (e.g. before/after an
        optimization): count, self ns/call, and self-time share side
        by side with the delta. Slots present in only one file are
        reported, not errors. Exit 0 always (a diff is a report, not
        a gate).

Counts are deterministic for a fixed simulation configuration; the ns
columns are host wall-clock and only comparable between runs on the
same machine.
"""

import argparse
import json
import sys

# Slots a real simulation profile must attribute separately (the
# acceptance floor of the self-profiling layer). Names match
# prof.cc's kSlotNames.
REQUIRED_SLOTS = (
    "sched.chip_op",
    "nand.read.ber_eval",
    "nand.read.decode",
    "nand.program.ispp",
    "ftl.mapping",
)

COVERAGE_FLOOR = 0.80


def load_profile(path):
    """Return the profile object inside `path`, whatever the wrapper."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"profile_report: cannot read {path}: {e}")
    if isinstance(doc, dict) and "profile" in doc:
        doc = doc["profile"]
    if not isinstance(doc, dict) or "slots" not in doc:
        sys.exit(
            f"profile_report: {path} carries no profile section "
            "(expected a 'profile' key or a bare prof::writeJson "
            "object with 'slots')"
        )
    return doc


def check(path):
    prof = load_profile(path)
    slots = prof.get("slots")
    if not isinstance(slots, list) or not slots:
        print(
            f"profile_report: {path}: profile has no slots — was the "
            "run made with --profile on a CUBESSD_PROFILING build?",
            file=sys.stderr,
        )
        return 1

    names = set()
    for slot in slots:
        name = slot.get("name", "<unnamed>")
        names.add(name)
        count = slot.get("count", 0)
        total = slot.get("total_ns", 0.0)
        self_ns = slot.get("self_ns", 0.0)
        if count <= 0:
            print(
                f"profile_report: {path}: slot '{name}' has "
                f"non-positive count {count}",
                file=sys.stderr,
            )
            return 1
        if self_ns > total * (1.0 + 1e-9):
            print(
                f"profile_report: {path}: slot '{name}' self time "
                f"{self_ns:.0f} ns exceeds total {total:.0f} ns",
                file=sys.stderr,
            )
            return 1

    missing = [s for s in REQUIRED_SLOTS if s not in names]
    if missing:
        print(
            f"profile_report: {path}: required attribution slots "
            f"missing: {', '.join(missing)} (present: "
            f"{', '.join(sorted(names))})",
            file=sys.stderr,
        )
        return 1

    wall_ns = float(prof.get("wall_ns", 0.0))
    coverage = float(prof.get("coverage", 0.0))
    if wall_ns > 0 and coverage < COVERAGE_FLOOR:
        print(
            f"profile_report: {path}: self-time coverage "
            f"{coverage:.1%} below the {COVERAGE_FLOOR:.0%} "
            "attribution floor — the scope sites no longer cover the "
            "hot path",
            file=sys.stderr,
        )
        return 1

    cov = f", coverage {coverage:.1%}" if wall_ns > 0 else ""
    print(
        f"profile_report: {path}: OK — {len(slots)} slots, "
        f"{sum(s['count'] for s in slots):,} scope hits{cov}"
    )
    return 0


def by_name(prof):
    return {s["name"]: s for s in prof.get("slots", [])}


def self_share(slot, total_self):
    return slot["self_ns"] / total_self if total_self > 0 else 0.0


def diff(path_a, path_b):
    a = by_name(load_profile(path_a))
    b = by_name(load_profile(path_b))
    total_a = sum(s["self_ns"] for s in a.values())
    total_b = sum(s["self_ns"] for s in b.values())

    rows = []
    for name in sorted(set(a) | set(b)):
        sa, sb = a.get(name), b.get(name)
        if sa is not None and sb is not None:
            delta = (
                (sb["self_ns_per_call"] / sa["self_ns_per_call"] - 1.0)
                if sa["self_ns_per_call"] > 0
                else float("inf")
            )
            rows.append(
                (
                    name,
                    f"{sa['count']:,}",
                    f"{sb['count']:,}",
                    f"{sa['self_ns_per_call']:.1f}",
                    f"{sb['self_ns_per_call']:.1f}",
                    f"{delta:+.1%}",
                    f"{self_share(sa, total_a):.1%}",
                    f"{self_share(sb, total_b):.1%}",
                )
            )
        elif sa is not None:
            rows.append(
                (
                    name,
                    f"{sa['count']:,}",
                    "-",
                    f"{sa['self_ns_per_call']:.1f}",
                    "-",
                    "only in A",
                    f"{self_share(sa, total_a):.1%}",
                    "-",
                )
            )
        else:
            rows.append(
                (
                    name,
                    "-",
                    f"{sb['count']:,}",
                    "-",
                    f"{sb['self_ns_per_call']:.1f}",
                    "only in B",
                    "-",
                    f"{self_share(sb, total_b):.1%}",
                )
            )

    header = (
        "slot",
        "count A",
        "count B",
        "self ns/call A",
        "self ns/call B",
        "delta",
        "share A",
        "share B",
    )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"profile diff: A={path_a}  B={path_b}")
    print("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    print("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    for r in rows:
        print("  " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(r)))
    if total_a > 0 and total_b > 0:
        print(
            f"  total self time: {total_a / 1e6:.2f} ms -> "
            f"{total_b / 1e6:.2f} ms ({total_b / total_a - 1.0:+.1%})"
        )
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="one file with --check, two files to diff (A B)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate a single profile instead of diffing two",
    )
    args = parser.parse_args()

    if args.check:
        if len(args.files) != 1:
            parser.error("--check takes exactly one file")
        return check(args.files[0])
    if len(args.files) != 2:
        parser.error("diff mode takes exactly two files (A B)")
    return diff(args.files[0], args.files[1])


if __name__ == "__main__":
    sys.exit(main())
