#!/usr/bin/env python3
"""Structural validator for cubessd Chrome trace files.

Checks what `python3 -m json.tool` cannot: that the document has the
Chrome trace-event shape Perfetto expects and that span events obey
the format's pairing rules.

  - top level is an object with a `traceEvents` list,
  - every event has a `ph` phase and numeric `ts` (metadata excepted),
  - "B"/"E" events follow stack discipline per (pid, tid),
  - "b"/"e" async events balance per (cat, id),
  - "C" counter events carry a numeric args.value,
  - "X" complete events carry a non-negative `dur`.

A ring-buffer overflow legitimately drops the oldest events, which can
orphan "E"/"e" closers; unbalanced spans are therefore tolerated (with
a warning) when otherData.dropped_events > 0, and fatal otherwise.

Exit status 0 = valid, 1 = structural violation, 2 = unreadable input.
"""

import json
import sys
from collections import Counter, defaultdict


def fail(msg):
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <trace.json>", file=sys.stderr)
        sys.exit(2)

    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_check: cannot read trace: {e}", file=sys.stderr)
        sys.exit(2)

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    dropped = doc.get("otherData", {}).get("dropped_events", 0)

    phases = Counter()
    span_stacks = defaultdict(list)  # (pid, tid) -> [name, ...]
    async_open = Counter()           # (cat, id) -> open count
    orphans = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"event {i} has no ph")
        ph = ev["ph"]
        phases[ph] += 1
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            fail(f"event {i} ({ph}) has no numeric ts")

        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            span_stacks[key].append(ev.get("name"))
        elif ph == "E":
            if span_stacks[key]:
                span_stacks[key].pop()
            else:
                orphans += 1
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} (X) has bad dur: {dur!r}")
        elif ph == "b":
            async_open[(ev.get("cat"), ev.get("id"))] += 1
        elif ph == "e":
            k = (ev.get("cat"), ev.get("id"))
            if async_open[k] > 0:
                async_open[k] -= 1
            else:
                orphans += 1
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"event {i} (C) has non-numeric value: {value!r}")
        elif ph == "i":
            pass
        else:
            fail(f"event {i} has unknown ph {ph!r}")

    unclosed = sum(len(s) for s in span_stacks.values())
    unclosed += sum(async_open.values())
    if orphans or unclosed:
        msg = (f"{orphans} orphaned closers, "
               f"{unclosed} never-closed spans")
        if dropped > 0:
            print(f"trace_check: warning: {msg} "
                  f"(tolerated: ring dropped {dropped} events)")
        else:
            fail(f"{msg} with no dropped events")

    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(phases.items()))
    print(f"trace_check: OK: {len(events)} events ({summary}), "
          f"{dropped} dropped")


if __name__ == "__main__":
    main()
