#!/usr/bin/env python3
"""Gate a perf_events run against the tracked baseline.

Compares the events/s of each measured path in a BENCH_perf.json
produced by build/bench/perf_events against bench/perf_baseline.json
and fails (exit 1) when any path regresses by more than the tolerance.

Faster-than-baseline results never fail; they print a hint to re-pin
the baseline when the improvement is large enough to look intentional.

Usage:
    python3 tools/perf_gate.py BENCH_perf.json [--baseline FILE]
                               [--tolerance 0.20]
"""

import argparse
import json
import sys

PATHS = ("micro", "workload")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_gate: cannot read {path}: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="BENCH_perf.json from perf_events")
    parser.add_argument(
        "--baseline",
        default="bench/perf_baseline.json",
        help="tracked baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression (default: %(default)s)",
    )
    args = parser.parse_args()

    result = load(args.result)
    baseline = load(args.baseline)

    failed = False
    for path in PATHS:
        try:
            got = float(result[path]["events_per_s"])
            want = float(baseline[path]["events_per_s"])
        except (KeyError, TypeError, ValueError):
            sys.exit(f"perf_gate: missing {path}.events_per_s in input")
        floor = want * (1.0 - args.tolerance)
        ratio = got / want if want > 0 else float("inf")
        verdict = "OK"
        if got < floor:
            verdict = "REGRESSION"
            failed = True
        elif ratio > 1.0 + args.tolerance:
            verdict = "OK (faster than baseline -- consider re-pinning)"
        print(
            f"perf_gate: {path:9s} {got:14,.0f} events/s"
            f"  baseline {want:14,.0f}  ({ratio:6.2%})  {verdict}"
        )

    if failed:
        print(
            f"perf_gate: FAIL -- events/s fell more than "
            f"{args.tolerance:.0%} below bench/perf_baseline.json. "
            "If the slowdown is intentional, re-pin the baseline "
            "(median of >=5 runs) in the same change.",
            file=sys.stderr,
        )
        return 1
    print("perf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
