#!/usr/bin/env python3
"""Gate a perf_events run against the tracked baseline.

Compares each measured path of a BENCH_perf.json produced by
build/bench/perf_events against bench/perf_baseline.json and fails
(exit 1) when any path's events/s regresses by more than the
tolerance. The report shows per-section deltas — events/s AND
ns/event for the micro and workload paths — not just an aggregate
pass/fail, and when BOTH files carry a per-subsystem "profile"
section (a --profile run gated against a --profile baseline) it also
prints the self-ns/call delta of every slot, so a regression names
the subsystem that caused it.

A gated section missing from either file is a hard error naming the
file and section. The profile section is optional: present in only
one file prints a note and skips the per-slot comparison — but never
gate a --profile run against a no-profile baseline's events/s, the
scope overhead would read as a regression. When BOTH sides carry
profiles, one slot comparison IS gated: the combined
nand.read.ber_eval + nand.program.ispp self-ns/call must not regress
by more than 20% (the term-cache memoization keeps the model hot path
nearly flat; see MODEL_EVAL_SLOTS).

Faster-than-baseline results never fail; they print a hint to re-pin
the baseline when the improvement is large enough to look intentional.

Usage:
    python3 tools/perf_gate.py BENCH_perf.json [--baseline FILE]
                               [--tolerance 0.20]
"""

import argparse
import json
import sys

PATHS = ("micro", "workload")

# Model-evaluation slots whose combined self-ns/call is gated when both
# sides carry profiles: the term-cache memoization keeps these nearly
# flat, so a large regression means the cache stopped hitting (or a
# hot-path change re-introduced per-call transcendental work).
MODEL_EVAL_SLOTS = ("nand.read.ber_eval", "nand.program.ispp")
MODEL_EVAL_TOLERANCE = 0.20


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_gate: cannot read {path}: {e}")


def section(doc, path_name, key):
    """A gated section, or a hard error naming file and section."""
    if key not in doc:
        sys.exit(
            f"perf_gate: section '{key}' is missing from {path_name} "
            f"(has: {', '.join(sorted(doc))}) — was the file produced "
            "by build/bench/perf_events?"
        )
    return doc[key]


def gate_paths(result, baseline, args):
    """Per-path events/s gate + ns/event delta report."""
    failed = False
    for path in PATHS:
        got_sec = section(result, args.result, path)
        want_sec = section(baseline, args.baseline, path)
        try:
            got = float(got_sec["events_per_s"])
            want = float(want_sec["events_per_s"])
        except (KeyError, TypeError, ValueError):
            sys.exit(
                f"perf_gate: '{path}.events_per_s' is missing or "
                f"non-numeric in {args.result} or {args.baseline}"
            )
        floor = want * (1.0 - args.tolerance)
        ratio = got / want if want > 0 else float("inf")
        verdict = "OK"
        if got < floor:
            verdict = "REGRESSION"
            failed = True
        elif ratio > 1.0 + args.tolerance:
            verdict = "OK (faster than baseline -- consider re-pinning)"
        print(
            f"perf_gate: {path:9s} {got:14,.0f} events/s"
            f"  baseline {want:14,.0f}  ({ratio:6.2%})  {verdict}"
        )
        # ns/event is the same measurement inverted, but it is the
        # unit the per-subsystem breakdown uses — print the delta so
        # the two reports line up. The baseline may predate ns_per_event.
        got_ns = got_sec.get("ns_per_event")
        want_ns = want_sec.get("ns_per_event")
        if got_ns is not None and want_ns is not None and want_ns > 0:
            print(
                f"perf_gate: {path:9s} {got_ns:14,.1f} ns/event "
                f"  baseline {want_ns:14,.1f}  "
                f"({got_ns / want_ns - 1.0:+7.2%})"
            )
    return failed


def profile_slots(doc):
    prof = doc.get("profile")
    if not isinstance(prof, dict) or "slots" not in prof:
        return None
    return {s["name"]: s for s in prof["slots"]}


def report_profile_delta(result, baseline, result_path, baseline_path):
    """Informational per-subsystem self-ns/call deltas."""
    got = profile_slots(result)
    want = profile_slots(baseline)
    if got is None and want is None:
        return
    if got is None or want is None:
        which = result_path if got is None else baseline_path
        print(
            f"perf_gate: note: no 'profile' section in {which} — "
            "skipping the per-subsystem breakdown (run "
            "perf_events --profile on both sides to compare slots)"
        )
        return
    print("perf_gate: per-subsystem self ns/call (result vs baseline):")
    for name in sorted(set(got) | set(want)):
        g, w = got.get(name), want.get(name)
        if g is None or w is None:
            only = "baseline" if g is None else "result"
            slot = w if g is None else g
            print(
                f"perf_gate:   {name:24s} "
                f"{slot.get('self_ns_per_call', 0.0):10,.1f}"
                f"  (only in {only})"
            )
            continue
        gv = float(g.get("self_ns_per_call", 0.0))
        wv = float(w.get("self_ns_per_call", 0.0))
        delta = f"{gv / wv - 1.0:+7.2%}" if wv > 0 else "    n/a"
        print(
            f"perf_gate:   {name:24s} {gv:10,.1f}  baseline "
            f"{wv:10,.1f}  ({delta})"
        )


def gate_model_eval(result, baseline):
    """Hard gate: combined ber_eval+ispp self-ns/call regression.

    Only applies when BOTH files carry a profile section with every
    gated slot; otherwise prints a note and passes (a no-profile run
    cannot regress what it does not measure).
    """
    got = profile_slots(result)
    want = profile_slots(baseline)
    if got is None or want is None:
        return False
    missing = [
        s for s in MODEL_EVAL_SLOTS if s not in got or s not in want
    ]
    if missing:
        print(
            "perf_gate: note: model-eval slots missing on one side "
            f"({', '.join(missing)}) — skipping the ber_eval+ispp gate"
        )
        return False
    gv = sum(float(got[s].get("self_ns_per_call", 0.0)) for s in MODEL_EVAL_SLOTS)
    wv = sum(float(want[s].get("self_ns_per_call", 0.0)) for s in MODEL_EVAL_SLOTS)
    if wv <= 0:
        return False
    ratio = gv / wv
    verdict = "OK"
    failed = False
    if ratio > 1.0 + MODEL_EVAL_TOLERANCE:
        verdict = "REGRESSION"
        failed = True
    print(
        f"perf_gate: model-eval (ber_eval+ispp) {gv:10,.1f} "
        f"self ns/call  baseline {wv:10,.1f}  ({ratio - 1.0:+7.2%})  "
        f"{verdict}"
    )
    if failed:
        print(
            "perf_gate: FAIL -- the combined nand.read.ber_eval + "
            "nand.program.ispp self-ns/call regressed more than "
            f"{MODEL_EVAL_TOLERANCE:.0%}: the term-cache memoization "
            "is no longer covering the model hot path.",
            file=sys.stderr,
        )
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="BENCH_perf.json from perf_events")
    parser.add_argument(
        "--baseline",
        default="bench/perf_baseline.json",
        help="tracked baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression (default: %(default)s)",
    )
    args = parser.parse_args()

    result = load(args.result)
    baseline = load(args.baseline)

    failed = gate_paths(result, baseline, args)
    report_profile_delta(result, baseline, args.result, args.baseline)
    failed = gate_model_eval(result, baseline) or failed

    if failed:
        print(
            f"perf_gate: FAIL -- events/s fell more than "
            f"{args.tolerance:.0%} below bench/perf_baseline.json. "
            "If the slowdown is intentional, re-pin the baseline "
            "(median of >=5 runs) in the same change.",
            file=sys.stderr,
        )
        return 1
    print("perf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
