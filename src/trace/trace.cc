#include "src/trace/trace.h"

#include <ostream>

#include "src/common/logging.h"
#include "src/metrics/json.h"

namespace cubessd::trace {

TraceSession::TraceSession(const TraceConfig &config)
{
    if (config.capacityEvents == 0)
        fatal("TraceSession: capacity must be positive");
    ring_.resize(config.capacityEvents);
}

std::uint32_t
TraceSession::addTrack(std::string name)
{
    trackNames_.push_back(std::move(name));
    return static_cast<std::uint32_t>(trackNames_.size() - 1);
}

void
TraceSession::fillArgs(Event &e, std::initializer_list<TraceArg> args)
{
    for (const auto &a : args) {
        if (e.argCount >= kMaxArgs)
            break;
        e.args[e.argCount++] = a;
    }
}

void
TraceSession::push(const Event &e)
{
    ++recorded_;
    if (size_ == ring_.size()) {
        // Full: overwrite the oldest event (tail-biased, like a flight
        // recorder — the most recent window survives).
        ring_[head_] = e;
        head_ = (head_ + 1) % ring_.size();
        ++dropped_;
        return;
    }
    ring_[(head_ + size_) % ring_.size()] = e;
    ++size_;
}

const TraceSession::Event &
TraceSession::event(std::size_t i) const
{
    if (i >= size_)
        fatal("TraceSession: event index %zu out of range (%zu held)",
              i, size_);
    return ring_[(head_ + i) % ring_.size()];
}

void
TraceSession::begin(std::uint32_t track, const char *name, SimTime ts,
                    std::initializer_list<TraceArg> args)
{
    Event e;
    e.kind = EventKind::Begin;
    e.track = track;
    e.name = name;
    e.ts = ts;
    fillArgs(e, args);
    push(e);
}

void
TraceSession::end(std::uint32_t track, SimTime ts)
{
    Event e;
    e.kind = EventKind::End;
    e.track = track;
    e.ts = ts;
    push(e);
}

void
TraceSession::complete(std::uint32_t track, const char *name, SimTime ts,
                       SimTime dur, std::initializer_list<TraceArg> args)
{
    Event e;
    e.kind = EventKind::Complete;
    e.track = track;
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    fillArgs(e, args);
    push(e);
}

void
TraceSession::instant(std::uint32_t track, const char *name, SimTime ts,
                      std::initializer_list<TraceArg> args)
{
    Event e;
    e.kind = EventKind::Instant;
    e.track = track;
    e.name = name;
    e.ts = ts;
    fillArgs(e, args);
    push(e);
}

void
TraceSession::asyncBegin(const char *cat, const char *name,
                         std::uint64_t id, SimTime ts,
                         std::initializer_list<TraceArg> args)
{
    Event e;
    e.kind = EventKind::AsyncBegin;
    e.cat = cat;
    e.name = name;
    e.id = id;
    e.ts = ts;
    fillArgs(e, args);
    push(e);
}

void
TraceSession::asyncEnd(const char *cat, const char *name,
                       std::uint64_t id, SimTime ts)
{
    Event e;
    e.kind = EventKind::AsyncEnd;
    e.cat = cat;
    e.name = name;
    e.id = id;
    e.ts = ts;
    push(e);
}

void
TraceSession::counter(const char *name, SimTime ts, double value)
{
    Event e;
    e.kind = EventKind::Counter;
    e.name = name;
    e.ts = ts;
    e.number = value;
    push(e);
}

namespace {

/** SimTime (ns) -> trace-event microseconds. */
double
toTraceUs(SimTime ns)
{
    return static_cast<double>(ns) / 1000.0;
}

/** Digits needed so every distinct nanosecond survives the round trip
 *  through a decimal "ts" (sim times fit ~16 significant digits). */
constexpr int kTsDigits = 16;

void
writeArgs(metrics::JsonWriter &w, const TraceSession::Event &e)
{
    w.key("args");
    w.beginObject();
    for (std::uint8_t i = 0; i < e.argCount; ++i)
        w.field(e.args[i].key, e.args[i].value);
    w.endObject();
}

}  // namespace

void
TraceSession::writeJson(std::ostream &out) const
{
    metrics::JsonWriter w(out);
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("otherData");
    w.beginObject();
    w.field("tool", "cubessd");
    w.field("recorded_events", recorded_);
    w.field("dropped_events", dropped_);
    w.endObject();

    w.key("traceEvents");
    w.beginArray();

    // Metadata: one process, one named thread row per track.
    w.beginObject();
    w.field("ph", "M");
    w.field("pid", std::uint64_t{0});
    w.field("tid", std::uint64_t{0});
    w.field("name", "process_name");
    w.key("args");
    w.beginObject();
    w.field("name", "cubessd");
    w.endObject();
    w.endObject();
    for (std::uint32_t t = 0; t < trackNames_.size(); ++t) {
        w.beginObject();
        w.field("ph", "M");
        w.field("pid", std::uint64_t{0});
        w.field("tid", static_cast<std::uint64_t>(t));
        w.field("name", "thread_name");
        w.key("args");
        w.beginObject();
        w.field("name", trackNames_[t]);
        w.endObject();
        w.endObject();
        w.beginObject();
        w.field("ph", "M");
        w.field("pid", std::uint64_t{0});
        w.field("tid", static_cast<std::uint64_t>(t));
        w.field("name", "thread_sort_index");
        w.key("args");
        w.beginObject();
        w.field("sort_index", static_cast<std::uint64_t>(t));
        w.endObject();
        w.endObject();
    }

    for (std::size_t i = 0; i < size_; ++i) {
        const Event &e = event(i);
        w.beginObject();
        switch (e.kind) {
          case EventKind::Begin:
            w.field("ph", "B");
            break;
          case EventKind::End:
            w.field("ph", "E");
            break;
          case EventKind::Complete:
            w.field("ph", "X");
            break;
          case EventKind::Instant:
            w.field("ph", "i");
            w.field("s", "t");  // thread-scoped tick mark
            break;
          case EventKind::AsyncBegin:
            w.field("ph", "b");
            break;
          case EventKind::AsyncEnd:
            w.field("ph", "e");
            break;
          case EventKind::Counter:
            w.field("ph", "C");
            break;
        }
        w.field("pid", std::uint64_t{0});
        w.field("tid", static_cast<std::uint64_t>(e.track));
        w.key("ts");
        w.value(toTraceUs(e.ts), kTsDigits);
        if (e.kind == EventKind::Complete) {
            w.key("dur");
            w.value(toTraceUs(e.dur), kTsDigits);
        }
        if (e.name != nullptr)
            w.field("name", e.name);
        if (e.kind == EventKind::AsyncBegin ||
            e.kind == EventKind::AsyncEnd) {
            w.field("cat", e.cat != nullptr ? e.cat : "async");
            w.field("id", e.id);
        }
        if (e.kind == EventKind::Counter) {
            w.key("args");
            w.beginObject();
            w.key("value");
            w.value(e.number, kTsDigits);
            w.endObject();
        } else if (e.argCount > 0) {
            writeArgs(w, e);
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    out << '\n';
}

}  // namespace cubessd::trace
