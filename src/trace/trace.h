/**
 * @file
 * Timeline tracing: Perfetto-compatible event recording.
 *
 * TraceSession records begin/end spans, complete (known-duration)
 * spans, instant events, async (request-scoped) events, and counter
 * samples into a preallocated ring buffer, and serializes them as
 * Chrome trace-event JSON — loadable in Perfetto (ui.perfetto.dev) or
 * chrome://tracing. The recorder is zero-dependency and allocation-free
 * on the hot path: events are fixed-size PODs, names and arg keys must
 * be string literals (static lifetime), and when the ring fills the
 * oldest events are dropped (tail-biased, `dropped()` counts losses)
 * rather than growing or corrupting.
 *
 * Tracks: every duration/instant event lives on a *track* (rendered as
 * a thread row in Perfetto). Components register tracks up front with
 * addTrack() — "die/3", "bus/ch0", "gc/chip2", "ftl" — and pass the
 * returned id with each event. Async events instead group by
 * (category, id) and may overlap freely, which is how concurrent host
 * requests are traced without violating per-track begin/end nesting.
 *
 * Tracing is opt-in: components hold a `TraceSession *` that is null
 * by default, so the disabled cost is one branch per site and
 * simulated behaviour is bit-identical with tracing on or off
 * (observation only — nothing here feeds back into timing).
 */

#ifndef CUBESSD_TRACE_TRACE_H
#define CUBESSD_TRACE_TRACE_H

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cubessd::trace {

/** One key/value annotation on an event. `key` must be a string
 *  literal (the recorder stores the pointer, not a copy). */
struct TraceArg
{
    const char *key;
    std::int64_t value;
};

struct TraceConfig
{
    /** Ring capacity in events; oldest events drop beyond this. */
    std::size_t capacityEvents = std::size_t{1} << 18;
};

/** What a recorded event is (maps onto Chrome trace-event `ph`). */
enum class EventKind : std::uint8_t
{
    Begin,       ///< "B": open a span on a track
    End,         ///< "E": close the innermost open span on a track
    Complete,    ///< "X": span with a known duration
    Instant,     ///< "i": a point in time
    AsyncBegin,  ///< "b": open an async span grouped by (cat, id)
    AsyncEnd,    ///< "e": close an async span grouped by (cat, id)
    Counter,     ///< "C": one sample of a named counter
};

class TraceSession
{
  public:
    static constexpr std::size_t kMaxArgs = 6;

    /** A recorded event. POD; see EventKind for field validity. */
    struct Event
    {
        SimTime ts = 0;
        SimTime dur = 0;              ///< Complete only
        std::uint64_t id = 0;         ///< Async only
        double number = 0.0;          ///< Counter only
        const char *name = nullptr;   ///< static lifetime
        const char *cat = nullptr;    ///< Async only; static lifetime
        std::uint32_t track = 0;
        EventKind kind = EventKind::Instant;
        std::uint8_t argCount = 0;
        TraceArg args[kMaxArgs] = {};
    };

    explicit TraceSession(const TraceConfig &config = {});

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /**
     * Register a named track (a thread row in Perfetto). Rows render
     * in registration order. @return the track id to record against.
     */
    std::uint32_t addTrack(std::string name);

    std::size_t trackCount() const { return trackNames_.size(); }
    const std::string &trackName(std::uint32_t track) const
    {
        return trackNames_.at(track);
    }

    /** Open a span on `track`. Spans on one track must nest. */
    void begin(std::uint32_t track, const char *name, SimTime ts,
               std::initializer_list<TraceArg> args = {});

    /** Close the innermost open span on `track`. */
    void end(std::uint32_t track, SimTime ts);

    /** Record a span whose duration is already known. */
    void complete(std::uint32_t track, const char *name, SimTime ts,
                  SimTime dur, std::initializer_list<TraceArg> args = {});

    /** Record a point event. */
    void instant(std::uint32_t track, const char *name, SimTime ts,
                 std::initializer_list<TraceArg> args = {});

    /**
     * Open an async span. Async events with equal (cat, id) form one
     * group and nest by begin/end order; groups may overlap freely
     * (concurrent in-flight requests).
     */
    void asyncBegin(const char *cat, const char *name, std::uint64_t id,
                    SimTime ts, std::initializer_list<TraceArg> args = {});

    /** Close the innermost open async span of (cat, id). */
    void asyncEnd(const char *cat, const char *name, std::uint64_t id,
                  SimTime ts);

    /** Record one sample of a named counter series. */
    void counter(const char *name, SimTime ts, double value);

    /** Events currently held (<= capacity). */
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    /** Total events offered to the ring, dropped or not. */
    std::uint64_t recorded() const { return recorded_; }
    /** Oldest-event drops due to a full ring. */
    std::uint64_t dropped() const { return dropped_; }

    /** The i-th held event, oldest first (i < size()); for tests. */
    const Event &event(std::size_t i) const;

    /**
     * Serialize everything as a Chrome trace-event JSON object
     * ({"traceEvents": [...], ...}); timestamps become microseconds.
     */
    void writeJson(std::ostream &out) const;

  private:
    void push(const Event &e);
    static void fillArgs(Event &e, std::initializer_list<TraceArg> args);

    std::vector<Event> ring_;
    std::size_t head_ = 0;  ///< index of the oldest held event
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<std::string> trackNames_;
};

}  // namespace cubessd::trace

#endif  // CUBESSD_TRACE_TRACE_H
