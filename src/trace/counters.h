/**
 * @file
 * Sampled counter time-series.
 *
 * CounterRegistry holds named gauges (std::function probes over live
 * simulator state) and snapshots all of them at once on a fixed
 * simulated-time cadence, driven by the EventQueue's sampler hook
 * (installSampler). Each sample is kept as an in-memory series for the
 * `timeseries` block of the JSON metrics export, and — when a
 * TraceSession is attached — doubles as a Perfetto counter event so
 * the series render as graphs above the span tracks.
 *
 * Probes are observation-only: they must not schedule events or
 * mutate simulator state, so sampling never perturbs a run. Probes
 * may keep private state of their own (e.g. the previous sample for a
 * rate counter like IOPS) — the lambda is stored mutable-capable.
 */

#ifndef CUBESSD_TRACE_COUNTERS_H
#define CUBESSD_TRACE_COUNTERS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cubessd::sim {
class EventQueue;
}
namespace cubessd::metrics {
class JsonWriter;
}

namespace cubessd::trace {

class TraceSession;

class CounterRegistry
{
  public:
    /** Gauge probe: current value at simulated time `now`. */
    using SampleFn = std::function<double(SimTime)>;

    struct Sample
    {
        SimTime ts;
        double value;
    };

    /** Register a gauge. `unit` is documentation ("pages", "req/s"). */
    void add(std::string name, std::string unit, SampleFn fn);

    std::size_t size() const { return counters_.size(); }
    const std::string &name(std::size_t i) const
    {
        return counters_.at(i).name;
    }
    const std::string &unit(std::size_t i) const
    {
        return counters_.at(i).unit;
    }
    const std::vector<Sample> &series(std::size_t i) const
    {
        return counters_.at(i).series;
    }
    std::uint64_t samplesTaken() const { return samplesTaken_; }

    /** Also emit every sample as a Perfetto counter event. */
    void attachTrace(TraceSession *session) { session_ = session; }

    /** Snapshot all gauges at `now`. */
    void sample(SimTime now);

    /** Sample every `intervalNs` of simulated time while `queue` runs
     *  (fires between events at the cadence boundaries; see
     *  EventQueue::setSampler). */
    void installSampler(sim::EventQueue &queue, SimTime intervalNs);

    /**
     * Emit all series as a JSON array:
     *   [{"name": ..., "unit": ..., "samples": [[ts_us, value], ...]}]
     * The writer must be positioned where an array value is legal.
     */
    void writeTimeseries(metrics::JsonWriter &w) const;

  private:
    struct Counter
    {
        std::string name;
        std::string unit;
        SampleFn fn;
        std::vector<Sample> series;
    };

    /** deque: counter trace events reference name.c_str(), so element
     *  addresses must survive later add() calls. */
    std::deque<Counter> counters_;
    TraceSession *session_ = nullptr;
    std::uint64_t samplesTaken_ = 0;
};

}  // namespace cubessd::trace

#endif  // CUBESSD_TRACE_COUNTERS_H
