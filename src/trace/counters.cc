#include "src/trace/counters.h"

#include <utility>

#include "src/common/logging.h"
#include "src/metrics/json.h"
#include "src/prof/prof.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace.h"

namespace cubessd::trace {

void
CounterRegistry::add(std::string name, std::string unit, SampleFn fn)
{
    if (!fn)
        fatal("CounterRegistry: counter '%s' has no probe",
              name.c_str());
    counters_.push_back(
        Counter{std::move(name), std::move(unit), std::move(fn), {}});
}

void
CounterRegistry::sample(SimTime now)
{
    PROF_SCOPE(prof::Slot::ObsMetricsTrace);
    ++samplesTaken_;
    for (auto &c : counters_) {
        const double v = c.fn(now);
        c.series.push_back(Sample{now, v});
        if (session_ != nullptr)
            session_->counter(c.name.c_str(), now, v);
    }
}

void
CounterRegistry::installSampler(sim::EventQueue &queue,
                                SimTime intervalNs)
{
    queue.setSampler(intervalNs,
                     [this](SimTime now) { sample(now); });
}

void
CounterRegistry::writeTimeseries(metrics::JsonWriter &w) const
{
    w.beginArray();
    for (const auto &c : counters_) {
        w.beginObject();
        w.field("name", c.name);
        w.field("unit", c.unit);
        w.key("samples");
        w.beginArray();
        for (const auto &s : c.series) {
            w.beginArray();
            w.value(static_cast<double>(s.ts) / 1000.0, 16);
            w.value(s.value, 16);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
}

}  // namespace cubessd::trace
