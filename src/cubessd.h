/**
 * @file
 * Umbrella header for the cubeSSD library.
 *
 * cubeSSD reproduces "Exploiting Process Similarity of 3D Flash Memory
 * for High Performance SSDs" (MICRO-52, 2019): a behavioural 3D TLC
 * NAND model with the paper's process similarity/variability
 * structure, a discrete-event SSD simulator, and four FTLs (pageFTL,
 * vertFTL, cubeFTL, cubeFTL-).
 *
 * Typical entry points:
 *  - whole-device simulation: ssd::Ssd + workload::Driver
 *  - multi-tenant runs: workload::MultiTenantDriver (per-tenant
 *    submission queues + ssd::WrrArbiter)
 *  - chip-level characterization: nand::NandChip
 *
 * API conventions:
 *  - Maybe-absent lookups return std::optional, never sentinel
 *    values: ssd::Ssd::peek, ftl::MappingTable::lookup/map,
 *    ssd::WriteBuffer::lookup and ftl::Ort::lookup all follow this
 *    idiom — `if (auto v = x.lookup(k)) use(*v);`. Raw kInvalidPpa /
 *    kInvalidLba sentinels appear only inside packed storage (L2P
 *    arrays, FlushEntry padding), not across call boundaries.
 *  - Completions never fail silently: every ssd::Completion carries a
 *    ssd::Status (Ok, Uncorrectable, ProgramFailed, ReadOnly,
 *    Rejected); hosts check `c.ok()` instead of assuming success.
 *  - Submission is typed: production code implements
 *    ssd::CompletionSink and calls ssd::Ssd::submit(req, &sink, ctx)
 *    — the single host entry point, one virtual call per completion
 *    and no closure allocation. One-shot callers use submitSync();
 *    the closure adapter submitWithCallback() is for tests only.
 *  - Tenancy is a tag, not a fork of the pipeline: HostRequest carries
 *    tenant/namespaceId (kNoTenant = untagged single-tenant paths),
 *    the pipeline threads the tag through to Completion::tenant and
 *    the trace spans untouched, and all per-tenant accounting
 *    (workload::MultiTenantDriver, ssd::WrrArbiter) keys off it.
 */

#ifndef CUBESSD_CUBESSD_H
#define CUBESSD_CUBESSD_H

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/common/zipf.h"
#include "src/ecc/ecc.h"
#include "src/ftl/cube_ftl.h"
#include "src/ftl/ftl_base.h"
#include "src/ftl/page_ftl.h"
#include "src/ftl/program_order.h"
#include "src/ftl/vert_ftl.h"
#include "src/metrics/histogram.h"
#include "src/metrics/json.h"
#include "src/metrics/report.h"
#include "src/metrics/request_metrics.h"
#include "src/nand/chip.h"
#include "src/sim/event_queue.h"
#include "src/ssd/arbiter.h"
#include "src/ssd/ssd.h"
#include "src/trace/counters.h"
#include "src/trace/trace.h"
#include "src/workload/driver.h"
#include "src/workload/multi_tenant.h"
#include "src/workload/tenant.h"
#include "src/workload/trace.h"
#include "src/workload/workload.h"

#endif  // CUBESSD_CUBESSD_H
