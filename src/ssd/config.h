/**
 * @file
 * Top-level SSD configuration.
 *
 * Defaults mirror the paper's evaluation platform (Sec. 6.1): 2 buses
 * x 4 3D TLC chips, 428 blocks per chip, 48 h-layers x 4 WLs per
 * block, 16 KB pages (~32 GB raw).
 */

#ifndef CUBESSD_SSD_CONFIG_H
#define CUBESSD_SSD_CONFIG_H

#include <cstdint>
#include <string>

#include "src/nand/chip.h"

namespace cubessd::ssd {

/** Which FTL drives the device. */
enum class FtlKind
{
    Page,      ///< baseline page-mapping FTL, PS-unaware
    Vert,      ///< [13]-style static per-layer V_Final adjustment
    Cube,      ///< cubeFTL: OPM + WAM + ORT + MOS
    CubeMinus, ///< cubeFTL with the WAM disabled (horizontal-first)
};

const char *ftlKindName(FtlKind kind);

/** Victim-selection policy of the GC subsystem (src/ftl/gc.h). */
enum class GcPolicyKind
{
    Greedy,    ///< fewest valid pages first (default)
};

/**
 * Per-technique switches for cubeFTL, for ablation studies: each of
 * the paper's four mechanisms can be disabled independently.
 * FtlKind::CubeMinus is equivalent to Cube with wam = false.
 */
struct CubeFeatures
{
    bool vfySkip = true;       ///< Sec. 4.1.1: skip redundant VFYs
    bool windowAdjust = true;  ///< Sec. 4.1.2: V_Start/V_Final shrink
    bool ort = true;           ///< Sec. 4.2: read-reference reuse
    bool wam = true;           ///< Sec. 5.2: adaptive WL allocation
    /** Sec. 8 extension: leader-informed ECC decode-mode selection
     *  (start noisy h-layers directly in the soft LDPC decode). */
    bool eccHint = true;
};

struct SsdConfig
{
    std::uint32_t channels = 2;
    std::uint32_t chipsPerChannel = 4;
    nand::NandChipConfig chip{};

    /** Host-visible fraction of raw capacity (rest is over-provision). */
    double logicalFraction = 0.90;

    /** DRAM write buffer capacity in pages. */
    std::uint32_t writeBufferPages = 256;
    /** WAM threshold mu_TH on buffer utilization (Sec. 5.2). */
    double bufferHighWatermark = 0.9;
    /** Serving a read from the write buffer (DRAM hit). */
    SimTime bufferReadTime = 5000;  // 5 us

    /** Start GC on a chip when its free-block count drops below this. */
    std::uint32_t gcLowWatermark = 4;
    /** Stop GC when the free-block count reaches this. */
    std::uint32_t gcHighWatermark = 6;
    /** Throttle host flushes to a chip whose free-block count is at or
     *  below this, reserving the remaining blocks for GC progress. */
    std::uint32_t gcUrgentWatermark = 2;
    /** GC victim-selection policy. */
    GcPolicyKind gcPolicy = GcPolicyKind::Greedy;

    /**
     * Host submission-queue depth (NVMe-style). Requests beyond this
     * many in flight wait in the host queue before entering the FTL.
     * 0 = unbounded: every submission is dispatched at its arrival
     * time, the behaviour of the original fire-and-forget path.
     */
    std::uint32_t hostQueueDepth = 0;

    FtlKind ftl = FtlKind::Page;
    /** Technique switches when ftl is Cube (ablations). */
    CubeFeatures cubeFeatures{};
    std::uint64_t seed = 42;

    std::uint32_t totalChips() const { return channels * chipsPerChannel; }

    /**
     * Check the configuration for contradictions that would otherwise
     * surface as fatal errors deep inside construction: zero geometry,
     * a logicalFraction outside (0, 1], misordered GC watermarks, a
     * write buffer smaller than one WL, out-of-range fault
     * probabilities, or too little over-provisioned space for the GC
     * watermarks.
     *
     * @return an empty string if the configuration is usable, else a
     *         descriptive error message naming the offending field.
     */
    std::string validate() const;

    /** Number of host-visible logical pages. */
    std::uint64_t
    logicalPages() const
    {
        const auto raw = static_cast<double>(chip.geometry.pagesPerChip()) *
                         totalChips();
        return static_cast<std::uint64_t>(raw * logicalFraction);
    }
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_CONFIG_H
