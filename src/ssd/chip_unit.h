/**
 * @file
 * Per-chip operation scheduler.
 *
 * A NAND die executes one command at a time. ChipUnit keeps a FIFO of
 * pending operations per chip, executes the behavioural chip model
 * when an operation starts, accounts for channel (bus) occupancy, and
 * fires a completion callback through the event queue:
 *
 *  - Read:    [sense (die)] -> [transfer out (bus)]
 *  - Program: [transfer in (bus)] -> [ISPP (die)]
 *  - Erase:   [erase (die)]
 *
 * The die is considered busy for the whole span of the operation
 * (including its bus phase).
 */

#ifndef CUBESSD_SSD_CHIP_UNIT_H
#define CUBESSD_SSD_CHIP_UNIT_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/nand/chip.h"
#include "src/sim/event_queue.h"
#include "src/ssd/channel.h"

namespace cubessd::ssd {

/** Result of one scheduled NAND operation. */
struct NandOpResult
{
    SimTime start = 0;   ///< when the die began the operation
    SimTime end = 0;     ///< when the die became free again
    SimTime busTime = 0; ///< channel occupancy of this operation
    SimTime dieTime = 0; ///< on-die time (sense+decode / ISPP / erase)
    nand::ReadOutcome read{};          ///< valid for reads
    nand::WlProgramResult program{};   ///< valid for programs
    bool eraseFailed = false;          ///< valid for erases (status fail)
};

/** Completion callback. */
using NandOpCallback = std::function<void(const NandOpResult &)>;

/** One pending chip operation. */
struct NandOp
{
    enum class Kind { Read, Program, Erase };

    Kind kind = Kind::Read;
    nand::PageAddr page{};     ///< Read
    nand::WlAddr wl{};         ///< Program
    std::uint32_t block = 0;   ///< Erase
    MilliVolt readShiftMv = 0;
    bool readSoftHint = false;
    nand::ProgramCommand cmd{};
    std::vector<std::uint64_t> tokens;  ///< Program payload
    NandOpCallback done;
    bool highPriority = false;  ///< queue ahead of normal ops (reads)
    /** @name Trace annotations (observation only, set by the FTL) @{ */
    bool tagLeader = false;  ///< program counts as a leader WL
    bool tagGc = false;      ///< program relocates GC data
    /** @} */
};

class ChipUnit
{
  public:
    ChipUnit(nand::NandChip &chip, Channel &channel,
             sim::EventQueue &queue);

    /** Enqueue an operation; starts immediately if the die is idle. */
    void enqueue(NandOp op);

    bool idle() const { return !busy_ && pending_.empty(); }
    std::size_t queueDepth() const { return pending_.size(); }

    /** Total time the die has been busy (whole operation spans,
     *  including their bus phases) — for utilization stats. Mutated
     *  only from the non-const completion path (see the Ort
     *  stats-counter convention). */
    SimTime busyTime() const { return busyTime_; }
    /** Operations executed to completion. */
    std::uint64_t opsCompleted() const { return opsCompleted_; }

    nand::NandChip &chip() { return chip_; }
    const nand::NandChip &chip() const { return chip_; }

    /** Record die-op occupancy spans on `track` (observation only). */
    void
    setTrace(trace::TraceSession *session, std::uint32_t track)
    {
        trace_ = session;
        track_ = track;
    }

  private:
    void tryStart();
    void execute(NandOp op);
    void recordOp(const NandOp &op, const NandOpResult &result);

    nand::NandChip &chip_;
    Channel &channel_;
    sim::EventQueue &queue_;
    std::deque<NandOp> pending_;
    bool busy_ = false;
    SimTime busyTime_ = 0;
    std::uint64_t opsCompleted_ = 0;
    trace::TraceSession *trace_ = nullptr;
    std::uint32_t track_ = 0;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_CHIP_UNIT_H
