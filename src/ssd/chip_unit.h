/**
 * @file
 * Per-chip operation scheduler.
 *
 * A NAND die executes one command at a time. ChipUnit keeps a FIFO of
 * pending operations per chip, executes the behavioural chip model
 * when an operation starts, accounts for channel (bus) occupancy, and
 * fires a completion through the event queue:
 *
 *  - Read:    [sense (die)] -> [transfer out (bus)]
 *  - Program: [transfer in (bus)] -> [ISPP (die)]
 *  - Erase:   [erase (die)]
 *
 * The die is considered busy for the whole span of the operation
 * (including its bus phase).
 *
 * Completions are delivered through the NandOpListener interface (one
 * virtual call) rather than a per-op closure, and NandOp itself is a
 * flat POD record — enqueueing and completing an operation allocates
 * nothing. Program payloads are passed as a pointer + count into
 * storage the submitter keeps alive until the completion fires (the
 * FTL's pooled flush batches).
 */

#ifndef CUBESSD_SSD_CHIP_UNIT_H
#define CUBESSD_SSD_CHIP_UNIT_H

#include <cstdint>

#include "src/common/ring_deque.h"
#include "src/nand/chip.h"
#include "src/sim/event_queue.h"
#include "src/ssd/channel.h"

namespace cubessd::ssd {

/** Result of one scheduled NAND operation. */
struct NandOpResult
{
    SimTime start = 0;   ///< when the die began the operation
    SimTime end = 0;     ///< when the die became free again
    SimTime busTime = 0; ///< channel occupancy of this operation
    SimTime dieTime = 0; ///< on-die time (sense+decode / ISPP / erase)
    nand::ReadOutcome read{};          ///< valid for reads
    nand::WlProgramResult program{};   ///< valid for programs
    bool eraseFailed = false;          ///< valid for erases (status fail)
};

struct NandOp;

/** Receiver of NAND operation completions. */
class NandOpListener
{
  public:
    /** `op` is the operation as enqueued (its `ctx` identifies the
     *  submitter's state); valid only for the duration of the call. */
    virtual void onNandOpComplete(const NandOp &op,
                                  const NandOpResult &result) = 0;

  protected:
    ~NandOpListener() = default;
};

/** One pending chip operation (flat POD; copied by value). */
struct NandOp
{
    enum class Kind { Read, Program, Erase };

    Kind kind = Kind::Read;
    nand::PageAddr page{};     ///< Read
    nand::WlAddr wl{};         ///< Program
    std::uint32_t block = 0;   ///< Erase
    MilliVolt readShiftMv = 0;
    bool readSoftHint = false;
    nand::ProgramCommand cmd{};
    /** Program payload: `tokenCount` tokens at `tokens`. The storage
     *  must stay valid until the completion fires. */
    const std::uint64_t *tokens = nullptr;
    std::uint32_t tokenCount = 0;
    /** Completion target + opaque submitter context. */
    NandOpListener *listener = nullptr;
    std::uint64_t ctx = 0;
    /** Submitting chip index (for listeners serving many chips). */
    std::uint32_t chip = 0;
    bool highPriority = false;  ///< queue ahead of normal ops (reads)
    /** @name Trace annotations (observation only, set by the FTL) @{ */
    bool tagLeader = false;  ///< program counts as a leader WL
    bool tagGc = false;      ///< program relocates GC data
    /** @} */
};

class ChipUnit final : public sim::EventHandler
{
  public:
    ChipUnit(nand::NandChip &chip, Channel &channel,
             sim::EventQueue &queue);

    /** Enqueue an operation; starts immediately if the die is idle. */
    void enqueue(const NandOp &op);

    bool idle() const { return !busy_ && pending_.empty(); }
    std::size_t queueDepth() const { return pending_.size(); }

    /** Total time the die has been busy (whole operation spans,
     *  including their bus phases) — for utilization stats. Mutated
     *  only from the non-const completion path (see the Ort
     *  stats-counter convention). */
    SimTime busyTime() const { return busyTime_; }
    /** Operations executed to completion. */
    std::uint64_t opsCompleted() const { return opsCompleted_; }

    nand::NandChip &chip() { return chip_; }
    const nand::NandChip &chip() const { return chip_; }

    /** Record die-op occupancy spans on `track` (observation only). */
    void
    setTrace(trace::TraceSession *session, std::uint32_t track)
    {
        trace_ = session;
        track_ = track;
    }

    /** sim::EventHandler: the in-flight operation's end time arrived. */
    void onEvent(sim::EventKind kind,
                 const sim::EventPayload &payload) override;

  private:
    /** In-flight operation and its outcome, kept together so the
     *  completion path touches one record. Double-buffered: the
     *  listener callback may enqueue a new op, which starts on the
     *  now-idle die and must not overwrite the record still being
     *  delivered — the active slot flips *before* the callback, so the
     *  re-entrant start writes the other slot and no copies are made. */
    struct Slot
    {
        NandOp op{};
        NandOpResult result{};
    };

    void tryStart();
    void execute(Slot &slot);
    void recordOp(const NandOp &op, const NandOpResult &result);

    nand::NandChip &chip_;
    Channel &channel_;
    sim::EventQueue &queue_;
    RingDeque<NandOp> pending_;
    bool busy_ = false;
    Slot slots_[2];
    int active_ = 0;
    SimTime busyTime_ = 0;
    std::uint64_t opsCompleted_ = 0;
    trace::TraceSession *trace_ = nullptr;
    std::uint32_t track_ = 0;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_CHIP_UNIT_H
