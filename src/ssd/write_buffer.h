/**
 * @file
 * DRAM write buffer.
 *
 * Host writes complete as soon as their pages are buffered; a
 * background flush drains the buffer to NAND in WL-sized batches. The
 * buffer's *utilization* is the signal the WAM uses to detect a high
 * write-bandwidth requirement (paper Sec. 5.2).
 *
 * Rewrites of a buffered logical page are absorbed in place (write
 * coalescing), as a real buffer does.
 *
 * Storage is a fixed array of slots (the buffer has a hard capacity
 * by definition) threaded into an intrusive FIFO list, with a flat
 * open-addressing LBA index — insert/lookup/pop never allocate.
 */

#ifndef CUBESSD_SSD_WRITE_BUFFER_H
#define CUBESSD_SSD_WRITE_BUFFER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/types.h"

namespace cubessd::ssd {

/** One buffered logical page. */
struct BufferEntry
{
    Lba lba = 0;
    std::uint64_t token = 0;   ///< data token
    std::uint64_t version = 0; ///< global write version of this page
};

class WriteBuffer
{
  public:
    explicit WriteBuffer(std::uint32_t capacityPages);

    std::uint32_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= capacity_; }
    /** High-water mark of buffered pages over the buffer's lifetime. */
    std::size_t peakSize() const { return peak_; }

    /** Buffer occupancy fraction mu in [0, 1]. */
    double
    utilization() const
    {
        return static_cast<double>(size_) /
               static_cast<double>(capacity_);
    }

    /**
     * Insert or coalesce a page (coalescing keeps the page's FIFO
     * position).
     * @return false if the buffer is full and the page is not already
     *         buffered (caller must stall and retry after a flush).
     */
    bool insert(Lba lba, std::uint64_t token, std::uint64_t version);

    /** @return the buffered token for `lba`, if present (read hit). */
    std::optional<std::uint64_t> lookup(Lba lba) const;

    /** Append up to `n` oldest entries to `out` and drop them from
     *  the buffer (for flushing to NAND). */
    void popOldest(std::uint32_t n, std::vector<BufferEntry> &out);

  private:
    static constexpr std::uint32_t kNil = ~static_cast<std::uint32_t>(0);

    /** A buffered page plus its FIFO links (slot indices). */
    struct Slot
    {
        BufferEntry entry{};
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    std::uint32_t capacity_;
    std::size_t size_ = 0;
    std::size_t peak_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;  ///< stack of unused slots
    std::uint32_t head_ = kNil;             ///< oldest buffered page
    std::uint32_t tail_ = kNil;             ///< newest buffered page
    FlatMap64<std::uint32_t> index_;        ///< lba -> slot
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_WRITE_BUFFER_H
