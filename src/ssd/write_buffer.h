/**
 * @file
 * DRAM write buffer.
 *
 * Host writes complete as soon as their pages are buffered; a
 * background flush drains the buffer to NAND in WL-sized batches. The
 * buffer's *utilization* is the signal the WAM uses to detect a high
 * write-bandwidth requirement (paper Sec. 5.2).
 *
 * Rewrites of a buffered logical page are absorbed in place (write
 * coalescing), as a real buffer does.
 */

#ifndef CUBESSD_SSD_WRITE_BUFFER_H
#define CUBESSD_SSD_WRITE_BUFFER_H

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace cubessd::ssd {

/** One buffered logical page. */
struct BufferEntry
{
    Lba lba = 0;
    std::uint64_t token = 0;   ///< data token
    std::uint64_t version = 0; ///< global write version of this page
};

class WriteBuffer
{
  public:
    explicit WriteBuffer(std::uint32_t capacityPages);

    std::uint32_t capacity() const { return capacity_; }
    std::size_t size() const { return fifo_.size(); }
    bool empty() const { return fifo_.empty(); }
    bool full() const { return fifo_.size() >= capacity_; }
    /** High-water mark of buffered pages over the buffer's lifetime. */
    std::size_t peakSize() const { return peak_; }

    /** Buffer occupancy fraction mu in [0, 1]. */
    double
    utilization() const
    {
        return static_cast<double>(fifo_.size()) /
               static_cast<double>(capacity_);
    }

    /**
     * Insert or coalesce a page.
     * @return false if the buffer is full and the page is not already
     *         buffered (caller must stall and retry after a flush).
     */
    bool insert(Lba lba, std::uint64_t token, std::uint64_t version);

    /** @return the buffered token for `lba`, if present (read hit). */
    std::optional<std::uint64_t> lookup(Lba lba) const;

    /** Pop up to `n` oldest entries for flushing to NAND. */
    std::vector<BufferEntry> popOldest(std::uint32_t n);

  private:
    std::uint32_t capacity_;
    std::size_t peak_ = 0;
    std::list<BufferEntry> fifo_;  ///< oldest at front
    std::unordered_map<Lba, std::list<BufferEntry>::iterator> index_;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_WRITE_BUFFER_H
