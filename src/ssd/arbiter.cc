#include "src/ssd/arbiter.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/prof/prof.h"

namespace cubessd::ssd {

WrrArbiter::WrrArbiter(HostQueue &hostQueue, const ArbiterConfig &config)
    : hostQueue_(hostQueue), config_(config)
{
    if (config_.window == 0 || config_.burst == 0)
        panic("WrrArbiter: window and burst must be at least 1");
}

std::uint32_t
WrrArbiter::addQueue(std::uint32_t weight)
{
    if (weight == 0)
        panic("WrrArbiter: queue weight must be at least 1");
    queues_.push_back(SubmissionQueue{weight, {}, {}});
    return static_cast<std::uint32_t>(queues_.size() - 1);
}

void
WrrArbiter::submit(std::uint32_t queue, const HostRequest &req,
                   CompletionSink *sink, std::uint64_t ctx)
{
    PROF_SCOPE(prof::Slot::SsdArbiter);
    auto &sq = queues_[queue];
    sq.pending.push_back(Waiter{req, sink, ctx});
    ++sq.stats.submitted;
    sq.stats.maxBacklog =
        std::max<std::uint64_t>(sq.stats.maxBacklog, sq.pending.size());
    ++backlogTotal_;
    pump();
}

void
WrrArbiter::pump()
{
    PROF_SCOPE(prof::Slot::SsdArbiter);
    while (inFlight_ < config_.window && backlogTotal_ > 0) {
        if (credits_ == 0 || queues_[current_].pending.empty())
            advance();
        dispatchFrom(current_);
    }
}

void
WrrArbiter::advance()
{
    // Round-robin to the next backlogged queue; a queue's credit
    // budget per visit is weight * burst consecutive commands. The
    // scan wraps to `current_` itself, so a lone backlogged queue
    // simply refreshes its credits.
    const auto n = static_cast<std::uint32_t>(queues_.size());
    for (std::uint32_t i = 1; i <= n; ++i) {
        const std::uint32_t q = (current_ + i) % n;
        if (!queues_[q].pending.empty()) {
            current_ = q;
            credits_ = queues_[q].weight * config_.burst;
            return;
        }
    }
    panic("WrrArbiter: no backlogged queue despite backlogTotal %llu",
          static_cast<unsigned long long>(backlogTotal_));
}

bool
WrrArbiter::dispatchFrom(std::uint32_t queue)
{
    auto &sq = queues_[queue];
    const Waiter waiter = sq.pending.front();
    sq.pending.pop_front();
    --backlogTotal_;
    ++sq.stats.dispatched;
    ++inFlight_;
    --credits_;

    Pending *record = records_.acquire();
    record->sink = waiter.sink;
    record->ctx = waiter.ctx;
    record->queue = queue;
    record->arrival = waiter.req.arrival;
    hostQueue_.submit(waiter.req, this,
                      reinterpret_cast<std::uint64_t>(record));
    return true;
}

void
WrrArbiter::onCompletion(const Completion &completion, std::uint64_t ctx)
{
    PROF_SCOPE(prof::Slot::SsdArbiter);
    auto *record = reinterpret_cast<Pending *>(ctx);
    CompletionSink *sink = record->sink;
    const std::uint64_t downstreamCtx = record->ctx;
    ++queues_[record->queue].stats.completed;

    // HostQueue stamped arrival with the dispatch instant; restore the
    // original submission time so latency() and queueWait() include
    // the time parked in the submission queue.
    Completion out = completion;
    out.arrival = record->arrival;
    out.phases.queueWait = out.start - out.arrival;
    records_.release(record);

    --inFlight_;
    // Hand the freed window slot to the backlogged queues before the
    // host sees the completion (matches HostQueue's drain-first
    // convention, so WRR order never depends on host reaction time).
    pump();
    if (sink != nullptr)
        sink->onCompletion(out, downstreamCtx);
}

}  // namespace cubessd::ssd
