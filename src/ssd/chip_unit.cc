#include "src/ssd/chip_unit.h"

#include <span>

#include "src/common/logging.h"
#include "src/prof/prof.h"
#include "src/trace/trace.h"

namespace cubessd::ssd {

ChipUnit::ChipUnit(nand::NandChip &chip, Channel &channel,
                   sim::EventQueue &queue)
    : chip_(chip), channel_(channel), queue_(queue)
{
}

void
ChipUnit::enqueue(const NandOp &op)
{
    if (op.highPriority)
        pending_.push_front(op);
    else
        pending_.push_back(op);
    tryStart();
}

void
ChipUnit::tryStart()
{
    if (busy_ || pending_.empty())
        return;
    busy_ = true;
    Slot &slot = slots_[active_];
    slot.op = pending_.front();
    pending_.pop_front();
    execute(slot);
}

void
ChipUnit::execute(Slot &slot)
{
    const SimTime now = queue_.now();
    const auto &geom = chip_.geometry();
    const auto &timing = chip_.timing();

    const NandOp &op = slot.op;
    NandOpResult &result = slot.result;
    result = NandOpResult{};
    result.start = now;

    switch (op.kind) {
      case NandOp::Kind::Read: {
        result.read =
            chip_.readPage(op.page, op.readShiftMv, op.readSoftHint);
        const SimTime senseEnd = now + result.read.tRead;
        const SimTime tx = timing.busTransferTime(geom.pageSizeBytes);
        const SimTime txStart = channel_.reserve(senseEnd, tx, "xfer_out");
        result.busTime = tx;
        result.dieTime = result.read.tRead;
        result.end = txStart + tx;
        break;
      }
      case NandOp::Kind::Program: {
        const SimTime tx = timing.busTransferTime(
            static_cast<std::uint64_t>(geom.pageSizeBytes) *
            op.tokenCount);
        const SimTime txStart = channel_.reserve(now, tx, "xfer_in");
        result.program = chip_.programWl(
            op.wl, op.cmd, std::span(op.tokens, op.tokenCount));
        result.busTime = tx;
        result.dieTime = result.program.tProg;
        result.end = txStart + tx + result.program.tProg;
        break;
      }
      case NandOp::Kind::Erase: {
        result.dieTime = chip_.eraseBlock(op.block, &result.eraseFailed);
        result.end = now + result.dieTime;
        break;
      }
    }

    if (trace_ != nullptr)
        recordOp(op, result);

    queue_.scheduleAt(result.end, sim::EventKind::ChipOpComplete, this);
}

void
ChipUnit::onEvent(sim::EventKind, const sim::EventPayload &)
{
    // Flip the active slot *before* the callback: the listener may
    // enqueue a new operation, which starts immediately on the
    // now-idle die and writes the other slot — the completed record
    // stays valid for the whole delivery without copying it out.
    Slot &done = slots_[active_];
    active_ ^= 1;
    busy_ = false;
    busyTime_ += done.result.end - done.result.start;
    ++opsCompleted_;
    if (done.op.listener != nullptr)
        done.op.listener->onNandOpComplete(done.op, done.result);
    tryStart();
}

/**
 * Emit the die-occupancy span of one operation, annotated with the
 * paper's PS mechanisms: the h-layer, the leader/follower role, how
 * many verify pulses the follower skipped, and how far below MaxLoop
 * the ISPP terminated (vfy_skipped / loops_saved are where the
 * follower tPROG cut shows up on the timeline), plus the retry count
 * that the ORT eliminates on reads.
 */
void
ChipUnit::recordOp(const NandOp &op, const NandOpResult &result)
{
    PROF_SCOPE(prof::Slot::ObsMetricsTrace);
    const SimTime dur = result.end - result.start;
    switch (op.kind) {
      case NandOp::Kind::Read:
        // GC scan reads enqueue at normal priority; host reads jump
        // the queue — use that to label the span's origin.
        trace_->complete(
            track_, op.highPriority ? "read" : "gc_scan_read",
            result.start, dur,
            {{"block", op.page.block},
             {"layer", op.page.layer},
             {"retries", result.read.numRetries},
             {"retry_ns", static_cast<std::int64_t>(result.read.tRetry)},
             {"uncorrectable", result.read.uncorrectable ? 1 : 0}});
        break;
      case NandOp::Kind::Program: {
        const int maxLoops = chip_.ispp().config().maxLoops();
        trace_->complete(
            track_, op.tagGc ? "gc_program" : "program",
            result.start, dur,
            {{"block", op.wl.block},
             {"layer", op.wl.layer},
             {"leader", op.tagLeader ? 1 : 0},
             {"vfy_skipped", result.program.verifiesSkipped},
             {"loops_saved", maxLoops - result.program.loopsUsed},
             {"failed", result.program.failed ? 1 : 0}});
        break;
      }
      case NandOp::Kind::Erase:
        trace_->complete(track_, "erase", result.start, dur,
                         {{"block", op.block},
                          {"failed", result.eraseFailed ? 1 : 0}});
        break;
    }
}

}  // namespace cubessd::ssd
