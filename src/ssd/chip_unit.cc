#include "src/ssd/chip_unit.h"

#include <utility>

#include "src/common/logging.h"

namespace cubessd::ssd {

ChipUnit::ChipUnit(nand::NandChip &chip, Channel &channel,
                   sim::EventQueue &queue)
    : chip_(chip), channel_(channel), queue_(queue)
{
}

void
ChipUnit::enqueue(NandOp op)
{
    if (op.highPriority)
        pending_.push_front(std::move(op));
    else
        pending_.push_back(std::move(op));
    tryStart();
}

void
ChipUnit::tryStart()
{
    if (busy_ || pending_.empty())
        return;
    busy_ = true;
    NandOp op = std::move(pending_.front());
    pending_.pop_front();
    execute(std::move(op));
}

void
ChipUnit::execute(NandOp op)
{
    const SimTime now = queue_.now();
    const auto &geom = chip_.geometry();
    const auto &timing = chip_.timing();

    NandOpResult result;
    result.start = now;

    switch (op.kind) {
      case NandOp::Kind::Read: {
        result.read =
            chip_.readPage(op.page, op.readShiftMv, op.readSoftHint);
        const SimTime senseEnd = now + result.read.tRead;
        const SimTime tx = timing.busTransferTime(geom.pageSizeBytes);
        const SimTime txStart = channel_.reserve(senseEnd, tx);
        result.busTime = tx;
        result.dieTime = result.read.tRead;
        result.end = txStart + tx;
        break;
      }
      case NandOp::Kind::Program: {
        const SimTime tx = timing.busTransferTime(
            static_cast<std::uint64_t>(geom.pageSizeBytes) *
            op.tokens.size());
        const SimTime txStart = channel_.reserve(now, tx);
        result.program = chip_.programWl(op.wl, op.cmd, op.tokens);
        result.busTime = tx;
        result.dieTime = result.program.tProg;
        result.end = txStart + tx + result.program.tProg;
        break;
      }
      case NandOp::Kind::Erase: {
        result.dieTime = chip_.eraseBlock(op.block, &result.eraseFailed);
        result.end = now + result.dieTime;
        break;
      }
    }

    queue_.scheduleAt(result.end,
                      [this, result, done = std::move(op.done)]() {
                          busy_ = false;
                          busyTime_ += result.end - result.start;
                          ++opsCompleted_;
                          if (done)
                              done(result);
                          tryStart();
                      });
}

}  // namespace cubessd::ssd
