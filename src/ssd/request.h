/**
 * @file
 * Host-level I/O request and completion types.
 *
 * The host address space is in units of one flash page (16 KB by
 * default); a request covers `pages` consecutive logical pages.
 */

#ifndef CUBESSD_SSD_REQUEST_H
#define CUBESSD_SSD_REQUEST_H

#include <cstdint>

#include "src/common/types.h"

namespace cubessd::ssd {

enum class IoType { Read, Write };

/** One host I/O request. */
struct HostRequest
{
    std::uint64_t id = 0;
    IoType type = IoType::Read;
    Lba lba = 0;           ///< first logical page
    std::uint32_t pages = 1;
    SimTime arrival = 0;   ///< submission time
};

/** Completion record emitted when a request finishes. */
struct Completion
{
    std::uint64_t id = 0;
    IoType type = IoType::Read;
    std::uint32_t pages = 1;
    SimTime arrival = 0;   ///< submitted to the host queue
    SimTime start = 0;     ///< dispatched into the FTL (HostQueue)
    SimTime finish = 0;

    SimTime latency() const { return finish - arrival; }
    /** Time spent waiting for a device queue slot. */
    SimTime queueWait() const { return start - arrival; }
    /** Device-side service time (dispatch to completion). */
    SimTime serviceTime() const { return finish - start; }
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_REQUEST_H
