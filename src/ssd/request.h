/**
 * @file
 * Host-level I/O request and completion types.
 *
 * The host address space is in units of one flash page (16 KB by
 * default); a request covers `pages` consecutive logical pages.
 */

#ifndef CUBESSD_SSD_REQUEST_H
#define CUBESSD_SSD_REQUEST_H

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace cubessd::ssd {

enum class IoType { Read, Write };

/**
 * Completion status of a host request.
 *
 * Ordered from benign to severe; a multi-page request reports the
 * worst per-page outcome. Anything other than Ok means the request
 * did not fully succeed:
 *
 *  - Uncorrectable: a read exhausted the retry walk and soft-decision
 *    LDPC without decoding; the data for at least one page is lost.
 *  - ProgramFailed: a write could not be made durable even after the
 *    FTL replayed it to a fresh block.
 *  - ReadOnly: the device has exhausted its spare blocks and rejects
 *    all new writes; reads continue to be served.
 *  - Rejected: the request never entered the pipeline (e.g. the LBA
 *    range lies beyond the logical capacity).
 */
enum class Status : std::uint8_t {
    Ok = 0,
    Uncorrectable,
    ProgramFailed,
    ReadOnly,
    Rejected,
};

/** Number of Status values (for per-status counter arrays). */
inline constexpr std::size_t kStatusCount = 5;

inline const char *statusName(Status status)
{
    switch (status) {
    case Status::Ok: return "ok";
    case Status::Uncorrectable: return "uncorrectable";
    case Status::ProgramFailed: return "program_failed";
    case Status::ReadOnly: return "read_only";
    case Status::Rejected: return "rejected";
    }
    return "unknown";
}

/** Merge per-page outcomes: the worse (higher-severity) status wins. */
inline Status worseStatus(Status a, Status b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a
                                                                        : b;
}

/** Identifier assigned by the host queue at submission. */
using RequestId = std::uint64_t;

/** Identifier of the tenant stream a request belongs to. 0 means
 *  "untagged" (the single-tenant paths); multi-tenant front ends tag
 *  requests 1..N. */
using TenantId = std::uint16_t;

/** Tenant id of requests outside any tenant stream. */
inline constexpr TenantId kNoTenant = 0;

/**
 * One host I/O request.
 *
 * The layout is designated-initializer friendly — all fields have
 * defaults and submission-relevant ones come first, so call sites
 * write `{.type = IoType::Write, .lba = 0, .pages = 8}` and tag
 * tenancy only when they have it.
 */
struct HostRequest
{
    std::uint64_t id = 0;
    IoType type = IoType::Read;
    Lba lba = 0;           ///< first logical page
    std::uint32_t pages = 1;
    SimTime arrival = 0;   ///< submission time
    /** Tenant stream this request belongs to (kNoTenant = untagged).
     *  Carried through to the Completion and the trace spans;
     *  per-tenant accounting keys off it. */
    TenantId tenant = kNoTenant;
    /** NVMe-style namespace the LBA lives in (0 = the whole device).
     *  Informational: the LBA is already absolute; the tag records
     *  which partition of the shared device produced it. */
    std::uint16_t namespaceId = 0;
};

/**
 * Per-request phase decomposition (the request trace record).
 *
 * Each stage of the pipeline attributes the time it spends on the
 * request as it passes through: the host queue fills queueWait, the
 * FTL fills buffer, and the chip scheduler's per-operation spans
 * (NandOpResult) are folded into bus / die / retry. Attribution is
 * observation-only — it never feeds back into simulated timing. For
 * multi-page requests served by several dies in parallel the device
 * phases are *sums of per-page service times*, so they can exceed the
 * request's wall-clock latency; time blocked behind unrelated work
 * (flushes, other dies) is the remainder latency() - queueWait -
 * phases and is not attributed.
 */
struct PhaseTimes
{
    SimTime queueWait = 0;  ///< waiting for a host-queue slot
    SimTime buffer = 0;     ///< DRAM write-buffer service (hits, writes)
    SimTime bus = 0;        ///< channel occupancy of page transfers
    SimTime die = 0;        ///< sense/ISPP time excluding retries
    SimTime retry = 0;      ///< extra senses from read retries
};

/** Completion record emitted when a request finishes. */
struct Completion
{
    std::uint64_t id = 0;
    IoType type = IoType::Read;
    std::uint32_t pages = 1;
    /** Tenant the request was tagged with (kNoTenant = untagged). */
    TenantId tenant = kNoTenant;
    SimTime arrival = 0;   ///< submitted to the host queue
    SimTime start = 0;     ///< dispatched into the FTL (HostQueue)
    SimTime finish = 0;
    Status status = Status::Ok;
    PhaseTimes phases{};   ///< where the time went (trace record)

    bool ok() const { return status == Status::Ok; }
    SimTime latency() const { return finish - arrival; }
    /** Time spent waiting for a device queue slot. */
    SimTime queueWait() const { return start - arrival; }
    /** Device-side service time (dispatch to completion). */
    SimTime serviceTime() const { return finish - start; }
};

/**
 * Receiver of request completions.
 *
 * The hot path hands completions from stage to stage through this
 * interface instead of std::function callbacks: one virtual call, no
 * closure allocation. `ctx` is an opaque value the submitter passed
 * alongside the sink (a pooled record, a thread index, ...) and is
 * returned verbatim.
 */
class CompletionSink
{
  public:
    virtual void onCompletion(const Completion &completion,
                              std::uint64_t ctx) = 0;

  protected:
    ~CompletionSink() = default;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_REQUEST_H
