/**
 * @file
 * Host-level I/O request and completion types.
 *
 * The host address space is in units of one flash page (16 KB by
 * default); a request covers `pages` consecutive logical pages.
 */

#ifndef CUBESSD_SSD_REQUEST_H
#define CUBESSD_SSD_REQUEST_H

#include <cstdint>

#include "src/common/types.h"

namespace cubessd::ssd {

enum class IoType { Read, Write };

/** One host I/O request. */
struct HostRequest
{
    std::uint64_t id = 0;
    IoType type = IoType::Read;
    Lba lba = 0;           ///< first logical page
    std::uint32_t pages = 1;
    SimTime arrival = 0;   ///< submission time
};

/**
 * Per-request phase decomposition (the request trace record).
 *
 * Each stage of the pipeline attributes the time it spends on the
 * request as it passes through: the host queue fills queueWait, the
 * FTL fills buffer, and the chip scheduler's per-operation spans
 * (NandOpResult) are folded into bus / die / retry. Attribution is
 * observation-only — it never feeds back into simulated timing. For
 * multi-page requests served by several dies in parallel the device
 * phases are *sums of per-page service times*, so they can exceed the
 * request's wall-clock latency; time blocked behind unrelated work
 * (flushes, other dies) is the remainder latency() - queueWait -
 * phases and is not attributed.
 */
struct PhaseTimes
{
    SimTime queueWait = 0;  ///< waiting for a host-queue slot
    SimTime buffer = 0;     ///< DRAM write-buffer service (hits, writes)
    SimTime bus = 0;        ///< channel occupancy of page transfers
    SimTime die = 0;        ///< sense/ISPP time excluding retries
    SimTime retry = 0;      ///< extra senses from read retries
};

/** Completion record emitted when a request finishes. */
struct Completion
{
    std::uint64_t id = 0;
    IoType type = IoType::Read;
    std::uint32_t pages = 1;
    SimTime arrival = 0;   ///< submitted to the host queue
    SimTime start = 0;     ///< dispatched into the FTL (HostQueue)
    SimTime finish = 0;
    PhaseTimes phases{};   ///< where the time went (trace record)

    SimTime latency() const { return finish - arrival; }
    /** Time spent waiting for a device queue slot. */
    SimTime queueWait() const { return start - arrival; }
    /** Device-side service time (dispatch to completion). */
    SimTime serviceTime() const { return finish - start; }
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_REQUEST_H
