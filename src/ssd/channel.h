/**
 * @file
 * Shared NAND bus (channel) occupancy model.
 *
 * Several chips share one channel; page transfers serialize on it.
 * Reservation is analytic bookkeeping: a caller asks for the bus no
 * earlier than `earliest` for `duration`, and receives the granted
 * start time. Grants are first-come-first-served in call order, which
 * follows simulated-event order.
 */

#ifndef CUBESSD_SSD_CHANNEL_H
#define CUBESSD_SSD_CHANNEL_H

#include <algorithm>
#include <cstdint>

#include "src/common/types.h"
#include "src/prof/prof.h"

namespace cubessd::trace {
class TraceSession;
}

namespace cubessd::ssd {

class Channel
{
  public:
    /**
     * Reserve the bus.
     * @param traceName  span label for the transfer on the channel's
     *                   occupancy track (string literal); nullptr
     *                   suppresses the span.
     * @return the granted start time (>= earliest).
     *
     * Inline fast path: the common no-trace case is three scalar ops;
     * only the tracing tail goes out of line.
     */
    SimTime
    reserve(SimTime earliest, SimTime duration,
            const char *traceName = nullptr)
    {
        PROF_SCOPE(prof::Slot::SsdBusTransfer);
        const SimTime start = std::max(earliest, freeAt_);
        freeAt_ = start + duration;
        busyTime_ += duration;
        if (trace_ != nullptr && traceName != nullptr)
            traceTransfer(start, duration, traceName);
        return start;
    }

    /** Record bus transfers as spans on `track` (observation only). */
    void
    setTrace(trace::TraceSession *session, std::uint32_t track)
    {
        trace_ = session;
        track_ = track;
    }

    /** Time at which the bus next becomes free. */
    SimTime freeAt() const { return freeAt_; }

    /** Total time the bus has been occupied (for utilization stats). */
    SimTime busyTime() const { return busyTime_; }

  private:
    void traceTransfer(SimTime start, SimTime duration,
                       const char *traceName);

    SimTime freeAt_ = 0;
    SimTime busyTime_ = 0;
    trace::TraceSession *trace_ = nullptr;
    std::uint32_t track_ = 0;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_CHANNEL_H
