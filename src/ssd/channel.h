/**
 * @file
 * Shared NAND bus (channel) occupancy model.
 *
 * Several chips share one channel; page transfers serialize on it.
 * Reservation is analytic bookkeeping: a caller asks for the bus no
 * earlier than `earliest` for `duration`, and receives the granted
 * start time. Grants are first-come-first-served in call order, which
 * follows simulated-event order.
 */

#ifndef CUBESSD_SSD_CHANNEL_H
#define CUBESSD_SSD_CHANNEL_H

#include "src/common/types.h"

namespace cubessd::ssd {

class Channel
{
  public:
    /**
     * Reserve the bus.
     * @return the granted start time (>= earliest).
     */
    SimTime reserve(SimTime earliest, SimTime duration);

    /** Time at which the bus next becomes free. */
    SimTime freeAt() const { return freeAt_; }

    /** Total time the bus has been occupied (for utilization stats). */
    SimTime busyTime() const { return busyTime_; }

  private:
    SimTime freeAt_ = 0;
    SimTime busyTime_ = 0;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_CHANNEL_H
