#include "src/ssd/write_buffer.h"

#include "src/common/logging.h"

namespace cubessd::ssd {

WriteBuffer::WriteBuffer(std::uint32_t capacityPages)
    : capacity_(capacityPages)
{
    if (capacity_ == 0)
        fatal("WriteBuffer: capacity must be positive");
}

bool
WriteBuffer::insert(Lba lba, std::uint64_t token, std::uint64_t version)
{
    auto it = index_.find(lba);
    if (it != index_.end()) {
        it->second->token = token;
        it->second->version = version;
        return true;
    }
    if (full())
        return false;
    fifo_.push_back(BufferEntry{lba, token, version});
    index_.emplace(lba, std::prev(fifo_.end()));
    if (fifo_.size() > peak_)
        peak_ = fifo_.size();
    return true;
}

std::optional<std::uint64_t>
WriteBuffer::lookup(Lba lba) const
{
    auto it = index_.find(lba);
    if (it == index_.end())
        return std::nullopt;
    return it->second->token;
}

std::vector<BufferEntry>
WriteBuffer::popOldest(std::uint32_t n)
{
    std::vector<BufferEntry> out;
    out.reserve(n);
    while (n-- > 0 && !fifo_.empty()) {
        out.push_back(fifo_.front());
        index_.erase(fifo_.front().lba);
        fifo_.pop_front();
    }
    return out;
}

}  // namespace cubessd::ssd
