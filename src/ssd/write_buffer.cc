#include "src/ssd/write_buffer.h"

#include "src/common/logging.h"

namespace cubessd::ssd {

WriteBuffer::WriteBuffer(std::uint32_t capacityPages)
    : capacity_(capacityPages)
{
    if (capacity_ == 0)
        fatal("WriteBuffer: capacity must be positive");
    slots_.resize(capacity_);
    freeSlots_.reserve(capacity_);
    for (std::uint32_t i = capacity_; i-- > 0;)
        freeSlots_.push_back(i);
}

bool
WriteBuffer::insert(Lba lba, std::uint64_t token, std::uint64_t version)
{
    if (std::uint32_t *slot = index_.find(lba)) {
        slots_[*slot].entry.token = token;
        slots_[*slot].entry.version = version;
        return true;
    }
    if (full())
        return false;
    const std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    Slot &s = slots_[slot];
    s.entry = BufferEntry{lba, token, version};
    s.prev = tail_;
    s.next = kNil;
    if (tail_ != kNil)
        slots_[tail_].next = slot;
    else
        head_ = slot;
    tail_ = slot;

    bool inserted = false;
    index_.insertOrGet(lba, &inserted) = slot;
    ++size_;
    if (size_ > peak_)
        peak_ = size_;
    return true;
}

std::optional<std::uint64_t>
WriteBuffer::lookup(Lba lba) const
{
    const std::uint32_t *slot = index_.find(lba);
    if (slot == nullptr)
        return std::nullopt;
    return slots_[*slot].entry.token;
}

void
WriteBuffer::popOldest(std::uint32_t n, std::vector<BufferEntry> &out)
{
    while (n-- > 0 && head_ != kNil) {
        const std::uint32_t slot = head_;
        Slot &s = slots_[slot];
        out.push_back(s.entry);
        index_.erase(s.entry.lba);
        head_ = s.next;
        if (head_ != kNil)
            slots_[head_].prev = kNil;
        else
            tail_ = kNil;
        freeSlots_.push_back(slot);
        --size_;
    }
}

}  // namespace cubessd::ssd
