#include "src/ssd/channel.h"

#include <algorithm>

namespace cubessd::ssd {

SimTime
Channel::reserve(SimTime earliest, SimTime duration)
{
    const SimTime start = std::max(earliest, freeAt_);
    freeAt_ = start + duration;
    busyTime_ += duration;
    return start;
}

}  // namespace cubessd::ssd
