#include "src/ssd/channel.h"

#include <algorithm>

#include "src/prof/prof.h"
#include "src/trace/trace.h"

namespace cubessd::ssd {

SimTime
Channel::reserve(SimTime earliest, SimTime duration,
                 const char *traceName)
{
    PROF_SCOPE(prof::Slot::SsdBusTransfer);
    const SimTime start = std::max(earliest, freeAt_);
    freeAt_ = start + duration;
    busyTime_ += duration;
    if (trace_ != nullptr && traceName != nullptr) {
        PROF_SCOPE(prof::Slot::ObsMetricsTrace);
        trace_->complete(track_, traceName, start, duration);
    }
    return start;
}

}  // namespace cubessd::ssd
