#include "src/ssd/channel.h"

#include <algorithm>

#include "src/prof/prof.h"
#include "src/trace/trace.h"

namespace cubessd::ssd {

void
Channel::traceTransfer(SimTime start, SimTime duration,
                       const char *traceName)
{
    PROF_SCOPE(prof::Slot::ObsMetricsTrace);
    trace_->complete(track_, traceName, start, duration);
}

}  // namespace cubessd::ssd
