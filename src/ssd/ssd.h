/**
 * @file
 * The assembled SSD: event queue, channels, chips, and an FTL.
 *
 * This is the main entry point of the library for whole-device
 * simulation. Hosts implement ssd::CompletionSink and submit typed
 * requests:
 *
 * @code
 *   ssd::SsdConfig config;
 *   config.ftl = ssd::FtlKind::Cube;
 *   ssd::Ssd ssd(config);
 *   ssd.submit({.type = ssd::IoType::Write, .lba = 0, .pages = 8},
 *              &mySink);  // mySink.onCompletion(c, ctx) fires with
 *                         // c.status: Ok, Uncorrectable, ReadOnly, ...
 *   ssd.drain();  // flush the write buffer, run all pending events
 * @endcode
 *
 * One-shot callers (tests, setup code) use submitSync(); closure
 * callbacks survive only as the test-only submitWithCallback().
 */

#ifndef CUBESSD_SSD_SSD_H
#define CUBESSD_SSD_SSD_H

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/nand/chip.h"
#include "src/sim/event_queue.h"
#include "src/ssd/channel.h"
#include "src/ssd/chip_unit.h"
#include "src/ssd/config.h"
#include "src/ssd/host_queue.h"
#include "src/ssd/request.h"

namespace cubessd::ftl {
class FtlBase;
}

namespace cubessd::trace {
class CounterRegistry;
class TraceSession;
}  // namespace cubessd::trace

namespace cubessd::ssd {

class Ssd
{
  public:
    explicit Ssd(const SsdConfig &config);
    ~Ssd();

    Ssd(const Ssd &) = delete;
    Ssd &operator=(const Ssd &) = delete;

    const SsdConfig &config() const { return config_; }
    sim::EventQueue &queue() { return queue_; }
    ftl::FtlBase &ftl() { return *ftl_; }
    const ftl::FtlBase &ftl() const { return *ftl_; }
    HostQueue &hostQueue() { return *hostQueue_; }
    const HostQueue &hostQueue() const { return *hostQueue_; }

    std::uint32_t chipCount() const
    {
        return static_cast<std::uint32_t>(chips_.size());
    }
    nand::NandChip &chip(std::uint32_t i) { return chips_[i]; }
    ChipUnit &chipUnit(std::uint32_t i) { return units_[i]; }
    const ChipUnit &chipUnit(std::uint32_t i) const { return units_[i]; }

    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }
    /** Shared-bus occupancy bookkeeping (utilization stats). */
    const Channel &channel(std::uint32_t i) const { return channels_[i]; }

    std::uint64_t logicalPages() const { return config_.logicalPages(); }

    /** Inject a wear/retention state into every chip (evaluation aid). */
    void setAging(const nand::AgingState &aging);

    /**
     * Submit a request through the host queue: the single typed
     * production entry point. The request arrives at max(now,
     * req.arrival), waits for a queue slot if the configured queue
     * depth is exhausted, and `sink->onCompletion(c, ctx)` fires at
     * completion with Completion::status carrying the outcome and
     * Completion::tenant echoing req.tenant (requests never fail
     * silently — check `c.status` / `c.ok()`). `ctx` is returned
     * verbatim; `sink` may be null for fire-and-forget traffic.
     * @return the id assigned to the request.
     */
    RequestId submit(HostRequest req, CompletionSink *sink,
                     std::uint64_t ctx = 0);

    /** Submit and run the queue until this request completes (built
     *  on the public typed submit path). The returned Completion
     *  carries the request's Status. */
    Completion submitSync(HostRequest req);

    /**
     * Test-only adapter: submit with a closure callback instead of a
     * CompletionSink. Kept for terse test bodies; the closure may
     * allocate, so production call sites use submit() instead.
     */
    RequestId
    submitWithCallback(HostRequest req,
                       std::function<void(const Completion &)> done);

    /** Flush the write buffer and run all pending events. */
    void drain();

    /** Data token of a logical page, bypassing timing (tests). */
    std::optional<std::uint64_t> peek(Lba lba) const;

    /**
     * Wire a trace session through the whole pipeline: per-request
     * async spans on the host queue, an "ftl" track for FTL instants,
     * one "gc/chipN" track per chip for GC episodes, one "bus/chN"
     * track per channel for bus transfers, and one "die/N" track per
     * chip for NAND operations. Pass nullptr to detach. Tracing is
     * observation-only: runs are bit-identical with it on or off.
     */
    void attachTrace(trace::TraceSession *session);

    /** Register the device-level sampled counters (IOPS, queue depth)
     *  plus the FTL's gauges. */
    void registerCounters(trace::CounterRegistry &reg);

  private:
    SsdConfig config_;
    sim::EventQueue queue_;
    std::vector<Channel> channels_;
    std::vector<nand::NandChip> chips_;
    std::vector<ChipUnit> units_;
    std::unique_ptr<ftl::FtlBase> ftl_;
    std::unique_ptr<HostQueue> hostQueue_;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_SSD_H
