/**
 * @file
 * NVMe-style host submission/completion queue with a bounded queue
 * depth.
 *
 * The host queue is the first stage of the request pipeline: every
 * host request enters here, is admitted into the FTL when a device
 * slot is free, and is timestamped at three points — arrival
 * (submission), start (dispatch into the FTL), and finish
 * (completion). With depth 0 the queue is unbounded and every request
 * is dispatched at its arrival time, reproducing the original
 * fire-and-forget `Ssd::submit` path exactly; with depth N > 0 the
 * (N+1)-th in-flight submission waits (backpressure) until a
 * completion frees a slot, which is what makes closed-loop QD sweeps
 * and queueing-delay attribution possible.
 *
 * The hot path is allocation-free: admission is a typed event, FTL
 * completions come back through the CompletionSink interface with a
 * pooled per-request record, and the wait line is a flat ring. The
 * std::function adapter survives as the clearly-named
 * submitWithCallback() for tests only (its adapter nodes are pooled,
 * but the closure itself may allocate).
 */

#ifndef CUBESSD_SSD_HOST_QUEUE_H
#define CUBESSD_SSD_HOST_QUEUE_H

#include <cstdint>
#include <functional>

#include "src/common/pool.h"
#include "src/common/ring_deque.h"
#include "src/sim/event_queue.h"
#include "src/ssd/request.h"

namespace cubessd::ftl {
class FtlBase;
}
namespace cubessd::trace {
class TraceSession;
}

namespace cubessd::ssd {

/** Cumulative host-queue counters. */
struct HostQueueStats
{
    std::uint64_t submitted = 0;   ///< requests entered
    std::uint64_t completed = 0;   ///< requests finished
    std::uint64_t blockedSubmissions = 0;  ///< had to wait for a slot
    std::uint64_t maxWaiting = 0;  ///< high-water mark of the wait line
    SimTime queueWaitSum = 0;      ///< total arrival -> start
    SimTime latencySum = 0;        ///< total arrival -> finish

    double
    avgQueueWaitUs() const
    {
        return completed == 0
            ? 0.0
            : static_cast<double>(queueWaitSum) / 1000.0 /
                  static_cast<double>(completed);
    }

    double
    avgLatencyUs() const
    {
        return completed == 0
            ? 0.0
            : static_cast<double>(latencySum) / 1000.0 /
                  static_cast<double>(completed);
    }
};

class HostQueue final : public sim::EventHandler, public CompletionSink
{
  public:
    using CompletionFn = std::function<void(const Completion &)>;

    /** @param depth  max in-flight requests; 0 = unbounded. */
    HostQueue(sim::EventQueue &queue, ftl::FtlBase &ftl,
              std::uint32_t depth);

    HostQueue(const HostQueue &) = delete;
    HostQueue &operator=(const HostQueue &) = delete;

    /**
     * Submit a request. It arrives at max(now, req.arrival), waits for
     * a free slot if the queue is at depth, and the completion is
     * delivered to `sink` (with `ctx` passed back verbatim) with all
     * three timestamps, the Status, and the request's tenant tag
     * filled in.
     * @return the request id (req.id, or a fresh id if it was 0).
     */
    RequestId submit(HostRequest req, CompletionSink *sink,
                     std::uint64_t ctx = 0);

    /**
     * Test-only closure adapter over submit(): wraps `done` in a
     * pooled CompletionSink (the closure itself may allocate).
     * Production code implements CompletionSink and uses submit().
     */
    RequestId submitWithCallback(HostRequest req, CompletionFn done);

    std::uint32_t depth() const { return depth_; }
    std::uint64_t inFlight() const { return inFlight_; }
    /** Submissions currently waiting for a slot. */
    std::size_t waiting() const { return waiting_.size(); }
    const HostQueueStats &stats() const { return stats_; }

    /** Record per-request async spans (cat "request", id = request
     *  id): request > queue_wait > device (observation only). */
    void setTrace(trace::TraceSession *session) { trace_ = session; }

    /** sim::EventHandler: a submitted request reached its arrival. */
    void onEvent(sim::EventKind kind,
                 const sim::EventPayload &payload) override;

    /** CompletionSink: the FTL finished a dispatched request. */
    void onCompletion(const Completion &completion,
                      std::uint64_t ctx) override;

  private:
    /** A submission parked behind the queue-depth limit. */
    struct Waiter
    {
        HostRequest req{};
        CompletionSink *sink = nullptr;
        std::uint64_t ctx = 0;
    };

    /** Pooled per-request state between dispatch and completion. */
    struct Record
    {
        CompletionSink *sink = nullptr;
        std::uint64_t ctx = 0;
        SimTime started = 0;
        TenantId tenant = kNoTenant;
    };

    /** Pooled adapter carrying a std::function completion. */
    struct FnSink final : CompletionSink
    {
        CompletionFn fn;
        HostQueue *owner = nullptr;
        void onCompletion(const Completion &completion,
                          std::uint64_t ctx) override;
    };

    void admit(const HostRequest &req, CompletionSink *sink,
               std::uint64_t ctx);
    void start(const HostRequest &req, CompletionSink *sink,
               std::uint64_t ctx);
    void drainWaiting();

    sim::EventQueue &queue_;
    ftl::FtlBase &ftl_;
    std::uint32_t depth_;
    std::uint64_t inFlight_ = 0;
    std::uint64_t nextId_ = 1;
    RingDeque<Waiter> waiting_;
    ObjectPool<Record> records_;
    ObjectPool<FnSink> fnSinks_;
    HostQueueStats stats_;
    trace::TraceSession *trace_ = nullptr;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_HOST_QUEUE_H
