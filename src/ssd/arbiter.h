/**
 * @file
 * NVMe-style submission-queue set with weighted-round-robin
 * arbitration.
 *
 * Real hosts do not share one FIFO: each tenant (VM, container,
 * namespace) owns a submission queue, and the controller arbitrates
 * between the queues — NVMe's optional WRR arbitration — before
 * commands enter the shared device. WrrArbiter reproduces that stage
 * in front of ssd::HostQueue:
 *
 *  - addQueue(weight) registers one submission queue per tenant;
 *  - submit() appends to the tenant's queue at the request's arrival
 *    time (the queue is the per-tenant backlog);
 *  - a WRR scan dispatches into the HostQueue whenever the shared
 *    in-flight window has room: the arbiter visits queues round-robin
 *    and lets the current queue issue up to `weight * burst`
 *    consecutive commands before moving on, so a weight-3 tenant gets
 *    ~3x the dispatch slots of a weight-1 tenant while both are
 *    backlogged, and an idle queue costs nothing.
 *
 * The arbiter owns the in-flight window (`ArbiterConfig::window`);
 * the underlying HostQueue should be unbounded (depth 0) so its FIFO
 * wait line never reorders what the arbiter decided. Queueing delay
 * spent in a submission queue is visible in the completion's
 * queueWait (arrival -> dispatch), exactly like HostQueue
 * backpressure. Dispatch order is deterministic: same submissions,
 * same weights => same interleaving, independent of wall-clock.
 */

#ifndef CUBESSD_SSD_ARBITER_H
#define CUBESSD_SSD_ARBITER_H

#include <cstdint>
#include <vector>

#include "src/common/pool.h"
#include "src/common/ring_deque.h"
#include "src/ssd/host_queue.h"
#include "src/ssd/request.h"

namespace cubessd::ssd {

struct ArbiterConfig
{
    /** Max requests dispatched into the device and not yet completed
     *  (the shared queue-depth window). Must be >= 1. */
    std::uint32_t window = 64;
    /** Consecutive commands a queue of weight 1 may issue per WRR
     *  visit; a queue of weight w issues up to w * burst. Must be
     *  >= 1. */
    std::uint32_t burst = 4;
};

/** Cumulative per-queue arbitration counters. */
struct SubmissionQueueStats
{
    std::uint64_t submitted = 0;   ///< requests entered the queue
    std::uint64_t dispatched = 0;  ///< requests issued to the device
    std::uint64_t completed = 0;
    std::uint64_t maxBacklog = 0;  ///< high-water mark of the queue
};

class WrrArbiter final : public CompletionSink
{
  public:
    WrrArbiter(HostQueue &hostQueue, const ArbiterConfig &config);

    WrrArbiter(const WrrArbiter &) = delete;
    WrrArbiter &operator=(const WrrArbiter &) = delete;

    /** Register one submission queue. @return its index. */
    std::uint32_t addQueue(std::uint32_t weight);

    std::uint32_t queueCount() const
    {
        return static_cast<std::uint32_t>(queues_.size());
    }

    /**
     * Append a request to submission queue `queue`. If the shared
     * window has room and the WRR scan reaches this queue, it is
     * dispatched immediately (same simulated instant); otherwise it
     * waits in the queue. The completion is delivered to `sink` with
     * `ctx` passed back verbatim, tenant tag and all timestamps
     * filled in (arrival = submission here, start = dispatch).
     */
    void submit(std::uint32_t queue, const HostRequest &req,
                CompletionSink *sink, std::uint64_t ctx = 0);

    /** Requests dispatched and not yet completed. */
    std::uint32_t inFlight() const { return inFlight_; }
    /** Requests currently parked in submission queue `queue`. */
    std::size_t backlog(std::uint32_t queue) const
    {
        return queues_[queue].pending.size();
    }
    const SubmissionQueueStats &stats(std::uint32_t queue) const
    {
        return queues_[queue].stats;
    }

    /** CompletionSink: the device finished a dispatched request. */
    void onCompletion(const Completion &completion,
                      std::uint64_t ctx) override;

  private:
    /** A request parked in a submission queue. */
    struct Waiter
    {
        HostRequest req{};
        CompletionSink *sink = nullptr;
        std::uint64_t ctx = 0;
    };

    /** Pooled per-dispatch state (who to notify on completion). */
    struct Pending
    {
        CompletionSink *sink = nullptr;
        std::uint64_t ctx = 0;
        std::uint32_t queue = 0;
        /** Original submission time; HostQueue clamps arrival up to
         *  the dispatch instant, so the arbiter restores it to keep
         *  submission-queue wait inside latency() / queueWait(). */
        SimTime arrival = 0;
    };

    struct SubmissionQueue
    {
        std::uint32_t weight = 1;
        RingDeque<Waiter> pending;
        SubmissionQueueStats stats;
    };

    void pump();
    bool dispatchFrom(std::uint32_t queue);
    void advance();

    HostQueue &hostQueue_;
    ArbiterConfig config_;
    std::vector<SubmissionQueue> queues_;
    ObjectPool<Pending> records_;
    std::uint32_t inFlight_ = 0;
    std::size_t backlogTotal_ = 0;
    /** WRR scan state: current queue and its remaining credits. */
    std::uint32_t current_ = 0;
    std::uint32_t credits_ = 0;
};

}  // namespace cubessd::ssd

#endif  // CUBESSD_SSD_ARBITER_H
