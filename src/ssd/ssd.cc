#include "src/ssd/ssd.h"

#include <utility>

#include "src/common/logging.h"
#include "src/ftl/cube_ftl.h"
#include "src/ftl/page_ftl.h"
#include "src/ftl/vert_ftl.h"

namespace cubessd::ssd {

const char *
ftlKindName(FtlKind kind)
{
    switch (kind) {
      case FtlKind::Page:      return "pageFTL";
      case FtlKind::Vert:      return "vertFTL";
      case FtlKind::Cube:      return "cubeFTL";
      case FtlKind::CubeMinus: return "cubeFTL-";
    }
    return "?";
}

Ssd::Ssd(const SsdConfig &config)
    : config_(config)
{
    if (config_.channels == 0 || config_.chipsPerChannel == 0)
        fatal("Ssd: need at least one channel and one chip");

    channels_.resize(config_.channels);
    chips_.reserve(config_.totalChips());
    for (std::uint32_t i = 0; i < config_.totalChips(); ++i) {
        nand::NandChipConfig cc = config_.chip;
        cc.seed = config_.seed * 0x1000193u + i + 1;
        chips_.emplace_back(cc);
    }
    units_.reserve(chips_.size());
    for (std::uint32_t i = 0; i < chips_.size(); ++i) {
        units_.emplace_back(chips_[i],
                            channels_[i / config_.chipsPerChannel],
                            queue_);
    }

    switch (config_.ftl) {
      case FtlKind::Page:
        ftl_ = std::make_unique<ftl::PageFtl>(config_, units_, queue_);
        break;
      case FtlKind::Vert:
        ftl_ = std::make_unique<ftl::VertFtl>(config_, units_, queue_);
        break;
      case FtlKind::Cube:
        ftl_ = std::make_unique<ftl::CubeFtl>(config_, units_, queue_,
                                              ftl::OpmConfig{},
                                              config_.cubeFeatures);
        break;
      case FtlKind::CubeMinus: {
        CubeFeatures features = config_.cubeFeatures;
        features.wam = false;
        ftl_ = std::make_unique<ftl::CubeFtl>(config_, units_, queue_,
                                              ftl::OpmConfig{},
                                              features);
        break;
      }
    }

    hostQueue_ = std::make_unique<HostQueue>(queue_, *ftl_,
                                             config_.hostQueueDepth);
}

Ssd::~Ssd() = default;

void
Ssd::setAging(const nand::AgingState &aging)
{
    for (auto &chip : chips_)
        chip.setAging(aging);
}

void
Ssd::submit(HostRequest req,
            std::function<void(const Completion &)> done)
{
    hostQueue_->submit(std::move(req), std::move(done));
}

Completion
Ssd::submitSync(HostRequest req)
{
    Completion result;
    bool finished = false;
    submit(std::move(req), [&](const Completion &c) {
        result = c;
        finished = true;
    });
    while (!finished && queue_.step()) {
    }
    if (!finished)
        panic("Ssd::submitSync: request never completed");
    return result;
}

void
Ssd::drain()
{
    ftl_->flushAll();
    queue_.run();
}

std::optional<std::uint64_t>
Ssd::peek(Lba lba) const
{
    return ftl_->peek(lba);
}

}  // namespace cubessd::ssd
