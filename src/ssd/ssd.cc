#include "src/ssd/ssd.h"

#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/ftl/cube_ftl.h"
#include "src/ftl/page_ftl.h"
#include "src/ftl/vert_ftl.h"
#include "src/trace/counters.h"
#include "src/trace/trace.h"

namespace cubessd::ssd {

std::string
SsdConfig::validate() const
{
    if (channels == 0)
        return "channels must be at least 1";
    if (chipsPerChannel == 0)
        return "chipsPerChannel must be at least 1";

    const auto &geom = chip.geometry;
    if (geom.blocksPerChip == 0 || geom.layersPerBlock == 0 ||
        geom.wlsPerLayer == 0 || geom.pagesPerWl == 0 ||
        geom.pageSizeBytes == 0) {
        return "chip.geometry has a zero dimension (blocksPerChip, "
               "layersPerBlock, wlsPerLayer, pagesPerWl and "
               "pageSizeBytes must all be positive)";
    }

    if (!(logicalFraction > 0.0) || logicalFraction > 1.0)
        return "logicalFraction must be in (0, 1]";

    if (writeBufferPages < geom.pagesPerWl)
        return "writeBufferPages must hold at least one WL (" +
               std::to_string(geom.pagesPerWl) + " pages)";

    if (gcUrgentWatermark >= gcLowWatermark)
        return "gcUrgentWatermark must be below gcLowWatermark "
               "(urgent backpressure engages before normal GC)";
    if (gcLowWatermark > gcHighWatermark)
        return "gcLowWatermark must not exceed gcHighWatermark "
               "(GC hysteresis range is [low, high])";

    // Over-provisioned space must cover the active write points plus
    // the GC watermarks on every chip (same floor FtlBase enforces).
    const std::uint64_t dataBlocksPerChip =
        (logicalPages() / totalChips() + geom.pagesPerBlock() - 1) /
        geom.pagesPerBlock();
    const std::uint64_t spare = geom.blocksPerChip > dataBlocksPerChip
        ? geom.blocksPerChip - dataBlocksPerChip
        : 0;
    if (spare < gcHighWatermark + 3)
        return "only " + std::to_string(spare) +
               " spare blocks per chip; need at least gcHighWatermark "
               "+ 3 = " + std::to_string(gcHighWatermark + 3) +
               " (lower logicalFraction or grow blocksPerChip)";

    const auto &faults = chip.faults;
    if (faults.programFailBase < 0.0 || faults.programFailBase > 1.0)
        return "chip.faults.programFailBase must be a probability "
               "in [0, 1]";
    if (faults.eraseFailBase < 0.0 || faults.eraseFailBase > 1.0)
        return "chip.faults.eraseFailBase must be a probability "
               "in [0, 1]";
    if (faults.uncorrectableNormLimit < 0.0)
        return "chip.faults.uncorrectableNormLimit must be >= 0 "
               "(0 disables the limit)";
    if (faults.wearScale < 0.0)
        return "chip.faults.wearScale must be >= 0";

    return {};
}

const char *
ftlKindName(FtlKind kind)
{
    switch (kind) {
      case FtlKind::Page:      return "pageFTL";
      case FtlKind::Vert:      return "vertFTL";
      case FtlKind::Cube:      return "cubeFTL";
      case FtlKind::CubeMinus: return "cubeFTL-";
    }
    return "?";
}

Ssd::Ssd(const SsdConfig &config)
    : config_(config)
{
    if (const std::string err = config_.validate(); !err.empty())
        fatal("Ssd: invalid configuration: %s", err.c_str());

    channels_.resize(config_.channels);
    chips_.reserve(config_.totalChips());
    for (std::uint32_t i = 0; i < config_.totalChips(); ++i) {
        nand::NandChipConfig cc = config_.chip;
        cc.seed = config_.seed * 0x1000193u + i + 1;
        chips_.emplace_back(cc);
    }
    units_.reserve(chips_.size());
    for (std::uint32_t i = 0; i < chips_.size(); ++i) {
        units_.emplace_back(chips_[i],
                            channels_[i / config_.chipsPerChannel],
                            queue_);
    }

    switch (config_.ftl) {
      case FtlKind::Page:
        ftl_ = std::make_unique<ftl::PageFtl>(config_, units_, queue_);
        break;
      case FtlKind::Vert:
        ftl_ = std::make_unique<ftl::VertFtl>(config_, units_, queue_);
        break;
      case FtlKind::Cube:
        ftl_ = std::make_unique<ftl::CubeFtl>(config_, units_, queue_,
                                              ftl::OpmConfig{},
                                              config_.cubeFeatures);
        break;
      case FtlKind::CubeMinus: {
        CubeFeatures features = config_.cubeFeatures;
        features.wam = false;
        ftl_ = std::make_unique<ftl::CubeFtl>(config_, units_, queue_,
                                              ftl::OpmConfig{},
                                              features);
        break;
      }
    }

    hostQueue_ = std::make_unique<HostQueue>(queue_, *ftl_,
                                             config_.hostQueueDepth);
}

Ssd::~Ssd() = default;

void
Ssd::setAging(const nand::AgingState &aging)
{
    for (auto &chip : chips_)
        chip.setAging(aging);
}

RequestId
Ssd::submit(HostRequest req, CompletionSink *sink, std::uint64_t ctx)
{
    return hostQueue_->submit(std::move(req), sink, ctx);
}

RequestId
Ssd::submitWithCallback(HostRequest req,
                        std::function<void(const Completion &)> done)
{
    return hostQueue_->submitWithCallback(std::move(req),
                                          std::move(done));
}

namespace {

/** Stack-local sink for submitSync: captures the one completion. */
struct SyncSink final : CompletionSink
{
    Completion result{};
    bool finished = false;

    void
    onCompletion(const Completion &completion, std::uint64_t) override
    {
        result = completion;
        finished = true;
    }
};

}  // namespace

Completion
Ssd::submitSync(HostRequest req)
{
    SyncSink sink;
    submit(std::move(req), &sink);
    while (!sink.finished && queue_.step()) {
    }
    if (!sink.finished)
        panic("Ssd::submitSync: request never completed");
    return sink.result;
}

void
Ssd::drain()
{
    ftl_->flushAll();
    queue_.run();
}

std::optional<std::uint64_t>
Ssd::peek(Lba lba) const
{
    return ftl_->peek(lba);
}

void
Ssd::attachTrace(trace::TraceSession *session)
{
    hostQueue_->setTrace(session);
    if (session == nullptr) {
        ftl_->setTrace(nullptr, 0, {});
        for (auto &ch : channels_)
            ch.setTrace(nullptr, 0);
        for (auto &unit : units_)
            unit.setTrace(nullptr, 0);
        return;
    }

    // Track order fixes the Perfetto row order: FTL events on top,
    // then GC episodes, bus occupancy, and the individual dies.
    const std::uint32_t ftlTrack = session->addTrack("ftl");
    std::vector<std::uint32_t> gcTracks;
    gcTracks.reserve(chips_.size());
    for (std::uint32_t i = 0; i < chips_.size(); ++i)
        gcTracks.push_back(
            session->addTrack("gc/chip" + std::to_string(i)));
    ftl_->setTrace(session, ftlTrack, std::move(gcTracks));

    for (std::uint32_t i = 0; i < channels_.size(); ++i)
        channels_[i].setTrace(
            session, session->addTrack("bus/ch" + std::to_string(i)));
    for (std::uint32_t i = 0; i < units_.size(); ++i)
        units_[i].setTrace(session,
                           session->addTrack("die/" + std::to_string(i)));
}

void
Ssd::registerCounters(trace::CounterRegistry &reg)
{
    // Completion rate over the sampling window: the probe keeps the
    // previous sample point and differentiates the cumulative count.
    reg.add("iops", "req/s",
            [this, prev = std::pair<SimTime, std::uint64_t>{0, 0}](
                SimTime now) mutable {
                const std::uint64_t completed =
                    hostQueue_->stats().completed;
                const SimTime dt = now - prev.first;
                const std::uint64_t delta = completed - prev.second;
                prev = {now, completed};
                return dt == 0
                    ? 0.0
                    : static_cast<double>(delta) * 1e9 /
                          static_cast<double>(dt);
            });
    reg.add("queue_depth", "requests", [this](SimTime) {
        return static_cast<double>(hostQueue_->inFlight() +
                                   hostQueue_->waiting());
    });
    reg.add("nand.term_cache_hit_rate", "percent", [this](SimTime) {
        std::uint64_t hits = 0;
        std::uint64_t lookups = 0;
        for (const auto &chip : chips_) {
            const auto &c = chip.termCache().counters();
            hits += c.wlHits;
            lookups += c.wlHits + c.wlMisses;
        }
        return lookups == 0 ? 0.0
                            : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    });
    ftl_->registerCounters(reg);
}

}  // namespace cubessd::ssd
