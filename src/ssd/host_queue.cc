#include "src/ssd/host_queue.h"

#include <algorithm>
#include <utility>

#include "src/ftl/ftl_base.h"
#include "src/prof/prof.h"
#include "src/trace/trace.h"

namespace cubessd::ssd {

namespace {

const char *
requestSpanName(IoType type)
{
    return type == IoType::Read ? "read" : "write";
}

}  // namespace

HostQueue::HostQueue(sim::EventQueue &queue, ftl::FtlBase &ftl,
                     std::uint32_t depth)
    : queue_(queue), ftl_(ftl), depth_(depth)
{
}

RequestId
HostQueue::submit(HostRequest req, CompletionSink *sink,
                  std::uint64_t ctx)
{
    PROF_SCOPE(prof::Slot::SsdHostQueue);
    if (req.id == 0)
        req.id = nextId_++;
    req.arrival = std::max(req.arrival, queue_.now());
    ++stats_.submitted;
    sim::EventPayload payload;
    payload.hostAdmit = {sink, ctx,      req.id, req.lba,
                         req.arrival,
                         req.pages,
                         static_cast<std::uint8_t>(req.type),
                         req.tenant,
                         req.namespaceId};
    queue_.scheduleAt(req.arrival, sim::EventKind::HostAdmit, this,
                      payload);
    return req.id;
}

RequestId
HostQueue::submitWithCallback(HostRequest req, CompletionFn done)
{
    FnSink *adapter = fnSinks_.acquire();
    adapter->fn = std::move(done);
    adapter->owner = this;
    return submit(std::move(req), adapter, 0);
}

void
HostQueue::FnSink::onCompletion(const Completion &completion,
                                std::uint64_t)
{
    // Move the closure out and recycle the node before invoking: the
    // callback may submit follow-on requests that reuse it.
    CompletionFn f = std::move(fn);
    owner->fnSinks_.release(this);
    if (f)
        f(completion);
}

void
HostQueue::onEvent(sim::EventKind, const sim::EventPayload &payload)
{
    const auto &a = payload.hostAdmit;
    HostRequest req;
    req.id = a.id;
    req.type = static_cast<IoType>(a.type);
    req.lba = a.lba;
    req.pages = a.pages;
    req.arrival = a.arrival;
    req.tenant = a.tenant;
    req.namespaceId = a.namespaceId;
    admit(req, static_cast<CompletionSink *>(a.sink), a.sinkCtx);
}

void
HostQueue::admit(const HostRequest &req, CompletionSink *sink,
                 std::uint64_t ctx)
{
    PROF_SCOPE(prof::Slot::SsdHostQueue);
    if (trace_ != nullptr) {
        PROF_SCOPE(prof::Slot::ObsMetricsTrace);
        // One async group per request id, nested begin/end: the outer
        // span is the whole request, queue_wait and device partition
        // its lifetime. Tenant-tagged requests carry their stream id
        // so Perfetto queries can slice the timeline per tenant.
        if (req.tenant != kNoTenant) {
            trace_->asyncBegin(
                "request", requestSpanName(req.type), req.id,
                queue_.now(),
                {{"lba", static_cast<std::int64_t>(req.lba)},
                 {"pages", req.pages},
                 {"tenant", req.tenant},
                 {"namespace", req.namespaceId}});
        } else {
            trace_->asyncBegin(
                "request", requestSpanName(req.type), req.id,
                queue_.now(),
                {{"lba", static_cast<std::int64_t>(req.lba)},
                 {"pages", req.pages}});
        }
        trace_->asyncBegin("request", "queue_wait", req.id,
                           queue_.now());
    }
    if (depth_ != 0 && inFlight_ >= depth_) {
        ++stats_.blockedSubmissions;
        waiting_.push_back(Waiter{req, sink, ctx});
        stats_.maxWaiting =
            std::max<std::uint64_t>(stats_.maxWaiting, waiting_.size());
        return;
    }
    start(req, sink, ctx);
}

void
HostQueue::start(const HostRequest &req, CompletionSink *sink,
                 std::uint64_t ctx)
{
    PROF_SCOPE(prof::Slot::SsdHostQueue);
    ++inFlight_;
    const SimTime started = queue_.now();
    stats_.queueWaitSum += started - req.arrival;
    if (trace_ != nullptr) {
        PROF_SCOPE(prof::Slot::ObsMetricsTrace);
        trace_->asyncEnd("request", "queue_wait", req.id, started);
        trace_->asyncBegin("request", "device", req.id, started);
    }

    Record *record = records_.acquire();
    record->sink = sink;
    record->ctx = ctx;
    record->started = started;
    record->tenant = req.tenant;

    if (req.type == IoType::Read)
        ftl_.hostRead(req, this, reinterpret_cast<std::uint64_t>(record));
    else
        ftl_.hostWrite(req, this,
                       reinterpret_cast<std::uint64_t>(record));
}

void
HostQueue::onCompletion(const Completion &completion, std::uint64_t ctx)
{
    PROF_SCOPE(prof::Slot::SsdHostQueue);
    auto *record = reinterpret_cast<Record *>(ctx);
    Completion out = completion;
    out.start = record->started;
    out.tenant = record->tenant;
    out.phases.queueWait = out.start - out.arrival;
    CompletionSink *sink = record->sink;
    const std::uint64_t downstreamCtx = record->ctx;
    records_.release(record);

    --inFlight_;
    ++stats_.completed;
    stats_.latencySum += out.latency();
    if (trace_ != nullptr) {
        PROF_SCOPE(prof::Slot::ObsMetricsTrace);
        trace_->asyncEnd("request", "device", out.id, queue_.now());
        trace_->asyncEnd("request", requestSpanName(out.type), out.id,
                         queue_.now());
    }
    // Hand the freed slot to the oldest waiter before the host sees
    // the completion, so backpressure release is FIFO.
    drainWaiting();
    if (sink != nullptr)
        sink->onCompletion(out, downstreamCtx);
}

void
HostQueue::drainWaiting()
{
    while (!waiting_.empty() &&
           (depth_ == 0 || inFlight_ < depth_)) {
        const Waiter waiter = waiting_.front();
        waiting_.pop_front();
        start(waiter.req, waiter.sink, waiter.ctx);
    }
}

}  // namespace cubessd::ssd
