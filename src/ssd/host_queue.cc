#include "src/ssd/host_queue.h"

#include <algorithm>

#include "src/ftl/ftl_base.h"
#include "src/trace/trace.h"

namespace cubessd::ssd {

namespace {

const char *
requestSpanName(IoType type)
{
    return type == IoType::Read ? "read" : "write";
}

}  // namespace

HostQueue::HostQueue(sim::EventQueue &queue, ftl::FtlBase &ftl,
                     std::uint32_t depth)
    : queue_(queue), ftl_(ftl), depth_(depth)
{
}

RequestId
HostQueue::submit(HostRequest req, CompletionFn done)
{
    if (req.id == 0)
        req.id = nextId_++;
    req.arrival = std::max(req.arrival, queue_.now());
    ++stats_.submitted;
    queue_.scheduleAt(req.arrival,
                      [this, req, done = std::move(done)]() {
                          admit(req, done);
                      });
    return req.id;
}

void
HostQueue::admit(const HostRequest &req, const CompletionFn &done)
{
    if (trace_ != nullptr) {
        // One async group per request id, nested begin/end: the outer
        // span is the whole request, queue_wait and device partition
        // its lifetime.
        trace_->asyncBegin(
            "request", requestSpanName(req.type), req.id, queue_.now(),
            {{"lba", static_cast<std::int64_t>(req.lba)},
             {"pages", req.pages}});
        trace_->asyncBegin("request", "queue_wait", req.id,
                           queue_.now());
    }
    if (depth_ != 0 && inFlight_ >= depth_) {
        ++stats_.blockedSubmissions;
        waiting_.emplace_back(req, done);
        stats_.maxWaiting =
            std::max<std::uint64_t>(stats_.maxWaiting, waiting_.size());
        return;
    }
    start(req, done);
}

void
HostQueue::start(const HostRequest &req, const CompletionFn &done)
{
    ++inFlight_;
    const SimTime started = queue_.now();
    stats_.queueWaitSum += started - req.arrival;
    if (trace_ != nullptr) {
        trace_->asyncEnd("request", "queue_wait", req.id, started);
        trace_->asyncBegin("request", "device", req.id, started);
    }

    auto wrapped = [this, done, started,
                    type = req.type](const Completion &c) {
        Completion out = c;
        out.start = started;
        out.phases.queueWait = out.start - out.arrival;
        --inFlight_;
        ++stats_.completed;
        stats_.latencySum += out.latency();
        if (trace_ != nullptr) {
            trace_->asyncEnd("request", "device", out.id, queue_.now());
            trace_->asyncEnd("request", requestSpanName(type), out.id,
                             queue_.now());
        }
        // Hand the freed slot to the oldest waiter before the host
        // sees the completion, so backpressure release is FIFO.
        drainWaiting();
        if (done)
            done(out);
    };

    if (req.type == IoType::Read)
        ftl_.hostRead(req, std::move(wrapped));
    else
        ftl_.hostWrite(req, std::move(wrapped));
}

void
HostQueue::drainWaiting()
{
    while (!waiting_.empty() &&
           (depth_ == 0 || inFlight_ < depth_)) {
        auto [req, done] = std::move(waiting_.front());
        waiting_.pop_front();
        start(req, done);
    }
}

}  // namespace cubessd::ssd
