#include "src/metrics/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/common/logging.h"

namespace cubessd::metrics {

JsonWriter::JsonWriter(std::ostream &out)
    : out_(out)
{
}

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;  // value completes the "key": prefix, no comma
    }
    if (!scopeItems_.empty()) {
        if (scopeItems_.back() > 0)
            out_ << ',';
        ++scopeItems_.back();
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ << '{';
    scopeItems_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (scopeItems_.empty())
        fatal("JsonWriter: endObject with no open scope");
    scopeItems_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ << '[';
    scopeItems_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (scopeItems_.empty())
        fatal("JsonWriter: endArray with no open scope");
    scopeItems_.pop_back();
    out_ << ']';
    return *this;
}

namespace {

void
writeEscaped(std::ostream &out, const std::string &s)
{
    out << '"';
    for (const char c : s) {
        switch (c) {
          case '"':  out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          case '\r': out << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

}  // namespace

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (pendingKey_)
        fatal("JsonWriter: key('%s') after a dangling key",
              name.c_str());
    separate();
    writeEscaped(out_, name);
    out_ << ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    writeEscaped(out_, v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    return value(v, 6);
}

JsonWriter &
JsonWriter::value(double v, int sigDigits)
{
    separate();
    if (!std::isfinite(v)) {
        out_ << "null";  // JSON has no NaN/Inf
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", sigDigits, v);
    // snprintf honors LC_NUMERIC; a non-C locale's ',' decimal
    // separator would be invalid JSON.
    for (char *p = buf; *p != '\0'; ++p) {
        if (*p == ',')
            *p = '.';
    }
    out_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ << (v ? "true" : "false");
    return *this;
}

// ---------------------------------------------------------------------
// Observability schema helpers
// ---------------------------------------------------------------------

namespace {

double
toUs(double ns)
{
    return ns / 1000.0;
}

}  // namespace

void
writeLatencySummaryUs(JsonWriter &w, const LatencyHistogram &h)
{
    w.beginObject();
    w.field("count", h.total());
    w.field("mean_us", toUs(h.mean()));
    w.field("min_us", toUs(static_cast<double>(h.min())));
    w.field("p50_us", toUs(h.percentile(50.0)));
    w.field("p95_us", toUs(h.percentile(95.0)));
    w.field("p99_us", toUs(h.percentile(99.0)));
    w.field("p999_us", toUs(h.percentile(99.9)));
    w.field("max_us", toUs(static_cast<double>(h.max())));
    w.endObject();
}

void
writePhasesUs(JsonWriter &w, const PhaseHistograms &p)
{
    w.beginObject();
    w.key("queueWait");
    writeLatencySummaryUs(w, p.queueWait);
    w.key("buffer");
    writeLatencySummaryUs(w, p.buffer);
    w.key("bus");
    writeLatencySummaryUs(w, p.bus);
    w.key("die");
    writeLatencySummaryUs(w, p.die);
    w.key("retry");
    writeLatencySummaryUs(w, p.retry);
    w.endObject();
}

void
writeRequestMetrics(JsonWriter &w, const RequestMetrics &m)
{
    w.beginObject();
    for (const auto type : {ssd::IoType::Read, ssd::IoType::Write}) {
        w.key(type == ssd::IoType::Read ? "read" : "write");
        w.beginObject();
        w.key("latency");
        writeLatencySummaryUs(w, m.latency(type));
        w.key("phases");
        writePhasesUs(w, m.phases(type));
        w.endObject();
    }
    w.key("status");
    w.beginObject();
    const auto &counts = m.statusCounts();
    for (std::size_t s = 0; s < counts.size(); ++s)
        w.field(ssd::statusName(static_cast<ssd::Status>(s)),
                counts[s]);
    w.endObject();
    w.endObject();
}

void
writeUtilization(JsonWriter &w, const Utilization &u)
{
    w.beginObject();
    w.field("window_us", toUs(static_cast<double>(u.window)));
    w.key("channel");
    w.beginArray();
    for (const double c : u.channel)
        w.value(c);
    w.endArray();
    w.field("channel_avg", u.averageChannel());
    w.key("die");
    w.beginArray();
    for (const double d : u.die)
        w.value(d);
    w.endArray();
    w.field("die_avg", u.averageDie());
    w.endObject();
}

}  // namespace cubessd::metrics
