#include "src/metrics/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/common/logging.h"
#include "src/ftl/gc.h"

namespace cubessd::metrics {

Table::Table(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
Table::row(std::vector<std::string> cells)
{
    if (cells.size() != rows_.front().size())
        fatal("Table: row has %zu cells, header has %zu", cells.size(),
              rows_.front().size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> width(rows_.front().size(), 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        out << "  ";
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            out << rows_[r][c];
            if (c + 1 < rows_[r].size()) {
                out << std::string(width[c] - rows_[r][c].size() + 2,
                                   ' ');
            }
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 2;
            for (std::size_t c = 0; c < width.size(); ++c)
                total += width[c] + (c + 1 < width.size() ? 2 : 0);
            out << "  " << std::string(total - 2, '-') << '\n';
        }
    }
}

std::string
format(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
formatPercent(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

void
printCdf(std::ostream &out, const std::string &title,
         const std::vector<std::pair<double, double>> &cdf)
{
    out << title << '\n';
    for (const auto &[x, f] : cdf)
        out << "  " << format(x, 1) << "  " << format(f, 4) << '\n';
}

Table
gcStatsTable(const ftl::GcStats &stats)
{
    Table table({"GC metric", "value"});
    table.row({"collections", std::to_string(stats.collections)});
    table.row({"relocated pages",
               std::to_string(stats.relocatedPages)});
    table.row({"erases", std::to_string(stats.erases)});
    table.row({"scan reads", std::to_string(stats.scanReads)});
    table.row({"WL programs", std::to_string(stats.programs)});
    table.row({"avg GC program latency (us)",
               format(stats.avgProgramLatencyUs(), 1)});
    return table;
}

PaperComparison::PaperComparison(std::string experiment)
    : experiment_(std::move(experiment)),
      table_({"metric", "paper", "measured", "note"})
{
}

void
PaperComparison::add(const std::string &metric, const std::string &paper,
                     const std::string &measured, const std::string &note)
{
    table_.row({metric, paper, measured, note});
}

void
PaperComparison::print(std::ostream &out) const
{
    out << "\n=== paper vs measured: " << experiment_ << " ===\n";
    table_.print(out);
}

}  // namespace cubessd::metrics
