#include "src/metrics/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/common/logging.h"
#include "src/ftl/gc.h"
#include "src/ftl/ort.h"

namespace cubessd::metrics {

Table::Table(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
Table::row(std::vector<std::string> cells)
{
    if (cells.size() != rows_.front().size())
        fatal("Table: row has %zu cells, header has %zu", cells.size(),
              rows_.front().size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> width(rows_.front().size(), 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        out << "  ";
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            out << rows_[r][c];
            if (c + 1 < rows_[r].size()) {
                out << std::string(width[c] - rows_[r][c].size() + 2,
                                   ' ');
            }
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 2;
            for (std::size_t c = 0; c < width.size(); ++c)
                total += width[c] + (c + 1 < width.size() ? 2 : 0);
            out << "  " << std::string(total - 2, '-') << '\n';
        }
    }
}

std::string
format(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
formatPercent(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

void
printCdf(std::ostream &out, const std::string &title,
         const std::vector<std::pair<double, double>> &cdf)
{
    out << title << '\n';
    for (const auto &[x, f] : cdf)
        out << "  " << format(x, 1) << "  " << format(f, 4) << '\n';
}

Table
gcStatsTable(const ftl::GcStats &stats)
{
    Table table({"GC metric", "value"});
    table.row({"collections", std::to_string(stats.collections)});
    table.row({"relocated pages",
               std::to_string(stats.relocatedPages)});
    table.row({"erases", std::to_string(stats.erases)});
    table.row({"scan reads", std::to_string(stats.scanReads)});
    table.row({"WL programs", std::to_string(stats.programs)});
    table.row({"avg GC program latency (us)",
               format(stats.avgProgramLatencyUs(), 1)});
    return table;
}

Table
ortLayerTable(const ftl::Ort &ort, std::uint32_t groupLayers)
{
    const std::uint32_t layers = ort.layersPerBlock();
    if (groupLayers == 0)
        groupLayers = layers;

    Table table({"h-layers", "hits", "misses", "hit rate"});
    for (std::uint32_t base = 0; base < layers; base += groupLayers) {
        const std::uint32_t last =
            std::min(base + groupLayers, layers) - 1;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        for (std::uint32_t l = base; l <= last; ++l) {
            hits += ort.layerHits(l);
            misses += ort.layerMisses(l);
        }
        if (hits + misses == 0)
            continue;
        table.row({std::to_string(base) + "-" + std::to_string(last),
                   std::to_string(hits), std::to_string(misses),
                   formatPercent(static_cast<double>(hits) /
                                 static_cast<double>(hits + misses))});
    }
    return table;
}

Table
vfySavingsTable(std::uint64_t verifiesDone,
                std::uint64_t verifiesSkipped,
                std::uint64_t vfyTimeSavedNs)
{
    const std::uint64_t planned = verifiesDone + verifiesSkipped;
    Table table({"VFY metric", "value"});
    table.row({"verifies done", std::to_string(verifiesDone)});
    table.row({"verifies skipped", std::to_string(verifiesSkipped)});
    table.row({"skip rate",
               planned == 0
                   ? "n/a"
                   : formatPercent(static_cast<double>(verifiesSkipped) /
                                   static_cast<double>(planned))});
    table.row({"est. program time saved (ms)",
               format(static_cast<double>(vfyTimeSavedNs) / 1e6, 3)});
    return table;
}

PaperComparison::PaperComparison(std::string experiment)
    : experiment_(std::move(experiment)),
      table_({"metric", "paper", "measured", "note"})
{
}

void
PaperComparison::add(const std::string &metric, const std::string &paper,
                     const std::string &measured, const std::string &note)
{
    table_.row({metric, paper, measured, note});
}

void
PaperComparison::print(std::ostream &out) const
{
    out << "\n=== paper vs measured: " << experiment_ << " ===\n";
    table_.print(out);
}

}  // namespace cubessd::metrics
