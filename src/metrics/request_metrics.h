/**
 * @file
 * Request-level observability: per-IoType latency histograms with a
 * per-phase decomposition, plus channel/die utilization snapshots.
 *
 * RequestMetrics consumes the Completion trace records the pipeline
 * emits (ssd::PhaseTimes) and keeps one log-scale histogram per
 * IoType for end-to-end latency and one per (IoType, phase) for the
 * decomposition — enough to answer "where did the p99 go" without
 * storing samples. Everything merges, so multi-seed benches can
 * aggregate before exporting.
 */

#ifndef CUBESSD_METRICS_REQUEST_METRICS_H
#define CUBESSD_METRICS_REQUEST_METRICS_H

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/metrics/histogram.h"
#include "src/ssd/request.h"

namespace cubessd::metrics {

/** Histograms of one phase decomposition (all values nanoseconds). */
struct PhaseHistograms
{
    LatencyHistogram queueWait;
    LatencyHistogram buffer;
    LatencyHistogram bus;
    LatencyHistogram die;
    LatencyHistogram retry;

    void merge(const PhaseHistograms &other);
};

class RequestMetrics
{
  public:
    /** Fold one completion (with its trace record) in. */
    void record(const ssd::Completion &completion);

    /** End-to-end latency histogram of one IoType (nanoseconds). */
    const LatencyHistogram &latency(ssd::IoType type) const
    {
        return latency_[index(type)];
    }
    /** Phase decomposition of one IoType (nanoseconds). */
    const PhaseHistograms &phases(ssd::IoType type) const
    {
        return phases_[index(type)];
    }

    std::uint64_t recorded(ssd::IoType type) const
    {
        return latency_[index(type)].total();
    }

    /** Completions per ssd::Status (index with the enum value). */
    const std::array<std::uint64_t, ssd::kStatusCount> &
    statusCounts() const
    {
        return statusCounts_;
    }

    void merge(const RequestMetrics &other);

  private:
    static std::size_t index(ssd::IoType type)
    {
        return type == ssd::IoType::Read ? 0 : 1;
    }

    LatencyHistogram latency_[2];
    PhaseHistograms phases_[2];
    std::array<std::uint64_t, ssd::kStatusCount> statusCounts_{};
};

/**
 * Busy fractions of the shared resources over one measurement window
 * (busy-time delta / window length). Filled by the workload driver
 * from Channel::busyTime() and ChipUnit::busyTime().
 */
struct Utilization
{
    std::vector<double> channel;  ///< per channel, 0..1
    std::vector<double> die;      ///< per die, 0..1
    SimTime window = 0;           ///< measurement window (ns)

    double averageChannel() const;
    double averageDie() const;
};

}  // namespace cubessd::metrics

#endif  // CUBESSD_METRICS_REQUEST_METRICS_H
