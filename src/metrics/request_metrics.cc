#include "src/metrics/request_metrics.h"

#include "src/prof/prof.h"

namespace cubessd::metrics {

void
PhaseHistograms::merge(const PhaseHistograms &other)
{
    queueWait.merge(other.queueWait);
    buffer.merge(other.buffer);
    bus.merge(other.bus);
    die.merge(other.die);
    retry.merge(other.retry);
}

void
RequestMetrics::record(const ssd::Completion &completion)
{
    PROF_SCOPE(prof::Slot::ObsMetricsTrace);
    const std::size_t i = index(completion.type);
    latency_[i].add(static_cast<std::uint64_t>(completion.latency()));
    auto &p = phases_[i];
    p.queueWait.add(
        static_cast<std::uint64_t>(completion.phases.queueWait));
    p.buffer.add(static_cast<std::uint64_t>(completion.phases.buffer));
    p.bus.add(static_cast<std::uint64_t>(completion.phases.bus));
    p.die.add(static_cast<std::uint64_t>(completion.phases.die));
    p.retry.add(static_cast<std::uint64_t>(completion.phases.retry));
    ++statusCounts_[static_cast<std::size_t>(completion.status)];
}

void
RequestMetrics::merge(const RequestMetrics &other)
{
    for (std::size_t i = 0; i < 2; ++i) {
        latency_[i].merge(other.latency_[i]);
        phases_[i].merge(other.phases_[i]);
    }
    for (std::size_t s = 0; s < statusCounts_.size(); ++s)
        statusCounts_[s] += other.statusCounts_[s];
}

namespace {

double
average(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

}  // namespace

double
Utilization::averageChannel() const
{
    return average(channel);
}

double
Utilization::averageDie() const
{
    return average(die);
}

}  // namespace cubessd::metrics
