/**
 * @file
 * Reporting helpers shared by the benchmark harness: aligned tables,
 * CDF printing, and paper-vs-measured bookkeeping for EXPERIMENTS.md.
 */

#ifndef CUBESSD_METRICS_REPORT_H
#define CUBESSD_METRICS_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace cubessd::ftl {
struct GcStats;
class Ort;
}  // namespace cubessd::ftl

namespace cubessd::nand {
struct NandChipStats;
}

namespace cubessd::metrics {

/**
 * A simple fixed-column text table.
 *
 * @code
 *   Table t({"workload", "pageFTL", "cubeFTL"});
 *   t.row({"OLTP", format(1.0), format(1.48)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void row(std::vector<std::string> cells);
    void print(std::ostream &out) const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with `digits` fraction digits. */
std::string format(double value, int digits = 3);

/** Format a percentage ("12.3%"). */
std::string formatPercent(double fraction, int digits = 1);

/** Print a (x, F(x)) CDF as two columns. */
void printCdf(std::ostream &out, const std::string &title,
              const std::vector<std::pair<double, double>> &cdf);

/**
 * Render the GC subsystem's counters (collections, relocated pages,
 * erases, GC-induced program latency) as a metric/value table.
 */
Table gcStatsTable(const ftl::GcStats &stats);

/**
 * Per-h-layer ORT hit/miss table, grouping `groupLayers` adjacent
 * layers per row ("layers 0-7 | hits | misses | hit rate"). Rows with
 * no lookups are elided. A `groupLayers` of 0 collapses to one row.
 */
Table ortLayerTable(const ftl::Ort &ort, std::uint32_t groupLayers = 8);

/**
 * VFY-skip savings summary across chips: verifies done vs skipped,
 * skip rate, and estimated program time saved (the Sec. 4.1
 * tPROG-reduction mechanism). `vfyTimeSavedNs` is the sum of
 * NandChip::vfyTimeSaved() over the devices being reported.
 */
Table vfySavingsTable(std::uint64_t verifiesDone,
                      std::uint64_t verifiesSkipped,
                      std::uint64_t vfyTimeSavedNs);

/**
 * Collects paper-reported values next to measured ones and renders
 * the comparison block each bench prints at the end (and which
 * EXPERIMENTS.md quotes).
 */
class PaperComparison
{
  public:
    explicit PaperComparison(std::string experiment);

    /**
     * @param metric     human-readable name ("IOPS gain, OLTP, fresh")
     * @param paper      the paper's reported value
     * @param measured   our value
     * @param note       optional qualifier ("shape only")
     */
    void add(const std::string &metric, const std::string &paper,
             const std::string &measured, const std::string &note = "");

    void print(std::ostream &out) const;

  private:
    std::string experiment_;
    Table table_;
};

}  // namespace cubessd::metrics

#endif  // CUBESSD_METRICS_REPORT_H
