/**
 * @file
 * Machine-readable metrics export.
 *
 * JsonWriter is a tiny streaming JSON emitter (no dependency, no DOM)
 * with automatic comma/nesting bookkeeping; the helpers below render
 * the observability types into the stable schema that cubessd_sim's
 * --metrics-out and the BENCH_*.json files share, so successive PRs
 * can diff percentiles rather than scalar means:
 *
 *   latency summary: {"count", "mean_us", "min_us", "p50_us",
 *                     "p95_us", "p99_us", "p999_us", "max_us"}
 *   phase block:     {"queueWait": <summary>, "buffer": ..., "bus": ...,
 *                     "die": ..., "retry": ...}
 *   utilization:     {"window_us", "channel": [..], "die": [..],
 *                     "channel_avg", "die_avg"}
 */

#ifndef CUBESSD_METRICS_JSON_H
#define CUBESSD_METRICS_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/metrics/request_metrics.h"

namespace cubessd::metrics {

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member name; must be followed by a value or begin*(). */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    /** Doubles render with 6 significant digits; NaN and +/-Inf have
     *  no JSON spelling and serialize as `null`. */
    JsonWriter &value(double v);
    /** Double with explicit precision (e.g. 16 digits so trace
     *  timestamps survive the decimal round trip). */
    JsonWriter &value(double v, int sigDigits);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool v);
    /** Explicit JSON null. */
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

  private:
    void separate();

    std::ostream &out_;
    /** One entry per open scope: count of emitted items. */
    std::vector<std::uint64_t> scopeItems_;
    bool pendingKey_ = false;
};

/** Percentile summary of a histogram of nanoseconds, reported in us. */
void writeLatencySummaryUs(JsonWriter &w, const LatencyHistogram &h);

/** The five-phase decomposition as named latency summaries. */
void writePhasesUs(JsonWriter &w, const PhaseHistograms &p);

/** Per-IoType blocks ("read"/"write") of latency + phases. */
void writeRequestMetrics(JsonWriter &w, const RequestMetrics &m);

/** Channel/die busy fractions of one measurement window. */
void writeUtilization(JsonWriter &w, const Utilization &u);

}  // namespace cubessd::metrics

#endif  // CUBESSD_METRICS_JSON_H
