/**
 * @file
 * Fixed-bucket log-scale latency histogram (HdrHistogram-style).
 *
 * The simulator's headline claims are latency-*distribution* claims
 * (tPROG cuts, NumRetry, tail-latency wins), so perf work needs
 * percentiles that can be diffed across runs, merged across seeds,
 * and exported without storing every sample. LatencyHistogram covers
 * the full SimTime (nanosecond) range with a fixed bucket layout:
 *
 *  - values 0..7 get exact buckets;
 *  - above that, each power-of-two octave is split into 8 equal
 *    sub-buckets, bounding the relative quantization error of any
 *    reported percentile at 12.5%.
 *
 * The layout is value-independent, so histograms merge by summing
 * counts, and a bucket index means the same thing in every run —
 * exactly what BENCH_*.json diffs need. 496 buckets, ~4 KB each.
 */

#ifndef CUBESSD_METRICS_HISTOGRAM_H
#define CUBESSD_METRICS_HISTOGRAM_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace cubessd::metrics {

class LatencyHistogram
{
  public:
    /** Sub-buckets per octave = 2^kSubBits. */
    static constexpr int kSubBits = 3;
    static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
    /** Octave 0 is linear (values 0..7); octaves kSubBits..63 each
     *  contribute kSubBuckets buckets. */
    static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;

    void add(std::uint64_t value);
    /** Sum another histogram into this one (same fixed layout). */
    void merge(const LatencyHistogram &other);
    void reset();

    std::uint64_t total() const { return total_; }
    double mean() const;
    std::uint64_t min() const { return total_ ? min_ : 0; }
    std::uint64_t max() const { return total_ ? max_ : 0; }

    /**
     * Nearest-rank percentile, p in [0, 100]. Returns the inclusive
     * upper edge of the bucket holding the rank (clamped to the true
     * max), so the reported value is >= the exact percentile by at
     * most one bucket width (12.5% relative).
     */
    double percentile(double p) const;

    /** @name Fixed bucket layout @{ */
    static std::size_t bucketIndex(std::uint64_t value);
    /** Inclusive lower bound of a bucket. */
    static std::uint64_t bucketLow(std::size_t bucket);
    /** Inclusive upper bound of a bucket. */
    static std::uint64_t bucketHigh(std::size_t bucket);
    /** @} */

    std::uint64_t count(std::size_t bucket) const
    {
        return counts_[bucket];
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

}  // namespace cubessd::metrics

#endif  // CUBESSD_METRICS_HISTOGRAM_H
