#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace cubessd::metrics {

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    const int octave = 63 - std::countl_zero(value);  // >= kSubBits
    const std::uint64_t sub =
        (value >> (octave - kSubBits)) & (kSubBuckets - 1);
    return (static_cast<std::size_t>(octave) - kSubBits + 1) *
               kSubBuckets + static_cast<std::size_t>(sub);
}

std::uint64_t
LatencyHistogram::bucketLow(std::size_t bucket)
{
    if (bucket < kSubBuckets)
        return bucket;
    const std::size_t row = bucket / kSubBuckets;  // >= 1
    const std::uint64_t sub = bucket % kSubBuckets;
    return (kSubBuckets + sub) << (row - 1);
}

std::uint64_t
LatencyHistogram::bucketHigh(std::size_t bucket)
{
    if (bucket + 1 >= kBuckets)
        return std::numeric_limits<std::uint64_t>::max();
    return bucketLow(bucket + 1) - 1;
}

void
LatencyHistogram::add(std::uint64_t value)
{
    ++counts_[bucketIndex(value)];
    if (total_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++total_;
    sum_ += static_cast<double>(value);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.total_ == 0)
        return;
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    min_ = total_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = total_ == 0 ? other.max_ : std::max(max_, other.max_);
    total_ += other.total_;
    sum_ += other.sum_;
}

void
LatencyHistogram::reset()
{
    counts_.fill(0);
    total_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

double
LatencyHistogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double
LatencyHistogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(clamped / 100.0 *
                         static_cast<double>(total_))));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank) {
            // The true sample lies inside this bucket; report its
            // upper edge, clamped to the recorded extremes.
            const std::uint64_t edge = std::min(bucketHigh(i), max_);
            return static_cast<double>(std::max(edge, min_));
        }
    }
    return static_cast<double>(max_);
}

}  // namespace cubessd::metrics
