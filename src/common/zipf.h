/**
 * @file
 * Zipfian integer distribution for workload locality modelling.
 *
 * YCSB-style workloads address a keyspace with Zipf-distributed popularity;
 * the Filebench-like generators reuse it for hot/cold file access skew.
 */

#ifndef CUBESSD_COMMON_ZIPF_H
#define CUBESSD_COMMON_ZIPF_H

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace cubessd {

/**
 * Samples integers in [0, n) with probability proportional to
 * 1 / (rank+1)^theta.
 *
 * Uses the Gray/Jim-Gray "quick zipf" approximation (as in YCSB's
 * ZipfianGenerator): O(1) per sample after O(1) setup, accurate for the
 * skew range we use (theta in [0.5, 1.2]).
 */
class ZipfGenerator
{
  public:
    /**
     * @param n      keyspace size (> 0)
     * @param theta  skew; 0 = uniform-ish, 0.99 = YCSB default
     */
    ZipfGenerator(std::uint64_t n, double theta);

    /** @return a Zipf-distributed value in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return n_; }
    double theta() const { return theta_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

}  // namespace cubessd

#endif  // CUBESSD_COMMON_ZIPF_H
