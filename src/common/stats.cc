#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cubessd {

void
RunningStat::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    const double newMean =
        mean_ + delta * static_cast<double>(other.count_) / total;
    m2_ += other.m2_ + delta * delta *
           static_cast<double>(count_) *
           static_cast<double>(other.count_) / total;
    mean_ = newMean;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        fatal("Histogram requires bins > 0 and hi > lo");
    width_ = (hi_ - lo_) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    auto bin = static_cast<std::int64_t>((x - lo_) / width_);
    bin = std::clamp<std::int64_t>(bin, 0,
                                   static_cast<std::int64_t>(bins()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
Histogram::binHigh(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin + 1);
}

double
Histogram::fraction(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(bin)) /
           static_cast<double>(total_);
}

void
LatencyRecorder::add(double value)
{
    samples_.push_back(value);
    sorted_ = false;
}

void
LatencyRecorder::merge(const LatencyRecorder &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (!other.samples_.empty())
        sorted_ = false;
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

void
LatencyRecorder::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
LatencyRecorder::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const double clamped = std::clamp(p, 0.0, 100.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<std::pair<double, double>>
LatencyRecorder::cdf(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    const double lo = samples_.front();
    const double hi = samples_.back();
    const double step = points > 1
        ? (hi - lo) / static_cast<double>(points - 1)
        : 0.0;
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * static_cast<double>(i);
        const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
        const double f = static_cast<double>(it - samples_.begin()) /
                         static_cast<double>(samples_.size());
        out.emplace_back(x, f);
    }
    return out;
}

PiecewiseLinearTable::PiecewiseLinearTable(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points))
{
    if (points_.empty())
        fatal("PiecewiseLinearTable requires at least one breakpoint");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first <= points_[i - 1].first)
            fatal("PiecewiseLinearTable breakpoints must be increasing");
    }
}

double
PiecewiseLinearTable::lookup(double x) const
{
    if (x <= points_.front().first)
        return points_.front().second;
    if (x >= points_.back().first)
        return points_.back().second;
    // Find the segment containing x.
    std::size_t hi = 1;
    while (points_[hi].first < x)
        ++hi;
    const auto &[x0, y0] = points_[hi - 1];
    const auto &[x1, y1] = points_[hi];
    const double w = (x - x0) / (x1 - x0);
    return y0 + w * (y1 - y0);
}

}  // namespace cubessd
