/**
 * @file
 * Unit helpers: time-literal constants and size constants.
 *
 * All simulated time in cubeSSD is kept in integer nanoseconds (SimTime);
 * these constants make call sites read like the paper ("tPROG = 700 us").
 */

#ifndef CUBESSD_COMMON_UNITS_H
#define CUBESSD_COMMON_UNITS_H

#include <cstdint>

#include "src/common/types.h"

namespace cubessd {

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Convert a SimTime duration to fractional microseconds (for reports). */
constexpr double
toMicroseconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert a SimTime duration to fractional milliseconds (for reports). */
constexpr double
toMilliseconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Convert a SimTime duration to fractional seconds (for reports). */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace cubessd

#endif  // CUBESSD_COMMON_UNITS_H
