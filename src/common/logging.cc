#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cubessd {

namespace {

// Atomic: parallel sweep cells log concurrently, and the threshold
// may be flipped while workers run. Relaxed ordering suffices — the
// threshold is an independent filter, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlogTo(std::FILE *out, const char *tag, const char *fmt, std::va_list args)
{
    std::fprintf(out, "[cubessd:%s] ", tag);
    std::vfprintf(out, fmt, args);
    std::fputc('\n', out);
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logf(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) <
        static_cast<int>(g_level.load(std::memory_order_relaxed)))
        return;
    std::va_list args;
    va_start(args, fmt);
    vlogTo(level >= LogLevel::Warn ? stderr : stdout, levelName(level), fmt,
           args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogTo(stderr, "fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogTo(stderr, "panic", fmt, args);
    va_end(args);
    std::abort();
}

}  // namespace cubessd
