/**
 * @file
 * Free-list object pool.
 *
 * ObjectPool hands out stable pointers to default-constructed objects
 * from chunked backing arrays. Released objects are recycled verbatim
 * — they are NOT reset, so members like std::vector keep their
 * capacity across uses, which is exactly what the simulator's
 * steady-state hot path wants: after warm-up, acquire/release never
 * touch the heap.
 *
 * The free list is a pointer stack whose capacity is re-reserved on
 * every chunk growth, so release() itself never allocates.
 */

#ifndef CUBESSD_COMMON_POOL_H
#define CUBESSD_COMMON_POOL_H

#include <cstddef>
#include <memory>
#include <vector>

namespace cubessd {

template <typename T, std::size_t ChunkSize = 64>
class ObjectPool
{
  public:
    /** Take an object (recycled or fresh); fields hold whatever the
     *  previous user left — callers must set what they read. */
    T *
    acquire()
    {
        if (free_.empty())
            addChunk();
        T *obj = free_.back();
        free_.pop_back();
        return obj;
    }

    /** Return an object; its storage stays valid until the pool dies. */
    void
    release(T *obj)
    {
        free_.push_back(obj);
    }

    /** Objects ever allocated (pool high-water mark). */
    std::size_t capacity() const { return capacity_; }

    /** Objects currently in the free list. */
    std::size_t available() const { return free_.size(); }

    /** Objects currently handed out. */
    std::size_t inUse() const { return capacity_ - free_.size(); }

  private:
    void
    addChunk()
    {
        auto chunk = std::make_unique<T[]>(ChunkSize);
        capacity_ += ChunkSize;
        free_.reserve(capacity_);
        // Push in reverse so the chunk is handed out front to back.
        for (std::size_t i = ChunkSize; i-- > 0;)
            free_.push_back(&chunk[i]);
        chunks_.push_back(std::move(chunk));
    }

    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<T *> free_;
    std::size_t capacity_ = 0;
};

}  // namespace cubessd

#endif  // CUBESSD_COMMON_POOL_H
