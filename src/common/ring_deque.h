/**
 * @file
 * Flat circular deque.
 *
 * A power-of-2 ring buffer with deque semantics (push/pop at both
 * ends). Unlike std::deque it never allocates per node: capacity
 * doubles on demand and is then retained, so steady-state use is
 * allocation-free. Element type must be copyable; intended for small
 * POD records (pending NAND ops, host-queue waiters, parked writes).
 */

#ifndef CUBESSD_COMMON_RING_DEQUE_H
#define CUBESSD_COMMON_RING_DEQUE_H

#include <cstddef>
#include <utility>
#include <vector>

namespace cubessd {

template <typename T>
class RingDeque
{
  public:
    RingDeque() : buf_(kMinCapacity) {}

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[wrap(head_ + size_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + size_ - 1)]; }

    /** Index 0 is the front. */
    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(T value)
    {
        if (size_ == buf_.size())
            grow();
        buf_[wrap(head_ + size_)] = std::move(value);
        ++size_;
    }

    void
    push_front(T value)
    {
        if (size_ == buf_.size())
            grow();
        head_ = wrap(head_ + buf_.size() - 1);
        buf_[head_] = std::move(value);
        ++size_;
    }

    void
    pop_front()
    {
        buf_[head_] = T{};   // drop any owned state
        head_ = wrap(head_ + 1);
        --size_;
    }

    void
    pop_back()
    {
        buf_[wrap(head_ + size_ - 1)] = T{};
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_back();
        head_ = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 8;

    std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

    void
    grow()
    {
        std::vector<T> wider(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            wider[i] = std::move(buf_[wrap(head_ + i)]);
        buf_ = std::move(wider);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace cubessd

#endif  // CUBESSD_COMMON_RING_DEQUE_H
