/**
 * @file
 * Open-addressing hash map for 64-bit keys.
 *
 * Linear probing over one flat array of {key, value} slots — no
 * per-node allocation, no bucket chains; erase uses backward-shift
 * deletion so there are no tombstones and lookups stay short-probe
 * forever. Grows by doubling at ~70% load and then retains capacity,
 * so a steady-state working set churns with zero heap traffic.
 *
 * One key value is reserved as the empty sentinel (default ~0, i.e.
 * kInvalidLba/kInvalidPpa) and must never be inserted.
 */

#ifndef CUBESSD_COMMON_FLAT_MAP_H
#define CUBESSD_COMMON_FLAT_MAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace cubessd {

template <typename V,
          std::uint64_t EmptyKey = ~static_cast<std::uint64_t>(0)>
class FlatMap64
{
  public:
    FlatMap64() { rehash(kMinSlots); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    V *
    find(std::uint64_t key)
    {
        for (std::size_t i = probeStart(key);; i = next(i)) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            if (slots_[i].key == EmptyKey)
                return nullptr;
        }
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<FlatMap64 *>(this)->find(key);
    }

    /**
     * Find or create the slot for `key`; `*inserted` reports which.
     * A created slot's value is value-initialized.
     */
    V &
    insertOrGet(std::uint64_t key, bool *inserted)
    {
        if (key == EmptyKey)
            panic("FlatMap64: the empty sentinel key is reserved");
        if ((size_ + 1) * 10 > slots_.size() * 7)
            rehash(slots_.size() * 2);
        for (std::size_t i = probeStart(key);; i = next(i)) {
            if (slots_[i].key == key) {
                *inserted = false;
                return slots_[i].value;
            }
            if (slots_[i].key == EmptyKey) {
                slots_[i].key = key;
                slots_[i].value = V{};
                ++size_;
                *inserted = true;
                return slots_[i].value;
            }
        }
    }

    /** Remove `key` if present (backward-shift deletion). */
    void
    erase(std::uint64_t key)
    {
        std::size_t i = probeStart(key);
        for (;; i = next(i)) {
            if (slots_[i].key == EmptyKey)
                return;
            if (slots_[i].key == key)
                break;
        }
        // Shift later entries of the probe chain back over the hole so
        // no lookup path is ever broken by an empty gap.
        std::size_t hole = i;
        for (std::size_t j = next(hole);; j = next(j)) {
            if (slots_[j].key == EmptyKey)
                break;
            const std::size_t home = probeStart(slots_[j].key);
            // Move j into the hole unless j still lies on its own
            // probe path from `home` without passing the hole.
            const bool reachable = hole <= j
                ? (home <= hole || home > j)
                : (home <= hole && home > j);
            if (reachable) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole].key = EmptyKey;
        slots_[hole].value = V{};
        --size_;
    }

    void
    clear()
    {
        for (auto &slot : slots_) {
            slot.key = EmptyKey;
            slot.value = V{};
        }
        size_ = 0;
    }

  private:
    struct Slot
    {
        std::uint64_t key = EmptyKey;
        V value{};
    };

    static constexpr std::size_t kMinSlots = 16;

    std::size_t
    probeStart(std::uint64_t key) const
    {
        // Fibonacci hash: multiplicative spread of sequential LBAs.
        return static_cast<std::size_t>(
                   (key * 0x9E3779B97F4A7C15ull) >> 32) &
               (slots_.size() - 1);
    }

    std::size_t next(std::size_t i) const
    {
        return (i + 1) & (slots_.size() - 1);
    }

    void
    rehash(std::size_t newSlots)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(newSlots, Slot{});
        size_ = 0;
        for (const auto &slot : old) {
            if (slot.key == EmptyKey)
                continue;
            bool inserted = false;
            insertOrGet(slot.key, &inserted) = slot.value;
        }
    }

  private:
    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

}  // namespace cubessd

#endif  // CUBESSD_COMMON_FLAT_MAP_H
