/**
 * @file
 * Statistics primitives used by the characterization study and the
 * benchmark harness: running moments, histograms, latency percentiles,
 * and CDF extraction.
 */

#ifndef CUBESSD_COMMON_STATS_H
#define CUBESSD_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cubessd {

/**
 * Single-pass mean / variance / min / max accumulator (Welford).
 */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width histogram over a caller-chosen range. Out-of-range samples
 * are clamped into the first/last bin so totals always match the number
 * of add() calls.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    std::uint64_t total() const { return total_; }

    /** @return the inclusive lower edge of a bin. */
    double binLow(std::size_t bin) const;
    /** @return the exclusive upper edge of a bin. */
    double binHigh(std::size_t bin) const;

    /** @return fraction of samples in this bin (0 if empty). */
    double fraction(std::size_t bin) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Stores every sample; provides exact percentiles and CDF points.
 *
 * The evaluation runs record 10^5..10^6 latencies per configuration,
 * which comfortably fits in memory and keeps percentile math exact,
 * matching how the paper reports latency CDFs (Fig. 18).
 */
class LatencyRecorder
{
  public:
    void add(double value);
    void reserve(std::size_t n) { samples_.reserve(n); }

    /** Append another recorder's samples (multi-seed aggregation).
     *  Percentiles over the union are order-independent. */
    void merge(const LatencyRecorder &other);

    std::size_t count() const { return samples_.size(); }
    double mean() const;

    /**
     * @param p percentile in [0, 100]; exact (nearest-rank) on the
     *          recorded samples.
     */
    double percentile(double p) const;

    /**
     * Extract an evenly spaced CDF: `points` (x, F(x)) pairs covering
     * the full sample range.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    void reset() { samples_.clear(); sorted_ = true; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Piecewise-linear lookup table y = f(x) over sorted breakpoints.
 *
 * Used for the paper's offline conversion tables: spare-margin S_M to
 * total V_Start/V_Final adjustment (Fig. 11(b)) and the leader/follower
 * split of that adjustment.
 */
class PiecewiseLinearTable
{
  public:
    /** @param points (x, y) pairs; x must be strictly increasing. */
    explicit PiecewiseLinearTable(
        std::vector<std::pair<double, double>> points);

    /** Interpolate; clamps outside the breakpoint range. */
    double lookup(double x) const;

    std::size_t size() const { return points_.size(); }

  private:
    std::vector<std::pair<double, double>> points_;
};

}  // namespace cubessd

#endif  // CUBESSD_COMMON_STATS_H
