/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 fatal()/panic() distinction:
 *  - fatal():  the *user* asked for something impossible (bad config);
 *              exits with an error code.
 *  - panic():  the *library* violated one of its own invariants; aborts.
 */

#ifndef CUBESSD_COMMON_LOGGING_H
#define CUBESSD_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace cubessd {

/** Severity levels for runtime log messages. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Global log threshold; messages below it are suppressed.
 * Defaults to Warn so library users see problems but not chatter.
 */
void setLogLevel(LogLevel level);

/** @return the current global log threshold. */
LogLevel logLevel();

/** printf-style log with severity filtering. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Report a user/configuration error and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation and abort(). Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cubessd

#endif  // CUBESSD_COMMON_LOGGING_H
