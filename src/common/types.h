/**
 * @file
 * Fundamental scalar types shared across the cubeSSD library.
 */

#ifndef CUBESSD_COMMON_TYPES_H
#define CUBESSD_COMMON_TYPES_H

#include <cstdint>

namespace cubessd {

/** Simulated time in nanoseconds since the start of the run. */
using SimTime = std::uint64_t;

/** Host-visible logical block (page) address. */
using Lba = std::uint64_t;

/** Linearized physical page index within one SSD. */
using Ppa = std::uint64_t;

/** Sentinel for "no physical page mapped". */
inline constexpr Ppa kInvalidPpa = ~static_cast<Ppa>(0);

/** Sentinel for "no logical page mapped". */
inline constexpr Lba kInvalidLba = ~static_cast<Lba>(0);

/** Program/erase cycle count of a block. */
using PeCycles = std::uint32_t;

/** Voltage expressed in millivolts. */
using MilliVolt = std::int32_t;

}  // namespace cubessd

#endif  // CUBESSD_COMMON_TYPES_H
