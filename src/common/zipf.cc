#include "src/common/zipf.h"

#include <cmath>

#include "src/common/logging.h"

namespace cubessd {

double
ZipfGenerator::zeta(std::uint64_t n, double theta)
{
    // Exact harmonic sum for small n; bounded sample + integral tail
    // approximation for large n so construction stays O(1)-ish.
    constexpr std::uint64_t kExactLimit = 1u << 20;
    double sum = 0.0;
    const std::uint64_t limit = n < kExactLimit ? n : kExactLimit;
    for (std::uint64_t i = 1; i <= limit; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > limit) {
        // Integral of x^-theta from limit to n.
        if (theta == 1.0) {
            sum += std::log(static_cast<double>(n) /
                            static_cast<double>(limit));
        } else {
            const double a = 1.0 - theta;
            sum += (std::pow(static_cast<double>(n), a) -
                    std::pow(static_cast<double>(limit), a)) / a;
        }
    }
    return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        fatal("ZipfGenerator requires a non-empty keyspace");
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfGenerator::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double x = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t v = static_cast<std::uint64_t>(x);
    if (v >= n_)
        v = n_ - 1;
    return v;
}

}  // namespace cubessd
