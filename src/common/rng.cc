#include "src/common/rng.h"

#include <cmath>

namespace cubessd {

namespace {

/** SplitMix64 step, used only to expand the user seed into RNG state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 significant bits -> uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % n;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

}  // namespace cubessd
