/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component of cubeSSD draws from an explicitly seeded
 * Rng instance so that simulation runs are exactly reproducible. The
 * implementation is xoshiro256** (public domain, Blackman & Vigna), which
 * is fast and has no observable statistical defects at our sample sizes.
 */

#ifndef CUBESSD_COMMON_RNG_H
#define CUBESSD_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace cubessd {

/**
 * A small, fast, explicitly seeded random number generator.
 *
 * Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
 * plugged into <random> distributions, but also offers the handful of
 * distributions the simulator needs directly (uniform, normal, lognormal,
 * Bernoulli, Poisson-ish exponential spacing).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** @return the next raw 64-bit output. */
    result_type operator()();

    /** @return a double uniform in [0, 1). */
    double uniform();

    /** @return a double uniform in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return an integer uniform in [0, n) for n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** @return true with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /** @return a standard-normal sample (Box-Muller, cached pair). */
    double normal();

    /** @return a normal sample with the given mean and stddev. */
    double normal(double mean, double stddev);

    /**
     * @return a lognormal sample whose *underlying normal* has the given
     * mu/sigma. Used for per-block and per-chip process offsets.
     */
    double lognormal(double mu, double sigma);

    /** @return an exponential sample with the given mean (> 0). */
    double exponential(double mean);

    /** Derive an independent child generator (for per-chip streams). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

}  // namespace cubessd

#endif  // CUBESSD_COMMON_RNG_H
