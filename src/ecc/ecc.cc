#include "src/ecc/ecc.h"

#include "src/common/logging.h"

namespace cubessd::ecc {

EccModel::EccModel(const EccConfig &config)
    : config_(config)
{
    if (config_.codewordDataBytes == 0 || config_.correctableBits == 0)
        fatal("EccModel: zero-sized code");
    const double bits = static_cast<double>(config_.codewordDataBytes) * 8.0;
    limitBer_ = config_.derating *
                static_cast<double>(config_.correctableBits) / bits;
}

double
EccModel::expectedErrors(double rawBer) const
{
    return rawBer * static_cast<double>(config_.codewordDataBytes) * 8.0;
}

std::uint32_t
EccModel::codewordsPerPage(std::uint32_t pageBytes) const
{
    return (pageBytes + config_.codewordDataBytes - 1) /
           config_.codewordDataBytes;
}

std::uint64_t
EccModel::decodeLatencyNs(double rawBer, bool softHint) const
{
    if (rawBer <= hardLimitBer()) {
        // Clean page: the hard decode is pipelined with the bus
        // transfer, so no latency is exposed (even with a mistaken
        // soft hint, controllers try the cheap hard path first).
        return 0;
    }
    // Noisy page: the soft decode is required; without the hint the
    // controller discovers that by failing the hard attempt first.
    return softHint ? config_.tSoftDecodeNs
                    : config_.tHardDecodeNs + config_.tSoftDecodeNs;
}

}  // namespace cubessd::ecc
