/**
 * @file
 * Error-correcting-code engine model.
 *
 * The read path only needs a correct/uncorrectable verdict against the
 * engine's correction capability, so the model is a capability
 * threshold on the raw BER with a safety derating (real controllers
 * retry well before the hard algebraic limit to keep the post-ECC
 * UBER target). A BCH-/LDPC-class code protecting 1 KiB codewords
 * with 72 correctable bits is the default, typical for 16 KiB-page
 * TLC-era controllers.
 */

#ifndef CUBESSD_ECC_ECC_H
#define CUBESSD_ECC_ECC_H

#include <cstdint>

namespace cubessd::ecc {

/** Code parameters. */
struct EccConfig
{
    std::uint32_t codewordDataBytes = 1024;
    /** LDPC-class capability; sized so the worst h-layer of a
     *  worst-quantile chip stays correctable at end-of-life wear with
     *  full retention (the vendor provisioning the paper assumes). */
    std::uint32_t correctableBits = 88;
    /** Fraction of the algebraic capability usable in practice. The
     *  default keeps the worst h-layer at end-of-life wear plus full
     *  retention just inside the correctable region, as vendors
     *  provision (the paper's defaults are set the same way, Sec.
     *  4.1.2). */
    double derating = 0.95;

    /**
     * @name Two-stage (hard/soft) decoding model
     *
     * LDPC controllers first attempt a fast hard-decision decode,
     * which only converges up to a fraction of the full capability;
     * noisier pages need the slow soft-decision decode, paying for
     * the failed hard attempt first. The paper's conclusion (Sec. 8)
     * proposes using leader-WL information to pick the right mode up
     * front; see ReadModel's softHint and `bench/ext_ps_aware_ecc`.
     * @{
     */
    /** Fraction of limitBer() the fast hard decode can handle. */
    double hardFraction = 0.55;
    /** Latency of one hard-decision decode attempt (ns). Hard LDPC
     *  decoding runs at GB/s-class throughput and is pipelined with
     *  the bus transfer, so a *successful* hard decode adds no
     *  visible latency; this constant is the exposed cost of a
     *  *failed* attempt (detected before the soft path starts). */
    std::uint64_t tHardDecodeNs = 2000;
    /** Latency of one soft-decision decode (ns, excludes the extra
     *  soft-sense the flash performs). */
    std::uint64_t tSoftDecodeNs = 15000;
    /** @} */
};

/** Capability-threshold ECC model. */
class EccModel
{
  public:
    explicit EccModel(const EccConfig &config = {});

    const EccConfig &config() const { return config_; }

    /** Raw BER above which a codeword is declared uncorrectable. */
    double limitBer() const { return limitBer_; }

    /** @return true if a page with this raw BER decodes cleanly. */
    bool correctable(double rawBer) const { return rawBer <= limitBer_; }

    /** Expected raw bit errors in one codeword at this BER. */
    double expectedErrors(double rawBer) const;

    /** Number of codewords covering a page of `pageBytes`. */
    std::uint32_t codewordsPerPage(std::uint32_t pageBytes) const;

    /** Raw BER up to which the fast hard decode converges. */
    double hardLimitBer() const { return limitBer_ * config_.hardFraction; }

    /**
     * Exposed (non-pipelined) decode latency of a page at `rawBer`.
     * A successful hard decode overlaps the bus transfer and costs
     * nothing extra; a noisy page pays the soft decode, plus the
     * failed hard attempt unless the controller was hinted.
     *
     * @param softHint controller already expects a noisy page (e.g.
     *        from the h-layer's history — the paper's Sec. 8 idea)
     *        and starts with the soft decode, skipping the doomed
     *        hard attempt.
     */
    std::uint64_t decodeLatencyNs(double rawBer, bool softHint) const;

  private:
    EccConfig config_;
    double limitBer_;
};

}  // namespace cubessd::ecc

#endif  // CUBESSD_ECC_ECC_H
