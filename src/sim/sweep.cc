#include "src/sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

namespace cubessd::sim {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

double
SweepTelemetry::imbalance() const
{
    double maxBusy = 0.0;
    double sumBusy = 0.0;
    for (const Worker &w : workers) {
        maxBusy = std::max(maxBusy, w.busyS);
        sumBusy += w.busyS;
    }
    if (workers.empty() || sumBusy <= 0.0)
        return 1.0;
    return maxBusy / (sumBusy / static_cast<double>(workers.size()));
}

namespace {

/**
 * Rethrow the lowest-index stored failure, if any, as a SweepError.
 * A job that already threw SweepError (e.g. a nested annotated error)
 * is passed through unchanged.
 */
void
rethrowLowest(const std::vector<std::exception_ptr> &errors)
{
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i])
            continue;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const SweepError &) {
            throw;
        } catch (const std::exception &e) {
            throw SweepError(i, e.what());
        } catch (...) {
            throw SweepError(i, "unknown error");
        }
    }
}

}  // namespace

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

void
SweepRunner::run(std::size_t count,
                 const std::function<void(std::size_t)> &job,
                 SweepTelemetry *telemetry)
{
    if (telemetry != nullptr)
        *telemetry = SweepTelemetry{};
    if (count == 0)
        return;

    const Clock::time_point runStart = Clock::now();
    std::vector<std::exception_ptr> errors(count);

    if (jobs_ <= 1 || count == 1) {
        // Reference path: plain sequential loop, no threads. Failures
        // are still collected (not thrown mid-loop) so the surviving
        // jobs run and the reported error matches the parallel path.
        SweepTelemetry::Worker self;
        for (std::size_t i = 0; i < count; ++i) {
            const Clock::time_point jobStart = Clock::now();
            try {
                job(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            ++self.jobs;
            self.busyS += secondsSince(jobStart);
        }
        if (telemetry != nullptr) {
            telemetry->wallS = secondsSince(runStart);
            self.idleS = telemetry->wallS - self.busyS;
            telemetry->workers.push_back(self);
        }
        rethrowLowest(errors);
        return;
    }

    const std::size_t threads =
        std::min<std::size_t>(jobs_, count);
    // Pre-sized before spawn: worker w writes only workers[w], and
    // the caller reads only after join(), so no locking is needed.
    std::vector<SweepTelemetry::Worker> workers(threads);

    std::atomic<std::size_t> cursor{0};
    auto worker = [&](std::size_t self) {
        const Clock::time_point birth = Clock::now();
        SweepTelemetry::Worker &me = workers[self];
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            const Clock::time_point jobStart = Clock::now();
            try {
                job(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            ++me.jobs;
            me.busyS += secondsSince(jobStart);
            if (i * threads / count != self)
                ++me.steals;
        }
        me.idleS = secondsSince(birth) - me.busyS;
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);
    for (auto &t : pool)
        t.join();

    if (telemetry != nullptr) {
        telemetry->wallS = secondsSince(runStart);
        telemetry->workers = std::move(workers);
    }

    rethrowLowest(errors);
}

unsigned
resolveJobs(unsigned cliJobs, const char *envVar)
{
    if (cliJobs > 0)
        return cliJobs;
    if (envVar != nullptr) {
        if (const char *env = std::getenv(envVar)) {
            const long parsed = std::strtol(env, nullptr, 10);
            if (parsed > 0)
                return static_cast<unsigned>(parsed);
        }
    }
    return 1;
}

}  // namespace cubessd::sim
