#include "src/sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

namespace cubessd::sim {

namespace {

/**
 * Rethrow the lowest-index stored failure, if any, as a SweepError.
 * A job that already threw SweepError (e.g. a nested annotated error)
 * is passed through unchanged.
 */
void
rethrowLowest(const std::vector<std::exception_ptr> &errors)
{
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i])
            continue;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const SweepError &) {
            throw;
        } catch (const std::exception &e) {
            throw SweepError(i, e.what());
        } catch (...) {
            throw SweepError(i, "unknown error");
        }
    }
}

}  // namespace

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

void
SweepRunner::run(std::size_t count,
                 const std::function<void(std::size_t)> &job)
{
    if (count == 0)
        return;

    std::vector<std::exception_ptr> errors(count);

    if (jobs_ <= 1 || count == 1) {
        // Reference path: plain sequential loop, no threads. Failures
        // are still collected (not thrown mid-loop) so the surviving
        // jobs run and the reported error matches the parallel path.
        for (std::size_t i = 0; i < count; ++i) {
            try {
                job(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        rethrowLowest(errors);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                job(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const std::size_t threads =
        std::min<std::size_t>(jobs_, count);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    rethrowLowest(errors);
}

unsigned
resolveJobs(unsigned cliJobs, const char *envVar)
{
    if (cliJobs > 0)
        return cliJobs;
    if (envVar != nullptr) {
        if (const char *env = std::getenv(envVar)) {
            const long parsed = std::strtol(env, nullptr, 10);
            if (parsed > 0)
                return static_cast<unsigned>(parsed);
        }
    }
    return 1;
}

}  // namespace cubessd::sim
