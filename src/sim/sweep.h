/**
 * @file
 * Parallel sweep execution: a fixed-size worker pool for independent,
 * indexed simulation jobs.
 *
 * The simulator itself is single-threaded by design (one EventQueue,
 * one clock). Sweeps, however, are embarrassingly parallel: every
 * (aging, workload, FTL, seed) cell of a grid owns its RNG streams
 * and its whole Ssd instance, so cells never share mutable state.
 * SweepRunner exploits exactly that structure and nothing more:
 *
 *  - Jobs are identified by a dense index 0..count-1 and pulled from
 *    an atomic cursor, so workers never contend on anything but the
 *    cursor itself.
 *  - SweepRunner makes NO ordering promise about execution. The
 *    determinism contract lives one level up: callers store each
 *    job's result into a slot indexed by its job id and merge slots
 *    in INDEX ORDER after run() returns — never in completion order.
 *    Since each cell is internally deterministic, `jobs == 1` and
 *    `jobs == N` then produce bit-identical merged output.
 *  - Errors propagate instead of killing the process: a job that
 *    throws does not abort the sweep; the remaining jobs still run,
 *    and afterwards the LOWEST-index failure is rethrown on the
 *    calling thread as a SweepError. (Lowest-index, not first-in-time:
 *    the reported failure is the same whatever the interleaving.)
 *    fatal()/exit() must never be reached from inside a job — validate
 *    configurations before calling run().
 *
 * With jobs <= 1 the runner degenerates to a plain sequential loop on
 * the calling thread (no threads are spawned), which is both the
 * default and the reference behaviour the parallel path must match.
 */

#ifndef CUBESSD_SIM_SWEEP_H
#define CUBESSD_SIM_SWEEP_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cubessd::sim {

/**
 * Per-worker load telemetry of one run() call, filled on request.
 * Each worker writes only its own pre-sized slot during the run; the
 * calling thread reads everything after join() — no synchronization
 * beyond thread creation/join is needed. Times are host wall-clock
 * (machine-noisy); job counts are exact.
 */
struct SweepTelemetry
{
    struct Worker
    {
        std::uint64_t jobs = 0;
        /** Jobs claimed outside the worker's static fair share
         *  (job i's "home" worker is i*workers/count) — a measure of
         *  how much the atomic-cursor scheduling rebalanced load. */
        std::uint64_t steals = 0;
        double busyS = 0.0;  ///< summed wall time inside job(i)
        double idleS = 0.0;  ///< worker lifetime minus busy
    };

    double wallS = 0.0;  ///< whole run(), measured on the caller
    std::vector<Worker> workers;

    /** max(busy) / mean(busy): 1.0 = perfectly balanced. */
    double imbalance() const;
};

/** Failure of one sweep job, annotated with the failing job's index. */
class SweepError : public std::runtime_error
{
  public:
    SweepError(std::size_t job, const std::string &message)
        : std::runtime_error("sweep job " + std::to_string(job) + ": " +
                             message),
          job_(job)
    {
    }

    /** Index of the job that failed (lowest, if several did). */
    std::size_t job() const { return job_; }

  private:
    std::size_t job_;
};

class SweepRunner
{
  public:
    /** @param jobs worker threads; <= 1 means run inline, no threads. */
    explicit SweepRunner(unsigned jobs = 1);

    unsigned jobs() const { return jobs_; }

    /**
     * Run `job(0) .. job(count-1)`, each exactly once, across the
     * pool; blocks until all have finished. Jobs must be mutually
     * independent (no shared mutable state); they may run in any
     * order and interleaving. If any job throws, the rest still run
     * and the lowest-index failure is rethrown as SweepError.
     *
     * If `telemetry` is non-null it is reset and filled with one
     * Worker entry per thread actually used (one, on the inline
     * path), even when a job throws.
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &job,
             SweepTelemetry *telemetry = nullptr);

  private:
    unsigned jobs_;
};

/**
 * Resolve a worker count from a command line and an environment:
 * an explicit CLI value > 0 wins; else a positive integer in the
 * named environment variable (ignored if unparsable); else 1.
 */
unsigned resolveJobs(unsigned cliJobs, const char *envVar);

}  // namespace cubessd::sim

#endif  // CUBESSD_SIM_SWEEP_H
