/**
 * @file
 * Discrete-event simulation core.
 *
 * The SSD model is driven by a single-threaded event queue: every hardware
 * latency (NAND program, bus transfer, buffer flush) is an event scheduled
 * at an absolute SimTime. Events at equal times fire in scheduling order
 * (stable FIFO tie-break) so runs are deterministic.
 *
 * Implementation: a calendar queue (Brown, CACM 1988) over pooled typed
 * event records.
 *
 *  - Events live in a free-list pool backed by chunked arrays; once the
 *    pool has warmed up, scheduling allocates nothing.
 *  - The calendar is a power-of-2 array of buckets, each a singly-linked
 *    list kept sorted by (when, seq). An event at time `t` hashes to
 *    bucket `(t >> kWidthLog2) & mask`, i.e. buckets are "days" of
 *    2^kWidthLog2 ns and the array is a repeating "year".
 *  - Dequeue walks the bucket cursor forward one day at a time; a bucket
 *    head is due when its time falls inside the cursor's current day.
 *    If a full rotation finds nothing due (all events more than a year
 *    out), the minimum head seen during the rotation — which is the
 *    global minimum — is used directly and the cursor jumps to its day.
 *  - Two events with equal `when` always hash to the same bucket, and
 *    bucket lists are FIFO within equal times, so the seed's stable
 *    tie-break (and thus bit-identical runs) is preserved.
 *
 * Typed events (EventKind + EventHandler target + POD payload) dispatch
 * via one virtual call with no heap traffic. Closure events
 * (EventKind::Generic, the legacy schedule(delay, fn) API) remain for
 * tests and cold paths; their std::function may allocate, which is why
 * the hot path does not use them.
 */

#ifndef CUBESSD_SIM_EVENT_QUEUE_H
#define CUBESSD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/sim/event.h"

namespace cubessd::sim {

/** Callback type invoked when a Generic (closure) event fires. */
using EventAction = std::function<void()>;

/** Callback type invoked at each sampling boundary (see setSampler). */
using SamplerFn = std::function<void(SimTime)>;

/**
 * A time-ordered queue of events with a simulated clock.
 *
 * Hot-path usage (alloc-free):
 * @code
 *   EventPayload p;
 *   p.driverTick.thread = 3;
 *   eq.schedule(500 * kNanosecond, EventKind::DriverTick, this, p);
 * @endcode
 *
 * Cold-path / test usage:
 * @code
 *   eq.schedule(500 * kNanosecond, [] { ... });
 *   eq.run();                  // drains all events
 * @endcode
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule a typed event `delay` after the current time.
     * @return the absolute fire time.
     */
    SimTime
    schedule(SimTime delay, EventKind kind, EventHandler *target,
             const EventPayload &payload = EventPayload{})
    {
        const SimTime when = now_ + delay;
        scheduleAt(when, kind, target, payload);
        return when;
    }

    /** Schedule a typed event at an absolute time (must be >= now()). */
    void scheduleAt(SimTime when, EventKind kind, EventHandler *target,
                    const EventPayload &payload = EventPayload{});

    /**
     * Schedule a closure `delay` after the current time (Generic event;
     * may allocate for the capture — cold paths only).
     * @return the absolute fire time.
     */
    SimTime schedule(SimTime delay, EventAction action);

    /** Schedule a closure at an absolute time (must be >= now()). */
    void scheduleAt(SimTime when, EventAction action);

    /** @return true if no events remain. */
    bool empty() const { return pending_ == 0; }

    /** @return number of pending events. */
    std::size_t pending() const { return pending_; }

    /** Total events fired over the queue's lifetime (perf metric). */
    std::uint64_t fired() const { return fired_; }

    /**
     * Fire the earliest event, advancing the clock to its time.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue is empty. Events sharing a timestamp are
     * dequeued as one batch (single cursor scan), then dispatched in
     * seq order — observable behavior is identical to repeated step().
     * @return number of events fired.
     */
    std::uint64_t run();

    /**
     * Run until the queue is empty or the clock would pass `deadline`.
     * Events at exactly `deadline` still fire.
     * @return number of events fired.
     */
    std::uint64_t runUntil(SimTime deadline);

    /**
     * Install a periodic sampling hook: before each event fires, `fn`
     * is called once per elapsed `interval` boundary (clock set to the
     * boundary time), so counters are observed on a fixed simulated
     * cadence without keeping the queue alive with self-rescheduling
     * events — run() still terminates when real work runs out, and
     * sampling never fires past the last event. The hook must be
     * observation-only: it may not schedule events or mutate model
     * state, or runs would no longer be reproducible without it.
     * Boundaries coinciding with an event sample *before* the event.
     * An interval of 0 or an empty fn disables sampling.
     */
    void setSampler(SimTime interval, SamplerFn fn);

    /** Event records ever allocated (pool high-water; test/bench hook). */
    std::size_t poolCapacity() const { return poolCapacity_; }

    /** Current number of calendar buckets (test hook). */
    std::size_t bucketCount() const { return buckets_.size(); }

  private:
    /** Pooled event record; `next` doubles as bucket and free-list link. */
    struct Event
    {
        SimTime when = 0;
        std::uint64_t seq = 0;   // FIFO tie-break for equal times
        Event *next = nullptr;
        EventHandler *target = nullptr;
        EventKind kind = EventKind::Generic;
        EventPayload payload;
        EventAction fn;          // Generic events only
    };

    /** Bucket ("day") width in log2 nanoseconds. */
    static constexpr unsigned kWidthLog2 = 10;
    static constexpr SimTime kBucketWidth = SimTime{1} << kWidthLog2;
    static constexpr std::size_t kInitialBuckets = 1024;
    static constexpr std::size_t kPoolChunk = 256;

    Event *allocEvent();
    void releaseEvent(Event *e) { e->next = freeList_; freeList_ = e; }
    void addPoolChunk();

    void insert(Event *e);
    void growBuckets();

    /**
     * Locate (without unlinking) the earliest pending event; leaves the
     * cursor on its bucket so it is that bucket's head. Returns nullptr
     * when empty.
     */
    Event *peekMin();

    /** Advance the sampler to `when` and set the clock (pre-dispatch). */
    void advanceClock(SimTime when);

    /** Dispatch one unlinked event and release its record. */
    void dispatch(Event *e);

    std::vector<Event *> buckets_;
    std::size_t bucketMask_ = 0;
    std::size_t curBucket_ = 0;   // next bucket the dequeue scan examines
    SimTime curTop_ = 0;          // exclusive end of curBucket_'s day
    std::size_t pending_ = 0;

    std::vector<std::unique_ptr<Event[]>> poolChunks_;
    Event *freeList_ = nullptr;
    std::size_t poolCapacity_ = 0;

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fired_ = 0;
    SamplerFn sampler_;
    SimTime samplerInterval_ = 0;
    SimTime nextSample_ = 0;
};

}  // namespace cubessd::sim

#endif  // CUBESSD_SIM_EVENT_QUEUE_H
