/**
 * @file
 * Discrete-event simulation core.
 *
 * The SSD model is driven by a single-threaded event queue: every hardware
 * latency (NAND program, bus transfer, buffer flush) is an event scheduled
 * at an absolute SimTime. Events at equal times fire in scheduling order
 * (stable FIFO tie-break) so runs are deterministic.
 */

#ifndef CUBESSD_SIM_EVENT_QUEUE_H
#define CUBESSD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/types.h"

namespace cubessd::sim {

/** Callback type invoked when an event fires. */
using EventAction = std::function<void()>;

/** Callback type invoked at each sampling boundary (see setSampler). */
using SamplerFn = std::function<void(SimTime)>;

/**
 * A time-ordered queue of callbacks with a simulated clock.
 *
 * Usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(500 * kNanosecond, [] { ... });
 *   eq.run();                  // drains all events
 * @endcode
 */
class EventQueue
{
  public:
    /** @return the current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule an action `delay` after the current time.
     * @return the absolute fire time.
     */
    SimTime schedule(SimTime delay, EventAction action);

    /** Schedule an action at an absolute time (must be >= now()). */
    void scheduleAt(SimTime when, EventAction action);

    /** @return true if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** @return number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Fire the earliest event, advancing the clock to its time.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue is empty. @return number of events fired. */
    std::uint64_t run();

    /**
     * Run until the queue is empty or the clock would pass `deadline`.
     * Events at exactly `deadline` still fire.
     * @return number of events fired.
     */
    std::uint64_t runUntil(SimTime deadline);

    /**
     * Install a periodic sampling hook: before each event fires, `fn`
     * is called once per elapsed `interval` boundary (clock set to the
     * boundary time), so counters are observed on a fixed simulated
     * cadence without keeping the queue alive with self-rescheduling
     * events — run() still terminates when real work runs out, and
     * sampling never fires past the last event. The hook must be
     * observation-only: it may not schedule events or mutate model
     * state, or runs would no longer be reproducible without it.
     * Boundaries coinciding with an event sample *before* the event.
     * An interval of 0 or an empty fn disables sampling.
     */
    void setSampler(SimTime interval, SamplerFn fn);

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;   // FIFO tie-break for equal times
        EventAction action;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    SamplerFn sampler_;
    SimTime samplerInterval_ = 0;
    SimTime nextSample_ = 0;
};

}  // namespace cubessd::sim

#endif  // CUBESSD_SIM_EVENT_QUEUE_H
