/**
 * @file
 * Typed simulation events.
 *
 * The hot path of the simulator schedules *typed* event records: an
 * EventKind discriminator, a target object implementing EventHandler,
 * and a small POD payload union. Dispatch is one virtual call on the
 * target — no std::function type erasure and no per-event heap
 * allocation (records live in the EventQueue's free-list pool).
 *
 * The payload union members are deliberately declared here, next to
 * the kind enum, so the full event vocabulary of the simulator is
 * visible in one place; the sim layer itself depends only on POD
 * types (targets are opaque `void *` / EventHandler pointers that the
 * owning subsystem casts back).
 *
 * Cold paths (tests, tools, setup code) can still schedule arbitrary
 * closures via EventKind::Generic — see EventQueue::schedule().
 */

#ifndef CUBESSD_SIM_EVENT_H
#define CUBESSD_SIM_EVENT_H

#include <cstdint>

#include "src/common/types.h"

namespace cubessd::sim {

/** Discriminator of a typed event record. */
enum class EventKind : std::uint8_t
{
    /** Closure event (EventAction); convenience/cold paths only. */
    Generic = 0,
    /** A NAND die finished its current operation (target: ChipUnit;
     *  the unit holds the in-flight op, so no payload is needed). */
    ChipOpComplete,
    /** A host request completes back to its CompletionSink after a
     *  DRAM-buffer service or an immediate status (target: FtlBase). */
    RequestComplete,
    /** One page of a multi-page host read finished its DRAM service
     *  (buffer hit / unmapped page; target: FtlBase). */
    ReadPieceDone,
    /** A submitted request reaches its arrival time and enters the
     *  host queue (target: HostQueue). */
    HostAdmit,
    /** A workload driver thread wakes up to fire its next burst
     *  (target: workload::Driver). */
    DriverTick,
    /** An open-loop tenant stream reaches its next arrival epoch
     *  (target: workload::MultiTenantDriver). */
    TenantArrival,
};

/**
 * Per-kind event payload. POD union: members may only hold trivially
 * copyable data (pointers, integers, times) — events are pooled and
 * copied by value at dispatch.
 */
union EventPayload
{
    /** Uninterpreted scratch view (also the zero-initializer). */
    struct Raw
    {
        void *p0;
        void *p1;
        std::uint64_t u0;
        std::uint64_t u1;
        std::uint64_t u2;
        std::uint64_t u3;
    } raw;

    /** EventKind::RequestComplete. */
    struct RequestComplete
    {
        void *sink;            ///< ssd::CompletionSink *
        std::uint64_t sinkCtx;
        std::uint64_t id;
        SimTime arrival;
        std::uint32_t pages;
        std::uint8_t type;     ///< ssd::IoType
        std::uint8_t status;   ///< ssd::Status
        SimTime bufferPhase;   ///< DRAM service time to attribute
    } requestComplete;

    /** EventKind::ReadPieceDone. */
    struct ReadPiece
    {
        void *ctx;             ///< FtlBase read-context (pooled)
    } readPiece;

    /** EventKind::HostAdmit. */
    struct HostAdmit
    {
        void *sink;            ///< ssd::CompletionSink *
        std::uint64_t sinkCtx;
        std::uint64_t id;
        std::uint64_t lba;
        SimTime arrival;
        std::uint32_t pages;
        std::uint8_t type;     ///< ssd::IoType
        std::uint16_t tenant;  ///< ssd::TenantId
        std::uint16_t namespaceId;
    } hostAdmit;

    /** EventKind::DriverTick. */
    struct DriverTick
    {
        std::uint32_t thread;
    } driverTick;

    /** EventKind::TenantArrival. */
    struct TenantArrival
    {
        std::uint32_t tenant;  ///< tenant stream index (0-based)
    } tenantArrival;

    EventPayload() : raw{} {}
};

static_assert(sizeof(EventPayload) <= 64,
              "event payloads must stay register/cacheline friendly");

/**
 * Target of a typed event. Implemented by the scheduling layers
 * (ChipUnit, HostQueue, FtlBase, Driver); `kind` tells a multi-kind
 * handler which payload member is live.
 */
class EventHandler
{
  public:
    virtual void onEvent(EventKind kind, const EventPayload &payload) = 0;

  protected:
    ~EventHandler() = default;
};

}  // namespace cubessd::sim

#endif  // CUBESSD_SIM_EVENT_H
