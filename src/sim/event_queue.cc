#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace cubessd::sim {

SimTime
EventQueue::schedule(SimTime delay, EventAction action)
{
    const SimTime when = now_ + delay;
    scheduleAt(when, std::move(action));
    return when;
}

void
EventQueue::scheduleAt(SimTime when, EventAction action)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, nextSeq_++, std::move(action)});
}

void
EventQueue::setSampler(SimTime interval, SamplerFn fn)
{
    if (interval == 0 || !fn) {
        sampler_ = nullptr;
        samplerInterval_ = 0;
        return;
    }
    sampler_ = std::move(fn);
    samplerInterval_ = interval;
    nextSample_ = now_ + interval;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-inspect the entry.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    if (sampler_) {
        // Catch up on all sampling boundaries up to (and including)
        // this event's time, sampling *before* the event fires.
        while (nextSample_ <= entry.when) {
            now_ = nextSample_;
            sampler_(now_);
            nextSample_ += samplerInterval_;
        }
    }
    now_ = entry.when;
    entry.action();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t fired = 0;
    while (step())
        ++fired;
    return fired;
}

std::uint64_t
EventQueue::runUntil(SimTime deadline)
{
    std::uint64_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        step();
        ++fired;
    }
    if (now_ < deadline && heap_.empty())
        now_ = deadline;
    return fired;
}

}  // namespace cubessd::sim
