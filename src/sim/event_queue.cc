#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"
#include "src/prof/prof.h"

namespace cubessd::sim {

// schedSlotFor() maps an EventKind to its dispatch slot by offset;
// pin the correspondence so reordering either enum breaks the build.
static_assert(prof::schedSlotFor(
                  static_cast<std::uint8_t>(EventKind::Generic)) ==
              prof::Slot::SchedGeneric);
static_assert(prof::schedSlotFor(static_cast<std::uint8_t>(
                  EventKind::ChipOpComplete)) == prof::Slot::SchedChipOp);
static_assert(prof::schedSlotFor(
                  static_cast<std::uint8_t>(EventKind::RequestComplete)) ==
              prof::Slot::SchedRequestComplete);
static_assert(prof::schedSlotFor(
                  static_cast<std::uint8_t>(EventKind::ReadPieceDone)) ==
              prof::Slot::SchedReadPiece);
static_assert(prof::schedSlotFor(
                  static_cast<std::uint8_t>(EventKind::HostAdmit)) ==
              prof::Slot::SchedHostAdmit);
static_assert(prof::schedSlotFor(
                  static_cast<std::uint8_t>(EventKind::DriverTick)) ==
              prof::Slot::SchedDriverTick);
static_assert(prof::schedSlotFor(
                  static_cast<std::uint8_t>(EventKind::TenantArrival)) ==
              prof::Slot::SchedTenantArrival);

EventQueue::EventQueue()
    : buckets_(kInitialBuckets, nullptr), bucketMask_(kInitialBuckets - 1),
      curTop_(kBucketWidth)
{
}

EventQueue::~EventQueue() = default;

EventQueue::Event *
EventQueue::allocEvent()
{
    if (freeList_ == nullptr)
        addPoolChunk();
    Event *e = freeList_;
    freeList_ = e->next;
    return e;
}

void
EventQueue::addPoolChunk()
{
    auto chunk = std::make_unique<Event[]>(kPoolChunk);
    for (std::size_t i = 0; i < kPoolChunk; ++i) {
        chunk[i].next = freeList_;
        freeList_ = &chunk[i];
    }
    poolChunks_.push_back(std::move(chunk));
    poolCapacity_ += kPoolChunk;
}

void
EventQueue::insert(Event *e)
{
    if (pending_ >= buckets_.size() * 2)
        growBuckets();
    Event **p = &buckets_[(e->when >> kWidthLog2) & bucketMask_];
    while (*p != nullptr &&
           ((*p)->when < e->when ||
            ((*p)->when == e->when && (*p)->seq < e->seq)))
        p = &(*p)->next;
    e->next = *p;
    *p = e;
    ++pending_;
}

void
EventQueue::growBuckets()
{
    std::vector<Event *> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, nullptr);
    bucketMask_ = buckets_.size() - 1;
    // Relink every pending event into the wider calendar. insert()
    // re-checks the growth threshold, but pending_ restarts from zero
    // here and stays below the doubled threshold, so it cannot recurse.
    pending_ = 0;
    for (Event *head : old) {
        while (head != nullptr) {
            Event *next = head->next;
            insert(head);
            head = next;
        }
    }
    // Reset the cursor to the clock's day: every pending event has
    // when >= now_, so the dequeue invariant (no event earlier than the
    // cursor's day) is re-established.
    const SimTime day = now_ >> kWidthLog2;
    curBucket_ = day & bucketMask_;
    curTop_ = (day + 1) << kWidthLog2;
}

EventQueue::Event *
EventQueue::peekMin()
{
    if (pending_ == 0)
        return nullptr;
    // Rotation scan: a bucket head is due when it lies inside the
    // cursor's current day. Heads from an earlier year of the same
    // bucket are also < curTop_ and therefore found, so the cursor can
    // never skip past a pending event. While rotating, remember the
    // smallest head seen: if a whole year passes with nothing due, that
    // head is the global minimum (each bucket was examined once).
    Event *minEv = nullptr;
    std::size_t minBucket = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        Event *head = buckets_[curBucket_];
        if (head != nullptr) {
            if (head->when < curTop_)
                return head;
            if (minEv == nullptr || head->when < minEv->when ||
                (head->when == minEv->when && head->seq < minEv->seq)) {
                minEv = head;
                minBucket = curBucket_;
            }
        }
        curBucket_ = (curBucket_ + 1) & bucketMask_;
        curTop_ += kBucketWidth;
    }
    curBucket_ = minBucket;
    curTop_ = ((minEv->when >> kWidthLog2) + 1) << kWidthLog2;
    return minEv;
}

void
EventQueue::scheduleAt(SimTime when, EventKind kind, EventHandler *target,
                       const EventPayload &payload)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    Event *e = allocEvent();
    e->when = when;
    e->seq = nextSeq_++;
    e->kind = kind;
    e->target = target;
    e->payload = payload;
    insert(e);
}

SimTime
EventQueue::schedule(SimTime delay, EventAction action)
{
    const SimTime when = now_ + delay;
    scheduleAt(when, std::move(action));
    return when;
}

void
EventQueue::scheduleAt(SimTime when, EventAction action)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    Event *e = allocEvent();
    e->when = when;
    e->seq = nextSeq_++;
    e->kind = EventKind::Generic;
    e->target = nullptr;
    e->fn = std::move(action);
    insert(e);
}

void
EventQueue::setSampler(SimTime interval, SamplerFn fn)
{
    if (interval == 0 || !fn) {
        sampler_ = nullptr;
        samplerInterval_ = 0;
        return;
    }
    sampler_ = std::move(fn);
    samplerInterval_ = interval;
    nextSample_ = now_ + interval;
}

void
EventQueue::advanceClock(SimTime when)
{
    if (sampler_) {
        // Catch up on all sampling boundaries up to (and including)
        // this event's time, sampling *before* the event fires.
        while (nextSample_ <= when) {
            now_ = nextSample_;
            sampler_(now_);
            nextSample_ += samplerInterval_;
        }
    }
    now_ = when;
}

void
EventQueue::dispatch(Event *e)
{
    PROF_SCOPE(prof::schedSlotFor(static_cast<std::uint8_t>(e->kind)));
    ++fired_;
    if (e->kind == EventKind::Generic) {
        // Move the closure out and release the record before invoking,
        // so the handler can schedule into a fully consistent queue
        // (and may even reuse this record).
        EventAction fn = std::move(e->fn);
        releaseEvent(e);
        fn();
    } else {
        const EventKind kind = e->kind;
        EventHandler *target = e->target;
        const EventPayload payload = e->payload;
        releaseEvent(e);
        target->onEvent(kind, payload);
    }
}

bool
EventQueue::step()
{
    // No SimLoop scope here: the workload drivers call step() once per
    // event, and an umbrella scope per event would cost as much as the
    // dispatch it wraps while its self time (peekMin + unlink) is
    // negligible. run()/runUntil() keep the umbrella — they are called
    // once per drain.
    Event *e = peekMin();
    if (e == nullptr)
        return false;
    buckets_[curBucket_] = e->next;
    --pending_;
    advanceClock(e->when);
    dispatch(e);
    return true;
}

std::uint64_t
EventQueue::run()
{
    PROF_SCOPE(prof::Slot::SimLoop);
    std::uint64_t fired = 0;
    while (pending_ != 0) {
        Event *head = peekMin();
        const SimTime when = head->when;
        // Unlink the whole same-timestamp run in one pass; it is a
        // contiguous, seq-ordered prefix of the bucket list. Events the
        // dispatched handlers schedule at `when` get higher seqs and
        // re-enter the bucket for the next iteration — the same order
        // repeated step() would produce.
        Event *tail = head;
        std::size_t n = 1;
        while (tail->next != nullptr && tail->next->when == when) {
            tail = tail->next;
            ++n;
        }
        buckets_[curBucket_] = tail->next;
        tail->next = nullptr;
        pending_ -= n;
        fired += n;
        advanceClock(when);
        for (Event *cur = head; cur != nullptr;) {
            Event *next = cur->next;   // dispatch() recycles the record
            dispatch(cur);
            cur = next;
        }
    }
    return fired;
}

std::uint64_t
EventQueue::runUntil(SimTime deadline)
{
    PROF_SCOPE(prof::Slot::SimLoop);
    std::uint64_t fired = 0;
    while (pending_ != 0) {
        Event *e = peekMin();
        if (e->when > deadline)
            break;
        buckets_[curBucket_] = e->next;
        --pending_;
        advanceClock(e->when);
        dispatch(e);
        ++fired;
    }
    if (now_ < deadline && pending_ == 0)
        now_ = deadline;
    return fired;
}

}  // namespace cubessd::sim
