#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace cubessd::sim {

SimTime
EventQueue::schedule(SimTime delay, EventAction action)
{
    const SimTime when = now_ + delay;
    scheduleAt(when, std::move(action));
    return when;
}

void
EventQueue::scheduleAt(SimTime when, EventAction action)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, nextSeq_++, std::move(action)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-inspect the entry.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = entry.when;
    entry.action();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t fired = 0;
    while (step())
        ++fired;
    return fired;
}

std::uint64_t
EventQueue::runUntil(SimTime deadline)
{
    std::uint64_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        step();
        ++fired;
    }
    if (now_ < deadline && heap_.empty())
        now_ = deadline;
    return fired;
}

}  // namespace cubessd::sim
