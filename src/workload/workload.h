/**
 * @file
 * Synthetic workload generation.
 *
 * The paper evaluates with four Filebench personalities (Mail, Web,
 * Proxy, OLTP) and two YCSB-A database workloads (RocksDB, MongoDB).
 * We do not ship those applications; instead each workload is reduced
 * to the first-order traits that determine FTL behaviour — read/write
 * mix, request-size distribution, address locality (Zipf skew over a
 * working set), burstiness, and sequential-write tendency — and a
 * generator reproduces a request stream with those traits
 * (substitution documented in DESIGN.md Sec. 2).
 */

#ifndef CUBESSD_WORKLOAD_WORKLOAD_H
#define CUBESSD_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/zipf.h"
#include "src/ssd/request.h"

namespace cubessd::workload {

/** First-order traits of one workload. */
struct WorkloadSpec
{
    std::string name;
    double readFraction = 0.5;      ///< P(request is a read)
    std::uint32_t minPages = 1;     ///< read size range (16 KB pages)
    std::uint32_t maxPages = 1;
    /** Write size range; 0 = same as the read range. File-serving
     *  workloads read whole objects but write smaller updates. */
    std::uint32_t minWritePages = 0;
    std::uint32_t maxWritePages = 0;
    double zipfTheta = 0.9;         ///< address popularity skew
    double workingSetFraction = 0.5;///< of the logical address space
    /** Sequential append tendency of writes (LSM flush/compaction). */
    double sequentialWriteFraction = 0.0;
    /** Requests per burst *per thread*; 0 = steady stream. */
    std::uint32_t burstLength = 0;
    /** Mean host idle time between a thread's bursts (exponential). */
    SimTime interBurstGap = 0;
    /** Independent host threads issuing bursts (bursty mode). */
    std::uint32_t threads = 8;
    /** Outstanding requests the host keeps in flight (steady mode). */
    std::uint32_t queueDepth = 32;
};

/** @name The paper's six evaluation workloads @{ */
WorkloadSpec mail();   ///< mail server: fsync-heavy small writes
WorkloadSpec web();    ///< web server: read-dominant
WorkloadSpec proxy();  ///< proxy cache: read-mostly, bursty fills
WorkloadSpec oltp();   ///< OLTP DB: most write-intensive, bursty
WorkloadSpec rocks();  ///< RocksDB under YCSB-A (50/50, zipfian)
WorkloadSpec mongo();  ///< MongoDB under YCSB-A (50/50, zipfian)
/** All six, in the paper's figure order. */
std::vector<WorkloadSpec> allWorkloads();
/** @} */

/** @name Multi-tenant stressor personalities (not paper workloads) @{ */
/** Read-latency-sensitive tenant: ~95% small skewed reads (the
 *  STRAW-style read-hot stream whose p99.9 QoS the arbiter must
 *  protect). */
WorkloadSpec readhot();
/** Write-bandwidth tenant: ~90% writes with an append component —
 *  the noisy neighbour that fills the write buffer and triggers GC. */
WorkloadSpec writeheavy();
/** @} */

/**
 * Look up a workload personality by case-insensitive name (the six
 * paper workloads plus readhot/writeheavy).
 * @return the spec, or std::nullopt for an unknown name.
 */
std::optional<WorkloadSpec> findWorkload(const std::string &name);

/**
 * Stateful request generator for one workload on one device size.
 * Does not assign ids or arrival times — the driver owns pacing.
 */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const WorkloadSpec &spec,
                      std::uint64_t logicalPages, std::uint64_t seed);

    const WorkloadSpec &spec() const { return spec_; }

    /** Produce the next request (id/arrival left zero). */
    ssd::HostRequest next();

    /** Pages in the working set (prefill wants to cover these). */
    std::uint64_t workingSetPages() const { return workingSet_; }

  private:
    Lba sampleLba(std::uint32_t pages, bool isRead);

    WorkloadSpec spec_;
    std::uint64_t logicalPages_;
    std::uint64_t workingSet_;
    Rng rng_;
    ZipfGenerator zipf_;
    Lba seqCursor_ = 0;
};

}  // namespace cubessd::workload

#endif  // CUBESSD_WORKLOAD_WORKLOAD_H
