#include "src/workload/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace cubessd::workload {

void
TraceWriter::write(std::ostream &out,
                   const std::vector<ssd::HostRequest> &requests)
{
    out << "# cubessd trace v1: arrival_ns op lba pages\n";
    for (const auto &req : requests) {
        out << req.arrival << ' '
            << (req.type == ssd::IoType::Read ? 'R' : 'W') << ' '
            << req.lba << ' ' << req.pages << '\n';
    }
}

void
TraceWriter::writeFile(const std::string &path,
                       const std::vector<ssd::HostRequest> &requests)
{
    std::ofstream out(path);
    if (!out)
        fatal("TraceWriter: cannot open '%s'", path.c_str());
    write(out, requests);
    if (!out)
        fatal("TraceWriter: write error on '%s'", path.c_str());
}

namespace {

/** Bytes per logical page when converting MSR byte extents. */
constexpr std::uint64_t kMsrPageBytes = 16 * 1024;

/** Parse one native "<arrival_ns> <R|W> <lba> <pages>" line. */
std::string
parseNativeLine(const std::string &line, std::uint64_t lineNo,
                ssd::HostRequest *req)
{
    std::istringstream fields(line);
    char op = 0;
    if (!(fields >> req->arrival >> op >> req->lba >> req->pages) ||
        (op != 'R' && op != 'W') || req->pages == 0) {
        return "malformed trace line " + std::to_string(lineNo) +
               " (expected '<arrival_ns> <R|W> <lba> <pages>'): '" +
               line + "'";
    }
    req->type = op == 'R' ? ssd::IoType::Read : ssd::IoType::Write;
    return "";
}

/**
 * Parse one MSR-Cambridge CSV record. `baseTicks` carries the first
 * record's FILETIME timestamp (0 = not yet seen) so arrivals are
 * rebased to t=0.
 */
std::string
parseMsrLine(const std::string &line, std::uint64_t lineNo,
             std::uint64_t *baseTicks, ssd::HostRequest *req)
{
    std::istringstream fields(line);
    std::string timestamp, hostname, disk, type, offset, size;
    if (!std::getline(fields, timestamp, ',') ||
        !std::getline(fields, hostname, ',') ||
        !std::getline(fields, disk, ',') ||
        !std::getline(fields, type, ',') ||
        !std::getline(fields, offset, ',') ||
        !std::getline(fields, size, ',')) {
        return "malformed MSR-Cambridge record on line " +
               std::to_string(lineNo) +
               " (expected 'timestamp,hostname,disk,type,offset,size,"
               "latency'): '" + line + "'";
    }

    if (type != "Read" && type != "Write") {
        return "malformed MSR-Cambridge record on line " +
               std::to_string(lineNo) + ": bad I/O type '" + type +
               "' (expected Read or Write)";
    }
    req->type =
        type == "Read" ? ssd::IoType::Read : ssd::IoType::Write;

    char *end = nullptr;
    const std::uint64_t ticks =
        std::strtoull(timestamp.c_str(), &end, 10);
    if (end == timestamp.c_str() || *end != '\0') {
        return "malformed MSR-Cambridge record on line " +
               std::to_string(lineNo) + ": bad timestamp '" +
               timestamp + "'";
    }
    const std::uint64_t offsetBytes =
        std::strtoull(offset.c_str(), &end, 10);
    if (end == offset.c_str() || *end != '\0') {
        return "malformed MSR-Cambridge record on line " +
               std::to_string(lineNo) + ": bad offset '" + offset + "'";
    }
    const std::uint64_t sizeBytes =
        std::strtoull(size.c_str(), &end, 10);
    if (end == size.c_str() || *end != '\0' || sizeBytes == 0) {
        return "malformed MSR-Cambridge record on line " +
               std::to_string(lineNo) + ": bad size '" + size + "'";
    }

    if (*baseTicks == 0)
        *baseTicks = ticks;
    // FILETIME counts 100 ns ticks; rebase so the trace starts at 0
    // (records are not required to be sorted, so clamp the odd
    // out-of-order timestamp instead of underflowing).
    const std::uint64_t rebased =
        ticks > *baseTicks ? ticks - *baseTicks : 0;
    req->arrival = static_cast<SimTime>(rebased * 100);
    req->lba = offsetBytes / kMsrPageBytes;
    const std::uint64_t endByte = offsetBytes + sizeBytes;
    req->pages = static_cast<std::uint32_t>(
        (endByte + kMsrPageBytes - 1) / kMsrPageBytes - req->lba);
    return "";
}

}  // namespace

std::string
TraceReader::parse(std::istream &in,
                   std::vector<ssd::HostRequest> *requests)
{
    std::string line;
    std::uint64_t lineNo = 0;
    std::uint64_t baseTicks = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        ssd::HostRequest req;
        const std::string err =
            line.find(',') != std::string::npos
                ? parseMsrLine(line, lineNo, &baseTicks, &req)
                : parseNativeLine(line, lineNo, &req);
        if (!err.empty())
            return err;
        requests->push_back(req);
    }
    return "";
}

std::vector<ssd::HostRequest>
TraceReader::read(std::istream &in)
{
    std::vector<ssd::HostRequest> requests;
    const std::string err = parse(in, &requests);
    if (!err.empty())
        fatal("TraceReader: %s", err.c_str());
    return requests;
}

std::vector<ssd::HostRequest>
TraceReader::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("TraceReader: cannot open '%s'", path.c_str());
    return read(in);
}

namespace {

/** Folds replay completions into a ReplayResult (typed sink — the
 *  replay path stays closure-free like the drivers). */
struct ReplaySink final : ssd::CompletionSink
{
    ReplayResult *result = nullptr;

    void onCompletion(const ssd::Completion &c, std::uint64_t) override
    {
        auto &rec = c.type == ssd::IoType::Read
                        ? result->readLatencyUs
                        : result->writeLatencyUs;
        rec.add(toMicroseconds(c.latency()));
        ++result->completed;
    }
};

}  // namespace

ReplayResult
replayTrace(ssd::Ssd &ssd,
            const std::vector<ssd::HostRequest> &requests)
{
    ReplayResult result;
    ReplaySink sink;
    sink.result = &result;
    const SimTime start = ssd.queue().now();
    for (auto req : requests) {
        req.arrival += start;  // replay relative to "now"
        ssd.submit(req, &sink);
    }
    ssd.queue().run();
    result.elapsed = ssd.queue().now() - start;
    result.iops = result.elapsed > 0
        ? static_cast<double>(result.completed) /
              toSeconds(result.elapsed)
        : 0.0;
    return result;
}

}  // namespace cubessd::workload
