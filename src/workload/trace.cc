#include "src/workload/trace.h"

#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace cubessd::workload {

void
TraceWriter::write(std::ostream &out,
                   const std::vector<ssd::HostRequest> &requests)
{
    out << "# cubessd trace v1: arrival_ns op lba pages\n";
    for (const auto &req : requests) {
        out << req.arrival << ' '
            << (req.type == ssd::IoType::Read ? 'R' : 'W') << ' '
            << req.lba << ' ' << req.pages << '\n';
    }
}

void
TraceWriter::writeFile(const std::string &path,
                       const std::vector<ssd::HostRequest> &requests)
{
    std::ofstream out(path);
    if (!out)
        fatal("TraceWriter: cannot open '%s'", path.c_str());
    write(out, requests);
    if (!out)
        fatal("TraceWriter: write error on '%s'", path.c_str());
}

std::vector<ssd::HostRequest>
TraceReader::read(std::istream &in)
{
    std::vector<ssd::HostRequest> requests;
    std::string line;
    std::uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        ssd::HostRequest req;
        char op = 0;
        if (!(fields >> req.arrival >> op >> req.lba >> req.pages) ||
            (op != 'R' && op != 'W') || req.pages == 0) {
            fatal("TraceReader: malformed trace line %llu: '%s'",
                  static_cast<unsigned long long>(lineNo), line.c_str());
        }
        req.type = op == 'R' ? ssd::IoType::Read : ssd::IoType::Write;
        requests.push_back(req);
    }
    return requests;
}

std::vector<ssd::HostRequest>
TraceReader::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("TraceReader: cannot open '%s'", path.c_str());
    return read(in);
}

ReplayResult
replayTrace(ssd::Ssd &ssd,
            const std::vector<ssd::HostRequest> &requests)
{
    ReplayResult result;
    const SimTime start = ssd.queue().now();
    for (auto req : requests) {
        req.arrival += start;  // replay relative to "now"
        ssd.submit(req, [&result](const ssd::Completion &c) {
            auto &rec = c.type == ssd::IoType::Read
                            ? result.readLatencyUs
                            : result.writeLatencyUs;
            rec.add(toMicroseconds(c.latency()));
            ++result.completed;
        });
    }
    ssd.queue().run();
    result.elapsed = ssd.queue().now() - start;
    result.iops = result.elapsed > 0
        ? static_cast<double>(result.completed) /
              toSeconds(result.elapsed)
        : 0.0;
    return result;
}

}  // namespace cubessd::workload
