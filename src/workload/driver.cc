#include "src/workload/driver.h"

#include "src/common/logging.h"
#include "src/common/units.h"

namespace cubessd::workload {

Driver::Driver(ssd::Ssd &ssd, WorkloadGenerator &generator)
    : ssd_(ssd), generator_(generator),
      pacingRng_(ssd.config().seed ^ 0xB0B0B0B0ull)
{
}

void
Driver::prefill(double overwriteFraction)
{
    const std::uint64_t ws = generator_.workingSetPages();
    const std::uint64_t fill = ssd_.logicalPages();
    constexpr std::uint32_t kChunk = 64;
    constexpr std::uint64_t kDepth = 64;

    // Phase 1: sequential fill of the whole logical space.
    std::uint64_t nextLba = 0;
    prefillOutstanding_ = 0;
    while (nextLba < fill || prefillOutstanding_ > 0) {
        while (nextLba < fill && prefillOutstanding_ < kDepth) {
            const auto pages = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(kChunk, fill - nextLba));
            ssd::HostRequest req;
            req.type = ssd::IoType::Write;
            req.lba = nextLba;
            req.pages = pages;
            nextLba += pages;
            ++prefillOutstanding_;
            ssd_.hostQueue().submit(req, this, kPrefillCtx);
        }
        if (prefillOutstanding_ > 0 && !ssd_.queue().step())
            panic("Driver::prefill: queue drained with I/O outstanding");
    }

    // Phase 2: random overwrites to reach a GC-realistic state.
    Rng rng(ssd_.config().seed ^ 0xFEEDFACEull);
    std::uint64_t remaining = static_cast<std::uint64_t>(
        static_cast<double>(ws) * overwriteFraction);
    while (remaining > 0 || prefillOutstanding_ > 0) {
        while (remaining > 0 && prefillOutstanding_ < kDepth) {
            ssd::HostRequest req;
            req.type = ssd::IoType::Write;
            req.lba = rng.uniformInt(ws);
            req.pages = 1;
            --remaining;
            ++prefillOutstanding_;
            ssd_.hostQueue().submit(req, this, kPrefillCtx);
        }
        if (prefillOutstanding_ > 0 && !ssd_.queue().step())
            panic("Driver::prefill: queue drained with I/O outstanding");
    }
    ssd_.drain();
}

std::uint64_t
Driver::sampleBurstLength()
{
    // Bursts vary around the spec's mean (uniform +-50%): real hosts
    // do not emit fixed-size bursts, and the jitter also avoids
    // phase-locking between burst cycles and the device's drain time.
    const auto mean = generator_.spec().burstLength;
    const std::uint64_t lo = std::max<std::uint64_t>(1, mean / 2);
    return lo + pacingRng_.uniformInt(mean);
}

void
Driver::submitOne(std::uint32_t thread)
{
    ssd::HostRequest req = generator_.next();
    req.arrival = ssd_.queue().now();
    --toSubmit_;
    ++outstanding_;
    ++threads_[thread].outstanding;

    ssd_.hostQueue().submit(req, this, thread);
}

void
Driver::onCompletion(const ssd::Completion &c, std::uint64_t ctx)
{
    if (ctx == kPrefillCtx) {
        --prefillOutstanding_;
        return;
    }
    const auto thread = static_cast<std::uint32_t>(ctx);

    // Every measured request is awaited before run() returns and
    // nulls result_; a completion arriving with result_ == nullptr
    // means a request leaked past the measured window.
    if (result_ == nullptr)
        panic("Driver: completion after the measured window "
              "(id %llu)", static_cast<unsigned long long>(c.id));
    auto &rec = c.type == ssd::IoType::Read
                    ? result_->readLatencyUs
                    : result_->writeLatencyUs;
    rec.add(toMicroseconds(c.latency()));
    result_->queueWaitUs.add(toMicroseconds(c.queueWait()));
    result_->requestMetrics.record(c);
    ++result_->statusCounts[static_cast<std::size_t>(c.status)];
    ++result_->completedRequests;
    --outstanding_;
    auto &t = threads_[thread];
    --t.outstanding;

    const auto &spec = generator_.spec();
    if (spec.burstLength == 0) {
        // Steady closed loop: replace the completed request.
        if (toSubmit_ > 0)
            submitOne(thread);
    } else if (t.outstanding == 0 && toSubmit_ > 0) {
        // This thread's burst completed: idle (exponential think
        // time around the spec's gap), then fire its next burst.
        const SimTime gap = static_cast<SimTime>(
            pacingRng_.exponential(
                static_cast<double>(spec.interBurstGap)));
        sim::EventPayload payload;
        payload.driverTick.thread = thread;
        ssd_.queue().schedule(gap, sim::EventKind::DriverTick, this,
                              payload);
    }
}

void
Driver::onEvent(sim::EventKind, const sim::EventPayload &payload)
{
    auto &t = threads_[payload.driverTick.thread];
    t.burstRemaining = sampleBurstLength();
    while (toSubmit_ > 0 && t.burstRemaining > 0) {
        --t.burstRemaining;
        submitOne(payload.driverTick.thread);
    }
}

RunResult
Driver::run(std::uint64_t requests)
{
    RunResult result;
    result_ = &result;
    toSubmit_ = requests;
    outstanding_ = 0;
    runStart_ = ssd_.queue().now();

    // Busy-time snapshots so utilization covers only the measured
    // window (prefill activity is excluded).
    std::vector<SimTime> channelBusy0(ssd_.channelCount());
    for (std::uint32_t i = 0; i < ssd_.channelCount(); ++i)
        channelBusy0[i] = ssd_.channel(i).busyTime();
    std::vector<SimTime> dieBusy0(ssd_.chipCount());
    for (std::uint32_t i = 0; i < ssd_.chipCount(); ++i)
        dieBusy0[i] = ssd_.chipUnit(i).busyTime();

    const auto &spec = generator_.spec();
    if (spec.burstLength == 0) {
        threads_.assign(1, ThreadState{});
        const std::uint64_t initial =
            std::min<std::uint64_t>(spec.queueDepth, toSubmit_);
        for (std::uint64_t i = 0; i < initial; ++i)
            submitOne(0);
    } else {
        // Independent burst loops, one per host thread: a straggling
        // request only stalls its own thread, as with a real
        // multi-threaded benchmark client.
        const std::uint32_t n = std::max<std::uint32_t>(1, spec.threads);
        threads_.assign(n, ThreadState{});
        for (std::uint32_t t = 0; t < n && toSubmit_ > 0; ++t) {
            auto &ts = threads_[t];
            ts.burstRemaining = sampleBurstLength();
            while (toSubmit_ > 0 && ts.burstRemaining > 0) {
                --ts.burstRemaining;
                submitOne(t);
            }
        }
    }

    while ((toSubmit_ > 0 || outstanding_ > 0) && ssd_.queue().step()) {
    }
    if (toSubmit_ > 0 || outstanding_ > 0)
        panic("Driver::run: queue drained with requests pending");

    result.elapsed = ssd_.queue().now() - runStart_;
    result.iops = result.elapsed > 0
        ? static_cast<double>(result.completedRequests) /
              toSeconds(result.elapsed)
        : 0.0;

    result.utilization.window = result.elapsed;
    if (result.elapsed > 0) {
        const double window = static_cast<double>(result.elapsed);
        result.utilization.channel.resize(ssd_.channelCount());
        for (std::uint32_t i = 0; i < ssd_.channelCount(); ++i) {
            result.utilization.channel[i] = static_cast<double>(
                ssd_.channel(i).busyTime() - channelBusy0[i]) / window;
        }
        result.utilization.die.resize(ssd_.chipCount());
        for (std::uint32_t i = 0; i < ssd_.chipCount(); ++i) {
            result.utilization.die[i] = static_cast<double>(
                ssd_.chipUnit(i).busyTime() - dieBusy0[i]) / window;
        }
    }
    result_ = nullptr;
    return result;
}

}  // namespace cubessd::workload
