/**
 * @file
 * Tenant specification for the multi-tenant front end.
 *
 * A TenantSpec bundles everything one tenant stream needs: a workload
 * personality (or a trace file supplying request content), a WRR
 * arbitration weight, an SLO latency target, a share of the logical
 * address space, and an open-loop arrival process. Specs parse from
 * the compact CLI grammar
 *
 *   <name>:<workload>[:<key>=<value>]*
 *
 * e.g. "A:readhot:w=3:slo=500us" — keys: w (weight), slo (latency
 * target, e.g. 500us/2ms), rate (open-loop arrivals/s; default:
 * derived from --load and the calibrated device capacity), arrival
 * (poisson|bursty), burst (mean batch size of the bursty process),
 * ns (fraction of the logical space; default: equal share of what the
 * explicit fractions leave), trace (file whose records drive the
 * stream's request content).
 *
 * validate() follows the SsdConfig::validate() convention: empty
 * string when usable, else a descriptive message naming the offending
 * field.
 */

#ifndef CUBESSD_WORKLOAD_TENANT_H
#define CUBESSD_WORKLOAD_TENANT_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/workload/workload.h"

namespace cubessd::workload {

/** Open-loop arrival process families. */
enum class ArrivalKind
{
    /** Independent exponential inter-arrival gaps. */
    Poisson,
    /** Batch-Poisson: epochs at rate/burstMean with geometric
     *  (mean burstMean) back-to-back batches — same average rate,
     *  much burstier short-term demand. */
    Bursty,
};

const char *arrivalKindName(ArrivalKind kind);

/** One tenant stream of a multi-tenant run. */
struct TenantSpec
{
    std::string name;
    /** Synthetic personality generating the stream's requests.
     *  workload.name empty means the content comes from `trace`. */
    WorkloadSpec workload;
    /** Trace file driving the stream's request content (type, LBA,
     *  size, scaled into the tenant's namespace); pacing still comes
     *  from the arrival process. Empty = synthetic workload. */
    std::string trace;
    /** WRR arbitration weight (>= 1). */
    std::uint32_t weight = 1;
    /** SLO latency target; completions slower than this count as
     *  violations. 0 = no SLO. */
    SimTime sloTarget = 0;
    /** Fraction of the logical space this tenant's namespace covers.
     *  0 = an equal share of whatever the explicit fractions leave. */
    double namespaceFraction = 0.0;
    /** Open-loop arrival process family. */
    ArrivalKind arrival = ArrivalKind::Poisson;
    /** Open-loop arrival rate in requests/s; 0 = derive from the
     *  offered-load factor at calibration time. */
    double rate = 0.0;
    /** Mean batch size of the bursty arrival process (>= 1). */
    double burstMean = 8.0;

    /** @return empty if usable, else a descriptive error message. */
    std::string validate() const;
};

/**
 * Parse one "<name>:<workload>[:<key>=<value>]*" spec.
 * @return empty on success (spec filled in), else the parse error.
 */
std::string parseTenantSpec(const std::string &text, TenantSpec *spec);

/**
 * Parse a comma-separated tenant list ("A:readhot:w=3,B:oltp:w=1"),
 * appending to `specs`. @return empty on success, else the error.
 */
std::string parseTenantList(const std::string &text,
                            std::vector<TenantSpec> *specs);

/**
 * Cross-tenant checks: at least one tenant, unique names, namespace
 * fractions summing to at most 1. Each spec must already pass its own
 * validate(). @return empty if usable, else the error.
 */
std::string validateTenants(const std::vector<TenantSpec> &specs);

/**
 * Parse a duration with unit suffix ("500us", "2ms", "1.5s", "250ns")
 * into nanoseconds. @return empty on success, else the error.
 */
std::string parseDuration(const std::string &text, SimTime *out);

/**
 * Deterministic arrival-epoch generator for one open-loop tenant
 * stream: nextGap() is the time to the next arrival epoch and
 * batchSize() how many requests that epoch delivers back to back
 * (always 1 for Poisson).
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(ArrivalKind kind, double ratePerSecond,
                   double burstMean, std::uint64_t seed);

    /** Time until the next arrival epoch (exponential). */
    SimTime nextGap();

    /** Requests delivered at one epoch (geometric for Bursty). */
    std::uint32_t batchSize();

    double ratePerSecond() const { return rate_; }

  private:
    ArrivalKind kind_;
    double rate_;       ///< requests per second
    double epochMeanNs_; ///< mean gap between epochs
    double burstMean_;
    Rng rng_;
};

}  // namespace cubessd::workload

#endif  // CUBESSD_WORKLOAD_TENANT_H
