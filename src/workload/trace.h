/**
 * @file
 * I/O trace recording and replay.
 *
 * Traces use a simple line-oriented text format, one request per line:
 *
 *   <arrival_ns> <R|W> <lba> <pages>
 *
 * Lines starting with '#' are comments. TraceWriter captures a
 * generated or live request stream; TraceReader loads it back, and
 * replayTrace() submits it open-loop at the recorded arrival times.
 *
 * TraceReader also auto-detects the MSR-Cambridge block-trace CSV
 * format (SNIA IOTTA, one record per line):
 *
 *   <timestamp>,<hostname>,<disk>,<Read|Write>,<offset>,<size>,<latency>
 *
 * where the timestamp is in Windows FILETIME units (100 ns ticks) and
 * offset/size are bytes. Records are rebased so the first one arrives
 * at t=0 and byte ranges are converted to 16 KB logical pages.
 */

#ifndef CUBESSD_WORKLOAD_TRACE_H
#define CUBESSD_WORKLOAD_TRACE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/ssd/ssd.h"
#include "src/ssd/request.h"

namespace cubessd::workload {

/** Serialize requests to a stream / file. */
class TraceWriter
{
  public:
    /** Write a header comment and all requests to `out`. */
    static void write(std::ostream &out,
                      const std::vector<ssd::HostRequest> &requests);

    /** Convenience: write to a file path. Fatal on I/O error. */
    static void writeFile(const std::string &path,
                          const std::vector<ssd::HostRequest> &requests);
};

/** Parse requests back from a stream / file. */
class TraceReader
{
  public:
    /** @return all requests in the stream; fatal on malformed lines. */
    static std::vector<ssd::HostRequest> read(std::istream &in);

    /** Convenience: read a file path. Fatal on I/O error. */
    static std::vector<ssd::HostRequest>
    readFile(const std::string &path);

    /**
     * Non-fatal parse with format auto-detection (native whitespace
     * format vs MSR-Cambridge CSV, decided per line by the presence
     * of commas). Appends to `requests`.
     * @return empty on success, else a descriptive error naming the
     *         detected format and the offending line.
     */
    static std::string parse(std::istream &in,
                             std::vector<ssd::HostRequest> *requests);
};

/** Latency/IOPS summary of a replay. */
struct ReplayResult
{
    std::uint64_t completed = 0;
    SimTime elapsed = 0;
    double iops = 0.0;
    LatencyRecorder readLatencyUs;
    LatencyRecorder writeLatencyUs;
};

/**
 * Submit every request at its recorded arrival time (open loop) and
 * run to completion.
 */
ReplayResult replayTrace(ssd::Ssd &ssd,
                         const std::vector<ssd::HostRequest> &requests);

}  // namespace cubessd::workload

#endif  // CUBESSD_WORKLOAD_TRACE_H
