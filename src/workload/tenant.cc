#include "src/workload/tenant.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace cubessd::workload {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Bursty: return "bursty";
    }
    return "unknown";
}

std::string
TenantSpec::validate() const
{
    if (name.empty())
        return "tenant name must not be empty";
    if (workload.name.empty() && trace.empty())
        return "tenant '" + name +
               "': needs a workload personality or a trace file";
    if (weight == 0)
        return "tenant '" + name + "': weight must be at least 1";
    if (namespaceFraction < 0.0 || namespaceFraction > 1.0)
        return "tenant '" + name +
               "': namespace fraction must be in [0, 1]";
    if (rate < 0.0)
        return "tenant '" + name + "': rate must be non-negative";
    if (burstMean < 1.0)
        return "tenant '" + name + "': burst mean must be at least 1";
    return "";
}

std::string
parseDuration(const std::string &text, SimTime *out)
{
    if (text.empty())
        return "empty duration";
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        return "bad duration '" + text + "': expected <number><unit>";
    if (value < 0.0)
        return "bad duration '" + text + "': must be non-negative";
    const std::string unit(end);
    double scale = 0.0;
    if (unit == "ns")
        scale = 1.0;
    else if (unit == "us")
        scale = static_cast<double>(kMicrosecond);
    else if (unit == "ms")
        scale = static_cast<double>(kMillisecond);
    else if (unit == "s")
        scale = static_cast<double>(kSecond);
    else
        return "bad duration '" + text +
               "': unit must be ns, us, ms or s";
    *out = static_cast<SimTime>(value * scale);
    return "";
}

namespace {

std::string
lowered(const std::string &text)
{
    std::string out = text;
    for (auto &ch : out)
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
    return out;
}

std::string
parsePositiveDouble(const std::string &key, const std::string &value,
                    double *out)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(parsed > 0.0))
        return "bad " + key + " '" + value +
               "': expected a positive number";
    *out = parsed;
    return "";
}

/** Apply one "key=value" option to the spec being built. */
std::string
applyOption(const std::string &token, TenantSpec *spec)
{
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
        return "bad tenant option '" + token +
               "': expected <key>=<value>";
    const std::string key = lowered(token.substr(0, eq));
    const std::string value = token.substr(eq + 1);

    if (key == "w" || key == "weight") {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || parsed == 0)
            return "bad weight '" + value +
                   "': expected a positive integer";
        spec->weight = static_cast<std::uint32_t>(parsed);
        return "";
    }
    if (key == "slo") {
        const std::string err = parseDuration(value, &spec->sloTarget);
        return err.empty() ? "" : "bad slo: " + err;
    }
    if (key == "rate")
        return parsePositiveDouble("rate", value, &spec->rate);
    if (key == "burst")
        return parsePositiveDouble("burst", value, &spec->burstMean);
    if (key == "ns") {
        double fraction = 0.0;
        const std::string err =
            parsePositiveDouble("ns", value, &fraction);
        if (!err.empty())
            return err;
        if (fraction > 1.0)
            return "bad ns '" + value + "': fraction must be <= 1";
        spec->namespaceFraction = fraction;
        return "";
    }
    if (key == "arrival") {
        const std::string mode = lowered(value);
        if (mode == "poisson")
            spec->arrival = ArrivalKind::Poisson;
        else if (mode == "bursty")
            spec->arrival = ArrivalKind::Bursty;
        else
            return "bad arrival '" + value +
                   "': expected poisson or bursty";
        return "";
    }
    if (key == "trace") {
        spec->trace = value;
        return "";
    }
    return "unknown tenant option '" + key +
           "' (expected w, slo, rate, burst, ns, arrival or trace)";
}

}  // namespace

std::string
parseTenantSpec(const std::string &text, TenantSpec *spec)
{
    *spec = TenantSpec{};

    std::vector<std::string> tokens;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const auto colon = text.find(':', begin);
        const auto end = colon == std::string::npos ? text.size() : colon;
        tokens.push_back(text.substr(begin, end - begin));
        if (colon == std::string::npos)
            break;
        begin = colon + 1;
    }

    if (tokens.size() < 2 || tokens[0].empty())
        return "bad tenant spec '" + text +
               "': expected <name>:<workload>[:<key>=<value>]*";
    spec->name = tokens[0];

    // The second token is the workload personality, unless it is a
    // key=value option (a trace-driven tenant has no personality).
    std::size_t firstOption = 2;
    if (tokens[1].find('=') != std::string::npos) {
        firstOption = 1;
    } else {
        const auto found = findWorkload(tokens[1]);
        if (!found)
            return "bad tenant spec '" + text + "': unknown workload '" +
                   tokens[1] + "'";
        spec->workload = *found;
    }

    for (std::size_t i = firstOption; i < tokens.size(); ++i) {
        const std::string err = applyOption(tokens[i], spec);
        if (!err.empty())
            return "bad tenant spec '" + text + "': " + err;
    }
    return spec->validate();
}

std::string
parseTenantList(const std::string &text, std::vector<TenantSpec> *specs)
{
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const auto comma = text.find(',', begin);
        const auto end = comma == std::string::npos ? text.size() : comma;
        const std::string item = text.substr(begin, end - begin);
        if (item.empty())
            return "bad tenant list '" + text + "': empty entry";
        TenantSpec spec;
        const std::string err = parseTenantSpec(item, &spec);
        if (!err.empty())
            return err;
        specs->push_back(std::move(spec));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return "";
}

std::string
validateTenants(const std::vector<TenantSpec> &specs)
{
    if (specs.empty())
        return "at least one tenant is required";
    double fractionSum = 0.0;
    std::size_t defaulted = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string err = specs[i].validate();
        if (!err.empty())
            return err;
        for (std::size_t j = 0; j < i; ++j)
            if (specs[j].name == specs[i].name)
                return "duplicate tenant name '" + specs[i].name + "'";
        if (specs[i].namespaceFraction == 0.0)
            ++defaulted;
        fractionSum += specs[i].namespaceFraction;
    }
    if (fractionSum > 1.0 + 1e-9)
        return "tenant namespace fractions sum to more than 1";
    if (defaulted == 0 && fractionSum < 1.0 - 1e-9)
        return "tenant namespace fractions must sum to 1 when all are "
               "explicit";
    if (defaulted > 0 && fractionSum >= 1.0 - 1e-9)
        return "explicit namespace fractions leave no space for the "
               "tenants without one";
    return "";
}

ArrivalProcess::ArrivalProcess(ArrivalKind kind, double ratePerSecond,
                               double burstMean, std::uint64_t seed)
    : kind_(kind), rate_(ratePerSecond), burstMean_(burstMean), rng_(seed)
{
    if (!(ratePerSecond > 0.0))
        fatal("ArrivalProcess: rate must be positive (got %.3f)",
              ratePerSecond);
    if (burstMean < 1.0)
        fatal("ArrivalProcess: burst mean must be at least 1");
    // Poisson: epochs at the request rate, one request each. Bursty:
    // epochs slowed by the mean batch size so the average rate is
    // unchanged while short-term demand arrives in clumps.
    const double epochsPerSecond =
        kind == ArrivalKind::Bursty ? ratePerSecond / burstMean
                                    : ratePerSecond;
    epochMeanNs_ = static_cast<double>(kSecond) / epochsPerSecond;
}

SimTime
ArrivalProcess::nextGap()
{
    const double gap = rng_.exponential(epochMeanNs_);
    return static_cast<SimTime>(std::max(0.0, gap));
}

std::uint32_t
ArrivalProcess::batchSize()
{
    if (kind_ == ArrivalKind::Poisson)
        return 1;
    // Geometric with mean burstMean_ via inversion: support {1, 2, ...},
    // P(k) = p (1-p)^(k-1) with p = 1 / burstMean_.
    const double p = 1.0 / burstMean_;
    const double u = std::max(rng_.uniform(), 1e-12);
    const double k = std::ceil(std::log(u) / std::log1p(-p));
    return static_cast<std::uint32_t>(std::max(1.0, std::min(k, 4096.0)));
}

}  // namespace cubessd::workload
