#include "src/workload/workload.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace cubessd::workload {

WorkloadSpec
mail()
{
    WorkloadSpec s;
    s.name = "Mail";
    s.readFraction = 0.45;
    s.minPages = 1;
    s.maxPages = 2;
    s.zipfTheta = 0.9;
    s.workingSetFraction = 0.5;
    s.sequentialWriteFraction = 0.1;
    s.burstLength = 24;
    s.interBurstGap = 4 * kMillisecond;
    return s;
}

WorkloadSpec
web()
{
    WorkloadSpec s;
    s.name = "Web";
    s.readFraction = 0.9;
    s.minPages = 2;   // static files: 32 KB - 128 KB
    s.maxPages = 8;
    s.minWritePages = 1;  // logs and small content updates
    s.maxWritePages = 2;
    s.zipfTheta = 1.0;
    s.workingSetFraction = 0.6;
    s.burstLength = 0;  // steady serving
    return s;
}

WorkloadSpec
proxy()
{
    WorkloadSpec s;
    s.name = "Proxy";
    s.readFraction = 0.75;
    s.minPages = 4;   // cached web objects: 64 KB - 256 KB
    s.maxPages = 16;
    s.minWritePages = 1;  // cache fills trickle in smaller chunks
    s.maxWritePages = 4;
    s.zipfTheta = 0.8;
    s.workingSetFraction = 0.7;
    s.sequentialWriteFraction = 0.2;
    s.burstLength = 48;
    s.interBurstGap = 1 * kMillisecond;
    return s;
}

WorkloadSpec
oltp()
{
    WorkloadSpec s;
    s.name = "OLTP";
    s.readFraction = 0.3;  // the paper's most write-intensive workload
    s.minPages = 1;
    s.maxPages = 1;
    s.zipfTheta = 0.7;
    s.workingSetFraction = 0.4;
    s.burstLength = 48;    // commit bursts oversubscribe the write buffer
    s.interBurstGap = 6 * kMillisecond;
    return s;
}

WorkloadSpec
rocks()
{
    WorkloadSpec s;
    s.name = "Rocks";
    s.readFraction = 0.5;  // YCSB-A: 50/50 reads and updates
    s.minPages = 1;
    s.maxPages = 4;
    s.zipfTheta = 0.99;    // YCSB zipfian default
    s.workingSetFraction = 0.5;
    s.sequentialWriteFraction = 0.5;  // LSM flush/compaction appends
    s.burstLength = 32;
    s.interBurstGap = 4 * kMillisecond;
    return s;
}

WorkloadSpec
mongo()
{
    WorkloadSpec s;
    s.name = "Mongo";
    s.readFraction = 0.5;
    s.minPages = 1;
    s.maxPages = 2;
    s.zipfTheta = 0.99;
    s.workingSetFraction = 0.5;
    s.sequentialWriteFraction = 0.2;  // B-tree updates in place
    s.burstLength = 16;
    s.interBurstGap = 2 * kMillisecond;
    return s;
}

std::vector<WorkloadSpec>
allWorkloads()
{
    return {mail(), web(), proxy(), oltp(), rocks(), mongo()};
}

WorkloadSpec
readhot()
{
    WorkloadSpec s;
    s.name = "ReadHot";
    s.readFraction = 0.95;
    s.minPages = 1;
    s.maxPages = 4;
    s.minWritePages = 1;  // rare metadata updates
    s.maxWritePages = 1;
    s.zipfTheta = 0.99;
    s.workingSetFraction = 0.3;
    s.burstLength = 0;  // steady serving
    return s;
}

WorkloadSpec
writeheavy()
{
    WorkloadSpec s;
    s.name = "WriteHeavy";
    s.readFraction = 0.1;
    s.minPages = 1;
    s.maxPages = 2;
    s.zipfTheta = 0.8;
    s.workingSetFraction = 0.4;
    s.sequentialWriteFraction = 0.4;  // log/LSM append component
    s.burstLength = 0;
    return s;
}

std::optional<WorkloadSpec>
findWorkload(const std::string &name)
{
    std::string lower = name;
    for (auto &ch : lower)
        ch = static_cast<char>(std::tolower(ch));
    auto candidates = allWorkloads();
    candidates.push_back(readhot());
    candidates.push_back(writeheavy());
    for (const auto &spec : candidates) {
        std::string specLower = spec.name;
        for (auto &ch : specLower)
            ch = static_cast<char>(std::tolower(ch));
        if (specLower == lower)
            return spec;
    }
    return std::nullopt;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec,
                                     std::uint64_t logicalPages,
                                     std::uint64_t seed)
    : spec_(spec),
      logicalPages_(logicalPages),
      workingSet_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(logicalPages) *
                 spec.workingSetFraction))),
      rng_(seed),
      zipf_(workingSet_, spec.zipfTheta)
{
    if (logicalPages_ == 0)
        fatal("WorkloadGenerator: empty device");
    if (spec_.minPages == 0 || spec_.maxPages < spec_.minPages)
        fatal("WorkloadGenerator: bad request size range");
}

Lba
WorkloadGenerator::sampleLba(std::uint32_t pages, bool isRead)
{
    // Zipf rank 0 is the hottest; scatter ranks over the working set
    // with a multiplicative permutation so hot pages are not all
    // clustered at low addresses. Reads and writes use different
    // permutations: an application's hot read set is not the pages it
    // just wrote (those are absorbed by the host page cache before
    // ever reaching the device), so device-level read traffic must
    // not be dominated by write-buffer hits.
    const std::uint64_t rank = zipf_.sample(rng_);
    const std::uint64_t prime =
        isRead ? 0xC6A4A7935BD1E995ull : 0x9E3779B97F4A7C15ull;
    const std::uint64_t scattered = (rank * prime) % workingSet_;
    const std::uint64_t limit =
        workingSet_ > pages ? workingSet_ - pages : 1;
    return scattered % limit;
}

ssd::HostRequest
WorkloadGenerator::next()
{
    ssd::HostRequest req;
    const bool isRead = rng_.bernoulli(spec_.readFraction);
    req.type = isRead ? ssd::IoType::Read : ssd::IoType::Write;
    std::uint32_t lo = spec_.minPages;
    std::uint32_t hi = spec_.maxPages;
    if (!isRead && spec_.maxWritePages != 0) {
        lo = spec_.minWritePages;
        hi = spec_.maxWritePages;
    }
    req.pages = lo + static_cast<std::uint32_t>(
                         rng_.uniformInt(hi - lo + 1));

    if (!isRead && rng_.bernoulli(spec_.sequentialWriteFraction)) {
        // Sequential append stream (log/LSM flush) within the
        // working set.
        if (seqCursor_ + req.pages >= workingSet_)
            seqCursor_ = 0;
        req.lba = seqCursor_;
        seqCursor_ += req.pages;
    } else {
        req.lba = sampleLba(req.pages, isRead);
    }
    return req;
}

}  // namespace cubessd::workload
