/**
 * @file
 * Benchmark driver: paces a workload into an Ssd and measures IOPS
 * and latency distributions.
 *
 * Two pacing modes, selected by the workload spec:
 *  - steady closed loop (burstLength == 0): `queueDepth` requests are
 *    kept in flight at all times;
 *  - bursty (burstLength > 0): bursts of `burstLength` requests are
 *    submitted back to back; when a burst fully completes, the host
 *    idles for `interBurstGap` before the next one. This is the
 *    pattern under which the WAM's leader/follower steering pays off
 *    (slow leader programs are deferred into the idle gaps).
 */

#ifndef CUBESSD_WORKLOAD_DRIVER_H
#define CUBESSD_WORKLOAD_DRIVER_H

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/metrics/request_metrics.h"
#include "src/ssd/ssd.h"
#include "src/workload/workload.h"

namespace cubessd::workload {

/** Result of one measured run. */
struct RunResult
{
    std::uint64_t completedRequests = 0;
    /** Completions per ssd::Status (index with the enum value);
     *  statusCounts[0] counts the successes. */
    std::array<std::uint64_t, ssd::kStatusCount> statusCounts{};
    SimTime elapsed = 0;
    double iops = 0.0;
    LatencyRecorder readLatencyUs;
    LatencyRecorder writeLatencyUs;
    /** Time requests waited for a host-queue slot (0 when the queue
     *  depth is unbounded). */
    LatencyRecorder queueWaitUs;
    /** Per-IoType latency histograms + per-phase decomposition of
     *  every completion in the measured window. */
    metrics::RequestMetrics requestMetrics;
    /** Channel/die busy fractions over the measured window. */
    metrics::Utilization utilization;

    /** Completions that did not finish with Status::Ok. */
    std::uint64_t
    failedRequests() const
    {
        std::uint64_t failed = 0;
        for (std::size_t s = 1; s < statusCounts.size(); ++s)
            failed += statusCounts[s];
        return failed;
    }
};

class Driver final : public ssd::CompletionSink, public sim::EventHandler
{
  public:
    Driver(ssd::Ssd &ssd, WorkloadGenerator &generator);

    /**
     * Fill the whole logical space sequentially, then randomly
     * overwrite the requested fraction of the generator's working
     * set, so measurements run against a full, GC-active device.
     */
    void prefill(double overwriteFraction = 0.3);

    /** Run `requests` requests and collect IOPS/latency. */
    RunResult run(std::uint64_t requests);

    /** ssd::CompletionSink: a submitted request completed (ctx is the
     *  submitting thread, or the prefill sentinel). */
    void onCompletion(const ssd::Completion &completion,
                      std::uint64_t ctx) override;

    /** sim::EventHandler: a burst thread's think time expired. */
    void onEvent(sim::EventKind kind,
                 const sim::EventPayload &payload) override;

  private:
    /** onCompletion ctx marking a prefill (unmeasured) request. */
    static constexpr std::uint64_t kPrefillCtx =
        ~static_cast<std::uint64_t>(0);

    struct ThreadState
    {
        std::uint64_t outstanding = 0;
        std::uint64_t burstRemaining = 0;
    };

    void submitOne(std::uint32_t thread);
    std::uint64_t sampleBurstLength();

    ssd::Ssd &ssd_;
    WorkloadGenerator &generator_;
    Rng pacingRng_;

    // live run state
    RunResult *result_ = nullptr;
    std::uint64_t toSubmit_ = 0;
    std::uint64_t outstanding_ = 0;
    std::vector<ThreadState> threads_;
    SimTime runStart_ = 0;
    std::uint64_t prefillOutstanding_ = 0;
};

}  // namespace cubessd::workload

#endif  // CUBESSD_WORKLOAD_DRIVER_H
