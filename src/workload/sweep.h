/**
 * @file
 * Cell-level sweep driver: run a grid of independent simulation cells
 * — each an (SsdConfig incl. FTL + seed, workload, aging, request
 * count) tuple — across a sim::SweepRunner worker pool and hand the
 * per-cell results back IN CELL ORDER.
 *
 * Determinism contract (the reason `--jobs N` output is bit-identical
 * to `--jobs 1`):
 *
 *  1. Every cell builds its own Ssd, WorkloadGenerator, and Driver
 *     from its own seed; no mutable state is shared between cells.
 *  2. Results land in a slot indexed by the cell's grid position, not
 *     by completion order.
 *  3. All merging/aggregation (histogram merges, IOPS means, JSON
 *     sidecars) happens on the calling thread after runCells returns,
 *     walking the slots in cell order.
 *
 * Error handling: cell configurations are validated on the calling
 * thread BEFORE any worker spawns (the only place fatal() is
 * appropriate); an error inside a running cell (e.g. an unwritable
 * trace file) is caught, annotated with the cell's configuration, and
 * rethrown on the calling thread as sim::SweepError after all other
 * cells finish — a worker never calls exit() and never truncates
 * another cell's output.
 *
 * Tracing: at most ONE cell of a sweep records a trace (a sweep
 * produces one representative timeline, and two cells must never race
 * on the same trace file). SweepTrace names that cell explicitly; an
 * atomic claim enforces the exactly-one rule even if a future caller
 * passes duplicate indices.
 */

#ifndef CUBESSD_WORKLOAD_SWEEP_H
#define CUBESSD_WORKLOAD_SWEEP_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/ftl/ftl_stats.h"
#include "src/ftl/gc.h"
#include "src/nand/error_model.h"
#include "src/prof/prof.h"
#include "src/sim/sweep.h"
#include "src/ssd/config.h"
#include "src/workload/driver.h"
#include "src/workload/workload.h"

namespace cubessd::workload {

/** One independent simulation cell of a sweep grid. */
struct SweepCell
{
    /** Device configuration; `config.ftl` and `config.seed` select
     *  the cell's FTL and RNG streams. */
    ssd::SsdConfig config;
    WorkloadSpec spec;
    nand::AgingState aging{};
    /** Measured requests after prefill. */
    std::uint64_t requests = 0;
    /** Random-overwrite fraction of the prefill (Driver::prefill). */
    double prefillOverwrite = 0.2;

    /** "cell N (ftl=cube, workload=OLTP, pe=2000, ...)" for errors. */
    std::string describe(std::size_t index) const;
};

/** Everything one cell produced, captured before its Ssd dies. */
struct CellResult
{
    RunResult run;
    ftl::FtlStats ftl;
    ftl::GcStats gc;
    bool readOnly = false;
    /** Self-profile delta of this cell's run, captured on the worker
     *  that executed it (empty unless prof::enabled()). Counts are
     *  deterministic; tick times are wall-clock noise. */
    prof::ProfileData profile;
};

/** Optional tracing of exactly one cell of a sweep. */
struct SweepTrace
{
    std::string out;                    ///< empty = no tracing
    std::uint64_t sampleIntervalUs = 1000;  ///< 0 = no counter samples
    std::size_t cell = 0;               ///< which cell records
};

/**
 * Run every cell (prefill + measured run), farming cells onto `jobs`
 * worker threads (1 = inline on the calling thread), and return the
 * results in cell order. See the file comment for the determinism and
 * error contracts. `telemetry`, if given, receives the worker-pool
 * load breakdown of this sweep (sim::SweepRunner::run).
 */
std::vector<CellResult>
runCells(const std::vector<SweepCell> &cells, unsigned jobs,
         const SweepTrace &trace = {},
         sim::SweepTelemetry *telemetry = nullptr);

/** Merge every cell's profile in cell order (deterministic counts). */
prof::ProfileData
mergeCellProfiles(const std::vector<CellResult> &results);

}  // namespace cubessd::workload

#endif  // CUBESSD_WORKLOAD_SWEEP_H
