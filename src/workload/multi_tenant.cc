#include "src/workload/multi_tenant.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/workload/trace.h"

namespace cubessd::workload {

namespace {

ssd::SubmissionQueueStats
statsDelta(const ssd::SubmissionQueueStats &now,
           const ssd::SubmissionQueueStats &before)
{
    ssd::SubmissionQueueStats delta;
    delta.submitted = now.submitted - before.submitted;
    delta.dispatched = now.dispatched - before.dispatched;
    delta.completed = now.completed - before.completed;
    delta.maxBacklog = now.maxBacklog;  // high-water mark, not a count
    return delta;
}

}  // namespace

MultiTenantDriver::MultiTenantDriver(ssd::Ssd &ssd,
                                     std::vector<TenantSpec> specs,
                                     const MultiTenantOptions &options)
    : ssd_(ssd), options_(options),
      arbiter_(ssd.hostQueue(),
               ssd::ArbiterConfig{options.window, options.arbBurst})
{
    const std::string err = validateTenants(specs);
    if (!err.empty())
        fatal("MultiTenantDriver: %s", err.c_str());
    if (ssd_.hostQueue().depth() != 0)
        fatal("MultiTenantDriver: the arbiter owns the in-flight "
              "window; configure hostQueueDepth 0 (got %u)",
              ssd_.hostQueue().depth());

    // Carve the logical space into per-tenant namespaces: explicit
    // fractions first, the rest shared equally by the tenants that
    // left theirs defaulted.
    const std::uint64_t total = ssd_.logicalPages();
    double explicitSum = 0.0;
    std::size_t defaulted = 0;
    for (const auto &spec : specs) {
        if (spec.namespaceFraction == 0.0)
            ++defaulted;
        explicitSum += spec.namespaceFraction;
    }
    const double defaultFraction =
        defaulted > 0 ? (1.0 - explicitSum) /
                            static_cast<double>(defaulted)
                      : 0.0;

    Lba base = 0;
    tenants_.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TenantState state;
        state.spec = std::move(specs[i]);
        const double fraction = state.spec.namespaceFraction > 0.0
                                    ? state.spec.namespaceFraction
                                    : defaultFraction;
        state.ns.base = base;
        state.ns.pages = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(total) * fraction));
        if (base + state.ns.pages > total)
            state.ns.pages = total - base;
        if (state.ns.pages == 0)
            fatal("MultiTenantDriver: namespace of tenant '%s' is "
                  "empty — device too small for this partition",
                  state.spec.name.c_str());
        base += state.ns.pages;

        const std::uint64_t seed =
            ssd_.config().seed ^
            (0x7E4A7C15u + 0x9E3779B9ull * (i + 1));
        if (!state.spec.trace.empty()) {
            state.traceRequests =
                TraceReader::readFile(state.spec.trace);
            if (state.traceRequests.empty())
                fatal("MultiTenantDriver: trace '%s' of tenant '%s' "
                      "is empty",
                      state.spec.trace.c_str(),
                      state.spec.name.c_str());
        } else {
            state.generator = std::make_unique<WorkloadGenerator>(
                state.spec.workload, state.ns.pages, seed);
        }
        state.rate = state.spec.rate;
        state.result.name = state.spec.name;
        state.result.weight = state.spec.weight;
        state.result.sloTarget = state.spec.sloTarget;
        arbiter_.addQueue(state.spec.weight);
        tenants_.push_back(std::move(state));
    }
}

void
MultiTenantDriver::prefill(double overwriteFraction)
{
    const std::uint64_t fill = ssd_.logicalPages();
    constexpr std::uint32_t kChunk = 64;
    constexpr std::uint64_t kDepth = 64;

    // Phase 1: sequential fill of the whole logical space (straight
    // into the host queue — setup traffic does not arbitrate).
    std::uint64_t nextLba = 0;
    prefillOutstanding_ = 0;
    while (nextLba < fill || prefillOutstanding_ > 0) {
        while (nextLba < fill && prefillOutstanding_ < kDepth) {
            const auto pages = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(kChunk, fill - nextLba));
            ssd::HostRequest req;
            req.type = ssd::IoType::Write;
            req.lba = nextLba;
            req.pages = pages;
            nextLba += pages;
            ++prefillOutstanding_;
            ssd_.hostQueue().submit(req, this, kPrefillCtx);
        }
        if (prefillOutstanding_ > 0 && !ssd_.queue().step())
            panic("MultiTenantDriver::prefill: queue drained with "
                  "I/O outstanding");
    }

    // Phase 2: random overwrites inside every tenant's namespace so
    // each partition starts with GC-realistic invalidation.
    Rng rng(ssd_.config().seed ^ 0xFEEDFACEull);
    for (const auto &tenant : tenants_) {
        const std::uint64_t span =
            tenant.generator != nullptr
                ? tenant.generator->workingSetPages()
                : tenant.ns.pages;
        std::uint64_t remaining = static_cast<std::uint64_t>(
            static_cast<double>(span) * overwriteFraction);
        while (remaining > 0 || prefillOutstanding_ > 0) {
            while (remaining > 0 && prefillOutstanding_ < kDepth) {
                ssd::HostRequest req;
                req.type = ssd::IoType::Write;
                req.lba = tenant.ns.base + rng.uniformInt(span);
                req.pages = 1;
                --remaining;
                ++prefillOutstanding_;
                ssd_.hostQueue().submit(req, this, kPrefillCtx);
            }
            if (prefillOutstanding_ > 0 && !ssd_.queue().step())
                panic("MultiTenantDriver::prefill: queue drained "
                      "with I/O outstanding");
        }
    }
    ssd_.drain();
}

ssd::HostRequest
MultiTenantDriver::nextRequest(TenantState &tenant)
{
    if (tenant.generator != nullptr) {
        ssd::HostRequest req = tenant.generator->next();
        req.lba += tenant.ns.base;
        return req;
    }
    // Trace-driven content: cycle the records, folding the trace's
    // address space onto the tenant's namespace. Recorded arrival
    // times are ignored — pacing comes from the arrival process.
    const ssd::HostRequest &rec =
        tenant.traceRequests[tenant.traceCursor];
    tenant.traceCursor =
        (tenant.traceCursor + 1) % tenant.traceRequests.size();
    ssd::HostRequest req;
    req.type = rec.type;
    const Lba offset = rec.lba % tenant.ns.pages;
    req.lba = tenant.ns.base + offset;
    req.pages = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(rec.pages,
                                   tenant.ns.pages - offset)));
    return req;
}

void
MultiTenantDriver::submitOne(std::uint32_t tenant)
{
    auto &state = tenants_[tenant];
    ssd::HostRequest req = nextRequest(state);
    req.arrival = ssd_.queue().now();
    req.tenant = static_cast<ssd::TenantId>(tenant + 1);
    req.namespaceId = static_cast<std::uint16_t>(tenant + 1);

    --toSubmit_;
    ++outstanding_;
    ++state.outstanding;
    if (phase_ == Phase::Measure)
        ++state.result.submitted;
    arbiter_.submit(tenant, req, this, tenant);
}

void
MultiTenantDriver::scheduleArrival(std::uint32_t tenant)
{
    sim::EventPayload payload;
    payload.tenantArrival.tenant = tenant;
    ssd_.queue().schedule(tenants_[tenant].arrivals->nextGap(),
                          sim::EventKind::TenantArrival, this, payload);
}

void
MultiTenantDriver::onEvent(sim::EventKind,
                           const sim::EventPayload &payload)
{
    // Arrival epochs scheduled near the end of a run can fire after
    // the measured window closed (drain, or a later queue run);
    // demand simply stops then.
    if (phase_ != Phase::Measure || toSubmit_ == 0)
        return;
    const std::uint32_t tenant = payload.tenantArrival.tenant;
    auto &state = tenants_[tenant];
    const std::uint32_t batch = state.arrivals->batchSize();
    for (std::uint32_t i = 0; i < batch && toSubmit_ > 0; ++i)
        submitOne(tenant);
    if (toSubmit_ > 0)
        scheduleArrival(tenant);
}

void
MultiTenantDriver::onCompletion(const ssd::Completion &c,
                                std::uint64_t ctx)
{
    if (ctx == kPrefillCtx) {
        --prefillOutstanding_;
        return;
    }
    const auto tenant = static_cast<std::uint32_t>(ctx);
    auto &state = tenants_[tenant];
    --state.outstanding;
    --outstanding_;

    if (phase_ == Phase::Measure) {
        ++state.result.completed;
        state.result.metrics.record(c);
        if (state.spec.sloTarget > 0 &&
            c.latency() > state.spec.sloTarget)
            ++state.result.sloViolations;
    } else if (phase_ == Phase::Calibrate) {
        ++calibrationCompleted_;
    } else {
        panic("MultiTenantDriver: completion outside a run "
              "(id %llu)", static_cast<unsigned long long>(c.id));
    }

    // Closed loop (and calibration): replace the completed request
    // from the same tenant stream so its depth stays constant.
    const bool closedLoop =
        phase_ == Phase::Calibrate || !options_.openLoop;
    if (closedLoop && toSubmit_ > 0)
        submitOne(tenant);
}

void
MultiTenantDriver::runLoop()
{
    while ((toSubmit_ > 0 || outstanding_ > 0) && ssd_.queue().step()) {
    }
    if (toSubmit_ > 0 || outstanding_ > 0)
        panic("MultiTenantDriver: queue drained with requests pending");
}

double
MultiTenantDriver::calibrate()
{
    if (phase_ != Phase::Idle)
        panic("MultiTenantDriver::calibrate: run in progress");
    phase_ = Phase::Calibrate;
    toSubmit_ = options_.calibrationRequests;
    calibrationCompleted_ = 0;
    const SimTime start = ssd_.queue().now();

    // Interleave the initial window fill across tenants so no queue
    // gets a head start.
    for (std::uint32_t d = 0; d < options_.closedLoopQd; ++d)
        for (std::uint32_t t = 0;
             t < tenantCount() && toSubmit_ > 0; ++t)
            submitOne(t);
    runLoop();

    const SimTime elapsed = ssd_.queue().now() - start;
    calibratedIops_ = elapsed > 0
        ? static_cast<double>(calibrationCompleted_) / toSeconds(elapsed)
        : 0.0;
    phase_ = Phase::Idle;
    return calibratedIops_;
}

void
MultiTenantDriver::resolveRates()
{
    double weightSum = 0.0;
    for (auto &tenant : tenants_)
        if (tenant.spec.rate == 0.0)
            weightSum += static_cast<double>(tenant.spec.weight);

    if (weightSum > 0.0) {
        if (options_.load <= 0.0)
            fatal("MultiTenantDriver: open-loop tenants without an "
                  "explicit rate need an offered-load factor");
        if (calibratedIops_ == 0.0)
            calibrate();
        const double aggregate = options_.load * calibratedIops_;
        for (auto &tenant : tenants_)
            if (tenant.spec.rate == 0.0)
                tenant.rate = aggregate *
                              static_cast<double>(tenant.spec.weight) /
                              weightSum;
    }

    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        auto &tenant = tenants_[t];
        const std::uint64_t seed =
            ssd_.config().seed ^
            (0xA11CEull + 0xD1B54A32ull * (t + 1));
        tenant.arrivals = std::make_unique<ArrivalProcess>(
            tenant.spec.arrival, tenant.rate, tenant.spec.burstMean,
            seed);
    }
}

MultiTenantResult
MultiTenantDriver::run(std::uint64_t requests)
{
    if (phase_ != Phase::Idle)
        panic("MultiTenantDriver::run: run in progress");
    if (options_.openLoop)
        resolveRates();  // may run an unmeasured calibration phase

    phase_ = Phase::Measure;
    toSubmit_ = requests;
    const SimTime start = ssd_.queue().now();

    for (std::uint32_t t = 0; t < tenantCount(); ++t) {
        auto &state = tenants_[t];
        state.result.submitted = 0;
        state.result.completed = 0;
        state.result.sloViolations = 0;
        state.result.metrics = metrics::RequestMetrics{};
        state.result.offeredRate = options_.openLoop ? state.rate : 0.0;
        state.statsAtStart = arbiter_.stats(t);
    }

    std::vector<SimTime> channelBusy0(ssd_.channelCount());
    for (std::uint32_t i = 0; i < ssd_.channelCount(); ++i)
        channelBusy0[i] = ssd_.channel(i).busyTime();
    std::vector<SimTime> dieBusy0(ssd_.chipCount());
    for (std::uint32_t i = 0; i < ssd_.chipCount(); ++i)
        dieBusy0[i] = ssd_.chipUnit(i).busyTime();

    if (options_.openLoop) {
        for (std::uint32_t t = 0;
             t < tenantCount() && toSubmit_ > 0; ++t)
            scheduleArrival(t);
    } else {
        for (std::uint32_t d = 0; d < options_.closedLoopQd; ++d)
            for (std::uint32_t t = 0;
                 t < tenantCount() && toSubmit_ > 0; ++t)
                submitOne(t);
    }
    runLoop();

    MultiTenantResult result;
    result.elapsed = ssd_.queue().now() - start;
    result.calibratedIops = calibratedIops_;
    const double seconds = toSeconds(result.elapsed);
    result.tenants.reserve(tenantCount());
    for (std::uint32_t t = 0; t < tenantCount(); ++t) {
        auto &state = tenants_[t];
        state.result.iops =
            seconds > 0.0
                ? static_cast<double>(state.result.completed) / seconds
                : 0.0;
        state.result.arbitration =
            statsDelta(arbiter_.stats(t), state.statsAtStart);
        result.completed += state.result.completed;
        result.tenants.push_back(state.result);
    }
    result.iops = seconds > 0.0
        ? static_cast<double>(result.completed) / seconds
        : 0.0;

    result.utilization.window = result.elapsed;
    if (result.elapsed > 0) {
        const double window = static_cast<double>(result.elapsed);
        result.utilization.channel.resize(ssd_.channelCount());
        for (std::uint32_t i = 0; i < ssd_.channelCount(); ++i) {
            result.utilization.channel[i] = static_cast<double>(
                ssd_.channel(i).busyTime() - channelBusy0[i]) / window;
        }
        result.utilization.die.resize(ssd_.chipCount());
        for (std::uint32_t i = 0; i < ssd_.chipCount(); ++i) {
            result.utilization.die[i] = static_cast<double>(
                ssd_.chipUnit(i).busyTime() - dieBusy0[i]) / window;
        }
    }
    phase_ = Phase::Idle;
    return result;
}

}  // namespace cubessd::workload
