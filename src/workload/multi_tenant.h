/**
 * @file
 * Multi-tenant front end: N concurrent tenant streams over one SSD.
 *
 * Each tenant owns a slice of the logical space (its namespace), its
 * own workload generator (or trace content) and RNG streams, and one
 * NVMe-style submission queue; a WrrArbiter (ssd/arbiter.h) merges
 * the queues into the shared ssd::HostQueue by weighted round-robin.
 * Two pacing modes:
 *
 *  - closed loop (default): every tenant keeps `closedLoopQd`
 *    requests in flight, so relative throughput under saturation is
 *    set by the arbitration weights;
 *  - open loop (--open-loop): each tenant's requests arrive by an
 *    independent arrival process (Poisson or bursty) at a configured
 *    rate — either an explicit rate= per tenant or a fraction of the
 *    device's calibrated closed-loop capacity (`load`), split across
 *    tenants by weight. Open loop is what exposes SLO violations:
 *    demand does not slow down when the device falls behind.
 *
 * Per-tenant accounting (latency histograms with p50/p99/p99.9, SLO
 * violation counts, arbitration counters) keys off Completion::tenant,
 * which the pipeline carries through untouched.
 *
 * The driver expects the Ssd to be configured with hostQueueDepth 0
 * (unbounded): the arbiter owns the in-flight window, and a bounded
 * HostQueue underneath would re-serialize its decisions through a
 * second FIFO wait line.
 */

#ifndef CUBESSD_WORKLOAD_MULTI_TENANT_H
#define CUBESSD_WORKLOAD_MULTI_TENANT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/metrics/request_metrics.h"
#include "src/ssd/arbiter.h"
#include "src/ssd/ssd.h"
#include "src/workload/tenant.h"
#include "src/workload/workload.h"

namespace cubessd::workload {

struct MultiTenantOptions
{
    /** Pace by arrival processes instead of fixed in-flight counts. */
    bool openLoop = false;
    /** Open-loop offered load as a fraction of the calibrated
     *  closed-loop IOPS; split across the tenants without an explicit
     *  rate= in proportion to their weights. 0 = every tenant must
     *  carry its own rate. */
    double load = 0.0;
    /** Shared in-flight window of the WRR arbiter. */
    std::uint32_t window = 64;
    /** WRR burst: consecutive commands per weight unit per visit. */
    std::uint32_t arbBurst = 4;
    /** Requests each tenant keeps in flight in closed-loop mode (and
     *  during calibration). */
    std::uint32_t closedLoopQd = 16;
    /** Closed-loop requests used to calibrate device capacity. */
    std::uint64_t calibrationRequests = 4000;
};

/** Contiguous logical-page slice owned by one tenant. */
struct TenantNamespace
{
    Lba base = 0;
    std::uint64_t pages = 0;
};

/** Measured outcome of one tenant stream. */
struct TenantRunResult
{
    std::string name;
    std::uint32_t weight = 1;
    SimTime sloTarget = 0;          ///< 0 = no SLO configured
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    /** Completions slower than the tenant's SLO target. */
    std::uint64_t sloViolations = 0;
    /** Arrival rate the open-loop process targeted (0 closed-loop). */
    double offeredRate = 0.0;
    double iops = 0.0;
    /** Per-IoType latency histograms (p50/p99/p99.9) + phases. */
    metrics::RequestMetrics metrics;
    /** Arbitration counters over the measured window. */
    ssd::SubmissionQueueStats arbitration;

    double
    sloViolationFraction() const
    {
        return completed == 0
            ? 0.0
            : static_cast<double>(sloViolations) /
                  static_cast<double>(completed);
    }
};

/** Outcome of one multi-tenant run. */
struct MultiTenantResult
{
    SimTime elapsed = 0;
    std::uint64_t completed = 0;
    double iops = 0.0;
    /** Closed-loop capacity the open-loop rates were derived from
     *  (0 = no calibration ran). */
    double calibratedIops = 0.0;
    std::vector<TenantRunResult> tenants;
    metrics::Utilization utilization;
};

class MultiTenantDriver final : public ssd::CompletionSink,
                                public sim::EventHandler
{
  public:
    MultiTenantDriver(ssd::Ssd &ssd, std::vector<TenantSpec> specs,
                      const MultiTenantOptions &options);

    /**
     * Sequentially fill the whole logical space, then randomly
     * overwrite a fraction of every tenant's namespace, so the run
     * measures a full, GC-active device.
     */
    void prefill(double overwriteFraction = 0.3);

    /**
     * Closed-loop calibration: run `calibrationRequests` unmeasured
     * requests through the arbiter and record the aggregate IOPS that
     * open-loop rates derive from. run() invokes this automatically
     * when it is needed and has not been done.
     * @return the calibrated aggregate IOPS.
     */
    double calibrate();

    /** Run `requests` requests (summed over tenants) and measure. */
    MultiTenantResult run(std::uint64_t requests);

    std::uint32_t tenantCount() const
    {
        return static_cast<std::uint32_t>(tenants_.size());
    }
    const TenantSpec &spec(std::uint32_t tenant) const
    {
        return tenants_[tenant].spec;
    }
    /** The logical-page slice tenant `tenant` issues against. */
    const TenantNamespace &nameSpace(std::uint32_t tenant) const
    {
        return tenants_[tenant].ns;
    }
    ssd::WrrArbiter &arbiter() { return arbiter_; }

    /** ssd::CompletionSink: a tenant's request completed (ctx is the
     *  tenant index, or the prefill sentinel). */
    void onCompletion(const ssd::Completion &completion,
                      std::uint64_t ctx) override;

    /** sim::EventHandler: an open-loop tenant reached its next
     *  arrival epoch. */
    void onEvent(sim::EventKind kind,
                 const sim::EventPayload &payload) override;

  private:
    /** onCompletion ctx marking a prefill (unmeasured) request. */
    static constexpr std::uint64_t kPrefillCtx =
        ~static_cast<std::uint64_t>(0);

    enum class Phase { Idle, Calibrate, Measure };

    struct TenantState
    {
        TenantSpec spec;
        TenantNamespace ns;
        /** Synthetic generator sized to the namespace (null for
         *  trace-driven tenants). */
        std::unique_ptr<WorkloadGenerator> generator;
        /** Trace content for trace-driven tenants (cycled). */
        std::vector<ssd::HostRequest> traceRequests;
        std::size_t traceCursor = 0;
        /** Open-loop arrival process (built when rates resolve). */
        std::unique_ptr<ArrivalProcess> arrivals;
        double rate = 0.0;  ///< resolved arrivals/s (open loop)
        std::uint64_t outstanding = 0;
        TenantRunResult result;
        /** Arbitration counters at the start of the measured window. */
        ssd::SubmissionQueueStats statsAtStart;
    };

    ssd::HostRequest nextRequest(TenantState &tenant);
    void submitOne(std::uint32_t tenant);
    void scheduleArrival(std::uint32_t tenant);
    void resolveRates();
    void runLoop();

    ssd::Ssd &ssd_;
    MultiTenantOptions options_;
    ssd::WrrArbiter arbiter_;
    std::vector<TenantState> tenants_;

    Phase phase_ = Phase::Idle;
    std::uint64_t toSubmit_ = 0;
    std::uint64_t outstanding_ = 0;
    std::uint64_t prefillOutstanding_ = 0;
    std::uint64_t calibrationCompleted_ = 0;
    double calibratedIops_ = 0.0;
};

}  // namespace cubessd::workload

#endif  // CUBESSD_WORKLOAD_MULTI_TENANT_H
