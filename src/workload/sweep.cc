#include "src/workload/sweep.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "src/common/logging.h"
#include "src/ftl/ftl_base.h"
#include "src/sim/sweep.h"
#include "src/ssd/ssd.h"
#include "src/trace/counters.h"
#include "src/trace/trace.h"

namespace cubessd::workload {

std::string
SweepCell::describe(std::size_t index) const
{
    char retention[32];
    std::snprintf(retention, sizeof(retention), "%g",
                  aging.retentionMonths);
    return "cell " + std::to_string(index) + " (ftl=" +
           ssd::ftlKindName(config.ftl) + ", workload=" + spec.name +
           ", pe=" + std::to_string(aging.peCycles) + ", retention=" +
           retention + ", seed=" + std::to_string(config.seed) + ")";
}

namespace {

/**
 * Run one cell start to finish: prefill, optional trace attach,
 * measured run, stat capture, trace write. Mirrors the procedure the
 * benches always used (bench_util.h runWorkload), so a 1-cell sweep
 * is bit-identical to the historical sequential path.
 */
CellResult
runOneCell(const SweepCell &cell, bool traceThisCell,
           const SweepTrace &trace)
{
    // Snapshot-delta so a worker thread that runs several cells
    // attributes each cell only its own scope hits.
    const prof::ProfileData profBefore =
        prof::enabled() ? prof::snapshot() : prof::ProfileData{};

    ssd::Ssd dev(cell.config);
    WorkloadGenerator gen(cell.spec, dev.logicalPages(),
                          cell.config.seed + 7);
    Driver driver(dev, gen);
    dev.setAging({cell.aging.peCycles, 0.0});
    driver.prefill(cell.prefillOverwrite);
    dev.setAging(cell.aging);

    // Tracing covers the measured run only (prefill bulk writes would
    // flood the ring buffer). Observation-only: results are identical
    // with it on or off.
    std::unique_ptr<trace::TraceSession> traceSession;
    trace::CounterRegistry counters;
    if (traceThisCell) {
        traceSession = std::make_unique<trace::TraceSession>();
        dev.attachTrace(traceSession.get());
        if (trace.sampleIntervalUs > 0) {
            dev.registerCounters(counters);
            counters.attachTrace(traceSession.get());
            counters.installSampler(dev.queue(),
                                    trace.sampleIntervalUs * 1000);
        }
    }

    CellResult result;
    result.run = driver.run(cell.requests);
    result.ftl = dev.ftl().stats();
    result.gc = dev.ftl().gcStats();
    result.readOnly = dev.ftl().readOnly();
    if (prof::enabled())
        result.profile = prof::snapshot().since(profBefore);

    if (traceSession) {
        std::ofstream traceFile(trace.out);
        if (!traceFile)
            throw std::runtime_error("cannot open trace file '" +
                                     trace.out + "'");
        traceSession->writeJson(traceFile);
        std::cerr << "trace written to " << trace.out << " ("
                  << traceSession->recorded() << " events recorded, "
                  << traceSession->dropped() << " dropped)\n";
    }
    return result;
}

}  // namespace

std::vector<CellResult>
runCells(const std::vector<SweepCell> &cells, unsigned jobs,
         const SweepTrace &trace, sim::SweepTelemetry *telemetry)
{
    // Pre-spawn validation on the calling thread: configuration
    // errors are user errors and may fatal(); once workers are
    // running, errors must propagate instead (a worker exit() would
    // strand the other cells and truncate half-written output).
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (const std::string err = cells[i].config.validate();
            !err.empty()) {
            fatal("invalid sweep %s: %s",
                  cells[i].describe(i).c_str(), err.c_str());
        }
        if (cells[i].requests == 0)
            fatal("invalid sweep %s: requests must be > 0",
                  cells[i].describe(i).c_str());
    }

    std::vector<CellResult> results(cells.size());

    // Exactly-one-tracer rule: the designated cell claims the trace
    // via an atomic flag, so no two cells can ever race on the trace
    // file — even if a caller ever designates duplicate indices.
    std::atomic<bool> traceClaimed{false};
    const bool wantTrace = !trace.out.empty();

    sim::SweepRunner runner(jobs);
    runner.run(
        cells.size(),
        [&](std::size_t i) {
            const bool traceThisCell =
                wantTrace && i == trace.cell &&
                !traceClaimed.exchange(true, std::memory_order_acq_rel);
            try {
                results[i] = runOneCell(cells[i], traceThisCell, trace);
            } catch (const std::exception &e) {
                throw sim::SweepError(i, cells[i].describe(i) + ": " +
                                             e.what());
            }
        },
        telemetry);

    return results;
}

prof::ProfileData
mergeCellProfiles(const std::vector<CellResult> &results)
{
    prof::ProfileData merged;
    for (const CellResult &r : results)
        merged.merge(r.profile);
    return merged;
}

}  // namespace cubessd::workload
