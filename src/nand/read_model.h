/**
 * @file
 * Read operation model with read-retry (paper Sec. 2.3 / 4.2).
 *
 * A read senses the page with a set of read reference voltages; if the
 * ECC engine cannot correct the result, the controller retries with
 * adjusted references. We represent the reference set D by its scalar
 * downward shift (see VthModel). The controller's retry table sweeps
 * the shift in fixed steps, so:
 *
 *   NumRetry = number of extra sense operations until the applied
 *              shift is close enough to the optimum for ECC to pass.
 *
 * A PS-unaware controller starts every read from the default (zero)
 * shift; a PS-aware controller starts from the most recent optimal
 * shift recorded for the page's h-layer (the ORT), which is why the
 * intra-layer similarity slashes NumRetry (Fig. 14).
 */

#ifndef CUBESSD_NAND_READ_MODEL_H
#define CUBESSD_NAND_READ_MODEL_H

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/ecc/ecc.h"
#include "src/nand/error_model.h"
#include "src/nand/vth_model.h"

namespace cubessd::nand {

/** Outcome of one page read (device time only; bus time is the SSD's). */
struct ReadOutcome
{
    SimTime tRead = 0;          ///< sense time including all retries
    /** Portion of tRead spent on extra (retry) sense operations —
     *  the observability layer's "retry" phase. */
    SimTime tRetry = 0;
    int numRetries = 0;         ///< extra sense operations needed
    double rawBerNorm = 0.0;    ///< normalized raw BER at final attempt
    bool uncorrectable = false; ///< ECC failed even after max retries
    /** Shift (mV) that finally decoded; feed back into the ORT. */
    MilliVolt successShiftMv = 0;
};

/** Read-path constants. */
struct ReadParams
{
    SimTime tSense = 58000;     ///< one sense operation, 58 us
    int maxRetries = 20;        ///< give up afterwards
};

/**
 * Stateless read computation; the caller supplies the WL condition and
 * the applied starting shift.
 */
class ReadModel
{
  public:
    ReadModel(const ReadParams &params, const VthModel &vth,
              const ErrorModel &errors, const ecc::EccModel &ecc);

    const ReadParams &params() const { return params_; }

    /**
     * Perform one page read.
     *
     * @param block        block index (selects the drift factor)
     * @param q            WL quality factor
     * @param aging        block wear/retention state
     * @param chipFactor   per-chip BER multiplier
     * @param berMultiplier program-time BER multiplier of the WL
     * @param appliedShiftMv starting reference shift (0 = default; the
     *                     ORT's D_h for a PS-aware controller)
     * @param rng          per-read jitter source
     * @param softHint      controller expects a noisy page and starts
     *                       with the soft decode (paper Sec. 8's
     *                       leader-informed ECC; see EccModel)
     * @param uncorrectableNormLimit if > 0, a WL whose aligned
     *                       normalized BER exceeds this limit cannot
     *                       be decoded at any reference: the retry
     *                       walk runs to exhaustion, falls through the
     *                       soft LDPC mode, and the read completes
     *                       uncorrectable (FaultParams)
     */
    ReadOutcome read(std::uint32_t block, double q,
                     const AgingState &aging, double chipFactor,
                     double berMultiplier, MilliVolt appliedShiftMv,
                     Rng &rng, bool softHint = false,
                     double uncorrectableNormLimit = 0.0) const;

    /**
     * read() with the WL's deterministic model terms supplied by the
     * caller (NandChip's ErrorTermCache): `shiftBase` =
     * VthModel::optimalShiftMv(block, q, aging) and `normBase` =
     * ErrorModel::normalizedBer(q, aging, chipFactor). Only the
     * per-read jitter draw and the decode walk remain; bit-identical
     * to read() by construction.
     */
    ReadOutcome readFromTerms(double shiftBase, double normBase,
                              double berMultiplier,
                              MilliVolt appliedShiftMv, Rng &rng,
                              bool softHint = false,
                              double uncorrectableNormLimit = 0.0) const;

    /**
     * Raw BER of a sense at `missMv` away from the optimal references
     * for a WL whose aligned normalized BER is `alignedNorm`.
     */
    double rawBerNorm(double alignedNorm, double missMv) const;

  private:
    ReadParams params_;
    const VthModel &vth_;
    const ErrorModel &errors_;
    const ecc::EccModel &ecc_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_READ_MODEL_H
