/**
 * @file
 * Memoization of the deterministic NAND model terms, keyed by per-block
 * *aging epoch*.
 *
 * Every read and program evaluates the same chain of transcendental
 * expressions — ErrorModel::severity / terms (log, pow), the quality
 * exponent pow(q, exponent), VthModel::optimalShiftMv (pow, exp) and
 * the ISPP sigma/mu baselines — whose inputs only change when a block
 * is erased (peCycles grows) or the injected retention state advances
 * (NandChip::setAging). Between those events the values are constants
 * of the (WL, block) pair, so the hot paths reduce to a handful of
 * multiplies plus the per-operation RNG jitter.
 *
 * The epoch is a 64-bit generation counter per block:
 *
 *     epoch = (retentionGen << 32) | runtimeEraseCount
 *
 * where retentionGen increments on every setAging call. Erasing a
 * block bumps its erase count and therefore implicitly invalidates its
 * cached terms; no explicit flush is needed anywhere.
 *
 * Bit-identity contract: every cached value is produced by the *exact*
 * factorized expressions the direct paths delegate to
 * (ErrorModel::terms / normalizedBerFromTerms, VthModel::shiftSevTerm /
 * shiftFromTerms, IsppEngine::effectiveSigma), so cached and direct
 * evaluation yield bitwise-equal doubles — the fig17/fig18 outputs do
 * not move by one ULP. Tests: test_term_cache.cc.
 *
 * Memory: one AgingEntry per block (a block occupies exactly one epoch
 * at any simulated time, so one slot gets the same hit rate as any
 * associative scheme) plus one 40-byte WlEntry per WL. All arrays are
 * sized at construction — lookups never allocate (zero-alloc contract,
 * tests/test_zero_alloc.cc).
 */

#ifndef CUBESSD_NAND_TERM_CACHE_H
#define CUBESSD_NAND_TERM_CACHE_H

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/nand/error_model.h"
#include "src/nand/geometry.h"
#include "src/nand/ispp.h"
#include "src/nand/process_model.h"
#include "src/nand/vth_model.h"

namespace cubessd::nand {

/** Everything the read/program hot paths need for one WL at one epoch. */
struct WlTerms
{
    double q = 1.0;         ///< ProcessModel::wlQuality (static)
    double speedMv = 0.0;   ///< ProcessModel::programSpeedMv (static)
    double severity = 0.0;  ///< ErrorModel::severity(aging)
    double sigma = 0.0;     ///< IsppEngine::effectiveSigma(severity)
    /** VthModel::optimalShiftMv(block, q, aging) — jitter-free. */
    double shiftBase = 0.0;
    /** ErrorModel::normalizedBer(q, aging, chipFactor). */
    double normBase = 0.0;
};

/** Hit/miss counters, surfaced through metrics JSON and Perfetto. */
struct TermCacheCounters
{
    std::uint64_t wlHits = 0;
    std::uint64_t wlMisses = 0;
    std::uint64_t agingHits = 0;
    std::uint64_t agingMisses = 0;
    /** First-touch fills of the static per-WL terms (q, speed, drift). */
    std::uint64_t staticFills = 0;
};

class ErrorTermCache
{
  public:
    ErrorTermCache(const NandGeometry &geom, const ProcessModel &process,
                   const ErrorModel &errors, const VthModel &vth,
                   const IsppEngine &ispp);

    /** Epoch of a block currently at runtime erase count `eraseCount`. */
    std::uint64_t
    epochOf(PeCycles eraseCount) const
    {
        return (static_cast<std::uint64_t>(retentionGen_) << 32) |
               eraseCount;
    }

    /** Invalidate all epoch-dependent entries (setAging advanced the
     *  chip-wide retention/pre-cycling state). O(1): bumps the
     *  generation, stale tags simply stop matching. */
    void bumpRetentionGen() { ++retentionGen_; }

    /**
     * Model terms of `addr` for a block at `eraseCount` under `aging`
     * (the block's effective aging, as NandChip::blockAging computes
     * it). Fills both cache levels on miss.
     */
    WlTerms terms(const WlAddr &addr, PeCycles eraseCount,
                  const AgingState &aging);

    const TermCacheCounters &counters() const { return counters_; }
    void resetCounters() { counters_ = TermCacheCounters{}; }

    /** WL-level hit fraction in [0, 1]; 0 when no lookups happened. */
    double
    hitRate() const
    {
        const std::uint64_t total = counters_.wlHits + counters_.wlMisses;
        return total ? static_cast<double>(counters_.wlHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    /** Per-block epoch-dependent terms shared by all its WLs. */
    struct AgingEntry
    {
        std::uint64_t tag = 0;  ///< epoch + 1; 0 = empty
        ErrorTerms terms;       ///< severity/growth/exponent bundle
        double shiftSevTerm = 0.0;  ///< VthModel::shiftSevTerm(severity)
        double sigma = 0.0;         ///< IsppEngine::effectiveSigma
    };

    /** Per-WL entry: static terms (filled once) + epoch-tagged bases. */
    struct WlEntry
    {
        std::uint64_t tag = 0;  ///< epoch + 1; 0 = empty
        double q = -1.0;        ///< static; -1.0 = not yet computed
        double speedMv = 0.0;   ///< static
        double shiftBase = 0.0;
        double normBase = 0.0;
    };

    std::size_t
    wlIndex(const WlAddr &addr) const
    {
        return (static_cast<std::size_t>(addr.block) * geom_.wlsPerBlock() +
                static_cast<std::size_t>(addr.layer) * geom_.wlsPerLayer) +
               addr.wl;
    }

    NandGeometry geom_;
    const ProcessModel &process_;
    const ErrorModel &errors_;
    const VthModel &vth_;
    const IsppEngine &ispp_;
    double chipFactor_ = 1.0;
    std::uint32_t retentionGen_ = 0;
    std::vector<AgingEntry> aging_;
    std::vector<WlEntry> wls_;
    std::vector<double> blockDrift_;  ///< VthModel::blockDrift; -1 = unset
    TermCacheCounters counters_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_TERM_CACHE_H
