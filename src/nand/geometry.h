/**
 * @file
 * Cubic 3D NAND organization: blocks, horizontal layers, word lines, pages.
 *
 * Terminology follows the paper (Fig. 1): a 3D block is a stack of
 * `layersPerBlock` *horizontal layers* (h-layers) along the z axis; each
 * h-layer holds `wlsPerLayer` word lines (WLs), one per *vertical layer*
 * (v-layer). TLC maps `pagesPerWl` = 3 logical pages onto each WL.
 */

#ifndef CUBESSD_NAND_GEOMETRY_H
#define CUBESSD_NAND_GEOMETRY_H

#include <compare>
#include <cstdint>

#include "src/common/types.h"

namespace cubessd::nand {

/**
 * Dimensions of one NAND chip, defaulting to the paper's evaluation
 * configuration (Sec. 6.1): 428 blocks x 48 h-layers x 4 WLs x 3 pages,
 * 16 KB pages.
 */
struct NandGeometry
{
    std::uint32_t blocksPerChip = 428;
    std::uint32_t layersPerBlock = 48;
    std::uint32_t wlsPerLayer = 4;
    std::uint32_t pagesPerWl = 3;
    std::uint32_t pageSizeBytes = 16 * 1024;

    std::uint32_t wlsPerBlock() const { return layersPerBlock * wlsPerLayer; }
    std::uint32_t pagesPerLayer() const { return wlsPerLayer * pagesPerWl; }
    std::uint32_t pagesPerBlock() const
    {
        return wlsPerBlock() * pagesPerWl;
    }
    std::uint64_t pagesPerChip() const
    {
        return static_cast<std::uint64_t>(blocksPerChip) * pagesPerBlock();
    }
    std::uint64_t bytesPerChip() const
    {
        return pagesPerChip() * pageSizeBytes;
    }

    /** Validate dimension sanity; returns false on any zero dimension. */
    bool valid() const
    {
        return blocksPerChip && layersPerBlock && wlsPerLayer &&
               pagesPerWl && pageSizeBytes;
    }
};

/** Address of one word line within a chip. */
struct WlAddr
{
    std::uint32_t block = 0;
    std::uint32_t layer = 0;  ///< h-layer index, 0 = bottom, L-1 = top
    std::uint32_t wl = 0;     ///< v-layer index within the h-layer

    auto operator<=>(const WlAddr &) const = default;
};

/** Address of one page within a chip. */
struct PageAddr
{
    std::uint32_t block = 0;
    std::uint32_t layer = 0;
    std::uint32_t wl = 0;
    std::uint32_t page = 0;   ///< logical page within the WL (0..pagesPerWl)

    WlAddr wlAddr() const { return WlAddr{block, layer, wl}; }

    auto operator<=>(const PageAddr &) const = default;
};

/**
 * Bidirectional linearization between structured addresses and flat
 * page indices, used by the FTL mapping tables.
 *
 * Flat order: block-major, then h-layer, then WL, then page — the flat
 * index of a page is stable under any *program order*, which only affects
 * allocation sequence, not addressing.
 */
class AddressCodec
{
  public:
    explicit AddressCodec(const NandGeometry &geom);

    const NandGeometry &geometry() const { return geom_; }

    /** @return flat page index of `addr` within a chip. */
    std::uint64_t encode(const PageAddr &addr) const;

    /** @return structured address of flat page index `index`. */
    PageAddr decode(std::uint64_t index) const;

    /** @return flat WL index of `addr` within a chip. */
    std::uint64_t encodeWl(const WlAddr &addr) const;

    /** @return structured WL address of flat WL index `index`. */
    WlAddr decodeWl(std::uint64_t index) const;

    /** @return true if the address lies within the geometry. */
    bool contains(const PageAddr &addr) const;
    bool contains(const WlAddr &addr) const;

  private:
    NandGeometry geom_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_GEOMETRY_H
