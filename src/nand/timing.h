/**
 * @file
 * Chip-level timing constants outside the ISPP/read models.
 */

#ifndef CUBESSD_NAND_TIMING_H
#define CUBESSD_NAND_TIMING_H

#include <cmath>

#include "src/common/types.h"
#include "src/common/units.h"

namespace cubessd::nand {

/** Erase / interface timing (program and read times come from the
 *  ISPP and read models; these are the rest). */
struct NandTiming
{
    /** Block erase time. */
    SimTime tErase = 3500 * kMicrosecond;
    /** One Set/Get-Feature command (paper: <1 us, Sec. 4.1.4/5.1). */
    SimTime tFeatureSet = 800 * kNanosecond;
    /** ONFI-style bus speed for page transfers (~800 MB/s). */
    double busNsPerByte = 1.25;

    /** Bus occupancy of transferring `bytes` to/from the chip. The
     *  bus is held for whole clock edges, so fractional nanoseconds
     *  round *up*: truncating would under-count occupancy for every
     *  transfer size that is not a multiple of the byte clock. */
    SimTime
    busTransferTime(std::uint64_t bytes) const
    {
        return static_cast<SimTime>(
            std::ceil(busNsPerByte * static_cast<double>(bytes)));
    }
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_TIMING_H
