/**
 * @file
 * Behavioural model of one 3D TLC NAND chip.
 *
 * NandChip owns the per-chip process instance and all per-block state
 * (erase counts, programmed pages, program-time BER penalties) and
 * exposes the three NAND operations at command level:
 *
 *  - eraseBlock()  : erase, wear accounting
 *  - programWl()   : one-shot TLC program of a word line (3 pages)
 *                    through the ISPP engine, honoring PS-aware knobs
 *  - readPage()    : sense + read-retry loop + ECC verdict
 *
 * plus an ONFI-like feature interface cost model (a non-default
 * ProgramCommand or read shift implies one Set-Feature, < 1 us).
 *
 * The chip stores a 64-bit *data token* per page instead of real data:
 * enough to verify end-to-end data integrity in tests while keeping a
 * 32 GB simulated SSD in a few MB of host memory.
 */

#ifndef CUBESSD_NAND_CHIP_H
#define CUBESSD_NAND_CHIP_H

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/ecc/ecc.h"
#include "src/nand/error_model.h"
#include "src/nand/fault_injector.h"
#include "src/nand/geometry.h"
#include "src/nand/ispp.h"
#include "src/nand/process_model.h"
#include "src/nand/read_model.h"
#include "src/nand/term_cache.h"
#include "src/nand/timing.h"
#include "src/nand/vth_model.h"

namespace cubessd::nand {

/** Full configuration of one chip (all sub-model parameters). */
struct NandChipConfig
{
    NandGeometry geometry{};
    ProcessParams process{};
    ErrorParams errors{};
    VthParams vth{};
    IsppConfig ispp{};
    ReadParams read{};
    NandTiming timing{};
    ecc::EccConfig ecc{};
    FaultParams faults{};
    /** Chip identity: chips with different seeds are different dies. */
    std::uint64_t seed = 1;
};

/** Cumulative operation counters of a chip. */
struct NandChipStats
{
    std::uint64_t erases = 0;
    std::uint64_t wlPrograms = 0;
    std::uint64_t pageReads = 0;
    std::uint64_t readRetries = 0;
    std::uint64_t uncorrectableReads = 0;
    std::uint64_t programFailures = 0;  ///< injected program-status fails
    std::uint64_t eraseFailures = 0;    ///< injected erase-status fails
    std::uint64_t verifiesDone = 0;
    std::uint64_t verifiesSkipped = 0;
    std::uint64_t featureSets = 0;
    SimTime totalProgramTime = 0;
    SimTime totalReadTime = 0;
    SimTime totalEraseTime = 0;
};

class NandChip
{
  public:
    explicit NandChip(const NandChipConfig &config);

    /** @name Sub-model access (read-only) @{ */
    const NandGeometry &geometry() const { return config_.geometry; }
    const AddressCodec &codec() const { return codec_; }
    const ProcessModel &process() const { return process_; }
    const ErrorModel &errors() const { return errors_; }
    const VthModel &vth() const { return vth_; }
    const IsppEngine &ispp() const { return ispp_; }
    const ReadModel &readModel() const { return read_; }
    const ecc::EccModel &ecc() const { return ecc_; }
    const NandTiming &timing() const { return config_.timing; }
    const FaultInjector &faultInjector() const { return faults_; }
    /** @} */

    /**
     * Inject a wear/retention condition for the whole chip, as the
     * characterization rig does with pre-cycling and bake (Sec. 3.1).
     * Runtime erases add on top of the injected P/E count.
     */
    void
    setAging(const AgingState &aging)
    {
        baseAging_ = aging;
        // Every block's effective aging changed: advance the cache's
        // retention generation so all epoch-tagged terms recompute.
        terms_.bumpRetentionGen();
    }
    const AgingState &baseAging() const { return baseAging_; }

    /** Aging epoch of a block (retention generation + erase count);
     *  changes exactly when the block's cached model terms change. */
    std::uint64_t
    blockEpoch(std::uint32_t block) const
    {
        return terms_.epochOf(blocks_.at(block).eraseCount);
    }

    /** Model-term memoization layer (counters for metrics/tests). */
    const ErrorTermCache &termCache() const { return terms_; }

    /** Effective aging of one block (injected + runtime erases). */
    AgingState blockAging(std::uint32_t block) const;

    /**
     * Erase a block. @return the erase latency.
     * @param failed if non-null, receives the erase status (true =
     *        status fail: the block kept its contents and must be
     *        retired; only possible with fault injection enabled).
     */
    SimTime eraseBlock(std::uint32_t block, bool *failed = nullptr);

    /**
     * One-shot program of all pages of a word line.
     *
     * @param addr    target WL; must be erased and not yet programmed
     * @param cmd     PS-aware knobs (default = nominal program)
     * @param tokens  one data token per page (size == pagesPerWl)
     * @return the ISPP outcome; tProg includes Set-Feature overhead
     *         when cmd is non-default.
     */
    WlProgramResult programWl(const WlAddr &addr,
                              const ProgramCommand &cmd,
                              std::span<const std::uint64_t> tokens);

    /**
     * Read one page.
     *
     * @param addr           target page; must be programmed
     * @param appliedShiftMv starting read-reference shift (0 = chip
     *                       default; ORT value for PS-aware reads).
     *                       Non-zero implies a Set-Feature.
     * @param softHint       start with the soft LDPC decode (the
     *                       controller expects a noisy page; paper
     *                       Sec. 8's leader-informed ECC).
     */
    ReadOutcome readPage(const PageAddr &addr, MilliVolt appliedShiftMv,
                         bool softHint = false);

    /** Stored data token of a programmed page. */
    std::uint64_t pageToken(const PageAddr &addr) const;

    /**
     * Characterization measurement: the page's normalized BER at
     * *calibrated* (optimal) read references, with only RTN-scale
     * measurement noise — the equivalent of the paper's N_ret
     * measurement procedure (Sec. 3.1), used by the Figs. 5/6
     * characterization benches. Does not touch timing or stats.
     */
    double measureBerNorm(const PageAddr &addr);

    bool isPageProgrammed(const PageAddr &addr) const;
    bool isWlProgrammed(const WlAddr &addr) const;

    /** Runtime erase count of a block (excludes injected aging). */
    PeCycles eraseCount(std::uint32_t block) const;

    /** Quality factor of a WL (convenience pass-through). */
    double wlQuality(const WlAddr &addr) const
    {
        return process_.wlQuality(addr);
    }

    const NandChipStats &stats() const { return stats_; }
    void resetStats() { stats_ = NandChipStats{}; }

    /** Program time saved by VFY skipping so far (skipped pulses times
     *  the per-verify cost; the Sec. 4.1 tPROG-reduction story). */
    SimTime vfyTimeSaved() const
    {
        return static_cast<SimTime>(stats_.verifiesSkipped) *
               config_.ispp.tVfy;
    }

  private:
    struct WlState
    {
        std::uint8_t programmedPages = 0;  ///< bitmask
        float berMultiplier = 1.0f;        ///< program-time BER penalty
    };

    struct BlockState
    {
        PeCycles eraseCount = 0;
        std::vector<WlState> wls;
        std::vector<std::uint64_t> tokens;
    };

    std::size_t wlIndex(const WlAddr &addr) const;
    std::size_t pageIndexInBlock(const PageAddr &addr) const;

    NandChipConfig config_;
    AddressCodec codec_;
    ProcessModel process_;
    ErrorModel errors_;
    VthModel vth_;
    IsppEngine ispp_;
    ecc::EccModel ecc_;
    ReadModel read_;
    FaultInjector faults_;
    ErrorTermCache terms_;
    Rng rng_;
    AgingState baseAging_{};
    std::vector<BlockState> blocks_;
    NandChipStats stats_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_CHIP_H
