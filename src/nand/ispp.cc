#include "src/nand/ispp.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/prof/prof.h"

namespace cubessd::nand {

IsppEngine::IsppEngine(const IsppConfig &config, const ErrorModel &errors)
    : config_(config), errors_(errors)
{
    if (config_.deltaVMv <= 0 || config_.windowMv <= 0)
        fatal("IsppEngine: non-positive voltage configuration");
    if (config_.programStates < 1 ||
        config_.programStates > kMaxProgramStates)
        fatal("IsppEngine: programStates must be in [1, %d]",
              kMaxProgramStates);
    if (config_.stateTargetMv(config_.programStates) > config_.windowMv)
        fatal("IsppEngine: top state target exceeds the ISPP window");
}

std::array<StateLoops, kTlcStates>
IsppEngine::stateLoops(double speedMv, double q, const AgingState &aging,
                       MilliVolt vStartAdjMv) const
{
    const double sev = errors_.severity(aging);
    return stateLoopsFromTerms(speedMv, q, sev, effectiveSigma(sev),
                               vStartAdjMv);
}

std::array<StateLoops, kTlcStates>
IsppEngine::stateLoopsFromTerms(double speedMv, double q, double severity,
                                double sigma,
                                MilliVolt vStartAdjMv) const
{
    const double mu =
        speedMv - config_.speedAging * severity * (q - 1.0);
    const double dv = static_cast<double>(config_.deltaVMv);
    const double fast = mu + 3.0 * sigma;
    const double slow = mu - 3.0 * sigma;

    std::array<StateLoops, kTlcStates> out{};
    for (int s = 1; s <= config_.programStates; ++s) {
        const double target =
            static_cast<double>(config_.stateTargetMv(s) - vStartAdjMv);
        const int lMin = std::max(
            1, static_cast<int>(std::ceil((target - fast) / dv)));
        const int lMax = std::max(
            lMin, static_cast<int>(std::ceil((target - slow) / dv)));
        out[static_cast<std::size_t>(s - 1)] = StateLoops{lMin, lMax};
    }
    return out;
}

std::array<int, kTlcStates>
IsppEngine::safeSkipPlan(const std::array<StateLoops, kTlcStates> &loops)
{
    std::array<int, kTlcStates> plan{};
    for (int s = 0; s < kTlcStates; ++s) {
        plan[static_cast<std::size_t>(s)] =
            std::max(0, loops[static_cast<std::size_t>(s)].lMin - 1);
    }
    return plan;
}

VerifySchedule
IsppEngine::defaultVerifySchedule(
    const std::array<StateLoops, kTlcStates> &loops) const
{
    const int last =
        loops[static_cast<std::size_t>(config_.programStates) - 1].lMax;
    if (last > VerifySchedule::kMaxLoops)
        fatal("defaultVerifySchedule: %d loops exceeds the %d-loop "
              "bound (mis-calibrated ISPP configuration?)",
              last, VerifySchedule::kMaxLoops);
    VerifySchedule schedule;
    schedule.loops = last;
    for (int i = 1; i <= last; ++i) {
        for (int s = 0; s < config_.programStates; ++s) {
            if (loops[static_cast<std::size_t>(s)].lMax >= i)
                ++schedule.counts[static_cast<std::size_t>(i - 1)];
        }
    }
    return schedule;
}

WlProgramResult
IsppEngine::program(double q, double speedMv, const AgingState &aging,
                    double chipFactor, const ProgramCommand &cmd,
                    Rng &rng) const
{
    // Direct (uncached) entry: evaluate the aging terms here, exactly
    // as ErrorTermCache does, and run the shared implementation.
    const double sev = errors_.severity(aging);
    return programWithTerms(q, speedMv, sev, effectiveSigma(sev),
                            errors_.normalizedBer(q, aging, chipFactor),
                            cmd, rng);
}

WlProgramResult
IsppEngine::programWithTerms(double q, double speedMv, double severity,
                             double sigma, double normBase,
                             const ProgramCommand &cmd, Rng &rng) const
{
    PROF_SCOPE(prof::Slot::NandProgramIspp);
    WlProgramResult result;

    // Small per-operation speed jitter: supply/temperature noise. This
    // is what occasionally invalidates a leader's monitored parameters
    // and trips the safety check (Sec. 4.1.4).
    const double opSpeed = speedMv + rng.normal(0.0, 2.0);
    result.loops = stateLoopsFromTerms(opSpeed, q, severity, sigma,
                                       cmd.vStartAdjMv);

    const int maxLoopAllowed = std::max(
        1, (config_.windowMv - cmd.vStartAdjMv - cmd.vFinalAdjMv) /
               config_.deltaVMv);
    const int lastNeeded =
        result.loops[static_cast<std::size_t>(config_.programStates) -
                     1].lMax;
    result.loopsUsed = std::min(lastNeeded, maxLoopAllowed);
    result.truncated = lastNeeded > maxLoopAllowed;

    // Verify accounting. Default behaviour (Fig. 3): every loop
    // verifies every state whose slowest cells have not yet arrived,
    // i.e. state s is verified on loops [1, L_max(s)]. A skip plan
    // defers state s's first verify to loop skip(s) + 1 — but the
    // device always verifies a state at least once to terminate it.
    for (int s = 0; s < config_.programStates; ++s) {
        const auto &win = result.loops[static_cast<std::size_t>(s)];
        const int last = std::min(win.lMax, result.loopsUsed);
        const int defaultCount = last;  // loops 1..last
        int first = 1;
        if (cmd.useSkipPlan) {
            first = std::min(
                cmd.skipVfy[static_cast<std::size_t>(s)] + 1, last);
            first = std::max(first, 1);
        }
        const int count = last - first + 1;
        result.verifiesDone += count;
        result.verifiesSkipped += defaultCount - count;

        if (cmd.useSkipPlan) {
            // Skipping past the loop where the fastest cells arrive
            // over-programs them (Fig. 8(a)).
            const int extra =
                cmd.skipVfy[static_cast<std::size_t>(s)] - (win.lMin - 1);
            result.berMultiplier *= overMultiplier(extra, s + 1);
        }
    }

    // Shrinking the ISPP window costs BER margin (Sec. 4.1.2): a raised
    // V_Start overshoots the fastest P1 cells, a lowered V_Final leaves
    // the slowest P7 cells under-programmed.
    result.berMultiplier *= shrinkMultiplier(cmd.totalShrinkMv());

    result.tProg =
        static_cast<SimTime>(result.loopsUsed) * config_.tPgm +
        static_cast<SimTime>(result.verifiesDone) * config_.tVfy;

    // Monitored health indicator, with measurement noise.
    result.berEp1Norm = errors_.berEp1NormFromBase(normBase) *
                        (1.0 + 0.03 * rng.normal());
    result.berEp1Norm = std::max(result.berEp1Norm, 0.0);

    return result;
}

double
IsppEngine::shrinkMultiplier(MilliVolt shrinkMv) const
{
    if (shrinkMv <= 0)
        return 1.0;  // matches windowShrinkMultiplier's early-out
    if (shrinkMv >= kShrinkCacheSize)
        return errors_.windowShrinkMultiplier(
            static_cast<double>(shrinkMv));
    double &slot = shrinkMult_[static_cast<std::size_t>(shrinkMv)];
    if (slot == 0.0)
        slot = errors_.windowShrinkMultiplier(
            static_cast<double>(shrinkMv));
    return slot;
}

double
IsppEngine::overMultiplier(int extraSkips, int state) const
{
    if (extraSkips <= 0)
        return 1.0;  // matches overProgramMultiplier's early-out
    if (extraSkips >= VerifySchedule::kMaxLoops)
        return errors_.overProgramMultiplier(extraSkips, state);
    double &slot = overMult_[static_cast<std::size_t>(extraSkips)]
                           [static_cast<std::size_t>(state - 1)];
    if (slot == 0.0)
        slot = errors_.overProgramMultiplier(extraSkips, state);
    return slot;
}

}  // namespace cubessd::nand
