/**
 * @file
 * Seeded injection of the NAND failure modes a real FTL must absorb.
 *
 * The reliability machinery of the simulator (retry walks, soft LDPC,
 * BER margins) models errors as *latency*; this component makes
 * operations actually *fail*, so the FTL's bad-block handling and
 * read-only degradation paths can be exercised end to end:
 *
 *  - program-status fail: a WL program reports fail after tPROG; the
 *    block must be retired (Luo et al., Park et al. treat these as
 *    routine events over an SSD's life);
 *  - erase-status fail: an erase reports fail and the block is retired
 *    instead of returning to the free pool;
 *  - uncorrectable read: a page whose *aligned* normalized BER exceeds
 *    the configured limit cannot be decoded even by the final
 *    soft-decision LDPC mode, regardless of read-reference tuning.
 *
 * Fail probabilities follow the paper's process structure: they scale
 * with the WL's h-layer quality factor q (worse layers fail more) and
 * with aging severity from the shared ErrorModel (P/E cycles +
 * retention), so degradation accelerates toward end of life exactly
 * like the BER model does.
 *
 * Determinism: the injector owns a private Rng derived from the chip
 * seed, so enabling it never perturbs the chip's main noise stream,
 * and a given seed always yields the same failure sequence.
 */

#ifndef CUBESSD_NAND_FAULT_INJECTOR_H
#define CUBESSD_NAND_FAULT_INJECTOR_H

#include <cstdint>

#include "src/common/rng.h"
#include "src/nand/error_model.h"

namespace cubessd::nand {

/** Fault-injection knobs (all off by default: no behavior change). */
struct FaultParams
{
    /** Master switch; when false the injector draws no randomness. */
    bool enabled = false;
    /** Per-WL-program fail probability on the best layer, fresh. */
    double programFailBase = 0.0;
    /** Per-erase fail probability, fresh. */
    double eraseFailBase = 0.0;
    /** Growth with aging: p *= 1 + wearScale * severity(aging). */
    double wearScale = 6.0;
    /** Layer scaling: p *= q^qualityExp (worse h-layers, q > 1,
     *  fail more often — the process-similarity structure). */
    double qualityExp = 2.0;
    /** Aligned normalized BER beyond which a read is uncorrectable
     *  even in the final soft LDPC mode. 0 disables the limit. */
    double uncorrectableNormLimit = 0.0;
};

class FaultInjector
{
  public:
    /**
     * @param params fault knobs (typically NandChipConfig::faults)
     * @param errors shared aging model (severity scaling)
     * @param seed   per-chip seed; the injector forks its own stream
     */
    FaultInjector(const FaultParams &params, const ErrorModel &errors,
                  std::uint64_t seed);

    bool enabled() const { return params_.enabled; }
    const FaultParams &params() const { return params_; }

    /** Effective program-fail probability of a WL with quality q. */
    double programFailProbability(double q, const AgingState &aging) const;
    /** Effective erase-fail probability of a block. */
    double eraseFailProbability(const AgingState &aging) const;

    /** Draw: does this WL program report status fail? */
    bool programFails(double q, const AgingState &aging);
    /** Draw: does this block erase report status fail? */
    bool eraseFails(const AgingState &aging);

    /**
     * Is a page with this *aligned* normalized BER (optimal read
     * references, program-time multiplier applied) beyond ECC
     * recovery? Deterministic — no randomness is drawn.
     */
    bool readUncorrectable(double alignedNorm) const;

  private:
    double scaled(double base, double q, const AgingState &aging) const;

    FaultParams params_;
    const ErrorModel *errors_;
    Rng rng_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_FAULT_INJECTOR_H
