/**
 * @file
 * Reliability (bit-error-rate) model of 3D NAND cells.
 *
 * Reproduces the structure of the paper's characterization study
 * (Sec. 3): the retention BER of a WL depends on its process quality
 * factor q, its P/E cycle count x, and its retention time t. Worse
 * layers not only start with more errors but *age faster* — the
 * quality exponent grows with an aging-severity term — which yields
 * the nonlinear inter-layer divergence of Fig. 6(c) and moves DeltaV
 * from ~1.6 (fresh) to ~2.3 (2K P/E + 1 year).
 *
 * The model also provides BER_EP1 (errors between the erase state and
 * P1, known to track overall NAND health [20, 35]) and the BER penalty
 * of shrinking the ISPP window — the physical basis of the paper's
 * S_M -> (V_Start, V_Final) adjustment conversion table (Fig. 11).
 */

#ifndef CUBESSD_NAND_ERROR_MODEL_H
#define CUBESSD_NAND_ERROR_MODEL_H

#include <cmath>

#include "src/common/types.h"

namespace cubessd::nand {

/** Wear and retention state under which an operation is evaluated. */
struct AgingState
{
    PeCycles peCycles = 0;
    double retentionMonths = 0.0;

    bool
    operator==(const AgingState &) const = default;
};

/** Tunable constants of the reliability model (defaults calibrated). */
struct ErrorParams
{
    /** Raw BER of the best layer of a median chip, fresh, no retention. */
    double baseBer = 1.0e-4;
    /** P/E-cycling growth: 1 + peA * (x/1000)^peP. */
    double peA = 2.5;
    double peP = 1.2;
    /** Retention growth: 1 + retB * ln(1 + t_months). */
    double retB = 1.5;
    /** End-of-life reference points for aging severity normalization. */
    PeCycles peEol = 2000;
    double retEolMonths = 12.0;
    /** Quality-exponent amplification at full aging severity.
     *  Calibrated so DeltaV goes 1.6 (fresh) -> ~2.3 (EOL + 1 yr). */
    double qualityAmp = 0.77;
    /** BER_EP1 as a fraction of the total retention BER. */
    double ep1Fraction = 0.35;
    /** BER cost of shrinking the ISPP window (multiplicative):
     *  ber *= 1 + windowK * (shrink_mV / 100)^windowP. Multiplicative
     *  cost is what makes the safe margin S_M tighten near end of
     *  life (paper Fig. 9): the same shrink costs more absolute BER
     *  on an aged WL. */
    double windowK = 0.10;
    double windowP = 1.15;
    /** Over-programming cost of skipping VFYs beyond the safe count:
     *  ber *= 1 + overK * stateWeight * extra^overP per state. */
    double overK = 0.08;
    double overP = 1.8;
};

/**
 * The aging-dependent sub-expressions of normalizedBer(), evaluated
 * once per AgingState and reused for every WL quality factor (see
 * nand::ErrorTermCache). Produced by ErrorModel::terms() with the
 * exact same double-precision expressions normalizedBer() uses, so a
 * cached evaluation is bit-identical to a direct one.
 */
struct ErrorTerms
{
    double severity = 0.0;
    double peGrowth = 1.0;
    double retGrowth = 1.0;
    double exponent = 1.0;
};

/**
 * Pure-function reliability model; all state lives in the arguments so
 * the same instance serves every chip.
 */
class ErrorModel
{
  public:
    explicit ErrorModel(const ErrorParams &params = {});

    const ErrorParams &params() const { return params_; }

    /**
     * Aging severity in [0, 1]: 0 = fresh, 1 = end-of-life P/E count
     * with end-of-life retention.
     */
    double severity(const AgingState &aging) const;

    /** The aging-dependent terms of normalizedBer(), factored out for
     *  memoization. */
    ErrorTerms terms(const AgingState &aging) const;

    /**
     * normalizedBer() evaluated from precomputed terms. Same
     * expression, same association order: bit-identical to the direct
     * overload for terms produced by terms(aging).
     */
    double
    normalizedBerFromTerms(double q, const ErrorTerms &t,
                           double chipFactor = 1.0) const
    {
        return chipFactor * std::pow(q, t.exponent) * t.peGrowth *
               t.retGrowth;
    }

    /** berEp1Norm() from an already-evaluated normalizedBer(). */
    double
    berEp1NormFromBase(double normalizedBer) const
    {
        return params_.ep1Fraction * normalizedBer;
    }

    /**
     * Absolute retention BER of a WL with quality q under `aging`,
     * before any read-reference misalignment penalties.
     * @param chipFactor per-chip multiplier from ProcessModel.
     */
    double retentionBer(double q, const AgingState &aging,
                        double chipFactor = 1.0) const;

    /** retentionBer expressed in units of baseBer (normalized BER). */
    double normalizedBer(double q, const AgingState &aging,
                         double chipFactor = 1.0) const;

    /** Normalized BER between the E state and P1 (health indicator). */
    double berEp1Norm(double q, const AgingState &aging,
                      double chipFactor = 1.0) const;

    /**
     * Estimate the total normalized BER of a WL from its measured
     * BER_EP1 — the inference the OPM performs on the leader WL
     * (the E<->P1 errors are a known health proxy [20, 35]).
     */
    double
    totalNormFromEp1(double berEp1Norm) const
    {
        return berEp1Norm / params_.ep1Fraction;
    }

    /**
     * Project a BER measured under `current` conditions to the end of
     * the data's retention life (retEolMonths) at the same wear.
     *
     * This is the physics behind the paper's offline BER_EP1^Max /
     * conversion tables (Sec. 4.1.2): the spare margin S_M must hold
     * not at program time but after the written data has been
     * retained for its full required lifetime. The projection inverts
     * the aging model to recover the WL's quality factor and
     * re-evaluates it at full retention.
     */
    double projectedRetentionNorm(double measuredNorm,
                                  const AgingState &current) const;

    /**
     * BER multiplier (>= 1) incurred by shrinking the ISPP window
     * (raising V_Start and/or lowering V_Final) by `shrinkMv` total.
     */
    double windowShrinkMultiplier(double shrinkMv) const;

    /**
     * Inverse of windowShrinkMultiplier: the largest total window
     * shrink (mV) whose BER multiplier stays within
     * `allowedMultiplier`. This is the paper's offline S_M ->
     * adjustment conversion table (Fig. 11(b)).
     */
    double safeWindowShrinkMv(double allowedMultiplier) const;

    /**
     * BER multiplier from skipping `extraSkips` VFY steps beyond the
     * safe count for program state `state` (1-based, 1..7 for TLC).
     * Higher states accumulate more overshoot (Fig. 8(a)).
     */
    double overProgramMultiplier(int extraSkips, int state) const;

  private:
    ErrorParams params_;
    double logEolRet_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_ERROR_MODEL_H
