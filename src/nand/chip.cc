#include "src/nand/chip.h"

#include "src/common/logging.h"
#include "src/prof/prof.h"

namespace cubessd::nand {

NandChip::NandChip(const NandChipConfig &config)
    : config_(config),
      codec_(config.geometry),
      process_(config.geometry, config.process, config.seed),
      errors_(config.errors),
      vth_(config.vth, config.seed),
      ispp_(config.ispp, errors_),
      ecc_(config.ecc),
      read_(config.read, vth_, errors_, ecc_),
      faults_(config.faults, errors_, config.seed),
      terms_(config.geometry, process_, errors_, vth_, ispp_),
      rng_(config.seed ^ 0xC0FFEE123456789ull)
{
    blocks_.resize(config_.geometry.blocksPerChip);
    for (auto &block : blocks_) {
        block.wls.resize(config_.geometry.wlsPerBlock());
        block.tokens.assign(config_.geometry.pagesPerBlock(), 0);
    }
}

AgingState
NandChip::blockAging(std::uint32_t block) const
{
    AgingState aging = baseAging_;
    aging.peCycles += blocks_.at(block).eraseCount;
    return aging;
}

std::size_t
NandChip::wlIndex(const WlAddr &addr) const
{
    return static_cast<std::size_t>(addr.layer) *
               config_.geometry.wlsPerLayer + addr.wl;
}

std::size_t
NandChip::pageIndexInBlock(const PageAddr &addr) const
{
    return wlIndex(addr.wlAddr()) * config_.geometry.pagesPerWl +
           addr.page;
}

SimTime
NandChip::eraseBlock(std::uint32_t block, bool *failed)
{
    PROF_SCOPE(prof::Slot::NandErase);
    if (block >= blocks_.size())
        panic("eraseBlock: block %u out of range", block);
    auto &state = blocks_[block];
    bool fail;
    {
        PROF_SCOPE(prof::Slot::NandFaultCheck);
        fail = faults_.eraseFails(blockAging(block));
    }
    ++state.eraseCount;
    if (failed)
        *failed = fail;
    ++stats_.erases;
    stats_.totalEraseTime += config_.timing.tErase;
    if (fail) {
        // Status fail: the block keeps its contents and is unusable;
        // the FTL retires it. The attempt still costs tErase and wear.
        ++stats_.eraseFailures;
        return config_.timing.tErase;
    }
    for (auto &wl : state.wls)
        wl = WlState{};
    for (auto &token : state.tokens)
        token = 0;
    return config_.timing.tErase;
}

WlProgramResult
NandChip::programWl(const WlAddr &addr, const ProgramCommand &cmd,
                    std::span<const std::uint64_t> tokens)
{
    PROF_SCOPE(prof::Slot::NandProgram);
    if (!codec_.contains(addr))
        panic("programWl: WL address out of range");
    if (tokens.size() != config_.geometry.pagesPerWl)
        panic("programWl: expected %u page tokens, got %zu",
              config_.geometry.pagesPerWl, tokens.size());

    auto &block = blocks_[addr.block];
    auto &wl = block.wls[wlIndex(addr)];
    if (wl.programmedPages != 0)
        panic("programWl: WL (b%u l%u w%u) programmed without erase",
              addr.block, addr.layer, addr.wl);

    const AgingState aging = blockAging(addr.block);
    const WlTerms t = terms_.terms(addr, block.eraseCount, aging);

    WlProgramResult result = ispp_.programWithTerms(
        t.q, t.speedMv, t.severity, t.sigma, t.normBase, cmd, rng_);

    if (cmd.nonDefault()) {
        result.tProg += config_.timing.tFeatureSet;
        ++stats_.featureSets;
    }

    bool programFailed;
    {
        PROF_SCOPE(prof::Slot::NandFaultCheck);
        programFailed = faults_.programFails(t.q, aging);
    }
    if (programFailed) {
        // Status fail after the full program attempt: the WL holds no
        // valid data, the block must be retired by the FTL. Time and
        // verify work are still spent.
        result.failed = true;
        ++stats_.wlPrograms;
        ++stats_.programFailures;
        stats_.verifiesDone +=
            static_cast<std::uint64_t>(result.verifiesDone);
        stats_.verifiesSkipped +=
            static_cast<std::uint64_t>(result.verifiesSkipped);
        stats_.totalProgramTime += result.tProg;
        return result;
    }

    wl.programmedPages =
        static_cast<std::uint8_t>((1u << config_.geometry.pagesPerWl) - 1);
    wl.berMultiplier = static_cast<float>(result.berMultiplier);
    const std::size_t base =
        wlIndex(addr) * config_.geometry.pagesPerWl;
    for (std::uint32_t p = 0; p < config_.geometry.pagesPerWl; ++p)
        block.tokens[base + p] = tokens[p];

    ++stats_.wlPrograms;
    stats_.verifiesDone += static_cast<std::uint64_t>(result.verifiesDone);
    stats_.verifiesSkipped +=
        static_cast<std::uint64_t>(result.verifiesSkipped);
    stats_.totalProgramTime += result.tProg;
    return result;
}

ReadOutcome
NandChip::readPage(const PageAddr &addr, MilliVolt appliedShiftMv,
                   bool softHint)
{
    PROF_SCOPE(prof::Slot::NandRead);
    if (!codec_.contains(addr))
        panic("readPage: page address out of range");
    const auto &block = blocks_[addr.block];
    const auto &wl = block.wls[wlIndex(addr.wlAddr())];
    if (!(wl.programmedPages & (1u << addr.page)))
        panic("readPage: page (b%u l%u w%u p%u) not programmed",
              addr.block, addr.layer, addr.wl, addr.page);

    const AgingState aging = blockAging(addr.block);
    const WlTerms t =
        terms_.terms(addr.wlAddr(), block.eraseCount, aging);

    ReadOutcome out =
        read_.readFromTerms(t.shiftBase, t.normBase,
                            static_cast<double>(wl.berMultiplier),
                            appliedShiftMv, rng_, softHint,
                            faults_.enabled()
                                ? config_.faults.uncorrectableNormLimit
                                : 0.0);
    if (appliedShiftMv != 0) {
        out.tRead += config_.timing.tFeatureSet;
        ++stats_.featureSets;
    }

    ++stats_.pageReads;
    stats_.readRetries += static_cast<std::uint64_t>(out.numRetries);
    if (out.uncorrectable)
        ++stats_.uncorrectableReads;
    stats_.totalReadTime += out.tRead;
    return out;
}

double
NandChip::measureBerNorm(const PageAddr &addr)
{
    if (!codec_.contains(addr))
        panic("measureBerNorm: page address out of range");
    const auto &block = blocks_[addr.block];
    const auto &wl = block.wls[wlIndex(addr.wlAddr())];
    if (!(wl.programmedPages & (1u << addr.page)))
        panic("measureBerNorm: page not programmed");
    // The cached normBase IS normalizedBer(q, aging, chipFactor) —
    // same expression, same bits (tests/test_term_cache.cc) — and
    // monitoring reads hammer this path once per leader program.
    const WlTerms t = terms_.terms(addr.wlAddr(), block.eraseCount,
                                   blockAging(addr.block));
    const double aligned =
        t.normBase * static_cast<double>(wl.berMultiplier);
    // RTN-scale measurement noise (paper: <3% across a sequence).
    return aligned * (1.0 + 0.005 * rng_.normal());
}

std::uint64_t
NandChip::pageToken(const PageAddr &addr) const
{
    if (!codec_.contains(addr))
        panic("pageToken: page address out of range");
    return blocks_[addr.block].tokens[pageIndexInBlock(addr)];
}

bool
NandChip::isPageProgrammed(const PageAddr &addr) const
{
    if (!codec_.contains(addr))
        return false;
    const auto &wl = blocks_[addr.block].wls[wlIndex(addr.wlAddr())];
    return wl.programmedPages & (1u << addr.page);
}

bool
NandChip::isWlProgrammed(const WlAddr &addr) const
{
    if (!codec_.contains(addr))
        return false;
    return blocks_[addr.block].wls[wlIndex(addr)].programmedPages != 0;
}

PeCycles
NandChip::eraseCount(std::uint32_t block) const
{
    return blocks_.at(block).eraseCount;
}

}  // namespace cubessd::nand
