/**
 * @file
 * Incremental Step Pulse Programming (ISPP) engine.
 *
 * Models a one-pass TLC program operation at the micro-operation level
 * of the paper's Sec. 2.2: a sequence of program pulses (PGM) of
 * voltage V_Start + n * dV_ISPP, each followed by verify steps (VFY)
 * for every program state whose cells are not yet all in place.
 *
 *   tPROG = sum_i (tPGM + k_i * tVFY)        (paper Eq. 1)
 *
 * A cell with program-speed boost b reaches state s's target Vt on
 * pulse n = ceil((Vt(s) - b - vStartAdj) / dV). Per-WL cell speeds are
 * Gaussian, so each state s occupies an absolute loop window
 * [L_min(s), L_max(s)] (fastest cell .. slowest cell, +-3 sigma).
 *
 * The engine supports the two PS-aware knobs of Sec. 4.1:
 *  - a *skip plan*: per-state count of leading VFYs to omit. Skipping
 *    more than the safe L_min(s)-1 over-programs fast cells and adds
 *    BER (Fig. 8(a)).
 *  - *window adjustment*: vStartAdj raises V_Start (fewer loops to
 *    reach each state), vFinalAdj lowers V_Final (caps MaxLoop).
 *    Shrinking the window trades BER margin for latency (Fig. 9).
 */

#ifndef CUBESSD_NAND_ISPP_H
#define CUBESSD_NAND_ISPP_H

#include <array>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/nand/error_model.h"

namespace cubessd::nand {

/** Maximum supported programmed states (3-bit TLC: P1..P7). */
inline constexpr int kMaxProgramStates = 7;
/** Number of programmed states in TLC NAND (P1..P7). */
inline constexpr int kTlcStates = kMaxProgramStates;

/** ISPP design parameters (paper Fig. 3(a)); defaults calibrated so the
 *  default tPROG is ~700 us, the paper's nominal TLC program time. */
struct IsppConfig
{
    /** Programmed states: 7 for TLC (default), 3 for MLC, 1 for SLC.
     *  Must match the geometry's pagesPerWl (2^pages - 1). */
    int programStates = kTlcStates;
    /** V_Final - V_Start in the default (worst-case-safe) setting. */
    MilliVolt windowMv = 1600;
    /** Per-pulse voltage increment dV_ISPP. */
    MilliVolt deltaVMv = 100;
    /** Vt target of P1 above the first pulse voltage. */
    MilliVolt firstStateOffsetMv = 200;
    /** Vt target spacing between adjacent states. */
    MilliVolt stateSpacingMv = 200;
    /** Per-cell program-speed spread (std-dev, mV), fresh. */
    double cellSigmaMv = 55.0;
    /** Spread growth with aging: sigma_eff = sigma * (1 + k * sev). */
    double sigmaAging = 0.25;
    /** Mean-speed slowdown (mV) per unit of sev * (q - 1). */
    double speedAging = 40.0;
    /** One program pulse. */
    SimTime tPgm = 31500;         // 31.5 us
    /** One verify step. */
    SimTime tVfy = 2800;          // 2.8 us

    /** MaxLoop of the default window. */
    int maxLoops() const { return windowMv / deltaVMv; }

    /** Vt target of state s (1-based) above default V_Start. */
    MilliVolt
    stateTargetMv(int state) const
    {
        return firstStateOffsetMv + stateSpacingMv * (state - 1);
    }
};

/** Per-state absolute ISPP loop window (1-based, inclusive). */
struct StateLoops
{
    int lMin = 1;  ///< loop on which the fastest cells arrive
    int lMax = 1;  ///< loop on which the slowest cells arrive
};

/**
 * Per-loop VFY counts (k_i for ISPP loop i), fixed-capacity so
 * computing a schedule never touches the heap. Container-like just
 * enough for the characterization benches and tests.
 */
struct VerifySchedule
{
    /** Generous bound: the default window runs 16 loops; anything
     *  near this limit indicates a mis-calibrated configuration. */
    static constexpr int kMaxLoops = 64;

    std::array<int, kMaxLoops> counts{};
    int loops = 0;  ///< number of valid entries

    std::size_t size() const { return static_cast<std::size_t>(loops); }
    bool empty() const { return loops == 0; }
    int operator[](std::size_t i) const { return counts[i]; }
    int front() const { return counts[0]; }
    const int *begin() const { return counts.data(); }
    const int *end() const { return counts.data() + loops; }
};

/** PS-aware knobs applied to one WL program (default = leader/PS-unaware). */
struct ProgramCommand
{
    MilliVolt vStartAdjMv = 0;   ///< raise of V_Start (>= 0)
    MilliVolt vFinalAdjMv = 0;   ///< lowering of V_Final (>= 0)
    bool useSkipPlan = false;
    /** Per-state count of leading VFYs to skip (valid iff useSkipPlan). */
    std::array<int, kTlcStates> skipVfy{};

    /** @return true if any non-default parameter is set (needs a
     *  Set-Feature command on the chip, Sec. 4.1.4 / 5.1). */
    bool
    nonDefault() const
    {
        return vStartAdjMv != 0 || vFinalAdjMv != 0 || useSkipPlan;
    }

    MilliVolt totalShrinkMv() const { return vStartAdjMv + vFinalAdjMv; }
};

/** Outcome of one WL program operation. */
struct WlProgramResult
{
    SimTime tProg = 0;           ///< total program latency
    int loopsUsed = 0;           ///< ISPP loops actually executed
    int verifiesDone = 0;        ///< VFY steps actually executed
    int verifiesSkipped = 0;     ///< VFY steps omitted via the skip plan
    /** Monitored per-state loop windows (the OPM's [L_min, L_max]). */
    std::array<StateLoops, kTlcStates> loops{};
    /** Monitored normalized BER between E and P1 (the OPM's BER_EP1). */
    double berEp1Norm = 0.0;
    /** Multiplier (>= 1) this program applied to the WL's natural BER
     *  (window shrink + over/under-programming costs). */
    double berMultiplier = 1.0;
    /** True if V_Final truncation cut off the slowest cells. */
    bool truncated = false;
    /** True if the chip reported program-status fail: the WL holds no
     *  data and the FTL must retire the block (FaultInjector). */
    bool failed = false;
};

/**
 * ISPP computation engine (per-chip NAND state lives in NandChip; the
 * engine itself only carries lazy memo tables of its own pure
 * functions).
 */
class IsppEngine
{
  public:
    IsppEngine(const IsppConfig &config, const ErrorModel &errors);

    const IsppConfig &config() const { return config_; }

    /**
     * Per-state absolute loop windows for a WL with mean speed boost
     * `speedMv` and quality q under `aging`, given a V_Start raise.
     * Entries beyond programStates stay at their default {1, 1}.
     */
    std::array<StateLoops, kTlcStates>
    stateLoops(double speedMv, double q, const AgingState &aging,
               MilliVolt vStartAdjMv) const;

    /** Aging-widened cell-speed spread, factored out for memoization. */
    double
    effectiveSigma(double severity) const
    {
        return config_.cellSigmaMv * (1.0 + config_.sigmaAging *
                                                severity);
    }

    /** stateLoops() from precomputed severity/sigma terms (the same
     *  values stateLoops derives from `aging`; see ErrorTermCache). */
    std::array<StateLoops, kTlcStates>
    stateLoopsFromTerms(double speedMv, double q, double severity,
                        double sigma, MilliVolt vStartAdjMv) const;

    /**
     * The default (PS-unaware) verify schedule: k_i, the number of
     * VFY steps in ISPP loop i (paper Fig. 3(b) — every state not yet
     * completed is verified on every loop).
     */
    VerifySchedule
    defaultVerifySchedule(
        const std::array<StateLoops, kTlcStates> &loops) const;

    /**
     * Execute one WL program.
     *
     * @param q        WL quality factor (ProcessModel::wlQuality)
     * @param speedMv  WL mean program-speed boost
     * @param aging    wear/retention condition of the block
     * @param chipFactor per-chip BER multiplier
     * @param cmd      PS-aware knobs (default-constructed = leader)
     * @param rng      source for measurement/operation noise
     */
    WlProgramResult program(double q, double speedMv,
                            const AgingState &aging, double chipFactor,
                            const ProgramCommand &cmd, Rng &rng) const;

    /**
     * program() with the aging-dependent model terms supplied by the
     * caller (NandChip's ErrorTermCache): `severity` and `sigma` as
     * stateLoops would derive them from the aging state, and
     * `normBase` = ErrorModel::normalizedBer(q, aging, chipFactor).
     * Scalar arguments on purpose — the cache stays decoupled from
     * this header. Bit-identical to program() by construction.
     */
    WlProgramResult programWithTerms(double q, double speedMv,
                                     double severity, double sigma,
                                     double normBase,
                                     const ProgramCommand &cmd,
                                     Rng &rng) const;

    /**
     * The paper's safe skip plan (Sec. 4.1.1): for state s skip the
     * VFYs of all loops before the leader's observed L_min(s).
     */
    static std::array<int, kTlcStates>
    safeSkipPlan(const std::array<StateLoops, kTlcStates> &leaderLoops);

  private:
    /** Memoized ErrorModel::windowShrinkMultiplier keyed by the integer
     *  shrink (mV). Every follower program pays this multiplier, and the
     *  same few shrink values repeat for the device's lifetime — but the
     *  underlying pow() must only run once per distinct input so the
     *  cached double is the exact same expression result (the fig17/18
     *  bit-identity contract). 0.0 marks an unfilled entry: a real
     *  multiplier is always >= 1. */
    double shrinkMultiplier(MilliVolt shrinkMv) const;

    /** Memoized ErrorModel::overProgramMultiplier, same contract:
     *  extraSkips is a small loop count, state is 1-based. */
    double overMultiplier(int extraSkips, int state) const;

    IsppConfig config_;
    const ErrorModel &errors_;

    static constexpr int kShrinkCacheSize = 2048;
    mutable std::array<double, kShrinkCacheSize> shrinkMult_{};
    mutable std::array<std::array<double, kTlcStates>,
                       VerifySchedule::kMaxLoops>
        overMult_{};
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_ISPP_H
