#include "src/nand/geometry.h"

#include "src/common/logging.h"

namespace cubessd::nand {

AddressCodec::AddressCodec(const NandGeometry &geom)
    : geom_(geom)
{
    if (!geom_.valid())
        fatal("NandGeometry has a zero dimension");
}

std::uint64_t
AddressCodec::encode(const PageAddr &addr) const
{
    return ((static_cast<std::uint64_t>(addr.block) *
                 geom_.layersPerBlock + addr.layer) *
                geom_.wlsPerLayer + addr.wl) *
               geom_.pagesPerWl + addr.page;
}

PageAddr
AddressCodec::decode(std::uint64_t index) const
{
    PageAddr addr;
    addr.page = static_cast<std::uint32_t>(index % geom_.pagesPerWl);
    index /= geom_.pagesPerWl;
    addr.wl = static_cast<std::uint32_t>(index % geom_.wlsPerLayer);
    index /= geom_.wlsPerLayer;
    addr.layer = static_cast<std::uint32_t>(index % geom_.layersPerBlock);
    index /= geom_.layersPerBlock;
    addr.block = static_cast<std::uint32_t>(index);
    return addr;
}

std::uint64_t
AddressCodec::encodeWl(const WlAddr &addr) const
{
    return (static_cast<std::uint64_t>(addr.block) *
                geom_.layersPerBlock + addr.layer) *
               geom_.wlsPerLayer + addr.wl;
}

WlAddr
AddressCodec::decodeWl(std::uint64_t index) const
{
    WlAddr addr;
    addr.wl = static_cast<std::uint32_t>(index % geom_.wlsPerLayer);
    index /= geom_.wlsPerLayer;
    addr.layer = static_cast<std::uint32_t>(index % geom_.layersPerBlock);
    index /= geom_.layersPerBlock;
    addr.block = static_cast<std::uint32_t>(index);
    return addr;
}

bool
AddressCodec::contains(const PageAddr &addr) const
{
    return addr.block < geom_.blocksPerChip &&
           addr.layer < geom_.layersPerBlock &&
           addr.wl < geom_.wlsPerLayer &&
           addr.page < geom_.pagesPerWl;
}

bool
AddressCodec::contains(const WlAddr &addr) const
{
    return addr.block < geom_.blocksPerChip &&
           addr.layer < geom_.layersPerBlock &&
           addr.wl < geom_.wlsPerLayer;
}

}  // namespace cubessd::nand
