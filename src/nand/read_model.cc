#include "src/nand/read_model.h"

#include <cmath>
#include <cstdlib>

#include "src/prof/prof.h"

namespace cubessd::nand {

ReadModel::ReadModel(const ReadParams &params, const VthModel &vth,
                     const ErrorModel &errors, const ecc::EccModel &ecc)
    : params_(params), vth_(vth), errors_(errors), ecc_(ecc)
{
}

double
ReadModel::rawBerNorm(double alignedNorm, double missMv) const
{
    const double scaled = missMv / vth_.params().berMissScaleMv;
    return alignedNorm * (1.0 + scaled * scaled);
}

ReadOutcome
ReadModel::read(std::uint32_t block, double q, const AgingState &aging,
                double chipFactor, double berMultiplier,
                MilliVolt appliedShiftMv, Rng &rng, bool softHint,
                double uncorrectableNormLimit) const
{
    // Direct (uncached) entry: evaluate the deterministic WL terms
    // here, exactly as ErrorTermCache does, and run the shared
    // implementation.
    return readFromTerms(vth_.optimalShiftMv(block, q, aging, errors_),
                         errors_.normalizedBer(q, aging, chipFactor),
                         berMultiplier, appliedShiftMv, rng, softHint,
                         uncorrectableNormLimit);
}

ReadOutcome
ReadModel::readFromTerms(double shiftBase, double normBase,
                         double berMultiplier, MilliVolt appliedShiftMv,
                         Rng &rng, bool softHint,
                         double uncorrectableNormLimit) const
{
    ReadOutcome out;

    double optimal;
    double alignedNorm;
    {
        PROF_SCOPE(prof::Slot::NandReadBerEval);
        optimal = shiftBase +
                  rng.normal(0.0, vth_.params().readJitterMv);
        alignedNorm = normBase * berMultiplier;
    }
    // Injected fault: the WL is degraded beyond what any reference
    // shift can recover, so every ECC attempt fails and the walk runs
    // to exhaustion before reporting uncorrectable.
    const bool beyondRecovery =
        uncorrectableNormLimit > 0.0 && alignedNorm > uncorrectableNormLimit;
    const double baseBer = errors_.params().baseBer;
    MilliVolt applied = appliedShiftMv;
    MilliVolt step = vth_.params().retryStepMv;
    int attempts = 0;
    SimTime decodeTime = 0;

    // One sense + ECC attempt at the current reference shift.
    const auto senseAttempt = [&]() -> bool {
        const double miss =
            std::abs(optimal - static_cast<double>(applied));
        out.rawBerNorm = rawBerNorm(alignedNorm, miss);
        decodeTime +=
            ecc_.decodeLatencyNs(out.rawBerNorm * baseBer, softHint);
        return !beyondRecovery &&
               ecc_.correctable(out.rawBerNorm * baseBer);
    };

    {
        // The decode slot covers the whole walk; the retry slot only
        // opens when the first attempt failed, so its count is the
        // number of reads that actually retried (not all reads).
        PROF_SCOPE(prof::Slot::NandReadDecode);
        if (senseAttempt()) {
            out.successShiftMv = applied;
        } else {
            PROF_SCOPE(prof::Slot::NandReadRetry);
            for (;;) {
                if (attempts >= params_.maxRetries) {
                    out.uncorrectable = true;
                    out.successShiftMv = applied;
                    break;
                }
                ++attempts;
                // Retry table: walk the shift toward the drift
                // direction (retention always lowers Vth, so deeper
                // shifts), one step per retry. Vendor tables refine
                // once the coarse sweep brackets the window: when the
                // walk crosses the optimum, switch to fine steps so
                // narrow end-of-life windows are not jumped over.
                const bool below =
                    static_cast<double>(applied) < optimal;
                const MilliVolt next =
                    below ? applied + step : applied - step;
                const bool crosses = below
                    ? static_cast<double>(next) > optimal
                    : static_cast<double>(next) < optimal;
                if (crosses && step > 10)
                    step = 10;
                if (below)
                    applied += step;
                else
                    applied -= step;
                if (senseAttempt()) {
                    // The retry walk stops at the *edge* of the
                    // decodable window; controllers then run a fine
                    // calibration so the remembered offset sits at the
                    // window center (otherwise every reuse teeters on
                    // the edge). Model: snap to the optimum at DAC
                    // granularity.
                    out.successShiftMv = static_cast<MilliVolt>(
                        std::lround(optimal / 10.0) * 10);
                    break;
                }
            }
        }
    }

    out.numRetries = attempts;
    out.tRetry = params_.tSense * static_cast<SimTime>(attempts);
    out.tRead = params_.tSense * static_cast<SimTime>(1 + attempts) +
                decodeTime;
    return out;
}

}  // namespace cubessd::nand
