#include "src/nand/vth_model.h"

#include <cmath>

namespace cubessd::nand {

namespace {

std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
}

}  // namespace

VthModel::VthModel(const VthParams &params, std::uint64_t seed)
    : params_(params), seed_(seed)
{
}

double
VthModel::blockDrift(std::uint32_t block) const
{
    const std::uint64_t h = mix(seed_ ^ 0x5D1FB2A8C3E49677ull, block);
    // Map hash to approximately standard normal via Irwin-Hall.
    double sum = 0.0;
    for (int i = 0; i < 4; ++i)
        sum += static_cast<double>((h >> (i * 16)) & 0xFFFF) / 65536.0;
    const double z = (sum - 2.0) * std::sqrt(3.0);
    return std::exp(params_.blockDriftSigma * z);
}

double
VthModel::optimalShiftMv(std::uint32_t block, double q,
                         const AgingState &aging,
                         const ErrorModel &errors) const
{
    // Delegate through the memoizable factorization; shiftSevTerm and
    // shiftFromTerms preserve the original expression tree exactly
    // (sev <= 0 yields +0.0, as the old early return did).
    return shiftFromTerms(shiftSevTerm(errors.severity(aging)), q,
                          blockDrift(block));
}

double
VthModel::boundaryWeight(int i) const
{
    return 0.5 + 0.5 * static_cast<double>(i) /
                     static_cast<double>(kTlcBoundaries - 1);
}

std::array<MilliVolt, kTlcBoundaries>
VthModel::expandOffsets(double scalarMv) const
{
    std::array<MilliVolt, kTlcBoundaries> out{};
    for (int i = 0; i < kTlcBoundaries; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<MilliVolt>(
            std::lround(-scalarMv * boundaryWeight(i)));
    }
    return out;
}

}  // namespace cubessd::nand
