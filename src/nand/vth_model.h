/**
 * @file
 * Threshold-voltage drift model: where the optimal read reference
 * voltages sit for a given WL, and how far they are from the chip's
 * default references.
 *
 * Retention charge loss shifts every program state's Vth downward; the
 * shift magnitude grows with aging severity and with the WL's process
 * quality factor (leaky, distorted channel holes lose charge faster).
 * All seven TLC read boundaries shift with a fixed per-boundary weight
 * pattern, so one *scalar* per (block, h-layer) captures the whole
 * offset set D = {dV_ref(i)} — exactly the compact representation the
 * paper's ORT exploits (Sec. 5.1: two bytes per h-layer).
 *
 * Because of horizontal similarity the scalar is an h-layer property:
 * WLs of one h-layer share it to RTN precision.
 */

#ifndef CUBESSD_NAND_VTH_MODEL_H
#define CUBESSD_NAND_VTH_MODEL_H

#include <array>
#include <cmath>
#include <cstdint>

#include "src/common/types.h"
#include "src/nand/error_model.h"

namespace cubessd::nand {

/** Number of read boundaries (between 2^3 = 8 TLC states). */
inline constexpr int kTlcBoundaries = 7;

/** Tunable constants of the Vth drift model. */
struct VthParams
{
    /** Scalar downward shift (mV) at severity 1, quality 1, drift 1. */
    double maxShiftMv = 78.0;
    /** Severity exponent; >1 makes late-life drift grow super-linearly. */
    double sevExponent = 1.3;
    /** Lognormal sigma of the per-block drift multiplier. */
    double blockDriftSigma = 0.30;
    /** Per-read jitter (mV std-dev): temperature / RTN effects. */
    double readJitterMv = 3.0;
    /** Retry-table granularity: one retry moves the references 1 step. */
    MilliVolt retryStepMv = 30;
    /** Raw-BER penalty of misalignment: (miss/berMissScaleMv)^2. */
    double berMissScaleMv = 25.0;
};

/**
 * Deterministic drift model; per-block factors derive from a seed so a
 * VthModel instance is chip-specific like ProcessModel.
 */
class VthModel
{
  public:
    explicit VthModel(const VthParams &params = {},
                      std::uint64_t seed = 1);

    const VthParams &params() const { return params_; }

    /**
     * The scalar optimal downward shift (mV) of the read references
     * for a WL of quality q in `block` under `aging`. Deterministic;
     * per-read jitter is added by ReadModel.
     */
    double optimalShiftMv(std::uint32_t block, double q,
                          const AgingState &aging,
                          const ErrorModel &errors) const;

    /** Severity-only factor of optimalShiftMv (0 when sev <= 0),
     *  factored out for per-epoch memoization. */
    double
    shiftSevTerm(double sev) const
    {
        if (sev <= 0.0)
            return 0.0;
        return params_.maxShiftMv * std::pow(sev, params_.sevExponent);
    }

    /**
     * optimalShiftMv() from precomputed factors. Keeps the direct
     * path's multiplication order, so a cached evaluation is
     * bit-identical (sev <= 0 yields +0.0 either way).
     */
    double
    shiftFromTerms(double sevTerm, double q, double drift) const
    {
        return sevTerm * q * drift;
    }

    /** Per-block drift multiplier (lognormal, wafer-location effect). */
    double blockDrift(std::uint32_t block) const;

    /**
     * Relative shift weight of boundary i (0-based): higher boundaries
     * (between high-Vth states) shift more. Provided for completeness;
     * the scalar representation folds these in.
     */
    double boundaryWeight(int i) const;

    /** Expand the scalar shift into the full offset set D. */
    std::array<MilliVolt, kTlcBoundaries>
    expandOffsets(double scalarMv) const;

  private:
    VthParams params_;
    std::uint64_t seed_;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_VTH_MODEL_H
