/**
 * @file
 * Manufacturing-process model for 3D NAND: the origin of both the
 * vertical inter-layer variability and the horizontal intra-layer
 * similarity that the paper characterizes (Sec. 2.1 and 3).
 *
 * The model assigns every word line a *quality factor* q >= 1:
 *
 *   q(block, layer) = 1 + severity(block) * profile(layer)
 *
 * where `profile` captures the channel-hole etch physics along the z
 * axis — the hole tapers toward the bottom substrate, the bottom few
 * h-layers are distorted (elliptic/rugged holes from etchant fluid
 * dynamics), and the first/last h-layers pay an edge penalty — and
 * `severity` is a per-block lognormal factor modelling the physical
 * location of the block on the wafer (paper Fig. 6(d)).
 *
 * Word lines on the *same* h-layer share q except for an RTN-scale
 * (<1%) static offset, which is what makes DeltaH ~= 1 (Fig. 5).
 */

#ifndef CUBESSD_NAND_PROCESS_MODEL_H
#define CUBESSD_NAND_PROCESS_MODEL_H

#include <cstdint>
#include <vector>

#include "src/nand/geometry.h"

namespace cubessd::nand {

/** Tunable constants of the process model (defaults are calibrated). */
struct ProcessParams
{
    /** Quality loss from channel-hole taper at the very bottom. */
    double taperStrength = 0.18;
    /** Quality loss from hole-shape distortion near the bottom. */
    double distortStrength = 0.22;
    /** Decay length of the distortion band, in normalized z units. */
    double distortDecay = 0.10;
    /** Extra quality loss on the first and last h-layer (block edges). */
    double edgePenalty = 0.20;
    /** Lognormal sigma of the per-block severity factor. */
    double blockSigma = 0.10;
    /** Lognormal sigma of the per-chip absolute BER multiplier. */
    double chipSigma = 0.05;
    /** Std-dev of the static per-WL quality offset (RTN scale, <1%). */
    double wlSigma = 0.004;
    /** Program-speed boost (mV) per unit of (q - 1): narrow holes
     *  concentrate the field and program faster. */
    double speedPerQuality = 80.0;
};

/**
 * Deterministic per-chip process instance.
 *
 * Two ProcessModel objects built with the same geometry, params, and
 * seed are identical; different seeds model different chips.
 */
class ProcessModel
{
  public:
    ProcessModel(const NandGeometry &geom, const ProcessParams &params,
                 std::uint64_t seed);

    const NandGeometry &geometry() const { return geom_; }
    const ProcessParams &params() const { return params_; }

    /**
     * Quality factor of an h-layer in a block; 1.0 = best possible,
     * larger = structurally worse (higher BER, as used by ErrorModel).
     */
    double layerQuality(std::uint32_t block, std::uint32_t layer) const;

    /**
     * Quality factor of one WL: layerQuality plus the static RTN-scale
     * intra-layer offset. Within one h-layer these differ by <1%.
     */
    double wlQuality(const WlAddr &addr) const;

    /** Per-chip absolute BER multiplier (wafer-location lottery). */
    double chipFactor() const { return chipFactor_; }

    /** Per-block severity factor scaling the layer profile. */
    double blockSeverity(std::uint32_t block) const;

    /**
     * Structural penalty of an h-layer before block severity scaling
     * (layerQuality = 1 + severity * profile). Exposed for offline
     * worst-case characterization, e.g. vertFTL's static tables.
     */
    double layerProfile(std::uint32_t layer) const
    {
        return profile_.at(layer);
    }

    /**
     * Mean program-speed boost of a WL in millivolts. WLs on the same
     * h-layer share this value (to RTN precision), which is why tPROG
     * is identical within an h-layer (paper Fig. 5(d)).
     */
    double programSpeedMv(const WlAddr &addr) const;

    /**
     * @name Representative h-layers (paper Figs. 5/6/9 notation)
     * @{
     */
    /** Bottom-edge h-layer: the least reliable overall. */
    std::uint32_t layerOmega() const { return 0; }
    /** Top-edge h-layer: unreliable due to the edge effect. */
    std::uint32_t layerAlpha() const { return geom_.layersPerBlock - 1; }
    /** Worst non-edge h-layer (distorted band near the bottom). */
    std::uint32_t layerKappa() const { return kappa_; }
    /** Most reliable h-layer. */
    std::uint32_t layerBeta() const { return beta_; }
    /** @} */

  private:
    double profileAt(std::uint32_t layer) const;

    NandGeometry geom_;
    ProcessParams params_;
    std::uint64_t seed_;
    double chipFactor_ = 1.0;
    std::vector<double> profile_;        ///< per-layer structural penalty
    std::vector<double> blockSeverity_;  ///< per-block severity factor
    std::uint32_t kappa_ = 1;
    std::uint32_t beta_ = 0;
};

}  // namespace cubessd::nand

#endif  // CUBESSD_NAND_PROCESS_MODEL_H
