#include "src/nand/term_cache.h"

#include "src/prof/prof.h"

namespace cubessd::nand {

ErrorTermCache::ErrorTermCache(const NandGeometry &geom,
                               const ProcessModel &process,
                               const ErrorModel &errors,
                               const VthModel &vth, const IsppEngine &ispp)
    : geom_(geom),
      process_(process),
      errors_(errors),
      vth_(vth),
      ispp_(ispp),
      chipFactor_(process.chipFactor())
{
    aging_.resize(geom_.blocksPerChip);
    wls_.resize(static_cast<std::size_t>(geom_.blocksPerChip) *
                geom_.wlsPerBlock());
    blockDrift_.assign(geom_.blocksPerChip, -1.0);
}

WlTerms
ErrorTermCache::terms(const WlAddr &addr, PeCycles eraseCount,
                      const AgingState &aging)
{
    const std::uint64_t tag = epochOf(eraseCount) + 1;

    AgingEntry &ae = aging_[addr.block];
    if (ae.tag != tag) {
        PROF_SCOPE(prof::Slot::NandTermFill);
        ++counters_.agingMisses;
        ae.terms = errors_.terms(aging);
        ae.shiftSevTerm = vth_.shiftSevTerm(ae.terms.severity);
        ae.sigma = ispp_.effectiveSigma(ae.terms.severity);
        ae.tag = tag;
    } else {
        ++counters_.agingHits;
    }

    WlEntry &we = wls_[wlIndex(addr)];
    if (we.tag != tag) {
        PROF_SCOPE(prof::Slot::NandTermFill);
        ++counters_.wlMisses;
        if (we.q < 0.0) {
            // First touch of this WL: fill the aging-independent terms.
            ++counters_.staticFills;
            we.q = process_.wlQuality(addr);
            we.speedMv = process_.programSpeedMv(addr);
        }
        double &drift = blockDrift_[addr.block];
        if (drift < 0.0)
            drift = vth_.blockDrift(addr.block);
        we.shiftBase = vth_.shiftFromTerms(ae.shiftSevTerm, we.q, drift);
        we.normBase =
            errors_.normalizedBerFromTerms(we.q, ae.terms, chipFactor_);
        we.tag = tag;
    } else {
        ++counters_.wlHits;
    }

    WlTerms out;
    out.q = we.q;
    out.speedMv = we.speedMv;
    out.severity = ae.terms.severity;
    out.sigma = ae.sigma;
    out.shiftBase = we.shiftBase;
    out.normBase = we.normBase;
    return out;
}

}  // namespace cubessd::nand
