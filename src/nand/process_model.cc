#include "src/nand/process_model.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace cubessd::nand {

namespace {

/**
 * Deterministic 64-bit mix of an address tuple, used to derive static
 * per-WL noise without storing per-WL state (428 blocks x 192 WLs per
 * chip x many chips would add up).
 */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

/** Map a 64-bit hash to an approximately standard-normal value. */
double
hashNormal(std::uint64_t h)
{
    // Sum of 4 uniforms (Irwin-Hall), shifted/scaled: mean 0, var 1.
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) {
        sum += static_cast<double>((h >> (i * 16)) & 0xFFFF) / 65536.0;
    }
    return (sum - 2.0) * std::sqrt(3.0);
}

}  // namespace

ProcessModel::ProcessModel(const NandGeometry &geom,
                           const ProcessParams &params, std::uint64_t seed)
    : geom_(geom), params_(params), seed_(seed)
{
    if (!geom_.valid())
        fatal("ProcessModel: invalid geometry");

    Rng rng(seed);
    chipFactor_ = rng.lognormal(0.0, params_.chipSigma);

    profile_.resize(geom_.layersPerBlock);
    double best = 1e30;
    double worstInterior = -1.0;
    for (std::uint32_t l = 0; l < geom_.layersPerBlock; ++l) {
        profile_[l] = profileAt(l);
        if (profile_[l] < best) {
            best = profile_[l];
            beta_ = l;
        }
        const bool interior = l != 0 && l != geom_.layersPerBlock - 1;
        if (interior && profile_[l] > worstInterior) {
            worstInterior = profile_[l];
            kappa_ = l;
        }
    }

    blockSeverity_.resize(geom_.blocksPerChip);
    for (auto &s : blockSeverity_)
        s = rng.lognormal(0.0, params_.blockSigma);
}

double
ProcessModel::profileAt(std::uint32_t layer) const
{
    const auto L = geom_.layersPerBlock;
    const double z = L > 1
        ? static_cast<double>(layer) / static_cast<double>(L - 1)
        : 1.0;
    const double taper =
        params_.taperStrength * std::pow(1.0 - z, 1.5);
    const double distortion =
        params_.distortStrength * std::exp(-z / params_.distortDecay);
    const double edge =
        (layer == 0 || layer == L - 1) ? params_.edgePenalty : 0.0;
    return taper + distortion + edge;
}

double
ProcessModel::blockSeverity(std::uint32_t block) const
{
    return blockSeverity_.at(block);
}

double
ProcessModel::layerQuality(std::uint32_t block, std::uint32_t layer) const
{
    return 1.0 + blockSeverity_.at(block) * profile_.at(layer);
}

double
ProcessModel::wlQuality(const WlAddr &addr) const
{
    const double q = layerQuality(addr.block, addr.layer);
    const std::uint64_t h = mix(seed_,
                                mix(addr.block,
                                    mix(addr.layer, addr.wl)));
    return q * (1.0 + params_.wlSigma * hashNormal(h));
}

double
ProcessModel::programSpeedMv(const WlAddr &addr) const
{
    const double q = layerQuality(addr.block, addr.layer);
    // Tiny static intra-layer offset, distinct stream from wlQuality.
    const std::uint64_t h = mix(seed_ ^ 0xABCDEF12345678ull,
                                mix(addr.block,
                                    mix(addr.layer, addr.wl)));
    const double noise = 1.5 * hashNormal(h);  // +-~1.5 mV
    return params_.speedPerQuality * (q - 1.0) + noise;
}

}  // namespace cubessd::nand
