#include "src/nand/error_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cubessd::nand {

ErrorModel::ErrorModel(const ErrorParams &params)
    : params_(params)
{
    if (params_.baseBer <= 0.0 || params_.peEol == 0 ||
        params_.retEolMonths <= 0.0) {
        fatal("ErrorModel: non-positive calibration constant");
    }
    logEolRet_ = std::log(1.0 + params_.retEolMonths);
}

double
ErrorModel::severity(const AgingState &aging) const
{
    const double peTerm = static_cast<double>(aging.peCycles) /
                          static_cast<double>(params_.peEol);
    const double retTerm =
        std::log(1.0 + std::max(0.0, aging.retentionMonths)) / logEolRet_;
    return std::clamp(0.5 * peTerm + 0.5 * retTerm, 0.0, 1.5);
}

double
ErrorModel::retentionBer(double q, const AgingState &aging,
                         double chipFactor) const
{
    return params_.baseBer * normalizedBer(q, aging, chipFactor);
}

ErrorTerms
ErrorModel::terms(const AgingState &aging) const
{
    ErrorTerms t;
    const double x = static_cast<double>(aging.peCycles) / 1000.0;
    t.peGrowth = 1.0 + params_.peA * std::pow(x, params_.peP);
    t.retGrowth =
        1.0 + params_.retB *
                  std::log(1.0 + std::max(0.0, aging.retentionMonths));
    // Worse layers age faster: the quality exponent grows with severity,
    // producing the nonlinear layer divergence of Fig. 6(c).
    t.severity = severity(aging);
    t.exponent = 1.0 + params_.qualityAmp * t.severity;
    return t;
}

double
ErrorModel::normalizedBer(double q, const AgingState &aging,
                          double chipFactor) const
{
    return normalizedBerFromTerms(q, terms(aging), chipFactor);
}

double
ErrorModel::berEp1Norm(double q, const AgingState &aging,
                       double chipFactor) const
{
    return berEp1NormFromBase(normalizedBer(q, aging, chipFactor));
}

double
ErrorModel::projectedRetentionNorm(double measuredNorm,
                                   const AgingState &current) const
{
    if (measuredNorm <= 0.0)
        return 0.0;
    // Invert normalizedBer() at the current condition to estimate the
    // WL quality factor (the chip factor folds into the estimate,
    // which keeps the projection conservative for bad chips).
    const double x = static_cast<double>(current.peCycles) / 1000.0;
    const double peGrowth = 1.0 + params_.peA * std::pow(x, params_.peP);
    const double retGrowth =
        1.0 + params_.retB *
                  std::log(1.0 + std::max(0.0, current.retentionMonths));
    const double exponent = 1.0 + params_.qualityAmp * severity(current);
    const double qEst = std::pow(
        std::max(measuredNorm / (peGrowth * retGrowth), 1e-9),
        1.0 / exponent);

    const AgingState endOfRetention{current.peCycles,
                                    params_.retEolMonths};
    return normalizedBer(qEst, endOfRetention, 1.0);
}

double
ErrorModel::windowShrinkMultiplier(double shrinkMv) const
{
    if (shrinkMv <= 0.0)
        return 1.0;
    return 1.0 +
           params_.windowK * std::pow(shrinkMv / 100.0, params_.windowP);
}

double
ErrorModel::safeWindowShrinkMv(double allowedMultiplier) const
{
    if (allowedMultiplier <= 1.0)
        return 0.0;
    return 100.0 *
           std::pow((allowedMultiplier - 1.0) / params_.windowK,
                    1.0 / params_.windowP);
}

double
ErrorModel::overProgramMultiplier(int extraSkips, int state) const
{
    if (extraSkips <= 0)
        return 1.0;
    // Higher program states sit closer to the next state's window and
    // accumulate overshoot from every earlier state's pulses.
    const double stateWeight = 0.6 + 0.1 * static_cast<double>(state);
    return 1.0 + params_.overK * stateWeight *
                     std::pow(static_cast<double>(extraSkips),
                              params_.overP);
}

}  // namespace cubessd::nand
