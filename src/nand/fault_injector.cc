#include "src/nand/fault_injector.h"

#include <algorithm>
#include <cmath>

namespace cubessd::nand {

FaultInjector::FaultInjector(const FaultParams &params,
                             const ErrorModel &errors, std::uint64_t seed)
    : params_(params), errors_(&errors),
      rng_(seed ^ 0xFA171A57ED5EEDull)
{
}

double
FaultInjector::scaled(double base, double q, const AgingState &aging) const
{
    if (base <= 0.0)
        return 0.0;
    const double wear = 1.0 + params_.wearScale * errors_->severity(aging);
    const double layer = std::pow(std::max(q, 1e-9), params_.qualityExp);
    return std::min(1.0, base * layer * wear);
}

double
FaultInjector::programFailProbability(double q,
                                      const AgingState &aging) const
{
    return scaled(params_.programFailBase, q, aging);
}

double
FaultInjector::eraseFailProbability(const AgingState &aging) const
{
    return scaled(params_.eraseFailBase, 1.0, aging);
}

bool
FaultInjector::programFails(double q, const AgingState &aging)
{
    if (!params_.enabled)
        return false;
    return rng_.bernoulli(programFailProbability(q, aging));
}

bool
FaultInjector::eraseFails(const AgingState &aging)
{
    if (!params_.enabled)
        return false;
    return rng_.bernoulli(eraseFailProbability(aging));
}

bool
FaultInjector::readUncorrectable(double alignedNorm) const
{
    return params_.enabled && params_.uncorrectableNormLimit > 0.0 &&
           alignedNorm > params_.uncorrectableNormLimit;
}

}  // namespace cubessd::nand
