/**
 * @file
 * Self-profiling: wall-clock cost attribution for the simulator's own
 * hot paths.
 *
 * Perfetto traces (src/trace/) record *simulated* time; this subsystem
 * answers the other question — where does HOST CPU time go while the
 * simulator runs? Which of the paper's mechanisms (BER evaluation,
 * ISPP loop math, read-retry walks, ORT/OPM lookups) dominate the
 * per-event budget, and is the scheduler or the model the bottleneck?
 *
 * Design constraints, in priority order:
 *
 *  1. Zero overhead when off. `PROF_SCOPE` compiles to nothing unless
 *     the CUBESSD_PROFILING compile definition is set (CMake option,
 *     default ON), and with it set but profiling not enabled at
 *     runtime (`--profile`), a scope costs one predictable branch on
 *     a plain bool.
 *  2. No allocations, no locks on the hot path. Slots are a fixed
 *     compile-time enum; accumulators are preallocated thread_local
 *     arrays; timestamps are raw TSC reads (x86-64) or steady_clock
 *     (elsewhere), calibrated to nanoseconds only at report time —
 *     and stride-sampled (default 1-in-16, setSamplePeriod) because
 *     even rdtsc is too expensive to pay twice per scope on every
 *     hit at ~7 scopes per simulated event.
 *  3. Deterministic *counts*. Slot hit counts depend only on the
 *     simulation, so a merged sweep profile has bit-identical counts
 *     for any --jobs value; times are wall-clock and machine-noisy by
 *     nature.
 *
 * Attribution model: scopes nest; each ProfScope remembers the
 * innermost open slot as its parent and, on close, charges its
 * duration to its own slot's inclusive time AND to the parent's
 * child time. Exclusive (self) time is inclusive minus child — the
 * number the reports rank by, since inclusive times of nested slots
 * overlap. Slot::SimLoop wraps the event-loop drivers themselves, so
 * its inclusive time ~= the measured wall of a run (coverage check)
 * and its self time is the queue bookkeeping (peek/insert/advance).
 *
 * Thread model: `setEnabled` must be called before sweep workers
 * spawn (thread creation publishes the flag); after that every thread
 * accumulates privately into its own thread_local state and the
 * caller merges per-cell snapshots deterministically in cell order
 * (see workload::runCells).
 */

#ifndef CUBESSD_PROF_PROF_H
#define CUBESSD_PROF_PROF_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define CUBESSD_PROF_TSC 1
#else
#include <chrono>
#endif

namespace cubessd::metrics {
class JsonWriter;
}
namespace cubessd::trace {
class CounterRegistry;
}

namespace cubessd::prof {

/**
 * Fixed instrumentation sites. Names (slotName) use dots for
 * hierarchy; a sub-slot (e.g. nand.read.ber_eval) nests inside its
 * parent site at runtime, so parents' SELF time already excludes it.
 *
 * The Sched* block MUST mirror sim::EventKind's enumerator order —
 * schedSlotFor() maps a kind to its dispatch slot by offset (checked
 * by static_asserts next to the dispatch loop).
 */
enum class Slot : std::uint8_t
{
    SimLoop = 0,           ///< EventQueue::run/step/runUntil drivers
    SchedGeneric,          ///< dispatch of EventKind::Generic
    SchedChipOp,           ///< dispatch of EventKind::ChipOpComplete
    SchedRequestComplete,  ///< dispatch of EventKind::RequestComplete
    SchedReadPiece,        ///< dispatch of EventKind::ReadPieceDone
    SchedHostAdmit,        ///< dispatch of EventKind::HostAdmit
    SchedDriverTick,       ///< dispatch of EventKind::DriverTick
    SchedTenantArrival,    ///< dispatch of EventKind::TenantArrival
    NandRead,              ///< NandChip::readPage
    NandReadBerEval,       ///< ReadModel: shift + normalized-BER math
    NandReadDecode,        ///< ReadModel: full sense/decode walk
    NandReadRetry,         ///< ReadModel: retry portion of the walk
    NandProgram,           ///< NandChip::programWl
    NandProgramIspp,       ///< IsppEngine program loop math
    NandErase,             ///< NandChip::eraseBlock
    NandFaultCheck,        ///< FaultInjector program/erase draws
    NandTermFill,          ///< ErrorTermCache miss: recompute terms
    FtlMapping,            ///< L2P lookups + applyMappings
    FtlOrtLookup,          ///< CubeFtl ORT lookups (read shift/hint)
    FtlOpm,                ///< OPM/WAM target choice, derive, safety
    FtlGc,                 ///< GcEngine scan/relocate/erase driving
    SsdBusTransfer,        ///< Channel::reserve
    SsdHostQueue,          ///< HostQueue admit/start/complete
    SsdArbiter,            ///< WrrArbiter submit/pump/complete
    ObsMetricsTrace,       ///< trace emission + counter sampling +
                           ///< request metrics recording
    kCount
};

inline constexpr std::size_t kSlotCount =
    static_cast<std::size_t>(Slot::kCount);

/** Stable dotted name of a slot ("nand.read.ber_eval"). */
const char *slotName(Slot slot);

/** Dispatch slot for a sim::EventKind raw value (same order). */
constexpr Slot
schedSlotFor(std::uint8_t kind)
{
    return static_cast<Slot>(
        static_cast<std::uint8_t>(Slot::SchedGeneric) + kind);
}

namespace detail {

/** One slot's accumulator; ticks are raw clock units (see nowTicks). */
struct SlotAccum
{
    std::uint64_t count;
    std::uint64_t ticks;       ///< inclusive
    std::uint64_t childTicks;  ///< time spent in nested scopes
};

/** Per-thread accumulator block: fixed storage, no allocation. */
struct ThreadState
{
    SlotAccum slots[kSlotCount];
    std::int32_t current = -1;  ///< innermost open slot index, -1 none
};

/** constinit matters: it guarantees constant initialization, so
 *  cross-TU accesses compile to a direct TLS load instead of a call
 *  through the lazy-init thread wrapper — this is on the per-scope
 *  hot path twice. */
extern constinit thread_local ThreadState t_state;

/** Plain bool on purpose: written once (before any worker thread
 *  exists), then read-only — thread creation publishes it. */
extern bool g_enabled;

/** Timestamp stride-sampling mask (period - 1, period a power of
 *  two). A scope reads the clock only when (count & mask) == 1, and
 *  snapshot() scales sampled ticks back up by the period — counts
 *  stay exact and deterministic, times become unbiased estimates.
 *  Rationale: rdtsc costs ~20 ns on some (virtualized) hosts, and
 *  two reads per scope at ~7 scopes/event would tax the simulator
 *  ~50%+; sampling 1-in-16 cuts that below the 10%% overhead budget.
 *  0 = time every hit (exact; what the accounting tests use). Same
 *  write-before-threads contract as g_enabled. */
extern std::uint32_t g_sampleMask;

inline std::uint64_t
nowTicks()
{
#ifdef CUBESSD_PROF_TSC
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

}  // namespace detail

/** Whether PROF_SCOPE sites were compiled in (CUBESSD_PROFILING). */
bool compiledIn();

/** Runtime switch. Call on the main thread BEFORE any sweep worker
 *  spawns; also (re)anchors the tick->ns calibration. */
void setEnabled(bool on);

/** Timestamp sampling period (power of two; 1 = time every scope
 *  hit). Same main-thread-before-workers contract as setEnabled.
 *  Non-powers of two round up; 0 is treated as 1. */
void setSamplePeriod(std::uint32_t period);

/** Active timestamp sampling period (>= 1). */
std::uint32_t samplePeriod();

inline bool
enabled()
{
    return detail::g_enabled;
}

/** Calibrated nanoseconds per tick (1.0 on non-TSC builds). Samples
 *  the clock pair on every call; cheap, but report-time only. */
double nsPerTick();

/** Zero the calling thread's accumulators. */
void resetThread();

/**
 * A snapshot (or merge, or difference) of slot accumulators. Plain
 * copyable value; ticks convert to ns via nsPerTick() at report time.
 * Tick sums are estimated totals (snapshot() scales the stride-sampled
 * accumulators by the sampling period); counts are always exact.
 */
struct ProfileData
{
    detail::SlotAccum slots[kSlotCount] = {};

    void merge(const ProfileData &other);
    /** This snapshot minus an earlier one of the same thread. */
    ProfileData since(const ProfileData &earlier) const;

    std::uint64_t count(Slot slot) const;
    std::uint64_t totalTicks(Slot slot) const;
    /** Exclusive ticks: inclusive minus nested-scope time. */
    std::uint64_t selfTicks(Slot slot) const;
    /** Sum of every slot's exclusive ticks. */
    std::uint64_t selfTicksSum() const;
    bool empty() const;
};

/** Copy of the calling thread's live accumulators. */
ProfileData snapshot();

/**
 * Print the top-N table (count, total, ns/call, self, % of wall)
 * ranked by self time; slots with zero hits are elided. `wallNs` <= 0
 * prints absolute times without the coverage column.
 */
void report(std::ostream &out, const ProfileData &data, double wallNs,
            std::size_t topN = kSlotCount);

/**
 * Emit the profile as a JSON object value (the writer must be
 * positioned where a value is legal): ns_per_tick, wall_ns, coverage
 * (self-sum / wall), and a "slots" array ranked by self time.
 */
void writeJson(metrics::JsonWriter &w, const ProfileData &data,
               double wallNs);

/**
 * Register cumulative self-time gauges (ms of host CPU per subsystem
 * group: sim/sched/nand/ftl/ssd/obs) so profiler data rides the
 * existing Perfetto counter tracks. Probes read the sampling thread's
 * own accumulators — observation-only, no simulator state touched.
 */
void registerCounters(trace::CounterRegistry &reg);

/**
 * RAII scoped timer. Construct with the slot to charge; destruction
 * adds the elapsed ticks to the slot and to the enclosing scope's
 * child time. Use via PROF_SCOPE so disabled builds erase the site.
 */
class ProfScope
{
  public:
    explicit ProfScope(Slot slot)
    {
        if (!detail::g_enabled)
            return;
        ts_ = &detail::t_state;  // one TLS lookup, reused on close
        index_ = static_cast<std::int32_t>(slot);
        parent_ = ts_->current;
        ts_->current = index_;
        auto &accum = ts_->slots[index_];
        ++accum.count;  // exact and deterministic, every hit
        // Read the clock on a 1-in-period stride only (see
        // g_sampleMask). The phase compares against (1 & mask) so a
        // slot's FIRST hit is always timed (rare slots never report
        // zero time) and a mask of 0 times every hit. The
        // parent/current chain is maintained unconditionally — a
        // sampled child must know its parent even when the parent's
        // own hit went unsampled.
        const std::uint32_t mask = detail::g_sampleMask;
        if ((accum.count & mask) == (1u & mask)) {
            timed_ = true;
            t0_ = detail::nowTicks();
        }
    }

    ~ProfScope()
    {
        if (ts_ == nullptr)
            return;
        if (timed_) {
            const std::uint64_t dt = detail::nowTicks() - t0_;
            auto &slot = ts_->slots[index_];
            slot.ticks += dt;
            if (parent_ >= 0)
                ts_->slots[parent_].childTicks += dt;
        }
        ts_->current = parent_;
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    detail::ThreadState *ts_ = nullptr;
    std::uint64_t t0_ = 0;
    std::int32_t index_ = 0;
    std::int32_t parent_ = -1;
    bool timed_ = false;
};

}  // namespace cubessd::prof

#ifdef CUBESSD_PROFILING
#define CUBESSD_PROF_CONCAT2(a, b) a##b
#define CUBESSD_PROF_CONCAT(a, b) CUBESSD_PROF_CONCAT2(a, b)
#define PROF_SCOPE(slot)                                              \
    ::cubessd::prof::ProfScope CUBESSD_PROF_CONCAT(profScope_,        \
                                                   __LINE__)(slot)
#else
#define PROF_SCOPE(slot) static_cast<void>(0)
#endif

#endif  // CUBESSD_PROF_PROF_H
