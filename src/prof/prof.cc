#include "src/prof/prof.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <ostream>
#include <string>
#include <vector>

#include "src/metrics/json.h"
#include "src/metrics/report.h"
#include "src/trace/counters.h"

namespace cubessd::prof {

namespace detail {

constinit thread_local ThreadState t_state = {};
bool g_enabled = false;
// Default: time 1 scope hit in 16 (counts stay exact). See the
// declaration for the rationale; tests that assert exact times call
// setSamplePeriod(1).
std::uint32_t g_sampleMask = 15;

}  // namespace detail

namespace {

constexpr std::array<const char *, kSlotCount> kSlotNames = {
    "sim.loop",
    "sched.generic",
    "sched.chip_op",
    "sched.request_complete",
    "sched.read_piece",
    "sched.host_admit",
    "sched.driver_tick",
    "sched.tenant_arrival",
    "nand.read",
    "nand.read.ber_eval",
    "nand.read.decode",
    "nand.read.retry",
    "nand.program",
    "nand.program.ispp",
    "nand.erase",
    "nand.fault_check",
    "nand.term_fill",
    "ftl.mapping",
    "ftl.ort_lookup",
    "ftl.opm",
    "ftl.gc",
    "ssd.bus_transfer",
    "ssd.host_queue",
    "ssd.arbiter",
    "obs.metrics_trace",
};

#ifdef CUBESSD_PROF_TSC
/** Calibration anchor: a (tsc, steady_clock) pair captured together.
 *  nsPerTick() divides the elapsed ns by the elapsed ticks since the
 *  anchor; setEnabled() re-anchors so the baseline interval is the
 *  profiled run itself (long interval -> accurate ratio). */
struct Anchor
{
    std::uint64_t tsc;
    std::chrono::steady_clock::time_point steady;
};

Anchor g_anchor = {0, {}};

Anchor
captureAnchor()
{
    return {detail::nowTicks(), std::chrono::steady_clock::now()};
}
#endif

double
slotSelf(const detail::SlotAccum &a)
{
    return static_cast<double>(a.ticks -
                               std::min(a.childTicks, a.ticks));
}

}  // namespace

const char *
slotName(Slot slot)
{
    return kSlotNames[static_cast<std::size_t>(slot)];
}

bool
compiledIn()
{
#ifdef CUBESSD_PROFILING
    return true;
#else
    return false;
#endif
}

void
setEnabled(bool on)
{
#ifdef CUBESSD_PROF_TSC
    if (on)
        g_anchor = captureAnchor();
#endif
    detail::g_enabled = on;
}

void
setSamplePeriod(std::uint32_t period)
{
    std::uint32_t pow2 = 1;
    while (pow2 < period && pow2 < (1u << 30))
        pow2 <<= 1;
    detail::g_sampleMask = pow2 - 1;
}

std::uint32_t
samplePeriod()
{
    return detail::g_sampleMask + 1;
}

double
nsPerTick()
{
#ifdef CUBESSD_PROF_TSC
    Anchor now = captureAnchor();
    // Require a baseline of >= 1 ms between anchor and now so the
    // ratio is insensitive to the capture jitter of either endpoint.
    while (std::chrono::duration_cast<std::chrono::nanoseconds>(
               now.steady - g_anchor.steady)
               .count() < 1'000'000)
        now = captureAnchor();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                now.steady - g_anchor.steady)
                                .count());
    const double ticks = static_cast<double>(now.tsc - g_anchor.tsc);
    return ticks > 0.0 ? ns / ticks : 1.0;
#else
    return 1.0;  // nowTicks() already returns nanoseconds
#endif
}

void
resetThread()
{
    detail::t_state = {};
}

void
ProfileData::merge(const ProfileData &other)
{
    for (std::size_t i = 0; i < kSlotCount; ++i) {
        slots[i].count += other.slots[i].count;
        slots[i].ticks += other.slots[i].ticks;
        slots[i].childTicks += other.slots[i].childTicks;
    }
}

ProfileData
ProfileData::since(const ProfileData &earlier) const
{
    ProfileData d;
    for (std::size_t i = 0; i < kSlotCount; ++i) {
        d.slots[i].count = slots[i].count - earlier.slots[i].count;
        d.slots[i].ticks = slots[i].ticks - earlier.slots[i].ticks;
        d.slots[i].childTicks =
            slots[i].childTicks - earlier.slots[i].childTicks;
    }
    return d;
}

std::uint64_t
ProfileData::count(Slot slot) const
{
    return slots[static_cast<std::size_t>(slot)].count;
}

std::uint64_t
ProfileData::totalTicks(Slot slot) const
{
    return slots[static_cast<std::size_t>(slot)].ticks;
}

std::uint64_t
ProfileData::selfTicks(Slot slot) const
{
    const auto &a = slots[static_cast<std::size_t>(slot)];
    return a.ticks - std::min(a.childTicks, a.ticks);
}

std::uint64_t
ProfileData::selfTicksSum() const
{
    std::uint64_t sum = 0;
    for (const auto &a : slots)
        sum += a.ticks - std::min(a.childTicks, a.ticks);
    return sum;
}

bool
ProfileData::empty() const
{
    for (const auto &a : slots)
        if (a.count != 0)
            return false;
    return true;
}

ProfileData
snapshot()
{
    // Sampled tick sums scale back up by the sampling period here, so
    // every ProfileData consumer (since/merge/report/writeJson) sees
    // estimated-total ticks and needs no knowledge of the sampling.
    // Counts are exact and never scaled.
    const std::uint64_t period = detail::g_sampleMask + 1;
    ProfileData d;
    for (std::size_t i = 0; i < kSlotCount; ++i) {
        d.slots[i].count = detail::t_state.slots[i].count;
        d.slots[i].ticks = detail::t_state.slots[i].ticks * period;
        d.slots[i].childTicks =
            detail::t_state.slots[i].childTicks * period;
    }
    return d;
}

namespace {

/** Slot indices of `data` ranked by self time (desc), zero-hit slots
 *  removed. */
std::vector<std::size_t>
rankBySelf(const ProfileData &data)
{
    std::vector<std::size_t> order;
    order.reserve(kSlotCount);
    for (std::size_t i = 0; i < kSlotCount; ++i)
        if (data.slots[i].count != 0)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return slotSelf(data.slots[a]) >
                                slotSelf(data.slots[b]);
                     });
    return order;
}

}  // namespace

void
report(std::ostream &out, const ProfileData &data, double wallNs,
       std::size_t topN)
{
    const double nsTick = nsPerTick();
    const std::vector<std::size_t> order = rankBySelf(data);

    out << "Self-profile (host wall-clock cost attribution)\n";
    if (wallNs > 0.0) {
        const double covered =
            static_cast<double>(data.selfTicksSum()) * nsTick;
        out << "  wall " << metrics::format(wallNs / 1e6, 1)
            << " ms, attributed "
            << metrics::formatPercent(covered / wallNs) << "\n";
    }

    metrics::Table t({"slot", "count", "total ms", "ns/call",
                      "self ms", "% wall"});
    std::size_t shown = 0;
    for (std::size_t i : order) {
        if (shown++ == topN)
            break;
        const auto &a = data.slots[i];
        const double totalNs = static_cast<double>(a.ticks) * nsTick;
        const double selfNs = slotSelf(a) * nsTick;
        t.row({kSlotNames[i], std::to_string(a.count),
               metrics::format(totalNs / 1e6, 2),
               metrics::format(totalNs /
                                   static_cast<double>(a.count),
                               1),
               metrics::format(selfNs / 1e6, 2),
               wallNs > 0.0 ? metrics::formatPercent(selfNs / wallNs)
                            : std::string("-")});
    }
    t.print(out);
}

void
writeJson(metrics::JsonWriter &w, const ProfileData &data,
          double wallNs)
{
    const double nsTick = nsPerTick();
    const std::vector<std::size_t> order = rankBySelf(data);
    const double covered =
        static_cast<double>(data.selfTicksSum()) * nsTick;

    w.beginObject();
    w.field("ns_per_tick", nsTick);
    w.field("sample_period",
            static_cast<std::uint64_t>(samplePeriod()));
    w.field("wall_ns", wallNs);
    w.field("coverage", wallNs > 0.0 ? covered / wallNs : 0.0);
    w.key("slots").beginArray();
    for (std::size_t i : order) {
        const auto &a = data.slots[i];
        const double totalNs = static_cast<double>(a.ticks) * nsTick;
        const double selfNs = slotSelf(a) * nsTick;
        w.beginObject();
        w.field("name", kSlotNames[i]);
        w.field("count", a.count);
        w.field("total_ns", totalNs);
        w.field("self_ns", selfNs);
        w.field("ns_per_call",
                totalNs / static_cast<double>(a.count));
        w.field("self_ns_per_call",
                selfNs / static_cast<double>(a.count));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
registerCounters(trace::CounterRegistry &reg)
{
    // One cumulative self-time gauge per top-level group. The probe
    // runs on the simulation thread during counter sampling, so it
    // reads that thread's own accumulators — no cross-thread access.
    struct Group
    {
        const char *name;
        const char *prefix;
    };
    static constexpr Group kGroups[] = {
        {"prof.sim_self_ms", "sim."},   {"prof.sched_self_ms", "sched."},
        {"prof.nand_self_ms", "nand."}, {"prof.ftl_self_ms", "ftl."},
        {"prof.ssd_self_ms", "ssd."},   {"prof.obs_self_ms", "obs."},
    };
    for (const Group &g : kGroups) {
        const std::string prefix = g.prefix;
        reg.add(g.name, "ms", [prefix](SimTime) {
            // Live accumulators hold SAMPLED ticks; scale by the
            // period like snapshot() does.
            const double nsTick =
                nsPerTick() * static_cast<double>(samplePeriod());
            double selfNs = 0.0;
            for (std::size_t i = 0; i < kSlotCount; ++i) {
                const std::string name = kSlotNames[i];
                if (name.rfind(prefix, 0) == 0)
                    selfNs +=
                        slotSelf(detail::t_state.slots[i]) * nsTick;
            }
            return selfNs / 1e6;
        });
    }
}

}  // namespace cubessd::prof
