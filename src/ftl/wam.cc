#include "src/ftl/wam.h"

namespace cubessd::ftl {

namespace {

/** After consuming a follower, roll to the next h-layer when the
 *  current one is exhausted, so the invariants stay normalized. */
void
normalize(MixedWritePoint &wp, const nand::NandGeometry &geom)
{
    while (wp.iFollower < geom.layersPerBlock &&
           wp.followerUsed >= geom.wlsPerLayer - 1) {
        ++wp.iFollower;
        wp.followerUsed = 0;
    }
}

}  // namespace

std::optional<WlChoice>
Wam::takeFollower(MixedWritePoint &wp,
                  const nand::NandGeometry &geom) const
{
    normalize(wp, geom);
    if (!wp.hasFollower(geom))
        return std::nullopt;
    WlChoice choice;
    choice.isLeader = false;
    choice.wl = nand::WlAddr{wp.block, wp.iFollower, wp.followerUsed + 1};
    ++wp.followerUsed;
    normalize(wp, geom);
    return choice;
}

std::optional<WlChoice>
Wam::takeLeader(MixedWritePoint &wp, const nand::NandGeometry &geom) const
{
    if (!wp.hasLeader(geom))
        return std::nullopt;
    WlChoice choice;
    choice.isLeader = true;
    choice.wl = nand::WlAddr{wp.block, wp.iLeader, 0};
    ++wp.iLeader;
    return choice;
}

std::optional<WlChoice>
Wam::choose(MixedWritePoint &wp, const nand::NandGeometry &geom,
            double mu) const
{
    normalize(wp, geom);
    if (mu > muThreshold_) {
        // High write-bandwidth demand: spend fast follower WLs first.
        if (auto c = takeFollower(wp, geom))
            return c;
        return takeLeader(wp, geom);
    }
    // Normal demand: program a slow leader, replenishing the follower
    // pool; fall back to followers once leaders run out.
    if (auto c = takeLeader(wp, geom))
        return c;
    return takeFollower(wp, geom);
}

}  // namespace cubessd::ftl
