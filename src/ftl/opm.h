/**
 * @file
 * Optimal Parameter Manager (paper Sec. 5.1).
 *
 * The OPM converts what was *monitored* on an h-layer's leader WL into
 * the program parameters of the h-layer's follower WLs:
 *
 *  1. the per-state ISPP loop windows [L_min, L_max] become a VFY skip
 *     plan (Sec. 4.1.1);
 *  2. the measured BER_EP1 becomes a spare margin S_M, which a
 *     predefined conversion table turns into a total V_Start/V_Final
 *     adjustment (Sec. 4.1.2), split between the two by a second
 *     predefined table.
 *
 * It also implements the safety check of Sec. 4.1.4: a follower whose
 * post-program BER deviates far from its leader's is deemed improperly
 * programmed and must be re-programmed with fresh monitoring.
 */

#ifndef CUBESSD_FTL_OPM_H
#define CUBESSD_FTL_OPM_H

#include <cstdint>

#include "src/ecc/ecc.h"
#include "src/nand/error_model.h"
#include "src/nand/ispp.h"

namespace cubessd::ftl {

/** OPM policy constants. */
struct OpmConfig
{
    /** Fraction of the safe BER headroom actually spent. The reserve
     *  covers run-time measurement noise AND the read path's
     *  reference-misalignment budget (ORT entries are quantized to
     *  the retry step): spending more near end of life turns every
     *  follower read into a retry storm. */
    double marginGuard = 0.5;
    /** Largest total V_Start + V_Final adjustment considered
     *  physically meaningful (paper Fig. 10 margins top out here;
     *  calibrated so the follower tPROG cut tops out near the
     *  paper's 35.9%). */
    MilliVolt maxShrinkMv = 300;
    /** Share of the total adjustment given to V_Start (the rest goes
     *  to V_Final) — the paper's second predefined table. */
    double vStartShare = 0.6;
    /** Voltage DAC granularity for the adjustments. */
    MilliVolt granularityMv = 10;
    /** Safety check (Sec. 4.1.4): re-program when the follower's BER
     *  multiplier exceeds the leader-derived expectation by this. */
    double safetyBerFactor = 1.5;
};

/** Program parameters derived from one leader WL. */
struct LeaderParams
{
    bool valid = false;
    /** Skip plan matched to the V_Start adjustment below. */
    std::array<int, nand::kTlcStates> skipPlan{};
    /** Skip plan for a follower programmed *without* the window
     *  adjustment (ablations disable the two independently). */
    std::array<int, nand::kTlcStates> skipPlanUnshifted{};
    MilliVolt vStartAdjMv = 0;
    MilliVolt vFinalAdjMv = 0;
    /** The leader's measured BER_EP1 (for the safety check). */
    double leaderBerEp1Norm = 0.0;
    /** BER multiplier the adjustment is expected to cost. */
    double expectedMultiplier = 1.0;
    /** Aging epoch of the leader's block when these parameters were
     *  derived (NandChip::blockEpoch). Followers only apply them while
     *  the block's erase count still matches: stale parameters from a
     *  block generation that has since been erased would be unsafe.
     *  (The FTL's explicit onBlockErased flush already guarantees
     *  this — the gate turns the convention into a checked invariant
     *  at zero behavioral cost.) */
    std::uint64_t epoch = 0;

    /** Total V_Start + V_Final adjustment granted. */
    MilliVolt totalAdjustMv() const { return vStartAdjMv + vFinalAdjMv; }

    /** Assemble the NAND program command for a follower WL. */
    nand::ProgramCommand
    followerCommand() const
    {
        return followerCommand(true, true);
    }

    /**
     * Ablation variant: build the follower command with either of the
     * two program-latency techniques disabled.
     */
    nand::ProgramCommand
    followerCommand(bool vfySkip, bool windowAdjust) const
    {
        nand::ProgramCommand cmd;
        if (windowAdjust) {
            cmd.vStartAdjMv = vStartAdjMv;
            cmd.vFinalAdjMv = vFinalAdjMv;
        }
        if (vfySkip) {
            cmd.useSkipPlan = true;
            cmd.skipVfy = windowAdjust ? skipPlan : skipPlanUnshifted;
        }
        return cmd;
    }
};

class Opm
{
  public:
    /**
     * @param deltaVMv the chip's dV_ISPP: a raised V_Start shifts every
     *        monitored loop index down by vStartAdj / dV, and the skip
     *        plan must be shifted with it to stay safe.
     */
    Opm(const OpmConfig &config, const nand::ErrorModel &errors,
        const ecc::EccModel &ecc, MilliVolt deltaVMv);

    const OpmConfig &config() const { return config_; }

    /**
     * Derive follower program parameters from a completed leader
     * program (the monitored [L_min, L_max] and BER_EP1).
     *
     * @param aging the target block's current wear/retention state
     *        (the FTL tracks per-block P/E counts); the margin is
     *        projected to the end of the data's retention life.
     */
    LeaderParams derive(const nand::WlProgramResult &leader,
                        const nand::AgingState &aging) const;

    /**
     * Safety check (Sec. 4.1.4): did this follower program deviate so
     * far from the leader-derived expectation that it must be redone?
     */
    bool needsReprogram(const LeaderParams &params,
                        const nand::WlProgramResult &follower) const;

  private:
    OpmConfig config_;
    const nand::ErrorModel &errors_;
    MilliVolt deltaVMv_;
    double eccLimitNorm_;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_OPM_H
