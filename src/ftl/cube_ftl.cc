#include "src/ftl/cube_ftl.h"

#include "src/common/logging.h"
#include "src/prof/prof.h"
#include "src/trace/counters.h"

namespace cubessd::ftl {

CubeFtl::CubeFtl(const ssd::SsdConfig &config,
                 std::vector<ssd::ChipUnit> &chips,
                 sim::EventQueue &queue, const OpmConfig &opmConfig,
                 const ssd::CubeFeatures &features)
    : FtlBase(config, chips, queue),
      opm_(opmConfig, chips.front().chip().errors(),
           chips.front().chip().ecc(),
           chips.front().chip().ispp().config().deltaVMv),
      wam_(config.bufferHighWatermark),
      ort_(chipCount(), config.chip.geometry.blocksPerChip,
           config.chip.geometry.layersPerBlock),
      features_(features),
      state_(chipCount())
{
    const auto &geom = config.chip.geometry;
    for (auto &cs : state_)
        cs.params.resize(static_cast<std::size_t>(geom.blocksPerChip) *
                         geom.layersPerBlock);
}

void
CubeFtl::registerCounters(trace::CounterRegistry &reg)
{
    FtlBase::registerCounters(reg);
    reg.add("ort_hit_rate", "percent", [this](SimTime) {
        const auto total = ort_.hits() + ort_.misses();
        return total == 0
            ? 0.0
            : 100.0 * static_cast<double>(ort_.hits()) /
                  static_cast<double>(total);
    });
    reg.add("follower_fast_path", "programs", [this](SimTime) {
        return static_cast<double>(cubeStats_.followerWithParams);
    });
}

void
CubeFtl::ensureOpen(std::uint32_t chip)
{
    auto &cs = state_[chip];
    if (cs.open)
        return;
    cs.host[0].block = allocateBlock(chip);
    if (features_.wam)
        cs.host[1].block = allocateBlock(chip);
    cs.open = true;
}

WlChoice
CubeFtl::pickHostWl(std::uint32_t chip, double mu)
{
    ensureOpen(chip);
    auto &cs = state_[chip];
    const auto &geom = geometry();

    // Replace exhausted write points with fresh blocks first, so a
    // leader WL is always reachable.
    const std::size_t points = features_.wam ? 2 : 1;
    for (std::size_t i = 0; i < points; ++i) {
        if (cs.host[i].full(geom)) {
            cs.host[i] = MixedWritePoint{};
            cs.host[i].block = allocateBlock(chip);
        }
    }

    // cubeFTL-: no workload awareness; filling follower-first on one
    // write point degenerates to the horizontal-first order.
    const double effectiveMu = features_.wam ? mu : 1.0;
    const bool wantFollower = effectiveMu > wam_.muThreshold();

    auto tryTake = [&](bool follower) -> std::optional<WlChoice> {
        for (std::size_t i = 0; i < points; ++i) {
            auto c = follower ? wam_.takeFollower(cs.host[i], geom)
                              : wam_.takeLeader(cs.host[i], geom);
            if (c)
                return c;
        }
        return std::nullopt;
    };

    if (auto c = tryTake(wantFollower))
        return *c;
    if (auto c = tryTake(!wantFollower))
        return *c;
    panic("CubeFtl: no programmable WL on chip %u", chip);
}

WlChoice
CubeFtl::pickGcWl(std::uint32_t chip, double mu)
{
    auto &cs = state_[chip];
    const auto &geom = geometry();
    if (!cs.gcOpen || cs.gc.full(geom)) {
        cs.gc = MixedWritePoint{};
        cs.gc.block = allocateBlock(chip);
        cs.gcOpen = true;
    }
    if (auto c = wam_.choose(cs.gc, geom, features_.wam ? mu : 1.0))
        return *c;
    panic("CubeFtl: no programmable GC WL on chip %u", chip);
}

ProgramChoice
CubeFtl::finalizeChoice(std::uint32_t chip, const WlChoice &pick)
{
    ProgramChoice choice;
    choice.wl = pick.wl;
    choice.isLeader = pick.isLeader;
    if (pick.isLeader) {
        // Leaders run with default parameters and are monitored
        // (paper footnote 4: no tPROG reduction for leader WLs).
        choice.monitor = true;
        return choice;
    }
    auto &cs = state_[chip];
    const LeaderParams &params =
        cs.params[paramKey(pick.wl.block, pick.wl.layer)];
    // Epoch gate on the low 32 bits (the erase count) only: retention
    // advances age leader and follower identically, so parameters stay
    // applicable across them — but never across an erase of the block.
    const bool epochMatches =
        static_cast<std::uint32_t>(params.epoch) ==
        chipModel(chip).eraseCount(pick.wl.block);
    if (params.valid && epochMatches) {
        choice.cmd = params.followerCommand(features_.vfySkip,
                                            features_.windowAdjust);
        choice.monitor = false;
        ++cubeStats_.followerWithParams;
    } else {
        // Leader data not (yet) available — e.g. invalidated by a
        // safety re-program. Fall back to a monitored default program.
        choice.monitor = true;
        ++cubeStats_.followerWithoutParams;
    }
    return choice;
}

ProgramChoice
CubeFtl::chooseProgramTarget(std::uint32_t chip, bool forGc, double mu)
{
    PROF_SCOPE(prof::Slot::FtlOpm);
    const WlChoice pick =
        forGc ? pickGcWl(chip, mu) : pickHostWl(chip, mu);
    return finalizeChoice(chip, pick);
}

MilliVolt
CubeFtl::readShiftFor(std::uint32_t chip, const nand::PageAddr &addr)
{
    PROF_SCOPE(prof::Slot::FtlOrtLookup);
    if (!features_.ort)
        return 0;
    const auto shift = ort_.lookup(chip, addr.block, addr.layer);
    if (shift)
        ++cubeStats_.ortGuidedReads;
    return shift.value_or(0);
}

bool
CubeFtl::readSoftHint(std::uint32_t chip, const nand::PageAddr &addr)
{
    // A cached ORT entry means this h-layer has already needed
    // retries: its pages are noisy, so start with the soft decode
    // (the paper's Sec. 8 leader-informed ECC idea). Entry presence —
    // not a non-zero shift — is the signal: a calibrated 0 mV entry
    // still marks a noisy layer.
    PROF_SCOPE(prof::Slot::FtlOrtLookup);
    if (!features_.eccHint || !features_.ort)
        return false;
    return ort_.contains(chip, addr.block, addr.layer);
}

void
CubeFtl::onProgramComplete(std::uint32_t chip,
                           const ProgramChoice &choice,
                           const nand::WlProgramResult &result)
{
    if (choice.monitor) {
        PROF_SCOPE(prof::Slot::FtlOpm);
        LeaderParams params = opm_.derive(
            result, chipModel(chip).blockAging(choice.wl.block));
        params.epoch = chipModel(chip).blockEpoch(choice.wl.block);
        state_[chip].params[paramKey(choice.wl.block, choice.wl.layer)] =
            params;
    }
}

void
CubeFtl::onReadComplete(std::uint32_t chip, const nand::PageAddr &addr,
                        const nand::ReadOutcome &outcome)
{
    // Remember the shift that finally decoded for this h-layer; the
    // next read to any WL on the layer starts there (Sec. 4.2).
    if (features_.ort && outcome.numRetries > 0 && !outcome.uncorrectable)
        ort_.update(chip, addr.block, addr.layer, outcome.successShiftMv);
}

void
CubeFtl::onBlockErased(std::uint32_t chip, std::uint32_t block)
{
    ort_.resetBlock(chip, block);
    auto &params = state_[chip].params;
    const std::uint64_t base = paramKey(block, 0);
    for (std::uint32_t l = 0; l < geometry().layersPerBlock; ++l)
        params[base + l] = LeaderParams{};
}

void
CubeFtl::onBlockRetired(std::uint32_t chip, std::uint32_t block)
{
    // Force any write point open on the retired block to exhausted so
    // the next pick replaces it with a fresh allocation.
    auto &cs = state_[chip];
    const auto exhaust = [this](MixedWritePoint &wp) {
        wp.iLeader = geometry().layersPerBlock;
        wp.iFollower = geometry().layersPerBlock;
    };
    if (cs.open) {
        for (auto &wp : cs.host) {
            if (wp.block == block)
                exhaust(wp);
        }
    }
    if (cs.gcOpen && cs.gc.block == block)
        exhaust(cs.gc);
    // Cached ORT shifts and OPM parameters die with the block.
    onBlockErased(chip, block);
}

bool
CubeFtl::safetyCheck(std::uint32_t chip, const ProgramChoice &choice,
                     const nand::WlProgramResult &result)
{
    PROF_SCOPE(prof::Slot::FtlOpm);
    LeaderParams &params =
        state_[chip].params[paramKey(choice.wl.block, choice.wl.layer)];
    if (!params.valid)
        return false;
    if (opm_.needsReprogram(params, result)) {
        // The monitored parameters no longer reflect reality (e.g. a
        // sudden operating-condition change); drop them so the
        // re-program is monitored afresh.
        params = LeaderParams{};
        return true;
    }
    return false;
}

}  // namespace cubessd::ftl
