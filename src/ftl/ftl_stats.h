/**
 * @file
 * Cumulative FTL-level counters, shared between the FTL engine and
 * the GC subsystem (which mirrors its GC-specific counters here so
 * existing consumers keep a single place to read totals).
 */

#ifndef CUBESSD_FTL_FTL_STATS_H
#define CUBESSD_FTL_FTL_STATS_H

#include <cstdint>

#include "src/common/types.h"

namespace cubessd::ftl {

/** Cumulative FTL-level counters. */
struct FtlStats
{
    std::uint64_t hostReadPages = 0;
    std::uint64_t hostWritePages = 0;
    std::uint64_t bufferHits = 0;
    std::uint64_t unmappedReads = 0;
    std::uint64_t nandReads = 0;
    std::uint64_t hostPrograms = 0;     ///< WL programs from host flushes
    std::uint64_t gcPrograms = 0;       ///< WL programs from GC
    std::uint64_t leaderPrograms = 0;
    std::uint64_t followerPrograms = 0;
    std::uint64_t gcCollections = 0;
    std::uint64_t gcRelocatedPages = 0;
    std::uint64_t erases = 0;
    std::uint64_t safetyReprograms = 0;
    std::uint64_t readRetries = 0;
    std::uint64_t uncorrectableReads = 0;
    std::uint64_t writeStalls = 0;
    /** @name Failure-domain counters (fault injection) @{ */
    std::uint64_t programFailures = 0;   ///< WL program-status fails seen
    std::uint64_t eraseFailures = 0;     ///< erase-status fails seen
    std::uint64_t retiredBlocks = 0;     ///< blocks on the bad-block list
    std::uint64_t badBlockRelocations = 0; ///< valid pages remapped off them
    std::uint64_t flushReplays = 0;      ///< failed WL batches re-dispatched
    std::uint64_t flushDeferrals = 0;    ///< batches parked on a dry free list
    std::uint64_t readOnlyRejects = 0;   ///< writes rejected in read-only mode
    std::uint64_t rejectedRequests = 0;  ///< out-of-range requests refused
    /** @} */
    SimTime programLatencySum = 0;      ///< device tPROG over all programs

    /** Sum another device's counters in (multi-seed sweep merge). */
    void
    merge(const FtlStats &o)
    {
        hostReadPages += o.hostReadPages;
        hostWritePages += o.hostWritePages;
        bufferHits += o.bufferHits;
        unmappedReads += o.unmappedReads;
        nandReads += o.nandReads;
        hostPrograms += o.hostPrograms;
        gcPrograms += o.gcPrograms;
        leaderPrograms += o.leaderPrograms;
        followerPrograms += o.followerPrograms;
        gcCollections += o.gcCollections;
        gcRelocatedPages += o.gcRelocatedPages;
        erases += o.erases;
        safetyReprograms += o.safetyReprograms;
        readRetries += o.readRetries;
        uncorrectableReads += o.uncorrectableReads;
        writeStalls += o.writeStalls;
        programFailures += o.programFailures;
        eraseFailures += o.eraseFailures;
        retiredBlocks += o.retiredBlocks;
        badBlockRelocations += o.badBlockRelocations;
        flushReplays += o.flushReplays;
        flushDeferrals += o.flushDeferrals;
        readOnlyRejects += o.readOnlyRejects;
        rejectedRequests += o.rejectedRequests;
        programLatencySum += o.programLatencySum;
    }

    double
    writeAmplification() const
    {
        const auto host = hostPrograms;
        return host == 0
            ? 1.0
            : static_cast<double>(host + gcPrograms) /
                  static_cast<double>(host);
    }

    double
    avgProgramLatencyUs() const
    {
        const auto n = hostPrograms + gcPrograms;
        return n == 0
            ? 0.0
            : static_cast<double>(programLatencySum) / 1000.0 /
                  static_cast<double>(n);
    }
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_FTL_STATS_H
