/**
 * @file
 * cubeFTL: the paper's PS-aware FTL (Sec. 5).
 *
 * Combines all four techniques on top of the shared FTL engine:
 *
 *  - OPM: monitors each h-layer's leader WL ([L_min, L_max], BER_EP1)
 *    and derives the follower program command (VFY skip plan +
 *    V_Start/V_Final adjustment), plus the Sec. 4.1.4 safety check;
 *  - WAM: steers each flush to a leader or follower WL based on the
 *    write-buffer utilization, managing two active blocks per chip in
 *    fully mixed (MOS) order;
 *  - ORT: caches the most recent good read-reference shift per
 *    physical h-layer and reuses it for every read on that layer.
 *
 * Constructing with `wamEnabled = false` yields the paper's cubeFTL-
 * ablation: PS-aware program/read parameters, but horizontal-first
 * allocation with no workload awareness.
 */

#ifndef CUBESSD_FTL_CUBE_FTL_H
#define CUBESSD_FTL_CUBE_FTL_H

#include <vector>

#include "src/ftl/ftl_base.h"
#include "src/ftl/opm.h"
#include "src/ftl/ort.h"
#include "src/ftl/wam.h"

namespace cubessd::ftl {

/** cubeFTL-specific counters (on top of FtlStats). */
struct CubeFtlStats
{
    std::uint64_t followerWithParams = 0;  ///< fast-path followers
    std::uint64_t followerWithoutParams = 0;  ///< degraded to monitor
    std::uint64_t ortGuidedReads = 0;
};

class CubeFtl : public FtlBase
{
  public:
    CubeFtl(const ssd::SsdConfig &config,
            std::vector<ssd::ChipUnit> &chips, sim::EventQueue &queue,
            const OpmConfig &opmConfig = {},
            const ssd::CubeFeatures &features = {});

    const ssd::CubeFeatures &features() const { return features_; }
    bool wamEnabled() const { return features_.wam; }
    const Ort &ort() const { return ort_; }
    const CubeFtlStats &cubeStats() const { return cubeStats_; }

    /** Engine gauges plus the ORT hit rate and follower fast-path
     *  count (the PS mechanisms as time-series). */
    void registerCounters(trace::CounterRegistry &reg) override;

  protected:
    ProgramChoice chooseProgramTarget(std::uint32_t chip, bool forGc,
                                      double mu) override;
    MilliVolt readShiftFor(std::uint32_t chip,
                           const nand::PageAddr &addr) override;
    bool readSoftHint(std::uint32_t chip,
                      const nand::PageAddr &addr) override;
    void onProgramComplete(std::uint32_t chip,
                           const ProgramChoice &choice,
                           const nand::WlProgramResult &result) override;
    void onReadComplete(std::uint32_t chip, const nand::PageAddr &addr,
                        const nand::ReadOutcome &outcome) override;
    void onBlockErased(std::uint32_t chip, std::uint32_t block) override;
    void onBlockRetired(std::uint32_t chip,
                        std::uint32_t block) override;
    bool safetyCheck(std::uint32_t chip, const ProgramChoice &choice,
                     const nand::WlProgramResult &result) override;

  private:
    /** Host write points (two active blocks per chip) + one GC point. */
    struct ChipState
    {
        bool open = false;
        MixedWritePoint host[2];
        MixedWritePoint gc;
        bool gcOpen = false;
        /** OPM parameter cache, dense over the chip's h-layers:
         *  indexed by (block * L + layer), absent = !valid. Flat so
         *  the program hot path never touches the heap. */
        std::vector<LeaderParams> params;
    };

    std::uint64_t paramKey(std::uint32_t block, std::uint32_t layer) const
    {
        return static_cast<std::uint64_t>(block) *
                   geometry().layersPerBlock + layer;
    }

    void ensureOpen(std::uint32_t chip);
    WlChoice pickHostWl(std::uint32_t chip, double mu);
    WlChoice pickGcWl(std::uint32_t chip, double mu);
    ProgramChoice finalizeChoice(std::uint32_t chip,
                                 const WlChoice &pick);

    Opm opm_;
    Wam wam_;
    Ort ort_;
    ssd::CubeFeatures features_;
    std::vector<ChipState> state_;
    CubeFtlStats cubeStats_;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_CUBE_FTL_H
