#include "src/ftl/mapping.h"

#include "src/common/logging.h"

namespace cubessd::ftl {

MappingTable::MappingTable(std::uint64_t logicalPages)
    : l2p_(logicalPages, kInvalidPpa), version_(logicalPages, 0)
{
    if (logicalPages == 0)
        fatal("MappingTable: zero logical pages");
}

std::optional<Ppa>
MappingTable::lookup(Lba lba) const
{
    if (lba >= l2p_.size())
        panic("MappingTable::lookup: LBA %llu out of range",
              static_cast<unsigned long long>(lba));
    if (l2p_[lba] == kInvalidPpa)
        return std::nullopt;
    return l2p_[lba];
}

std::uint64_t
MappingTable::mappedVersion(Lba lba) const
{
    if (lba >= version_.size())
        panic("MappingTable::mappedVersion: LBA out of range");
    return version_[lba];
}

std::optional<Ppa>
MappingTable::map(Lba lba, Ppa ppa, std::uint64_t version)
{
    if (lba >= l2p_.size())
        panic("MappingTable::map: LBA out of range");
    const Ppa old = l2p_[lba];
    if (old == kInvalidPpa && ppa != kInvalidPpa)
        ++mapped_;
    l2p_[lba] = ppa;
    version_[lba] = version;
    if (old == kInvalidPpa)
        return std::nullopt;
    return old;
}

}  // namespace cubessd::ftl
