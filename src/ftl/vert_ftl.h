/**
 * @file
 * vertFTL: the state-of-the-art comparison point of the paper's
 * evaluation, modelled on Hung et al. [13].
 *
 * It exploits *inter-layer variability only*, with an offline static
 * table: for every h-layer, the largest V_Final reduction that stays
 * safe for the worst block of that layer under the worst operating
 * condition (end-of-life P/E count, end-of-life retention, plus a
 * static guard band for unobservable factors such as temperature).
 * Because it cannot measure anything at run time, the table is
 * necessarily conservative — the paper reports only ~8% average tPROG
 * improvement versus cubeFTL's ~30%.
 */

#ifndef CUBESSD_FTL_VERT_FTL_H
#define CUBESSD_FTL_VERT_FTL_H

#include <vector>

#include "src/common/types.h"
#include "src/ftl/page_ftl.h"

namespace cubessd::ftl {

/** Offline-characterization policy constants for vertFTL. */
struct VertFtlConfig
{
    /**
     * V_Final reduction granted to a hypothetical perfect layer
     * (profile 0). [13] reports ~130 mV for the most reliable layer
     * over its whole lifetime; layers degrade linearly toward 0 as
     * their structural penalty approaches the worst layer's. The
     * resulting reduction must stay BER-safe at end of life for the
     * worst block, which the constructor verifies against the error
     * model.
     */
    MilliVolt baseAdjustMv = 140;
    /** Table granularity. */
    MilliVolt granularityMv = 10;
};

class VertFtl : public PageFtl
{
  public:
    VertFtl(const ssd::SsdConfig &config,
            std::vector<ssd::ChipUnit> &chips, sim::EventQueue &queue,
            const VertFtlConfig &vertConfig = {});

    /** The offline per-layer V_Final reduction table (for reports). */
    const std::vector<MilliVolt> &table() const { return table_; }

  protected:
    nand::ProgramCommand commandFor(std::uint32_t chip,
                                    const nand::WlAddr &wl) override;

  private:
    void buildTable(const ssd::SsdConfig &config,
                    const std::vector<ssd::ChipUnit> &chips);

    VertFtlConfig vertConfig_;
    std::vector<MilliVolt> table_;  ///< per h-layer V_Final reduction
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_VERT_FTL_H
