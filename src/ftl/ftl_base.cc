#include "src/ftl/ftl_base.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/prof/prof.h"
#include "src/trace/counters.h"
#include "src/trace/trace.h"

namespace cubessd::ftl {

FtlBase::FtlBase(const ssd::SsdConfig &config,
                 std::vector<ssd::ChipUnit> &chips,
                 sim::EventQueue &queue)
    : config_(config),
      chips_(chips),
      queue_(queue),
      geom_(config.chip.geometry),
      codec_(geom_),
      mapping_(config.logicalPages()),
      buffer_(config.writeBufferPages),
      latestIssued_(config.logicalPages(), 0),
      outstandingFlush_(chips.size(), 0),
      deferredFlushes_(chips.size())
{
    if (chips_.empty())
        fatal("FtlBase: no chips");
    if (config_.writeBufferPages < geom_.pagesPerWl)
        fatal("FtlBase: write buffer smaller than one WL");

    // The over-provisioned space must cover the active write points
    // plus the GC watermarks on every chip, or a full device cannot
    // reach a steady state.
    const std::uint64_t dataBlocksPerChip =
        (config_.logicalPages() / chips_.size() + geom_.pagesPerBlock() -
         1) / geom_.pagesPerBlock();
    const std::uint64_t spare = geom_.blocksPerChip > dataBlocksPerChip
        ? geom_.blocksPerChip - dataBlocksPerChip
        : 0;
    if (spare < config_.gcHighWatermark + 3) {
        fatal("FtlBase: only %llu spare blocks per chip; need at least "
              "gcHighWatermark + 3 = %u (lower logicalFraction or grow "
              "blocksPerChip)",
              static_cast<unsigned long long>(spare),
              config_.gcHighWatermark + 3);
    }
    sparePerChip_ = spare;
    blockMgrs_.reserve(chips_.size());
    for (std::size_t i = 0; i < chips_.size(); ++i)
        blockMgrs_.emplace_back(geom_);

    popScratch_.reserve(geom_.pagesPerWl);

    GcHost &host = *this;  // private base: convert inside class scope
    gcEngine_ = std::make_unique<GcEngine>(
        config_, chips_, blockMgrs_, mapping_, host,
        makeGcPolicy(config_.gcPolicy), stats_);
}

const BlockManager &
FtlBase::blockManager(std::uint32_t chip) const
{
    return blockMgrs_.at(chip);
}

void
FtlBase::setTrace(trace::TraceSession *session, std::uint32_t track,
                  std::vector<std::uint32_t> gcTracks)
{
    trace_ = session;
    traceTrack_ = track;
    gcEngine_->setTrace(session, std::move(gcTracks), &queue_);
}

void
FtlBase::registerCounters(trace::CounterRegistry &reg)
{
    reg.add("buffer_occupancy", "pages", [this](SimTime) {
        return static_cast<double>(buffer_.size());
    });
    reg.add("free_blocks", "blocks", [this](SimTime) {
        double n = 0.0;
        for (const auto &mgr : blockMgrs_)
            n += static_cast<double>(mgr.freeCount());
        return n;
    });
    reg.add("gc_pages_moved", "pages", [this](SimTime) {
        return static_cast<double>(gcEngine_->stats().relocatedPages);
    });
    reg.add("write_stalls", "stalls", [this](SimTime) {
        return static_cast<double>(stats_.writeStalls);
    });
    reg.add("vfy_skipped", "verifies", [this](SimTime) {
        double n = 0.0;
        for (std::uint32_t c = 0; c < chipCount(); ++c)
            n += static_cast<double>(
                chipModel(c).stats().verifiesSkipped);
        return n;
    });
}

std::uint32_t
FtlBase::allocateBlock(std::uint32_t chip)
{
    return blockMgrs_.at(chip).allocate();
}

std::uint64_t
FtlBase::tokenFor(Lba lba, std::uint64_t version)
{
    std::uint64_t x = lba * 0x9E3779B97F4A7C15ull + version;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x | 1;  // never zero
}

Ppa
FtlBase::encodePpa(std::uint32_t chip, const nand::PageAddr &addr) const
{
    return static_cast<Ppa>(chip) * geom_.pagesPerChip() +
           codec_.encode(addr);
}

std::pair<std::uint32_t, nand::PageAddr>
FtlBase::decodePpa(Ppa ppa) const
{
    const auto perChip = geom_.pagesPerChip();
    const auto chip = static_cast<std::uint32_t>(ppa / perChip);
    return {chip, codec_.decode(ppa % perChip)};
}

std::uint32_t
FtlBase::pageInBlock(const nand::PageAddr &addr) const
{
    return (addr.layer * geom_.wlsPerLayer + addr.wl) * geom_.pagesPerWl +
           addr.page;
}

// ---------------------------------------------------------------------
// Completion delivery (typed events; see onEvent below)
// ---------------------------------------------------------------------

void
FtlBase::scheduleCompletion(ssd::CompletionSink *sink,
                            std::uint64_t sinkCtx,
                            const ssd::HostRequest &req, ssd::IoType type,
                            ssd::Status status, SimTime bufferPhase,
                            SimTime delay)
{
    sim::EventPayload payload;
    payload.requestComplete.sink = sink;
    payload.requestComplete.sinkCtx = sinkCtx;
    payload.requestComplete.id = req.id;
    payload.requestComplete.arrival = req.arrival;
    payload.requestComplete.pages = req.pages;
    payload.requestComplete.type = static_cast<std::uint8_t>(type);
    payload.requestComplete.status = static_cast<std::uint8_t>(status);
    payload.requestComplete.bufferPhase = bufferPhase;
    queue_.schedule(delay, sim::EventKind::RequestComplete, this,
                    payload);
}

void
FtlBase::onEvent(sim::EventKind kind, const sim::EventPayload &payload)
{
    if (kind == sim::EventKind::ReadPieceDone) {
        finishReadPiece(
            static_cast<ReadContext *>(payload.readPiece.ctx));
        return;
    }
    // RequestComplete: a write (or rejected request) reaches the host.
    const auto &rc = payload.requestComplete;
    if (rc.sink == nullptr)
        return;
    ssd::Completion c;
    c.id = rc.id;
    c.type = static_cast<ssd::IoType>(rc.type);
    c.pages = rc.pages;
    c.arrival = rc.arrival;
    c.finish = queue_.now();
    c.status = static_cast<ssd::Status>(rc.status);
    // Writes complete at the DRAM buffer; any extra latency is stall
    // time waiting for flushes (the unattributed remainder).
    c.phases.buffer = rc.bufferPhase;
    static_cast<ssd::CompletionSink *>(rc.sink)->onCompletion(
        c, rc.sinkCtx);
}

// ---------------------------------------------------------------------
// Host read path
// ---------------------------------------------------------------------

void
FtlBase::hostRead(const ssd::HostRequest &req, ssd::CompletionSink *sink,
                  std::uint64_t sinkCtx)
{
    if (req.pages == 0 ||
        req.lba + req.pages > mapping_.logicalPages()) {
        completeWithStatus(req, sink, sinkCtx, ssd::Status::Rejected);
        return;
    }

    ReadContext *ctx = readCtxPool_.acquire();
    ctx->id = req.id;
    ctx->arrival = req.arrival;
    ctx->pages = req.pages;
    ctx->sink = sink;
    ctx->sinkCtx = sinkCtx;
    ctx->remaining = req.pages;
    ctx->phases = ssd::PhaseTimes{};
    ctx->status = ssd::Status::Ok;

    for (std::uint32_t i = 0; i < req.pages; ++i) {
        const Lba lba = req.lba + i;
        ++stats_.hostReadPages;

        // 1) write buffer, 2) in-flight flushes, 3) NAND.
        bool buffered;
        std::optional<Ppa> ppa;
        {
            PROF_SCOPE(prof::Slot::FtlMapping);
            buffered = buffer_.lookup(lba) || inFlight_.contains(lba);
            if (!buffered)
                ppa = mapping_.lookup(lba);
        }
        if (buffered) {
            ++stats_.bufferHits;
            ctx->phases.buffer += config_.bufferReadTime;
            sim::EventPayload payload;
            payload.readPiece.ctx = ctx;
            queue_.schedule(config_.bufferReadTime,
                            sim::EventKind::ReadPieceDone, this,
                            payload);
            continue;
        }
        if (!ppa) {
            ++stats_.unmappedReads;
            ctx->phases.buffer += config_.bufferReadTime;
            sim::EventPayload payload;
            payload.readPiece.ctx = ctx;
            queue_.schedule(config_.bufferReadTime,
                            sim::EventKind::ReadPieceDone, this,
                            payload);
            continue;
        }

        const auto [chip, addr] = decodePpa(*ppa);
        ssd::NandOp op;
        op.kind = ssd::NandOp::Kind::Read;
        op.page = addr;
        op.readShiftMv = readShiftFor(chip, addr);
        op.readSoftHint = readSoftHint(chip, addr);
        op.highPriority = true;
        op.listener = this;
        op.ctx = reinterpret_cast<std::uint64_t>(ctx);
        op.chip = chip;
        ++stats_.nandReads;
        chips_[chip].enqueue(op);
    }
}

void
FtlBase::finishReadPiece(ReadContext *ctx)
{
    if (--ctx->remaining != 0)
        return;
    // Copy out and recycle before notifying: the sink may submit new
    // reads that reuse this context.
    ssd::Completion c;
    c.id = ctx->id;
    c.type = ssd::IoType::Read;
    c.pages = ctx->pages;
    c.arrival = ctx->arrival;
    c.finish = queue_.now();
    c.status = ctx->status;
    c.phases = ctx->phases;
    ssd::CompletionSink *sink = ctx->sink;
    const std::uint64_t sinkCtx = ctx->sinkCtx;
    readCtxPool_.release(ctx);
    if (sink != nullptr)
        sink->onCompletion(c, sinkCtx);
}

void
FtlBase::onNandOpComplete(const ssd::NandOp &op,
                          const ssd::NandOpResult &result)
{
    if (op.kind == ssd::NandOp::Kind::Read) {
        auto *ctx = reinterpret_cast<ReadContext *>(op.ctx);
        stats_.readRetries +=
            static_cast<std::uint64_t>(result.read.numRetries);
        if (result.read.uncorrectable) {
            // Retry walk exhausted and the soft LDPC fallthrough
            // failed too: this page's data is lost.
            ++stats_.uncorrectableReads;
            ctx->status = ssd::worseStatus(ctx->status,
                                           ssd::Status::Uncorrectable);
        }
        ctx->phases.bus += result.busTime;
        ctx->phases.die += result.dieTime - result.read.tRetry;
        ctx->phases.retry += result.read.tRetry;
        onReadComplete(op.chip, op.page, result.read);
        finishReadPiece(ctx);
        return;
    }
    handleProgramComplete(reinterpret_cast<FlushBatch *>(op.ctx),
                          result);
}

// ---------------------------------------------------------------------
// Host write path
// ---------------------------------------------------------------------

void
FtlBase::hostWrite(const ssd::HostRequest &req,
                   ssd::CompletionSink *sink, std::uint64_t sinkCtx)
{
    if (req.pages == 0 ||
        req.lba + req.pages > mapping_.logicalPages()) {
        completeWithStatus(req, sink, sinkCtx, ssd::Status::Rejected);
        return;
    }
    if (readOnly_) {
        // Spare blocks are exhausted: fail fast instead of accepting
        // data the flush path may no longer be able to place.
        ++stats_.readOnlyRejects;
        completeWithStatus(req, sink, sinkCtx, ssd::Status::ReadOnly);
        return;
    }
    StalledWrite *write = stalledPool_.acquire();
    write->req = req;
    write->sink = sink;
    write->sinkCtx = sinkCtx;
    write->nextPage = 0;
    processWrite(write);
    maybeFlush();
}

void
FtlBase::processWrite(StalledWrite *write)
{
    while (write->nextPage < write->req.pages) {
        const Lba lba = write->req.lba + write->nextPage;
        const std::uint64_t version = nextVersion();
        const std::uint64_t token = tokenFor(lba, version);
        if (!buffer_.insert(lba, token, version)) {
            // Buffer full: park the request; a flush completion will
            // resume it. The unissued version number is harmless.
            ++stats_.writeStalls;
            if (trace_ != nullptr)
                trace_->instant(
                    traceTrack_, "write_stall", queue_.now(),
                    {{"lba", static_cast<std::int64_t>(lba)},
                     {"stalled_requests",
                      static_cast<std::int64_t>(stalled_.size() + 1)}});
            stalled_.push_back(write);
            return;
        }
        latestIssued_[lba] = version;
        ++stats_.hostWritePages;
        ++write->nextPage;
    }
    completeWrite(write);
}

void
FtlBase::completeWrite(StalledWrite *write)
{
    scheduleCompletion(write->sink, write->sinkCtx, write->req,
                       ssd::IoType::Write, ssd::Status::Ok,
                       config_.bufferReadTime, config_.bufferReadTime);
    stalledPool_.release(write);
}

void
FtlBase::completeWithStatus(const ssd::HostRequest &req,
                            ssd::CompletionSink *sink,
                            std::uint64_t sinkCtx, ssd::Status status)
{
    if (status == ssd::Status::Rejected)
        ++stats_.rejectedRequests;
    scheduleCompletion(sink, sinkCtx, req, req.type, status, 0, 0);
}

void
FtlBase::retryStalledWrites()
{
    while (!stalled_.empty()) {
        StalledWrite *write = stalled_.front();
        stalled_.pop_front();
        const std::uint32_t before = write->nextPage;
        processWrite(write);
        if (write->nextPage < write->req.pages) {
            // Re-stalled: processWrite already re-queued it (at the
            // back). Restore FIFO fairness by moving it to the front.
            if (!stalled_.empty() && stalled_.back() == write) {
                stalled_.pop_back();
                stalled_.push_front(write);
            }
            if (write->nextPage == before)
                break;  // no progress possible until the next flush
        }
    }
}

// ---------------------------------------------------------------------
// Flush path
// ---------------------------------------------------------------------

void
FtlBase::flushAll()
{
    drainMode_ = true;
    maybeFlush();
}

void
FtlBase::maybeFlush()
{
    for (;;) {
        const bool fullBatch = buffer_.size() >= geom_.pagesPerWl;
        const bool drainBatch = drainMode_ && !buffer_.empty();
        if (!fullBatch && !drainBatch)
            break;

        // Find a chip without an outstanding host flush. Chips that
        // are urgently low on free blocks are skipped (backpressure):
        // their remaining blocks are reserved for GC to make progress.
        std::uint32_t chip = chips_.size();
        for (std::uint32_t i = 0; i < chips_.size(); ++i) {
            const std::uint32_t c =
                (flushCursor_ + i) % chips_.size();
            if (blockMgrs_[c].freeCount() <= config_.gcUrgentWatermark) {
                // Hold host flushes back only while GC can actually
                // make progress there; if nothing is collectable
                // (e.g. a pure sequential fill has no invalid pages)
                // the flush must proceed or the device deadlocks.
                gcEngine_->maybeStart(c);
                if (gcEngine_->active(c))
                    continue;
            }
            if (outstandingFlush_[c] == 0) {
                chip = c;
                break;
            }
        }
        if (chip == chips_.size())
            break;
        flushCursor_ = (chip + 1) % chips_.size();

        popScratch_.clear();
        buffer_.popOldest(geom_.pagesPerWl, popScratch_);
        FlushBatch *batch = batchPool_.acquire();
        batch->entries.clear();
        batch->chip = chip;
        batch->forGc = false;
        for (const auto &e : popScratch_) {
            batch->entries.push_back(
                FlushEntry{e.lba, e.token, e.version, kInvalidPpa});
            bool inserted = false;
            InFlightWrite &w = inFlight_.insertOrGet(e.lba, &inserted);
            if (inserted || w.version < e.version)
                w = InFlightWrite{e.token, e.version};
        }
        while (batch->entries.size() < geom_.pagesPerWl)
            batch->entries.push_back(FlushEntry{});  // padding (drain)

        dispatchFlush(batch);
    }
    if (drainMode_ && buffer_.empty())
        drainMode_ = false;
}

void
FtlBase::dispatchFlush(FlushBatch *batch)
{
    const std::uint32_t chip = batch->chip;
    // Backstop against cascading retirement under fault injection:
    // with the free list empty, a host-path dispatch could force the
    // allocator into its fatal path. Park the batch and retry when GC
    // returns a block; the data stays readable via inFlight_ / the
    // source block meanwhile. GC batches are never parked — GC is a
    // net producer of free blocks and dropping its relocations would
    // erase live data. Unreachable without faults (the watermarks
    // keep the free list stocked).
    if (!batch->forGc && config_.chip.faults.enabled &&
        blockMgrs_[chip].freeCount() == 0) {
        ++stats_.flushDeferrals;
        if (trace_ != nullptr)
            trace_->instant(traceTrack_, "flush_deferred",
                            queue_.now(), {{"chip", chip}});
        deferredFlushes_[chip].push_back(batch);
        return;
    }

    const double mu = buffer_.utilization();
    batch->choice = chooseProgramTarget(chip, batch->forGc, mu);

    if (batch->choice.isLeader)
        ++stats_.leaderPrograms;
    else
        ++stats_.followerPrograms;

    batch->tokens.clear();
    for (const auto &e : batch->entries)
        batch->tokens.push_back(e.token);

    if (batch->forGc)
        gcEngine_->noteProgramIssued(chip);
    else
        ++outstandingFlush_[chip];

    ssd::NandOp op;
    op.kind = ssd::NandOp::Kind::Program;
    op.wl = batch->choice.wl;
    op.cmd = batch->choice.cmd;
    op.tokens = batch->tokens.data();
    op.tokenCount = static_cast<std::uint32_t>(batch->tokens.size());
    op.tagLeader = batch->choice.isLeader;
    op.tagGc = batch->forGc;
    op.listener = this;
    op.ctx = reinterpret_cast<std::uint64_t>(batch);
    op.chip = chip;
    chips_[chip].enqueue(op);
}

void
FtlBase::handleProgramComplete(FlushBatch *batch,
                               const ssd::NandOpResult &result)
{
    const std::uint32_t chip = batch->chip;
    const bool forGc = batch->forGc;
    const ProgramChoice choice = batch->choice;
    auto &mgr = blockMgrs_[chip];
    const bool targetRetired = mgr.info(choice.wl.block).isBad;
    if (result.program.failed || targetRetired) {
        // Program-status fail (or a program that was already queued
        // when its target block got retired): the WL holds no durable
        // data. Retire the block on a fresh failure, then replay the
        // whole batch through the flush path — chooseProgramTarget
        // will steer it to a fresh block now that the policy has
        // abandoned its write point on the retired one.
        if (forGc)
            gcEngine_->noteProgramComplete(chip, result.program.tProg);
        else
            --outstandingFlush_[chip];
        if (result.program.failed) {
            ++stats_.programFailures;
            if (!targetRetired)
                retireBlock(chip, choice.wl.block);
        }
        ++stats_.flushReplays;
        if (trace_ != nullptr)
            trace_->instant(traceTrack_, "flush_replay", queue_.now(),
                            {{"chip", chip},
                             {"block", choice.wl.block}});
        dispatchFlush(batch);  // reuses the node and its entries
        gcEngine_->maybeStart(chip);
        return;
    }

    stats_.programLatencySum += result.program.tProg;
    if (forGc)
        ++stats_.gcPrograms;
    else
        ++stats_.hostPrograms;

    mgr.noteWlProgrammed(choice.wl.block);
    if (mgr.info(choice.wl.block).programmedWls == geom_.wlsPerBlock())
        mgr.close(choice.wl.block);

    if (forGc)
        gcEngine_->noteProgramComplete(chip, result.program.tProg);
    else
        --outstandingFlush_[chip];

    // Safety check (Sec. 4.1.4): a follower whose program deviated from
    // the leader-derived expectation is re-programmed on the next WL.
    if (!choice.monitor &&
        safetyCheck(chip, choice, result.program)) {
        ++stats_.safetyReprograms;
        if (trace_ != nullptr)
            trace_->instant(traceTrack_, "safety_reprogram",
                            queue_.now(),
                            {{"chip", chip},
                             {"block", choice.wl.block},
                             {"layer", choice.wl.layer}});
        dispatchFlush(batch);
        gcEngine_->maybeStart(chip);
        return;
    }

    applyMappings(chip, choice.wl, batch->entries);
    batchPool_.release(batch);
    onProgramComplete(chip, choice, result.program);

    if (forGc) {
        gcEngine_->resume(chip);
    } else {
        retryStalledWrites();
    }
    gcEngine_->maybeStart(chip);
    maybeFlush();
}

void
FtlBase::applyMappings(std::uint32_t chip, const nand::WlAddr &wl,
                       const std::vector<FlushEntry> &batch)
{
    PROF_SCOPE(prof::Slot::FtlMapping);
    auto &mgr = blockMgrs_[chip];
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
        const auto &entry = batch[i];
        if (entry.lba == kInvalidLba)
            continue;  // padding page stays invalid

        const nand::PageAddr addr{wl.block, wl.layer, wl.wl, i};
        const Ppa ppa = encodePpa(chip, addr);

        bool current;
        if (entry.sourcePpa != kInvalidPpa) {
            // GC relocation: still current iff the mapping has not
            // moved away from the source since the scan.
            current = mapping_.lookup(entry.lba) == entry.sourcePpa;
        } else {
            // Host flush: current iff no newer version reached flash.
            current = entry.version > mapping_.mappedVersion(entry.lba);
        }

        if (current) {
            const std::optional<Ppa> old =
                mapping_.map(entry.lba, ppa, entry.version);
            if (old) {
                const auto [oldChip, oldAddr] = decodePpa(*old);
                blockMgrs_[oldChip].markInvalid(oldAddr.block,
                                                pageInBlock(oldAddr));
            }
            mgr.markValid(wl.block, pageInBlock(addr), entry.lba);
        }
        // else: the relocated/flushed copy is already stale; the page
        // simply stays invalid and will be reclaimed by GC.

        if (entry.sourcePpa == kInvalidPpa) {
            if (const InFlightWrite *w = inFlight_.find(entry.lba);
                w != nullptr && w->version == entry.version) {
                inFlight_.erase(entry.lba);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Failure domain: bad-block retirement and read-only degradation
// ---------------------------------------------------------------------

void
FtlBase::retireBlock(std::uint32_t chip, std::uint32_t block)
{
    auto &mgr = blockMgrs_[chip];
    mgr.retire(block);
    ++stats_.retiredBlocks;
    if (trace_ != nullptr)
        trace_->instant(traceTrack_, "block_retired", queue_.now(),
                        {{"chip", chip}, {"block", block}});
    onBlockRetired(chip, block);

    // Relocate the pages that were already durable in the retired
    // block, GC-style (sourcePpa guards against racing host writes).
    // The NAND keeps the data of its intact WLs, so reads served
    // before a relocation lands still return correct tokens; as each
    // relocated copy maps in, the old page is invalidated. Local
    // vectors are fine here: this path only runs under fault
    // injection, never in steady state.
    std::vector<FlushEntry> pending;
    const auto &info = mgr.info(block);
    for (std::uint32_t i = 0; i < geom_.pagesPerBlock(); ++i) {
        if (!info.valid[i])
            continue;
        const Lba lba = info.p2l[i];
        const nand::PageAddr addr = codec_.decode(
            static_cast<std::uint64_t>(block) * geom_.pagesPerBlock() +
            i);
        FlushEntry entry;
        entry.lba = lba;
        entry.token = chips_[chip].chip().pageToken(addr);
        entry.version = mapping_.mappedVersion(lba);
        entry.sourcePpa = encodePpa(chip, addr);
        pending.push_back(entry);
        ++stats_.badBlockRelocations;
    }
    for (std::size_t off = 0; off < pending.size();
         off += geom_.pagesPerWl) {
        const std::size_t end =
            std::min<std::size_t>(pending.size(), off + geom_.pagesPerWl);
        FlushBatch *batch = batchPool_.acquire();
        batch->entries.assign(pending.begin() + static_cast<long>(off),
                              pending.begin() + static_cast<long>(end));
        while (batch->entries.size() < geom_.pagesPerWl)
            batch->entries.push_back(FlushEntry{});
        batch->chip = chip;
        batch->forGc = false;
        dispatchFlush(batch);
    }

    checkReadOnly(chip);
}

void
FtlBase::checkReadOnly(std::uint32_t chip)
{
    if (readOnly_)
        return;
    // Every retirement permanently shrinks the chip's spare pool. Once
    // it can no longer sustain the construction-time floor (active
    // write points + GC watermarks), new writes can no longer be
    // guaranteed a landing block: degrade to read-only *before* the
    // allocator runs dry so in-flight flushes and relocations still
    // have room to complete.
    const std::uint64_t retired = blockMgrs_[chip].retiredCount();
    if (sparePerChip_ < retired + config_.gcHighWatermark + 3) {
        readOnly_ = true;
        if (trace_ != nullptr)
            trace_->instant(traceTrack_, "read_only", queue_.now(),
                            {{"chip", chip},
                             {"retired",
                              static_cast<std::int64_t>(retired)}});
    }
}

// ---------------------------------------------------------------------
// GcHost: services the GC engine (src/ftl/gc.cc) calls back into
// ---------------------------------------------------------------------

void
FtlBase::gcProgram(std::uint32_t chip,
                   const std::vector<FlushEntry> &batch)
{
    FlushBatch *b = batchPool_.acquire();
    b->entries.assign(batch.begin(), batch.end());
    b->chip = chip;
    b->forGc = true;
    dispatchFlush(b);
}

MilliVolt
FtlBase::gcReadShift(std::uint32_t chip, const nand::PageAddr &addr)
{
    return readShiftFor(chip, addr);
}

bool
FtlBase::gcReadSoftHint(std::uint32_t chip, const nand::PageAddr &addr)
{
    return readSoftHint(chip, addr);
}

void
FtlBase::gcBlockErased(std::uint32_t chip, std::uint32_t block)
{
    onBlockErased(chip, block);
    retryDeferredFlushes(chip);
}

void
FtlBase::retryDeferredFlushes(std::uint32_t chip)
{
    while (!deferredFlushes_[chip].empty() &&
           blockMgrs_[chip].freeCount() > 0) {
        FlushBatch *batch = deferredFlushes_[chip].front();
        deferredFlushes_[chip].pop_front();
        dispatchFlush(batch);
    }
}

void
FtlBase::gcBlockRetired(std::uint32_t chip, std::uint32_t block)
{
    onBlockRetired(chip, block);
    checkReadOnly(chip);
}

void
FtlBase::gcBackpressureReleased()
{
    maybeFlush();
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

std::optional<std::uint64_t>
FtlBase::peek(Lba lba) const
{
    if (lba >= mapping_.logicalPages())
        return std::nullopt;
    if (auto hit = buffer_.lookup(lba))
        return hit;
    if (const InFlightWrite *w = inFlight_.find(lba))
        return w->token;
    const std::optional<Ppa> ppa = mapping_.lookup(lba);
    if (!ppa)
        return std::nullopt;
    const auto [chip, addr] = decodePpa(*ppa);
    return chips_[chip].chip().pageToken(addr);
}

void
FtlBase::checkConsistency() const
{
    // Every mapped LBA must point at a valid page that maps back.
    std::uint64_t mapped = 0;
    for (Lba lba = 0; lba < mapping_.logicalPages(); ++lba) {
        const std::optional<Ppa> ppa = mapping_.lookup(lba);
        if (!ppa)
            continue;
        ++mapped;
        const auto [chip, addr] = decodePpa(*ppa);
        const auto &info = blockMgrs_[chip].info(addr.block);
        const std::uint32_t idx = pageInBlock(addr);
        if (!info.valid[idx])
            panic("consistency: LBA %llu maps to invalid page",
                  static_cast<unsigned long long>(lba));
        if (info.p2l[idx] != lba)
            panic("consistency: P2L mismatch for LBA %llu",
                  static_cast<unsigned long long>(lba));
    }
    std::uint64_t valid = 0;
    for (const auto &mgr : blockMgrs_)
        valid += mgr.totalValid();
    if (valid != mapped)
        panic("consistency: %llu valid pages vs %llu mapped LBAs",
              static_cast<unsigned long long>(valid),
              static_cast<unsigned long long>(mapped));

    // The FTL's wear bookkeeping must track the chips' runtime erase
    // counts — the low half of the aging epoch that gates cached
    // leader parameters (CubeFtl) and model terms (ErrorTermCache).
    // The chip counter leads by at most one: it increments when the
    // die executes the erase, the BlockManager's on the completion
    // event (release). Retired blocks are exempt: a failed erase still
    // bumps the chip counter, but the block never returns through
    // release().
    for (std::uint32_t chip = 0; chip < chips_.size(); ++chip) {
        const auto &mgr = blockMgrs_[chip];
        const auto &model = chips_[chip].chip();
        for (std::uint32_t b = 0; b < geometry().blocksPerChip; ++b) {
            const BlockInfo &info = mgr.info(b);
            if (info.isBad)
                continue;
            const PeCycles onChip = model.eraseCount(b);
            if (info.eraseCount != onChip &&
                info.eraseCount + 1 != onChip)
                panic("consistency: chip %u block %u erase count %u "
                      "(FTL) vs %u (chip)",
                      chip, b, info.eraseCount, onChip);
        }
    }
}

}  // namespace cubessd::ftl
