/**
 * @file
 * pageFTL: the paper's baseline — a page-level mapping FTL with no
 * 3D-NAND-specific optimization. Every WL is programmed with default
 * parameters in horizontal-first order, and every read starts the
 * retry search from the chip-default references.
 */

#ifndef CUBESSD_FTL_PAGE_FTL_H
#define CUBESSD_FTL_PAGE_FTL_H

#include <vector>

#include "src/ftl/ftl_base.h"
#include "src/ftl/program_order.h"

namespace cubessd::ftl {

class PageFtl : public FtlBase
{
  public:
    PageFtl(const ssd::SsdConfig &config,
            std::vector<ssd::ChipUnit> &chips, sim::EventQueue &queue);

  protected:
    ProgramChoice chooseProgramTarget(std::uint32_t chip, bool forGc,
                                      double mu) override;

    /** Abandon any write point open on a retired block. */
    void onBlockRetired(std::uint32_t chip,
                        std::uint32_t block) override;

    /**
     * Program parameters for the next WL; the default implementation
     * returns the nominal command. VertFtl overrides this with its
     * static per-layer table.
     */
    virtual nand::ProgramCommand
    commandFor(std::uint32_t chip, const nand::WlAddr &wl)
    {
        (void)chip;
        (void)wl;
        return nand::ProgramCommand{};
    }

  private:
    /** Sequential write point over a static program sequence. */
    struct WritePoint
    {
        bool open = false;
        std::uint32_t block = 0;
        std::uint32_t seqIndex = 0;
    };

    nand::WlAddr nextWl(std::uint32_t chip, WritePoint &wp);

    /** Layer/WL pattern shared by all blocks (block id substituted). */
    std::vector<nand::WlAddr> pattern_;
    std::vector<WritePoint> hostWp_;  ///< per chip
    std::vector<WritePoint> gcWp_;    ///< per chip
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_PAGE_FTL_H
