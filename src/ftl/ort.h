/**
 * @file
 * Optimal read-reference-voltage table (ORT, paper Sec. 5.1).
 *
 * One compact entry per physical h-layer in the SSD holds the most
 * recent read-reference shift that decoded cleanly on that h-layer.
 * Thanks to horizontal similarity, a read to *any* WL of the h-layer
 * can start from this shift instead of the chip default, eliminating
 * most retries (Sec. 4.2 / Fig. 14).
 *
 * Storage is 2 bytes per h-layer — the paper's space-overhead claim
 * (~0.001% of capacity; 10 MB for a 1 TB SSD) — exposed via bytes().
 */

#ifndef CUBESSD_FTL_ORT_H
#define CUBESSD_FTL_ORT_H

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace cubessd::ftl {

class Ort
{
  public:
    Ort(std::uint32_t chips, std::uint32_t blocksPerChip,
        std::uint32_t layersPerBlock);

    /** Most recent good shift for the h-layer; 0 = chip default. */
    MilliVolt lookup(std::uint32_t chip, std::uint32_t block,
                     std::uint32_t layer) const;

    /** Record the shift that finally decoded on this h-layer. */
    void update(std::uint32_t chip, std::uint32_t block,
                std::uint32_t layer, MilliVolt shiftMv);

    /** Forget one block's entries (after erase). */
    void resetBlock(std::uint32_t chip, std::uint32_t block);

    /** Memory footprint of the table (the paper's overhead story). */
    std::size_t bytes() const { return table_.size() * sizeof(table_[0]); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t updates() const { return updates_; }

  private:
    std::size_t index(std::uint32_t chip, std::uint32_t block,
                      std::uint32_t layer) const;

    std::uint32_t blocksPerChip_;
    std::uint32_t layersPerBlock_;
    std::vector<std::int16_t> table_;
    mutable std::uint64_t hits_ = 0;
    std::uint64_t updates_ = 0;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_ORT_H
