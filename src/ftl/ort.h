/**
 * @file
 * Optimal read-reference-voltage table (ORT, paper Sec. 5.1).
 *
 * One compact entry per physical h-layer in the SSD holds the most
 * recent read-reference shift that decoded cleanly on that h-layer.
 * Thanks to horizontal similarity, a read to *any* WL of the h-layer
 * can start from this shift instead of the chip default, eliminating
 * most retries (Sec. 4.2 / Fig. 14).
 *
 * Storage is 2 bytes per h-layer — the paper's space-overhead claim
 * (~0.001% of capacity; 10 MB for a 1 TB SSD) — exposed via bytes().
 * A shift of 0 mV is a legitimate cached value (the retry walk can
 * calibrate back to the chip default), so entry presence is tracked
 * by an explicit validity bit rather than by a zero sentinel; in a
 * real controller the bit lives in-band, so bytes() stays at 2 per
 * h-layer.
 *
 * Stats-counter convention (shared with Channel, ChipUnit, and
 * NandChip): hit/update counters are plain members mutated only from
 * non-const member functions — lookup() counts a hit or a miss and is
 * therefore non-const; observers read the counters through const
 * accessors. No `mutable` state.
 */

#ifndef CUBESSD_FTL_ORT_H
#define CUBESSD_FTL_ORT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace cubessd::ftl {

class Ort
{
  public:
    Ort(std::uint32_t chips, std::uint32_t blocksPerChip,
        std::uint32_t layersPerBlock);

    /**
     * Most recent good shift for the h-layer, or std::nullopt when
     * the h-layer has no cached entry (chip default applies). A
     * cached 0 mV shift is a valid entry and counts as a hit.
     */
    std::optional<MilliVolt> lookup(std::uint32_t chip,
                                    std::uint32_t block,
                                    std::uint32_t layer);

    /** Entry presence without touching hit/miss accounting (for
     *  secondary consumers such as the ECC-mode hint, so one host
     *  read counts exactly one hit or miss). */
    bool
    contains(std::uint32_t chip, std::uint32_t block,
             std::uint32_t layer) const
    {
        return valid_[index(chip, block, layer)];
    }

    /** Record the shift that finally decoded on this h-layer. */
    void update(std::uint32_t chip, std::uint32_t block,
                std::uint32_t layer, MilliVolt shiftMv);

    /** Forget one block's entries (after erase). */
    void resetBlock(std::uint32_t chip, std::uint32_t block);

    /** Memory footprint of the table (the paper's overhead story). */
    std::size_t bytes() const { return table_.size() * sizeof(table_[0]); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t updates() const { return updates_; }

    /** @name Per-h-layer hit/miss accounting (report table) @{ */
    std::uint32_t layersPerBlock() const { return layersPerBlock_; }
    std::uint64_t layerHits(std::uint32_t layer) const
    {
        return layerHits_.at(layer);
    }
    std::uint64_t layerMisses(std::uint32_t layer) const
    {
        return layerMisses_.at(layer);
    }
    /** @} */

  private:
    std::size_t index(std::uint32_t chip, std::uint32_t block,
                      std::uint32_t layer) const;

    std::uint32_t blocksPerChip_;
    std::uint32_t layersPerBlock_;
    std::vector<std::int16_t> table_;
    std::vector<bool> valid_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t updates_ = 0;
    std::vector<std::uint64_t> layerHits_;
    std::vector<std::uint64_t> layerMisses_;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_ORT_H
