#include "src/ftl/page_ftl.h"

namespace cubessd::ftl {

PageFtl::PageFtl(const ssd::SsdConfig &config,
                 std::vector<ssd::ChipUnit> &chips,
                 sim::EventQueue &queue)
    : FtlBase(config, chips, queue),
      pattern_(programSequence(ProgramOrderKind::HorizontalFirst,
                               geometry(), 0)),
      hostWp_(chipCount()),
      gcWp_(chipCount())
{
}

nand::WlAddr
PageFtl::nextWl(std::uint32_t chip, WritePoint &wp)
{
    if (!wp.open || wp.seqIndex >= pattern_.size()) {
        wp.block = allocateBlock(chip);
        wp.seqIndex = 0;
        wp.open = true;
    }
    nand::WlAddr wl = pattern_[wp.seqIndex++];
    wl.block = wp.block;
    return wl;
}

void
PageFtl::onBlockRetired(std::uint32_t chip, std::uint32_t block)
{
    // The next nextWl() on an abandoned point allocates a fresh block.
    if (hostWp_[chip].open && hostWp_[chip].block == block)
        hostWp_[chip].open = false;
    if (gcWp_[chip].open && gcWp_[chip].block == block)
        gcWp_[chip].open = false;
}

ProgramChoice
PageFtl::chooseProgramTarget(std::uint32_t chip, bool forGc, double mu)
{
    (void)mu;
    ProgramChoice choice;
    choice.wl = nextWl(chip, forGc ? gcWp_[chip] : hostWp_[chip]);
    choice.cmd = commandFor(chip, choice.wl);
    choice.isLeader = isLeaderWl(choice.wl);
    choice.monitor = true;  // PS-unaware: nothing is derived or reused
    return choice;
}

}  // namespace cubessd::ftl
