#include "src/ftl/ort.h"

#include <limits>

#include "src/common/logging.h"

namespace cubessd::ftl {

Ort::Ort(std::uint32_t chips, std::uint32_t blocksPerChip,
         std::uint32_t layersPerBlock)
    : blocksPerChip_(blocksPerChip), layersPerBlock_(layersPerBlock)
{
    const std::size_t entries = static_cast<std::size_t>(chips) *
                                blocksPerChip * layersPerBlock;
    table_.assign(entries, 0);
    valid_.assign(entries, false);
    layerHits_.assign(layersPerBlock, 0);
    layerMisses_.assign(layersPerBlock, 0);
}

std::size_t
Ort::index(std::uint32_t chip, std::uint32_t block,
           std::uint32_t layer) const
{
    const std::size_t idx =
        (static_cast<std::size_t>(chip) * blocksPerChip_ + block) *
            layersPerBlock_ + layer;
    if (idx >= table_.size())
        panic("Ort: index out of range (chip %u block %u layer %u)",
              chip, block, layer);
    return idx;
}

std::optional<MilliVolt>
Ort::lookup(std::uint32_t chip, std::uint32_t block, std::uint32_t layer)
{
    const std::size_t idx = index(chip, block, layer);
    if (!valid_[idx]) {
        ++misses_;
        ++layerMisses_[layer];
        return std::nullopt;
    }
    ++hits_;
    ++layerHits_[layer];
    return table_[idx];
}

void
Ort::update(std::uint32_t chip, std::uint32_t block, std::uint32_t layer,
            MilliVolt shiftMv)
{
    const auto clamped = std::max<MilliVolt>(
        std::numeric_limits<std::int16_t>::min(),
        std::min<MilliVolt>(std::numeric_limits<std::int16_t>::max(),
                            shiftMv));
    const std::size_t idx = index(chip, block, layer);
    table_[idx] = static_cast<std::int16_t>(clamped);
    valid_[idx] = true;
    ++updates_;
}

void
Ort::resetBlock(std::uint32_t chip, std::uint32_t block)
{
    for (std::uint32_t l = 0; l < layersPerBlock_; ++l) {
        const std::size_t idx = index(chip, block, l);
        table_[idx] = 0;
        valid_[idx] = false;
    }
}

}  // namespace cubessd::ftl
