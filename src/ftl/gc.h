/**
 * @file
 * Standalone garbage-collection subsystem.
 *
 * GcEngine owns the per-chip GC state machine that used to live in
 * FtlBase: victim scan reads, WL-sized relocation programs, and the
 * final erase, with hysteresis between the low and high free-block
 * watermarks of SsdConfig. Victim selection is delegated to a
 * GcPolicy (greedy by default) so alternative policies — e.g.
 * PS-aware selection that prefers victims on cheap h-layers — can be
 * swapped in without touching the engine.
 *
 * The engine drives NAND directly for scans and erases but routes
 * relocation programs back through the FTL's flush path (GcHost), so
 * program-target policy (leader/follower steering, safety checks)
 * applies to GC traffic exactly as to host traffic.
 */

#ifndef CUBESSD_FTL_GC_H
#define CUBESSD_FTL_GC_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/types.h"
#include "src/ftl/block_manager.h"
#include "src/ftl/ftl_stats.h"
#include "src/ftl/mapping.h"
#include "src/nand/geometry.h"
#include "src/ssd/chip_unit.h"
#include "src/ssd/config.h"

namespace cubessd::trace {
class TraceSession;
}

namespace cubessd::ftl {

/** One page travelling from the write buffer or a GC scan to NAND. */
struct FlushEntry
{
    Lba lba = kInvalidLba;          ///< kInvalidLba = padding
    std::uint64_t token = 0;
    std::uint64_t version = 0;
    Ppa sourcePpa = kInvalidPpa;    ///< set for GC relocations
};

/** Cumulative counters of the GC subsystem. */
struct GcStats
{
    std::uint64_t collections = 0;    ///< victims picked
    std::uint64_t relocatedPages = 0; ///< valid pages moved
    std::uint64_t erases = 0;         ///< victims erased
    std::uint64_t scanReads = 0;      ///< NAND reads issued by scans
    std::uint64_t programs = 0;       ///< WL programs issued for GC
    SimTime programLatencySum = 0;    ///< device tPROG over GC programs

    /** Sum another device's counters in (multi-seed sweep merge). */
    void
    merge(const GcStats &o)
    {
        collections += o.collections;
        relocatedPages += o.relocatedPages;
        erases += o.erases;
        scanReads += o.scanReads;
        programs += o.programs;
        programLatencySum += o.programLatencySum;
    }

    /** Mean GC-induced WL program latency in microseconds. */
    double
    avgProgramLatencyUs() const
    {
        return programs == 0
            ? 0.0
            : static_cast<double>(programLatencySum) / 1000.0 /
                  static_cast<double>(programs);
    }
};

/** Victim-selection policy. */
class GcPolicy
{
  public:
    virtual ~GcPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the next victim block on one chip, or nullopt if no
     * profitable victim exists.
     */
    virtual std::optional<std::uint32_t>
    pickVictim(const BlockManager &mgr) = 0;
};

/** Default policy: the closed block with the fewest valid pages. */
class GreedyGcPolicy final : public GcPolicy
{
  public:
    const char *name() const override { return "greedy"; }
    std::optional<std::uint32_t>
    pickVictim(const BlockManager &mgr) override
    {
        return mgr.pickVictim();
    }
};

/** Instantiate the policy selected in SsdConfig. */
std::unique_ptr<GcPolicy> makeGcPolicy(ssd::GcPolicyKind kind);

/**
 * Services the GC engine needs from the surrounding FTL. Implemented
 * by FtlBase; kept abstract so the engine is testable and reusable.
 */
class GcHost
{
  public:
    virtual ~GcHost() = default;

    /** Program one WL of relocated pages through the flush path (the
     *  host copies the batch; the reference is valid only for the
     *  duration of the call). */
    virtual void gcProgram(std::uint32_t chip,
                           const std::vector<FlushEntry> &batch) = 0;

    /** Read-reference shift for a scan read (policy hook). */
    virtual MilliVolt gcReadShift(std::uint32_t chip,
                                  const nand::PageAddr &addr) = 0;

    /** Soft-decode hint for a scan read (policy hook). */
    virtual bool gcReadSoftHint(std::uint32_t chip,
                                const nand::PageAddr &addr) = 0;

    /** A victim finished erasing and was released to the free list. */
    virtual void gcBlockErased(std::uint32_t chip,
                               std::uint32_t block) = 0;

    /**
     * A victim's erase reported status fail and the block was retired
     * to the bad-block list instead of returning to the free pool.
     */
    virtual void gcBlockRetired(std::uint32_t chip,
                                std::uint32_t block) = 0;

    /** Free blocks were reclaimed: retry any held-back host flushes. */
    virtual void gcBackpressureReleased() = 0;
};

class GcEngine final : public ssd::NandOpListener
{
  public:
    /**
     * @param mirror  FtlStats whose GC counters (gcCollections,
     *                gcRelocatedPages, erases, nandReads, readRetries)
     *                the engine keeps in sync with its own GcStats.
     */
    GcEngine(const ssd::SsdConfig &config,
             std::vector<ssd::ChipUnit> &chips,
             std::vector<BlockManager> &blockMgrs, MappingTable &mapping,
             GcHost &host, std::unique_ptr<GcPolicy> policy,
             FtlStats &mirror);

    GcEngine(const GcEngine &) = delete;
    GcEngine &operator=(const GcEngine &) = delete;

    /** Start collecting on `chip` if below the low watermark. */
    void maybeStart(std::uint32_t chip);

    /** Is a collection in progress on `chip`? */
    bool active(std::uint32_t chip) const { return gc_.at(chip).active; }

    /** A relocation program was handed to the chip queue. */
    void noteProgramIssued(std::uint32_t chip);

    /**
     * A relocation program completed on the die (called before the
     * FTL's safety-check/mapping phase so a safety re-program can
     * re-issue the batch).
     */
    void noteProgramComplete(std::uint32_t chip, SimTime tProg);

    /** Resume the state machine after a relocation program applied. */
    void resume(std::uint32_t chip);

    const GcStats &stats() const { return stats_; }
    const GcPolicy &policy() const { return *policy_; }

    /**
     * Record each collection as a begin/end span on the chip's GC
     * track (one entry per chip in `tracks`), timestamped off `clock`
     * (observation only). At most one collection runs per chip, so
     * per-track nesting is trivially respected.
     */
    void setTrace(trace::TraceSession *session,
                  std::vector<std::uint32_t> tracks,
                  const sim::EventQueue *clock);

    /** ssd::NandOpListener: scan reads and victim erases complete
     *  here (op.ctx carries the page index for reads). */
    void onNandOpComplete(const ssd::NandOp &op,
                          const ssd::NandOpResult &result) override;

  private:
    /** Per-chip GC progress. */
    struct ChipState
    {
        bool active = false;
        std::uint32_t victim = 0;
        std::uint32_t scanIndex = 0;     ///< next page slot to scan
        std::uint32_t outstandingReads = 0;
        std::uint32_t outstandingPrograms = 0;
        bool scanDone = false;
        bool erasing = false;
        std::vector<FlushEntry> pending; ///< relocated pages to program

        /** Back to idle, keeping `pending`'s capacity for the next
         *  collection (the hot path must not reallocate). */
        void
        reset()
        {
            active = false;
            victim = 0;
            scanIndex = 0;
            outstandingReads = 0;
            outstandingPrograms = 0;
            scanDone = false;
            erasing = false;
            pending.clear();
        }
    };

    void startCollection(std::uint32_t chip, std::uint32_t victim);
    void handleEraseComplete(std::uint32_t chip,
                             const ssd::NandOpResult &result);
    void continueOn(std::uint32_t chip);
    void traceCollectionBegin(std::uint32_t chip);
    void finishScanPage(std::uint32_t chip,
                        std::uint32_t pageInBlockIdx);
    void maybeDispatchProgram(std::uint32_t chip, bool force);
    void eraseVictim(std::uint32_t chip);
    Ppa encodePpa(std::uint32_t chip, const nand::PageAddr &addr) const;

    const ssd::SsdConfig &config_;
    std::vector<ssd::ChipUnit> &chips_;
    std::vector<BlockManager> &blockMgrs_;
    MappingTable &mapping_;
    GcHost &host_;
    std::unique_ptr<GcPolicy> policy_;
    nand::NandGeometry geom_;
    nand::AddressCodec codec_;
    std::vector<ChipState> gc_;
    std::vector<FlushEntry> batchScratch_;  ///< staging for gcProgram
    GcStats stats_;
    FtlStats &mirror_;
    trace::TraceSession *trace_ = nullptr;
    std::vector<std::uint32_t> tracks_;
    const sim::EventQueue *clock_ = nullptr;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_GC_H
