#include "src/ftl/block_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace cubessd::ftl {

BlockManager::BlockManager(const nand::NandGeometry &geom)
    : geom_(geom)
{
    blocks_.resize(geom_.blocksPerChip);
    for (std::uint32_t b = 0; b < geom_.blocksPerChip; ++b) {
        blocks_[b].p2l.assign(geom_.pagesPerBlock(), kInvalidLba);
        blocks_[b].valid.assign(geom_.pagesPerBlock(), false);
        freeList_.push_back(b);
    }
}

std::uint32_t
BlockManager::allocate()
{
    if (freeList_.empty())
        fatal("BlockManager: out of free blocks (GC watermarks too low "
              "or over-provisioning exhausted)");
    // Dynamic wear leveling: take the least-worn free block (the free
    // list is short, so a linear scan is fine).
    auto best = freeList_.begin();
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        if (blocks_[*it].eraseCount < blocks_[*best].eraseCount)
            best = it;
    }
    const std::uint32_t block = *best;
    freeList_.erase(best);
    auto &info = blocks_[block];
    if (!info.isFree)
        panic("BlockManager: block %u on free list but not free", block);
    info.isFree = false;
    info.isActive = true;
    return block;
}

void
BlockManager::release(std::uint32_t block)
{
    auto &info = blocks_.at(block);
    if (info.isBad)
        panic("BlockManager: releasing retired block %u", block);
    if (info.validCount != 0)
        panic("BlockManager: releasing block %u with %u valid pages",
              block, info.validCount);
    info.p2l.assign(geom_.pagesPerBlock(), kInvalidLba);
    info.valid.assign(geom_.pagesPerBlock(), false);
    info.programmedWls = 0;
    ++info.eraseCount;
    info.isFree = true;
    info.isActive = false;
    freeList_.push_back(block);
}

void
BlockManager::close(std::uint32_t block)
{
    auto &info = blocks_.at(block);
    if (info.isFree)
        panic("BlockManager: closing free block %u", block);
    info.isActive = false;
}

void
BlockManager::retire(std::uint32_t block)
{
    auto &info = blocks_.at(block);
    if (info.isBad)
        panic("BlockManager: block %u already retired", block);
    if (info.isFree)
        panic("BlockManager: retiring free block %u", block);
    info.isBad = true;
    info.isActive = false;
    ++retired_;
}

void
BlockManager::markValid(std::uint32_t block, std::uint32_t pageInBlock,
                        Lba lba)
{
    auto &info = blocks_.at(block);
    if (info.valid.at(pageInBlock))
        panic("BlockManager: page %u of block %u already valid",
              pageInBlock, block);
    info.valid[pageInBlock] = true;
    info.p2l[pageInBlock] = lba;
    ++info.validCount;
}

void
BlockManager::markInvalid(std::uint32_t block, std::uint32_t pageInBlock)
{
    auto &info = blocks_.at(block);
    if (!info.valid.at(pageInBlock))
        return;  // idempotent: racing invalidations are benign
    info.valid[pageInBlock] = false;
    info.p2l[pageInBlock] = kInvalidLba;
    --info.validCount;
}

void
BlockManager::noteWlProgrammed(std::uint32_t block)
{
    auto &info = blocks_.at(block);
    ++info.programmedWls;
    if (info.programmedWls > geom_.wlsPerBlock())
        panic("BlockManager: block %u over-programmed", block);
}

std::optional<std::uint32_t>
BlockManager::pickVictim() const
{
    std::optional<std::uint32_t> best;
    std::uint32_t bestValid = 0;
    for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
        const auto &info = blocks_[b];
        if (info.isFree || info.isActive || info.isBad)
            continue;
        if (info.programmedWls != geom_.wlsPerBlock())
            continue;  // only fully written blocks are GC candidates
        // A collection's own partial-WL padding can waste up to
        // pagesPerWl-1 pages, so a victim must reclaim more than that
        // or GC feeds on its own leftovers and never converges.
        if (info.validCount + geom_.pagesPerWl > geom_.pagesPerBlock())
            continue;
        // Greedy by reclaimable space; ties broken toward the
        // least-worn block so GC churn spreads across the chip.
        if (!best || info.validCount < bestValid ||
            (info.validCount == bestValid &&
             info.eraseCount < blocks_[*best].eraseCount)) {
            best = b;
            bestValid = info.validCount;
        }
    }
    return best;
}

std::uint64_t
BlockManager::totalValid() const
{
    std::uint64_t total = 0;
    for (const auto &info : blocks_)
        total += info.validCount;
    return total;
}

std::uint32_t
BlockManager::wearSpread() const
{
    std::uint32_t lo = ~0u, hi = 0;
    for (const auto &info : blocks_) {
        lo = std::min(lo, info.eraseCount);
        hi = std::max(hi, info.eraseCount);
    }
    return hi - lo;
}

}  // namespace cubessd::ftl
