/**
 * @file
 * Program orders for a 3D NAND block (paper Sec. 4.1.3, Fig. 12).
 *
 * A *leader* WL is the first WL programmed on its h-layer (the one
 * whose ISPP loop counts and BER_EP1 the OPM monitors); the other WLs
 * of the h-layer are *followers* and can be programmed with reduced
 * latency. The order determines how many followers are available at
 * any time:
 *
 *  - Horizontal-first: layer by layer (w11 w12 w13 w14, w21 ...);
 *    every 4th write is a slow leader.
 *  - Vertical-first: v-layer by v-layer (w11 w21 ... wL1, w12 ...);
 *    all leaders first, then only followers.
 *  - Mixed (MOS): leaders and followers interleave freely under the
 *    WAM's control; this header provides the canonical static MOS
 *    sequence (leaders of layers 0..k stay ahead of their followers).
 *
 * 3D NAND allows all three because SL transistors isolate WLs of the
 * same h-layer (no program interference between v-layers).
 */

#ifndef CUBESSD_FTL_PROGRAM_ORDER_H
#define CUBESSD_FTL_PROGRAM_ORDER_H

#include <vector>

#include "src/nand/geometry.h"

namespace cubessd::ftl {

enum class ProgramOrderKind
{
    HorizontalFirst,
    VerticalFirst,
    Mixed,
};

const char *programOrderName(ProgramOrderKind kind);

/** @return true if this WL is the leader of its h-layer (v-layer 0). */
inline bool
isLeaderWl(const nand::WlAddr &addr)
{
    return addr.wl == 0;
}

/**
 * The full WL program sequence of one block under a static order.
 * For Mixed this is the canonical interleaving (leader of layer i,
 * then followers of layer i-1's neighborhood) used when no dynamic
 * WAM steering is present.
 */
std::vector<nand::WlAddr>
programSequence(ProgramOrderKind kind, const nand::NandGeometry &geom,
                std::uint32_t block);

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_PROGRAM_ORDER_H
