/**
 * @file
 * FTL engine: the machinery shared by every mapping policy.
 *
 * FtlBase implements the host-facing stages of the request pipeline —
 *
 *  - host writes land in the DRAM write buffer (stalling when full),
 *  - a background flush drains WL-sized batches to NAND,
 *  - host reads are served from the buffer, from in-flight flushes,
 *    or from NAND,
 *
 * — wires in the standalone GC subsystem (src/ftl/gc.h) for space
 * reclamation, and delegates the *policy* decisions to virtual hooks:
 * which WL to program next and with what parameters
 * (chooseProgramTarget), which read-reference shift to apply
 * (readShiftFor), and what to learn from completed operations
 * (onProgramComplete / onReadComplete). The concrete FTLs of the
 * paper's evaluation (pageFTL, vertFTL, cubeFTL, cubeFTL-) are small
 * subclasses.
 *
 * The request path is allocation-free at steady state: read contexts,
 * parked writes and flush batches live in free-list pools, completions
 * travel as typed events / CompletionSink calls, the in-flight index
 * is a flat hash map, and NAND completions arrive via NandOpListener.
 */

#ifndef CUBESSD_FTL_FTL_BASE_H
#define CUBESSD_FTL_FTL_BASE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/pool.h"
#include "src/common/ring_deque.h"
#include "src/common/stats.h"
#include "src/ftl/block_manager.h"
#include "src/ftl/ftl_stats.h"
#include "src/ftl/gc.h"
#include "src/ftl/mapping.h"
#include "src/sim/event_queue.h"
#include "src/ssd/chip_unit.h"
#include "src/ssd/config.h"
#include "src/ssd/request.h"
#include "src/ssd/write_buffer.h"

namespace cubessd::trace {
class TraceSession;
class CounterRegistry;
}

namespace cubessd::ftl {

/** A WL program decision made by the policy layer. */
struct ProgramChoice
{
    nand::WlAddr wl{};
    nand::ProgramCommand cmd{};
    bool isLeader = true;   ///< counts toward leader/follower stats
    bool monitor = true;    ///< treat the result as fresh leader data
};

class FtlBase : private GcHost,
                public sim::EventHandler,
                public ssd::NandOpListener
{
  public:
    FtlBase(const ssd::SsdConfig &config,
            std::vector<ssd::ChipUnit> &chips, sim::EventQueue &queue);
    ~FtlBase() override = default;

    FtlBase(const FtlBase &) = delete;
    FtlBase &operator=(const FtlBase &) = delete;

    /** Submit a host read; `sink` is notified (with `ctx` passed back
     *  verbatim) when all pages are returned. */
    void hostRead(const ssd::HostRequest &req, ssd::CompletionSink *sink,
                  std::uint64_t ctx);

    /** Submit a host write; `sink` fires when all pages are buffered. */
    void hostWrite(const ssd::HostRequest &req,
                   ssd::CompletionSink *sink, std::uint64_t ctx);

    /**
     * Force every buffered page to NAND (end-of-run / power-down).
     * Asynchronous: run the event queue afterwards to complete it.
     */
    void flushAll();

    /** Current data of a logical page, bypassing timing (for tests). */
    std::optional<std::uint64_t> peek(Lba lba) const;

    /**
     * Has the device exhausted its spare blocks and entered read-only
     * mode? Subsequent writes complete with Status::ReadOnly; reads
     * and in-flight flushes continue.
     */
    bool readOnly() const { return readOnly_; }

    const FtlStats &stats() const { return stats_; }
    const GcStats &gcStats() const { return gcEngine_->stats(); }
    const GcEngine &gc() const { return *gcEngine_; }
    const ssd::WriteBuffer &buffer() const { return buffer_; }
    const MappingTable &mapping() const { return mapping_; }
    const BlockManager &blockManager(std::uint32_t chip) const;
    std::uint64_t logicalPages() const { return mapping_.logicalPages(); }

    /**
     * Verify cross-structure invariants (mapping vs valid counts vs
     * chip state); panics on violation. Test/debug aid.
     */
    void checkConsistency() const;

    /**
     * Record FTL-level instant events (write stalls, block
     * retirements, flush deferrals/replays, read-only transition) on
     * `track`, and GC episodes on the per-chip `gcTracks`
     * (observation only; null session disables).
     */
    void setTrace(trace::TraceSession *session, std::uint32_t track,
                  std::vector<std::uint32_t> gcTracks);

    /**
     * Register the FTL's sampled gauges (buffer occupancy, free
     * blocks, GC pages moved, write stalls, VFY skips). Subclasses
     * extend with policy-specific series (e.g. cubeFTL's ORT hit
     * rate).
     */
    virtual void registerCounters(trace::CounterRegistry &reg);

    /** sim::EventHandler: deferred completions (RequestComplete,
     *  ReadPieceDone) land here. */
    void onEvent(sim::EventKind kind,
                 const sim::EventPayload &payload) override;

    /** ssd::NandOpListener: host reads and flush programs complete. */
    void onNandOpComplete(const ssd::NandOp &op,
                          const ssd::NandOpResult &result) override;

  protected:
    /**
     * Pick the WL and program parameters for the next flush on `chip`.
     * @param forGc  true when the program relocates GC data
     * @param mu     current write-buffer utilization (WAM input)
     */
    virtual ProgramChoice chooseProgramTarget(std::uint32_t chip,
                                              bool forGc, double mu) = 0;

    /** Read-reference shift for a page read (0 = chip default). */
    virtual MilliVolt
    readShiftFor(std::uint32_t chip, const nand::PageAddr &addr)
    {
        (void)chip;
        (void)addr;
        return 0;
    }

    /** Should this read start with the soft LDPC decode? (Paper
     *  Sec. 8: leader-informed ECC-mode selection.) */
    virtual bool
    readSoftHint(std::uint32_t chip, const nand::PageAddr &addr)
    {
        (void)chip;
        (void)addr;
        return false;
    }

    /** Learn from a completed WL program. */
    virtual void
    onProgramComplete(std::uint32_t chip, const ProgramChoice &choice,
                      const nand::WlProgramResult &result)
    {
        (void)chip;
        (void)choice;
        (void)result;
    }

    /** Learn from a completed page read. */
    virtual void
    onReadComplete(std::uint32_t chip, const nand::PageAddr &addr,
                   const nand::ReadOutcome &outcome)
    {
        (void)chip;
        (void)addr;
        (void)outcome;
    }

    /** A block finished erasing (forget cached per-block state). */
    virtual void
    onBlockErased(std::uint32_t chip, std::uint32_t block)
    {
        (void)chip;
        (void)block;
    }

    /**
     * A block was retired to the bad-block list (program or erase
     * status fail). Policies must abandon any write point open on it
     * and drop cached per-block state; the base engine has already
     * marked it bad and takes care of relocating its valid pages.
     */
    virtual void
    onBlockRetired(std::uint32_t chip, std::uint32_t block)
    {
        (void)chip;
        (void)block;
    }

    /**
     * Safety check of Sec. 4.1.4: return true if this (follower)
     * program deviated enough that the data must be re-programmed.
     */
    virtual bool
    safetyCheck(std::uint32_t chip, const ProgramChoice &choice,
                const nand::WlProgramResult &result)
    {
        (void)chip;
        (void)choice;
        (void)result;
        return false;
    }

    /** Allocate a fresh active block on a chip (for subclasses). */
    std::uint32_t allocateBlock(std::uint32_t chip);

    /** Behavioural chip model of one chip (for subclass policies). */
    const nand::NandChip &
    chipModel(std::uint32_t chip) const
    {
        return chips_.at(chip).chip();
    }

    const ssd::SsdConfig &config() const { return config_; }
    std::uint32_t chipCount() const
    {
        return static_cast<std::uint32_t>(chips_.size());
    }
    const nand::NandGeometry &geometry() const { return geom_; }
    sim::EventQueue &queue() { return queue_; }

  private:
    /** In-flight multi-page host read (pooled). */
    struct ReadContext
    {
        std::uint64_t id = 0;
        SimTime arrival = 0;
        std::uint32_t pages = 0;
        ssd::CompletionSink *sink = nullptr;
        std::uint64_t sinkCtx = 0;
        std::uint32_t remaining = 0;
        ssd::PhaseTimes phases{};  ///< summed over the request's pages
        ssd::Status status = ssd::Status::Ok;  ///< worst page outcome
    };

    /** Host write in progress, possibly stalled on a full buffer
     *  (pooled). */
    struct StalledWrite
    {
        ssd::HostRequest req{};
        ssd::CompletionSink *sink = nullptr;
        std::uint64_t sinkCtx = 0;
        std::uint32_t nextPage = 0;
    };

    /** One WL-sized flush in flight to NAND (pooled; `entries` and
     *  `tokens` keep their capacity across reuses). */
    struct FlushBatch
    {
        std::vector<FlushEntry> entries;
        std::vector<std::uint64_t> tokens;
        ProgramChoice choice{};
        std::uint32_t chip = 0;
        bool forGc = false;
    };

    /** A host write's buffered token + version while its flush is in
     *  flight (the read path checks this before NAND). */
    struct InFlightWrite
    {
        std::uint64_t token = 0;
        std::uint64_t version = 0;
    };

    void processWrite(StalledWrite *write);
    /** Schedule the write's completion and recycle its record. */
    void completeWrite(StalledWrite *write);

    /** One page of a read finished; completes the request on the last
     *  piece (recycling the context). */
    void finishReadPiece(ReadContext *ctx);

    void maybeFlush();
    void dispatchFlush(FlushBatch *batch);
    void handleProgramComplete(FlushBatch *batch,
                               const ssd::NandOpResult &result);
    void applyMappings(std::uint32_t chip, const nand::WlAddr &wl,
                       const std::vector<FlushEntry> &batch);
    void retryStalledWrites();

    /** Complete a request immediately with a non-Ok status. */
    void completeWithStatus(const ssd::HostRequest &req,
                            ssd::CompletionSink *sink,
                            std::uint64_t sinkCtx, ssd::Status status);

    /** Schedule a RequestComplete event `delay` from now. */
    void scheduleCompletion(ssd::CompletionSink *sink,
                            std::uint64_t sinkCtx,
                            const ssd::HostRequest &req, ssd::IoType type,
                            ssd::Status status, SimTime bufferPhase,
                            SimTime delay);

    /**
     * Retire a block after a program-status fail: mark it bad, notify
     * the policy, relocate its still-valid pages to fresh blocks, and
     * re-evaluate the read-only condition.
     */
    void retireBlock(std::uint32_t chip, std::uint32_t block);

    /** Enter read-only mode once a chip's spare pool is exhausted. */
    void checkReadOnly(std::uint32_t chip);

    /** Re-dispatch flush batches parked while the chip's free list
     *  was empty, as far as the replenished free list allows. */
    void retryDeferredFlushes(std::uint32_t chip);

    // GcHost: services the GC engine calls back into.
    void gcProgram(std::uint32_t chip,
                   const std::vector<FlushEntry> &batch) override;
    MilliVolt gcReadShift(std::uint32_t chip,
                          const nand::PageAddr &addr) override;
    bool gcReadSoftHint(std::uint32_t chip,
                        const nand::PageAddr &addr) override;
    void gcBlockErased(std::uint32_t chip, std::uint32_t block) override;
    void gcBlockRetired(std::uint32_t chip, std::uint32_t block) override;
    void gcBackpressureReleased() override;

    std::uint64_t nextVersion() { return ++versionCounter_; }
    static std::uint64_t tokenFor(Lba lba, std::uint64_t version);

    Ppa encodePpa(std::uint32_t chip, const nand::PageAddr &addr) const;
    std::pair<std::uint32_t, nand::PageAddr> decodePpa(Ppa ppa) const;
    std::uint32_t pageInBlock(const nand::PageAddr &addr) const;

    ssd::SsdConfig config_;
    std::vector<ssd::ChipUnit> &chips_;
    sim::EventQueue &queue_;
    nand::NandGeometry geom_;
    nand::AddressCodec codec_;

    MappingTable mapping_;
    std::vector<BlockManager> blockMgrs_;
    ssd::WriteBuffer buffer_;
    std::vector<std::uint64_t> latestIssued_;  ///< per-LBA write version
    FlatMap64<InFlightWrite> inFlight_;  ///< lba -> buffered flush data
    ObjectPool<ReadContext> readCtxPool_;
    ObjectPool<StalledWrite> stalledPool_;
    ObjectPool<FlushBatch> batchPool_;
    RingDeque<StalledWrite *> stalled_;
    std::vector<ssd::BufferEntry> popScratch_;  ///< popOldest staging
    /** Outstanding host-path flushes per chip. Normally 0/1 (the
     *  maybeFlush throttle); bad-block relocations can push it higher
     *  transiently, hence a count rather than a flag. */
    std::vector<std::uint32_t> outstandingFlush_;
    /** Host-path batches parked because the chip had no free block to
     *  land them on (cascading retirement under fault injection).
     *  Retried whenever GC returns a block to the free list; empty in
     *  fault-free operation. */
    std::vector<RingDeque<FlushBatch *>> deferredFlushes_;
    std::unique_ptr<GcEngine> gcEngine_;
    std::uint32_t flushCursor_ = 0;
    std::uint64_t versionCounter_ = 0;
    bool drainMode_ = false;
    std::uint64_t sparePerChip_ = 0;  ///< initial spare blocks per chip
    bool readOnly_ = false;
    trace::TraceSession *trace_ = nullptr;
    std::uint32_t traceTrack_ = 0;

    FtlStats stats_;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_FTL_BASE_H
