/**
 * @file
 * Per-chip physical block bookkeeping: free list, valid-page counts,
 * reverse (P2L) mapping, and greedy victim selection for GC.
 */

#ifndef CUBESSD_FTL_BLOCK_MANAGER_H
#define CUBESSD_FTL_BLOCK_MANAGER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/types.h"
#include "src/nand/geometry.h"

namespace cubessd::ftl {

/** State of one physical block within a chip. */
struct BlockInfo
{
    std::vector<Lba> p2l;        ///< reverse map (kInvalidLba if none)
    std::vector<bool> valid;     ///< per-page validity
    std::uint32_t validCount = 0;
    std::uint32_t programmedWls = 0;
    std::uint32_t eraseCount = 0;  ///< wear (for wear leveling)
    bool isFree = true;
    bool isActive = false;       ///< open as a write point (not a victim)
    bool isBad = false;          ///< retired after a program/erase fail
};

class BlockManager
{
  public:
    explicit BlockManager(const nand::NandGeometry &geom);

    const nand::NandGeometry &geometry() const { return geom_; }

    std::size_t freeCount() const { return freeList_.size(); }

    /**
     * Pop the *least-worn* free block and mark it active (dynamic
     * wear leveling: new data always lands on the youngest block).
     * Fatal if the free list is empty (the FTL's GC watermarks are
     * supposed to prevent this).
     */
    std::uint32_t allocate();

    /** Return an erased block to the free list, counting the wear. */
    void release(std::uint32_t block);

    /** Mark a fully written active block as closed (GC-eligible). */
    void close(std::uint32_t block);

    /**
     * Move a block to the bad-block list after a program or erase
     * status fail. The block leaves circulation permanently: it is
     * never allocated, picked as a GC victim, or released again. Any
     * pages still valid at retirement stay readable (the NAND keeps
     * their data) until the caller relocates them and the relocations
     * invalidate them one by one.
     */
    void retire(std::uint32_t block);

    /** Blocks retired to the bad-block list so far. */
    std::size_t retiredCount() const { return retired_; }

    BlockInfo &info(std::uint32_t block) { return blocks_.at(block); }
    const BlockInfo &
    info(std::uint32_t block) const
    {
        return blocks_.at(block);
    }

    /** Record that `pageInBlock` of `block` now holds `lba`'s data. */
    void markValid(std::uint32_t block, std::uint32_t pageInBlock,
                   Lba lba);

    /** Invalidate one physical page (old version or discarded data). */
    void markInvalid(std::uint32_t block, std::uint32_t pageInBlock);

    /** Account one WL of `block` as programmed. */
    void noteWlProgrammed(std::uint32_t block);

    /**
     * Greedy victim selection: the closed block with the fewest valid
     * pages. Fully-valid blocks are never returned — collecting them
     * cannot free space (relocation consumes exactly what the erase
     * reclaims) and would livelock the GC.
     * @return nullopt if no profitable victim exists.
     */
    std::optional<std::uint32_t> pickVictim() const;

    /** Total valid pages across all blocks (consistency checks). */
    std::uint64_t totalValid() const;

    /** Wear imbalance: max - min erase count across all blocks. */
    std::uint32_t wearSpread() const;

  private:
    nand::NandGeometry geom_;
    std::vector<BlockInfo> blocks_;
    std::deque<std::uint32_t> freeList_;
    std::size_t retired_ = 0;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_BLOCK_MANAGER_H
