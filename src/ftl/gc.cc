#include "src/ftl/gc.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/prof/prof.h"
#include "src/trace/trace.h"

namespace cubessd::ftl {

std::unique_ptr<GcPolicy>
makeGcPolicy(ssd::GcPolicyKind kind)
{
    switch (kind) {
      case ssd::GcPolicyKind::Greedy:
        return std::make_unique<GreedyGcPolicy>();
    }
    fatal("makeGcPolicy: unknown policy kind");
}

GcEngine::GcEngine(const ssd::SsdConfig &config,
                   std::vector<ssd::ChipUnit> &chips,
                   std::vector<BlockManager> &blockMgrs,
                   MappingTable &mapping, GcHost &host,
                   std::unique_ptr<GcPolicy> policy, FtlStats &mirror)
    : config_(config),
      chips_(chips),
      blockMgrs_(blockMgrs),
      mapping_(mapping),
      host_(host),
      policy_(std::move(policy)),
      geom_(config.chip.geometry),
      codec_(geom_),
      gc_(chips.size()),
      mirror_(mirror)
{
    if (!policy_)
        fatal("GcEngine: no victim-selection policy");
    // Worst case per collection: every page of the victim is valid.
    for (auto &gc : gc_)
        gc.pending.reserve(geom_.pagesPerBlock());
    batchScratch_.reserve(geom_.pagesPerWl);
}

Ppa
GcEngine::encodePpa(std::uint32_t chip, const nand::PageAddr &addr) const
{
    return static_cast<Ppa>(chip) * geom_.pagesPerChip() +
           codec_.encode(addr);
}

void
GcEngine::setTrace(trace::TraceSession *session,
                   std::vector<std::uint32_t> tracks,
                   const sim::EventQueue *clock)
{
    if (session != nullptr &&
        (tracks.size() != chips_.size() || clock == nullptr))
        fatal("GcEngine::setTrace: need one track per chip and a clock");
    trace_ = session;
    tracks_ = std::move(tracks);
    clock_ = clock;
}

void
GcEngine::traceCollectionBegin(std::uint32_t chip)
{
    if (trace_ == nullptr)
        return;
    const auto &gc = gc_[chip];
    trace_->begin(
        tracks_[chip], "gc", clock_->now(),
        {{"victim", gc.victim},
         {"valid_pages", blockMgrs_[chip].info(gc.victim).validCount},
         {"free_blocks",
          static_cast<std::int64_t>(blockMgrs_[chip].freeCount())}});
}

void
GcEngine::maybeStart(std::uint32_t chip)
{
    // The scope opens only past the early-outs: maybeStart is polled
    // on every host program, and profiling the two-compare idle check
    // would cost more than the check itself.
    auto &gc = gc_.at(chip);
    if (gc.active)
        return;
    if (blockMgrs_[chip].freeCount() >= config_.gcLowWatermark)
        return;
    PROF_SCOPE(prof::Slot::FtlGc);
    const auto victim = policy_->pickVictim(blockMgrs_[chip]);
    if (!victim)
        return;
    startCollection(chip, *victim);
}

void
GcEngine::startCollection(std::uint32_t chip, std::uint32_t victim)
{
    auto &gc = gc_[chip];
    gc.reset();
    gc.active = true;
    gc.victim = victim;
    ++stats_.collections;
    ++mirror_.gcCollections;
    traceCollectionBegin(chip);
    continueOn(chip);
}

void
GcEngine::noteProgramIssued(std::uint32_t chip)
{
    ++gc_.at(chip).outstandingPrograms;
}

void
GcEngine::noteProgramComplete(std::uint32_t chip, SimTime tProg)
{
    --gc_.at(chip).outstandingPrograms;
    ++stats_.programs;
    stats_.programLatencySum += tProg;
}

void
GcEngine::resume(std::uint32_t chip)
{
    continueOn(chip);
}

void
GcEngine::continueOn(std::uint32_t chip)
{
    auto &gc = gc_[chip];
    if (!gc.active)
        return;  // resume() polls here on every program completion
    PROF_SCOPE(prof::Slot::FtlGc);
    auto &mgr = blockMgrs_[chip];
    const auto &info = mgr.info(gc.victim);

    // Issue the next scan read (one outstanding at a time, so host
    // reads can interleave).
    while (!gc.scanDone && gc.outstandingReads == 0) {
        while (gc.scanIndex < geom_.pagesPerBlock() &&
               !info.valid[gc.scanIndex]) {
            ++gc.scanIndex;
        }
        if (gc.scanIndex >= geom_.pagesPerBlock()) {
            gc.scanDone = true;
            break;
        }
        const std::uint32_t pageIdx = gc.scanIndex++;
        const nand::PageAddr addr =
            codec_.decode(static_cast<std::uint64_t>(gc.victim) *
                              geom_.pagesPerBlock() + pageIdx);
        ssd::NandOp op;
        op.kind = ssd::NandOp::Kind::Read;
        op.page = addr;
        op.readShiftMv = host_.gcReadShift(chip, addr);
        op.readSoftHint = host_.gcReadSoftHint(chip, addr);
        op.listener = this;
        op.ctx = pageIdx;
        op.chip = chip;
        ++gc.outstandingReads;
        ++stats_.scanReads;
        ++mirror_.nandReads;
        chips_[chip].enqueue(op);
    }

    maybeDispatchProgram(chip, /*force=*/gc.scanDone &&
                                   gc.outstandingReads == 0);

    if (gc.scanDone && gc.outstandingReads == 0 && gc.pending.empty() &&
        gc.outstandingPrograms == 0 && !gc.erasing) {
        eraseVictim(chip);
    }
}

void
GcEngine::finishScanPage(std::uint32_t chip,
                         std::uint32_t pageInBlockIdx)
{
    // Called only from onNandOpComplete, whose FtlGc scope is open.
    auto &gc = gc_[chip];
    const auto &info = blockMgrs_[chip].info(gc.victim);
    if (!info.valid[pageInBlockIdx])
        return;  // invalidated by a racing host write: nothing to move
    const Lba lba = info.p2l[pageInBlockIdx];
    const nand::PageAddr addr =
        codec_.decode(static_cast<std::uint64_t>(gc.victim) *
                          geom_.pagesPerBlock() + pageInBlockIdx);
    FlushEntry entry;
    entry.lba = lba;
    entry.token = chips_[chip].chip().pageToken(addr);
    entry.version = mapping_.mappedVersion(lba);
    entry.sourcePpa = encodePpa(chip, addr);
    gc.pending.push_back(entry);
    ++stats_.relocatedPages;
    ++mirror_.gcRelocatedPages;
}

void
GcEngine::maybeDispatchProgram(std::uint32_t chip, bool force)
{
    // Called only from continueOn, whose FtlGc scope is open.
    auto &gc = gc_[chip];
    while (gc.pending.size() >= geom_.pagesPerWl ||
           (force && !gc.pending.empty())) {
        const std::size_t take =
            std::min<std::size_t>(gc.pending.size(), geom_.pagesPerWl);
        batchScratch_.assign(
            gc.pending.begin(),
            gc.pending.begin() + static_cast<long>(take));
        gc.pending.erase(gc.pending.begin(),
                         gc.pending.begin() + static_cast<long>(take));
        while (batchScratch_.size() < geom_.pagesPerWl)
            batchScratch_.push_back(FlushEntry{});
        host_.gcProgram(chip, batchScratch_);
    }
}

void
GcEngine::eraseVictim(std::uint32_t chip)
{
    // Called only from continueOn, whose FtlGc scope is open.
    auto &gc = gc_[chip];
    gc.erasing = true;
    ssd::NandOp op;
    op.kind = ssd::NandOp::Kind::Erase;
    op.block = gc.victim;
    op.listener = this;
    op.chip = chip;
    chips_[chip].enqueue(op);
}

void
GcEngine::onNandOpComplete(const ssd::NandOp &op,
                           const ssd::NandOpResult &result)
{
    PROF_SCOPE(prof::Slot::FtlGc);
    if (op.kind == ssd::NandOp::Kind::Read) {
        const auto pageIdx = static_cast<std::uint32_t>(op.ctx);
        mirror_.readRetries +=
            static_cast<std::uint64_t>(result.read.numRetries);
        --gc_[op.chip].outstandingReads;
        finishScanPage(op.chip, pageIdx);
        continueOn(op.chip);
        return;
    }
    handleEraseComplete(op.chip, result);
}

void
GcEngine::handleEraseComplete(std::uint32_t chip,
                              const ssd::NandOpResult &result)
{
    // Called only from onNandOpComplete, whose FtlGc scope is open.
    auto &gc = gc_[chip];
    const std::uint32_t victim = gc.victim;
    ++stats_.erases;
    ++mirror_.erases;
    if (result.eraseFailed) {
        // Erase-status fail: the block never returns to the free
        // pool. All its pages were already relocated (GC erases
        // only fully-invalid victims), so retirement is clean.
        blockMgrs_[chip].retire(victim);
        ++mirror_.eraseFailures;
        ++mirror_.retiredBlocks;
        if (trace_ != nullptr)
            trace_->instant(tracks_[chip], "gc_erase_fail",
                            clock_->now(), {{"block", victim}});
        host_.gcBlockRetired(chip, victim);
    } else {
        blockMgrs_[chip].release(victim);
        host_.gcBlockErased(chip, victim);
    }
    gc.active = false;
    gc.erasing = false;
    if (trace_ != nullptr)
        trace_->end(tracks_[chip], clock_->now());
    // Hysteresis: keep collecting until the high watermark.
    if (blockMgrs_[chip].freeCount() < config_.gcHighWatermark) {
        const auto next = policy_->pickVictim(blockMgrs_[chip]);
        if (next)
            startCollection(chip, *next);
    }
    host_.gcBackpressureReleased();
}

}  // namespace cubessd::ftl
