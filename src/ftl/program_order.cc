#include "src/ftl/program_order.h"

#include "src/common/logging.h"

namespace cubessd::ftl {

const char *
programOrderName(ProgramOrderKind kind)
{
    switch (kind) {
      case ProgramOrderKind::HorizontalFirst: return "horizontal-first";
      case ProgramOrderKind::VerticalFirst:   return "vertical-first";
      case ProgramOrderKind::Mixed:           return "mixed (MOS)";
    }
    return "?";
}

std::vector<nand::WlAddr>
programSequence(ProgramOrderKind kind, const nand::NandGeometry &geom,
                std::uint32_t block)
{
    std::vector<nand::WlAddr> seq;
    seq.reserve(geom.wlsPerBlock());

    switch (kind) {
      case ProgramOrderKind::HorizontalFirst:
        for (std::uint32_t l = 0; l < geom.layersPerBlock; ++l)
            for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w)
                seq.push_back(nand::WlAddr{block, l, w});
        break;

      case ProgramOrderKind::VerticalFirst:
        for (std::uint32_t w = 0; w < geom.wlsPerLayer; ++w)
            for (std::uint32_t l = 0; l < geom.layersPerBlock; ++l)
                seq.push_back(nand::WlAddr{block, l, w});
        break;

      case ProgramOrderKind::Mixed: {
        // Canonical MOS interleaving: leaders run two h-layers ahead
        // of their followers, so a pool of already-monitored follower
        // WLs is always open (the WAM exploits this dynamically; this
        // static sequence is the shape used when no WAM steers it).
        constexpr std::uint32_t kLeadAhead = 2;
        for (std::uint32_t l = 0; l < geom.layersPerBlock; ++l) {
            seq.push_back(nand::WlAddr{block, l, 0});
            if (l >= kLeadAhead) {
                const std::uint32_t fl = l - kLeadAhead;
                for (std::uint32_t w = 1; w < geom.wlsPerLayer; ++w)
                    seq.push_back(nand::WlAddr{block, fl, w});
            }
        }
        for (std::uint32_t fl = geom.layersPerBlock -
                                std::min(kLeadAhead, geom.layersPerBlock);
             fl < geom.layersPerBlock; ++fl) {
            for (std::uint32_t w = 1; w < geom.wlsPerLayer; ++w)
                seq.push_back(nand::WlAddr{block, fl, w});
        }
        break;
      }
    }

    if (seq.size() != geom.wlsPerBlock())
        panic("programSequence: generated %zu of %u WLs", seq.size(),
              geom.wlsPerBlock());
    return seq;
}

}  // namespace cubessd::ftl
