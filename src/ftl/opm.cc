#include "src/ftl/opm.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cubessd::ftl {

Opm::Opm(const OpmConfig &config, const nand::ErrorModel &errors,
         const ecc::EccModel &ecc, MilliVolt deltaVMv)
    : config_(config), errors_(errors), deltaVMv_(deltaVMv)
{
    if (deltaVMv_ <= 0)
        fatal("Opm: dV_ISPP must be positive");
    eccLimitNorm_ = ecc.limitBer() / errors_.params().baseBer;
    if (eccLimitNorm_ <= 0.0)
        fatal("Opm: ECC limit below the model's base BER");
}

LeaderParams
Opm::derive(const nand::WlProgramResult &leader,
            const nand::AgingState &aging) const
{
    LeaderParams params;
    params.valid = true;
    params.leaderBerEp1Norm = leader.berEp1Norm;

    // Estimate the WL's total BER from the monitored BER_EP1, project
    // it to the end of the data's retention life, and compute how
    // much it may be multiplied before hitting the ECC limit — the
    // spare margin S_M of Sec. 4.1.2, here expressed as an allowed
    // BER multiplier.
    const double measuredNorm =
        std::max(errors_.totalNormFromEp1(leader.berEp1Norm), 1e-9);
    const double projectedNorm = std::max(
        errors_.projectedRetentionNorm(measuredNorm, aging), 1e-9);
    const double allowed =
        config_.marginGuard * eccLimitNorm_ / projectedNorm;
    double shrink = errors_.safeWindowShrinkMv(allowed);
    shrink = std::min(shrink, static_cast<double>(config_.maxShrinkMv));

    const auto g = static_cast<double>(config_.granularityMv);
    const auto total =
        static_cast<MilliVolt>(std::floor(shrink / g) * g);
    params.vStartAdjMv = static_cast<MilliVolt>(
        std::floor(config_.vStartShare * static_cast<double>(total) / g) *
        g);
    params.vFinalAdjMv = total - params.vStartAdjMv;
    params.expectedMultiplier =
        errors_.windowShrinkMultiplier(static_cast<double>(total));

    // VFY skip plan (Sec. 4.1.1): skip the verifies before the
    // leader's observed L_min for each state, shifted down by the
    // V_Start raise (the whole ISPP ladder moves earlier with it).
    const int shiftLoops =
        (params.vStartAdjMv + deltaVMv_ - 1) / deltaVMv_;
    params.skipPlanUnshifted =
        nand::IsppEngine::safeSkipPlan(leader.loops);
    params.skipPlan = params.skipPlanUnshifted;
    for (auto &skip : params.skipPlan)
        skip = std::max(0, skip - shiftLoops);
    return params;
}

bool
Opm::needsReprogram(const LeaderParams &params,
                    const nand::WlProgramResult &follower) const
{
    // Over-programming beyond what the adjustment should cost, or a
    // BER_EP1 far above the h-layer's previously programmed WL (the
    // paper's check: the monitored parameters no longer describe the
    // current operating condition).
    if (follower.berMultiplier >
        params.expectedMultiplier * config_.safetyBerFactor) {
        return true;
    }
    return follower.berEp1Norm >
           params.leaderBerEp1Norm * config_.safetyBerFactor;
}

}  // namespace cubessd::ftl
