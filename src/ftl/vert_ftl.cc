#include "src/ftl/vert_ftl.h"

#include <algorithm>
#include <cmath>

namespace cubessd::ftl {

VertFtl::VertFtl(const ssd::SsdConfig &config,
                 std::vector<ssd::ChipUnit> &chips,
                 sim::EventQueue &queue,
                 const VertFtlConfig &vertConfig)
    : PageFtl(config, chips, queue), vertConfig_(vertConfig)
{
    buildTable(config, chips);
}

void
VertFtl::buildTable(const ssd::SsdConfig &config,
                    const std::vector<ssd::ChipUnit> &chips)
{
    const auto &chip = chips.front().chip();
    const auto &process = chip.process();
    const auto &errors = chip.errors();
    const double eccLimitNorm =
        chip.ecc().limitBer() / errors.params().baseBer;

    // [13]'s offline characterization grades layers by structural
    // quality: the cleanest layer earns baseAdjustMv of V_Final
    // reduction, the worst earns none, linearly in between. The
    // grant is static for the device's whole lifetime.
    double worstProfile = 0.0;
    for (std::uint32_t l = 0; l < geometry().layersPerBlock; ++l)
        worstProfile = std::max(worstProfile, process.layerProfile(l));

    const nand::AgingState eol{errors.params().peEol,
                               errors.params().retEolMonths};
    const double severityWc =
        std::exp(2.0 * config.chip.process.blockSigma);
    const double chipWc = std::exp(2.0 * config.chip.process.chipSigma);

    table_.resize(geometry().layersPerBlock, 0);
    for (std::uint32_t l = 0; l < geometry().layersPerBlock; ++l) {
        const double profile = process.layerProfile(l);
        double adjust = static_cast<double>(vertConfig_.baseAdjustMv) *
                        (1.0 - profile / worstProfile);

        // The table must remain safe at end of life on a worst-case
        // block: cap the grant where the shrink's BER multiplier
        // would push the layer past the ECC limit.
        const double qWc = 1.0 + severityWc * profile;
        const double wcNorm = errors.normalizedBer(qWc, eol, chipWc);
        // A static grant must not touch layers that finish their life
        // close to the ECC limit: their end-of-life headroom is the
        // read path's misalignment budget. Layers with comfortable
        // headroom may spend half of it on the program window.
        if (wcNorm > 0.6 * eccLimitNorm) {
            adjust = 0.0;
        } else {
            const double allowedMult =
                1.0 + 0.5 * (eccLimitNorm / wcNorm - 1.0);
            adjust =
                std::min(adjust, errors.safeWindowShrinkMv(allowedMult));
        }
        adjust = std::max(adjust, 0.0);

        const auto g = static_cast<double>(vertConfig_.granularityMv);
        table_[l] = static_cast<MilliVolt>(std::floor(adjust / g) * g);
    }
}

nand::ProgramCommand
VertFtl::commandFor(std::uint32_t chip, const nand::WlAddr &wl)
{
    (void)chip;
    nand::ProgramCommand cmd;
    cmd.vFinalAdjMv = table_.at(wl.layer);
    return cmd;
}

}  // namespace cubessd::ftl
